"""Count lines of code and LITE-API call sites per application.

Regenerates the paper's Figure 20 table ("LITE Application
Implementation Effort"): total LOC of each application and how many of
those lines touch the LITE API (``lt_*`` calls, context creation,
locks/barriers) — the paper's point being that a handful of LITE lines
encapsulate all networking.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Tuple

__all__ = ["count_loc", "count_lite_lines", "app_effort_table"]

_LITE_CALL = re.compile(
    r"\.lt_\w+\(|LiteContext\(|lite_boot\(|rpc_server_loop\(|LiteLock\("
)


def _code_lines(path: Path) -> Iterable[str]:
    """Source lines excluding blanks, comments, and docstrings."""
    in_doc = False
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_doc:
            if line.endswith('"""') or line.endswith("'''"):
                in_doc = False
            continue
        if line.startswith('"""') or line.startswith("'''"):
            quote = line[:3]
            if not (line.endswith(quote) and len(line) > 3):
                in_doc = True
            continue
        if line.startswith("#"):
            continue
        yield line


def count_loc(paths: Iterable[Path]) -> int:
    return sum(1 for path in paths for _line in _code_lines(path))


def count_lite_lines(paths: Iterable[Path]) -> int:
    return sum(
        1
        for path in paths
        for line in _code_lines(path)
        if _LITE_CALL.search(line)
    )


def app_effort_table(repo_root: Path) -> list:
    """Rows of (application, LOC, LOC-using-LITE)."""
    apps = repo_root / "src" / "repro" / "apps"
    inventory: Tuple = (
        ("LITE-Log", [apps / "litelog.py"]),
        ("LITE-MR", [apps / "mapreduce" / "lite_mr.py"]),
        ("LITE-Graph", [apps / "graph" / "litegraph.py"]),
        ("LITE-DSM", [apps / "dsm" / "litedsm.py"]),
        ("LITE-Graph-DSM", [apps / "dsm" / "graphdsm.py"]),
    )
    rows = []
    for name, paths in inventory:
        rows.append((name, count_loc(paths), count_lite_lines(paths)))
    return rows


if __name__ == "__main__":
    for row in app_effort_table(Path(__file__).resolve().parents[1]):
        print(*row)
