#!/usr/bin/env python
"""Wall-clock micro-benchmark harness for the simulator itself.

Unlike ``benchmarks/`` (which reproduce the paper's *simulated-time*
figures), this tool measures how fast the simulator runs on the host:
ops per second of wall time, events per second, and peak RSS, over a
fixed op mix.  Results seed the perf trajectory across PRs — each run
is recorded under a label in a JSON file (default ``BENCH_pr10.json``)
and a ``baseline`` vs ``current`` pair yields the speedup numbers.

Usage:
    PYTHONPATH=src python tools/bench.py                    # label "current"
    PYTHONPATH=<seed>/src python tools/bench.py --label baseline
    python tools/bench.py --quick                           # CI smoke run

The op mixes only use APIs present in the PR-2 seed, so the same file
can be pointed (via PYTHONPATH) at any older tree to produce a
comparable baseline.  ``--jobs N`` additionally times the parallel
figure-sweep runner (serial vs N workers, asserting byte-identical
results); ``--compare FILE`` turns the run into a regression gate:
exit 1 if any mix's events/s falls more than 20% below the reference
file's ``current`` entry, or if peak RSS grows more than 25% over it.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
try:  # honor an explicit PYTHONPATH (baseline runs) before repo src
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.cluster import Cluster  # noqa: E402
from repro.core import LiteContext, lite_boot, rpc_server_loop  # noqa: E402


KB = 1024
MB = 1024 * 1024


def _peak_rss_kb() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _lite_pair(n_nodes: int = 2):
    cluster = Cluster(n_nodes)
    kernels = lite_boot(cluster)
    return cluster, kernels


def _timed_run(cluster, driver_gen):
    """Run one driver process; returns (wall_s, sim_us, events)."""
    sim = cluster.sim
    seq_before = sim._seq
    sim_before = sim.now
    start = time.perf_counter()
    cluster.run_process(driver_gen)
    wall = time.perf_counter() - start
    return wall, sim.now - sim_before, sim._seq - seq_before


def mix_small_ops(quick: bool) -> dict:
    """High-op-count mix: 64 B writes/reads, event-engine bound."""
    ops = 2_000 if quick else 12_000
    cluster, kernels = _lite_pair()
    ctx = LiteContext(kernels[0], "bench", kernel_level=True)
    holder = {}

    def setup():
        holder["lh"] = yield from ctx.lt_malloc(1 * MB, nodes=2)

    cluster.run_process(setup())
    lh = holder["lh"]
    payload = b"x" * 64

    def driver():
        for index in range(ops):
            if index & 1:
                yield from ctx.lt_read(lh, 0, 64)
            else:
                yield from ctx.lt_write(lh, 0, payload)

    wall, sim_us, events = _timed_run(cluster, driver())
    return {"ops": ops, "wall_s": wall, "sim_us": sim_us, "events": events}


def mix_large_msg(quick: bool) -> dict:
    """Large-message throughput mix: 1 MB writes/reads, copy bound.

    The op counts are deliberately not tiny: at 60 quick ops the whole
    mix ran ~50 ms of wall clock and the CI gate saw events/s spreads
    of ~25% from scheduler jitter alone.  Large ops are cheap enough
    (~40 us of wall each now that the vectorized fast path commits the
    whole chunk fan-out arithmetically) that even the quick mix can
    afford a run north of 100 ms, which is what it takes for the
    median-of-N gate spread to stay under 10%.  The 900-op count that
    cleared that bar before ISSUE 10 finishes in ~35 ms today, so the
    counts are rescaled to the same de-flake treatment PR 7 gave rpc.
    """
    ops = 3_000 if quick else 8_000
    cluster, kernels = _lite_pair()
    ctx = LiteContext(kernels[0], "bench", kernel_level=True)
    holder = {}

    def setup():
        holder["lh"] = yield from ctx.lt_malloc(8 * MB, nodes=2)

    cluster.run_process(setup())
    lh = holder["lh"]
    payload = bytes(1 * MB)

    def driver():
        for index in range(ops):
            if index & 1:
                yield from ctx.lt_read(lh, 0, 1 * MB)
            else:
                yield from ctx.lt_write(lh, 0, payload)

    wall, sim_us, events = _timed_run(cluster, driver())
    return {"ops": ops, "wall_s": wall, "sim_us": sim_us, "events": events}


def mix_rpc(quick: bool) -> dict:
    """RPC echo mix: 512 B calls through the write-imm ring."""
    ops = 1_500 if quick else 5_000
    cluster, kernels = _lite_pair()
    client = LiteContext(kernels[0], "cli")
    server = LiteContext(kernels[1], "srv")
    cluster.sim.process(rpc_server_loop(server, 1, lambda data: data))
    payload = b"r" * 512

    def driver():
        yield cluster.sim.timeout(5)
        for _ in range(ops):
            yield from client.lt_rpc(2, 1, payload, max_reply=1024)

    wall, sim_us, events = _timed_run(cluster, driver())
    return {"ops": ops, "wall_s": wall, "sim_us": sim_us, "events": events}


def mix_cancel_storm(quick: bool) -> dict:
    """Timer cancel-storm: arm a far deadline, finish fast, cancel.

    The keep-alive / RPC-deadline pattern that motivated the scheduler
    overhaul: under lazy cancellation every dead timer used to sit in
    the heap until its distant expiry, so the heap grew without bound
    and every push/pop paid log(dead + live).  Uses only engine APIs so
    the same mix runs against older trees for a baseline.
    """
    rounds = 8_000 if quick else 25_000
    workers = 8
    cluster, _kernels = _lite_pair()
    sim = cluster.sim

    def worker():
        for _ in range(rounds):
            deadline = sim.timeout(10_000.0)
            yield sim.timeout(0.5)
            deadline.cancel()

    def driver():
        procs = [sim.process(worker()) for _ in range(workers)]
        for proc in procs:
            yield proc

    wall, sim_us, events = _timed_run(cluster, driver())
    return {
        "ops": rounds * workers,
        "wall_s": wall,
        "sim_us": sim_us,
        "events": events,
    }


def mix_crash_recovery(quick: bool) -> dict:
    """Crash-recovery mix: replicated writes through a seeded crash.

    A ``replicas=2`` LMR takes retry-wrapped 64 B writes/reads while
    its primary's node crashes and restarts — so the run times the
    whole lease/failover/rejoin/resync machinery, not just the happy
    path.  Reports the unavailability window and promotion time from
    the recovery layer's ``repro.obs`` histograms alongside the usual
    throughput numbers (extra keys are ignored by the compare gate).
    """
    from repro.core import LiteError
    from repro.fault import FaultInjector, FaultPlan
    from repro.recovery import RecoveryManager

    ops = 400 if quick else 2_000
    cluster, kernels = _lite_pair(3)
    sim = cluster.sim
    plan = FaultPlan().crash(1, 4000.0, restart_at_us=9000.0)
    injector = FaultInjector(cluster, plan)
    injector.install()
    injector.arm_lite(kernels, keepalive_interval_us=500.0, miss_limit=2)
    recovery = RecoveryManager(
        cluster, kernels, lease_ttl_us=1500.0,
        renew_interval_us=400.0, sweep_interval_us=300.0,
    ).arm()
    ctx = LiteContext(kernels[0], "bench", kernel_level=True)
    holder = {}

    def setup():
        holder["lh"] = yield from ctx.lt_malloc(
            256 * KB, nodes=2, replicas=2
        )

    cluster.run_process(setup())
    lh = holder["lh"]
    payload = b"x" * 64

    def driver():
        for index in range(ops):
            offset = (index * 64) % (256 * KB)
            for attempt in range(8):
                try:
                    if index & 1:
                        yield from ctx.lt_read(lh, offset, 64)
                    else:
                        yield from ctx.lt_write(lh, offset, payload)
                    break
                except LiteError:
                    yield sim.timeout(300.0 * (attempt + 1))
            yield sim.timeout(10.0)
        # Settle past the restart so rejoin + resync are in the timing.
        if sim.now < 14000.0:
            yield sim.timeout(14000.0 - sim.now)
        recovery.stop()

    wall, sim_us, events = _timed_run(cluster, driver())
    unavail = recovery.metrics.histogram("recovery.unavailability_us")
    promo = recovery.metrics.histogram("recovery.promotion_us")
    return {
        "ops": ops,
        "wall_s": wall,
        "sim_us": sim_us,
        "events": events,
        "promotions": recovery.promotions,
        "rejoins": recovery.rejoins,
        "unavailability_p50_us": unavail.snapshot().percentile(50),
        "unavailability_p99_us": unavail.snapshot().percentile(99),
        "promotion_p99_us": promo.snapshot().percentile(99),
    }


def mix_churn(quick: bool) -> dict:
    """Elastic-churn control-plane mix: short-lived pooled sessions.

    Drives the INTERNALS §15 scenario end to end — seeded client
    arrivals, QP-pool lease grant/renew/expire (every 5th client
    abandons so the sweeper works too), lazy MR registration, and the
    occasional cold bring-up when arrivals overlap past the reserve.
    Times the *control plane*: the per-op payloads are small on
    purpose.  The extra keys (hit/miss split, median time-to-first-op
    per lease source) are informational; the compare gate only reads
    events/s.
    """
    from repro.workloads.churn import run_churn

    clients = 150 if quick else 600
    cluster, kernels = _lite_pair()
    sim = cluster.sim
    seq_before = sim._seq
    start = time.perf_counter()
    stats = run_churn(
        cluster, kernels, n_clients=clients, seed=0,
        ops_per_client=4, mean_gap_us=10.0, abandon_every=5,
    )
    wall = time.perf_counter() - start
    return {
        "ops": stats.ops_ok + stats.ops_failed,
        "wall_s": wall,
        "sim_us": sim.now,
        "events": sim._seq - seq_before,
        "hits": stats.hits,
        "misses": stats.misses,
        "ttfo_hit_med_us": stats.median_ttfo("hit"),
        "ttfo_cold_med_us": stats.median_ttfo("cold"),
        "expiries": stats.expiries,
    }


MIXES = {
    "small_ops": mix_small_ops,
    "large_msg": mix_large_msg,
    "rpc": mix_rpc,
    "cancel_storm": mix_cancel_storm,
    "crash_recovery": mix_crash_recovery,
    "churn": mix_churn,
}


def trace_overhead(quick: bool, repeats: int = 5) -> dict:
    """Cost of the observability layer on the small-ops mix.

    Three variants of the same run: ``baseline`` (no tracer, the normal
    fast path), ``disabled`` (install_tracer under a flipped kill
    switch — must be a no-op), and ``traced`` (full span recording).
    Wall times are min-of-N with the variants interleaved; simulated
    time must be bit-identical across all three (tracing never
    schedules events), and the disabled variant must stay within 5% of
    baseline wall clock.  Traced overhead is reported, not asserted.
    """
    from repro.obs import install_tracer, set_enabled

    ops = 2_000 if quick else 12_000

    def one_run(mode: str):
        cluster, kernels = _lite_pair()
        ctx = LiteContext(kernels[0], "bench", kernel_level=True)
        holder = {}

        def setup():
            holder["lh"] = yield from ctx.lt_malloc(1 * MB, nodes=2)

        cluster.run_process(setup())
        lh = holder["lh"]
        payload = b"x" * 64
        if mode == "disabled":
            set_enabled(False)
            try:
                assert install_tracer(cluster) is None
            finally:
                set_enabled(True)
        elif mode == "traced":
            install_tracer(cluster)

        def driver():
            for index in range(ops):
                if index & 1:
                    yield from ctx.lt_read(lh, 0, 64)
                else:
                    yield from ctx.lt_write(lh, 0, payload)

        wall, sim_us, _events = _timed_run(cluster, driver())
        return wall, sim_us

    modes = ("baseline", "disabled", "traced")
    walls = {mode: [] for mode in modes}
    sims = {}
    for _ in range(repeats):
        for mode in modes:
            wall, sim_us = one_run(mode)
            walls[mode].append(wall)
            sims.setdefault(mode, sim_us)
            assert sim_us == sims[mode], f"{mode} run not deterministic"

    assert sims["disabled"] == sims["baseline"], \
        "disabled tracer perturbed simulated time"
    assert sims["traced"] == sims["baseline"], \
        "tracing perturbed simulated time"

    best = {mode: min(walls[mode]) for mode in modes}
    off_ratio = best["disabled"] / best["baseline"]
    on_ratio = best["traced"] / best["baseline"]
    print(f"  trace-overhead ({ops} ops, min of {repeats}):")
    print(f"    baseline  {best['baseline']:.3f} s")
    print(f"    disabled  {best['disabled']:.3f} s  ({off_ratio:.3f}x)")
    print(f"    traced    {best['traced']:.3f} s  ({on_ratio:.3f}x)")
    print(f"    sim time identical across variants: {sims['baseline']:.3f} us")
    assert off_ratio < 1.05, \
        f"tracing-off overhead {off_ratio:.3f}x exceeds the 5% budget"
    return {
        "ops": ops,
        "wall_s": best,
        "off_ratio": off_ratio,
        "on_ratio": on_ratio,
        "sim_us": sims["baseline"],
    }


def _sweep_point(ops: int) -> dict:
    """One figure-sweep point: a self-contained RPC sim, fully
    deterministic output (simulated time + event count, no wall clock).
    Module-level so the parallel runner can pickle it."""
    cluster, kernels = _lite_pair()
    client = LiteContext(kernels[0], "cli")
    server = LiteContext(kernels[1], "srv")
    cluster.sim.process(rpc_server_loop(server, 1, lambda data: data))
    payload = b"s" * 256

    def driver():
        yield cluster.sim.timeout(5)
        for _ in range(ops):
            yield from client.lt_rpc(2, 1, payload, max_reply=1024)

    cluster.run_process(driver())
    return {"ops": ops, "sim_us": cluster.sim.now, "events": cluster.sim._seq}


def sweep_timing(quick: bool, jobs: int) -> dict:
    """Serial vs parallel wall clock for a figure-style sweep.

    Byte-identity of the per-point results is asserted, not sampled:
    the parallel runner must be a pure wall-clock optimization.
    """
    from repro.sweep import run_sweep

    points = [120, 160, 200, 240] if quick else [400, 500, 600, 700, 800]
    start = time.perf_counter()
    serial = run_sweep(_sweep_point, points, jobs=1)
    serial_wall = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_sweep(_sweep_point, points, jobs=jobs)
    parallel_wall = time.perf_counter() - start
    identical = json.dumps(serial, sort_keys=True) == \
        json.dumps(parallel, sort_keys=True)
    assert identical, "parallel sweep diverged from serial results"
    speedup = serial_wall / parallel_wall
    print(f"  sweep ({len(points)} points): serial {serial_wall:.3f} s, "
          f"--jobs {jobs} {parallel_wall:.3f} s ({speedup:.2f}x), "
          f"results byte-identical")
    return {
        "points": points,
        "jobs": jobs,
        "host_cpus": os.cpu_count(),
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "speedup": speedup,
        "identical": identical,
    }


def compare_gate(results: dict, reference_path: str,
                 budget: float = 0.20, rss_budget: float = 0.25) -> int:
    """Regression gate: events/s must stay within ``budget`` of the
    reference entry for every shared mix, and ``peak_rss_kb`` must not
    grow more than ``rss_budget``.  Returns a shell exit code.

    Quick runs compare against a quick reference (``current_quick``):
    op counts differ by ~5x between modes, so fixed setup costs make
    cross-mode events/s incomparable.  A failing mix prints the
    events/s spread it measured across the gate passes so a flaky host
    (spread near the budget) is distinguishable from a real regression
    (spread small, ratio bad) straight from the CI log.
    """
    try:
        with open(reference_path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"  compare: cannot read {reference_path}: {exc}")
        return 1
    key = "current_quick" if results.get("quick") else "current"
    reference = doc.get(key) or doc.get("current") or {}
    if reference.get("quick", False) != results.get("quick", False):
        print(f"  compare: warning — reference '{key}' mode differs "
              f"from this run; ratios may be skewed")
    failed = False
    for name in MIXES:
        ref = reference.get(name)
        cur = results.get(name)
        if not ref or not cur or "events_per_s" not in ref:
            print(f"  compare[{name}]: no reference, skipped")
            continue
        ratio = cur["events_per_s"] / ref["events_per_s"]
        verdict = "ok" if ratio >= 1.0 - budget else "REGRESSION"
        if verdict != "ok" and "events_per_s_best" in cur:
            # A real regression slows *every* pass; when the median
            # misses the budget but the best pass clears it, the run
            # was fighting a co-tenant burst, not a code change.
            best_ratio = cur["events_per_s_best"] / ref["events_per_s"]
            if best_ratio >= 1.0 - budget:
                verdict = "ok (median low, best pass clears — host noise)"
        spread = cur.get("events_per_s_spread")
        detail = "" if spread is None or verdict == "ok" else \
            f" [measured spread {spread:.2f} across gate passes]"
        print(f"  compare[{name}]: {ratio:.2f}x of reference "
              f"({cur['events_per_s']:,.0f} vs {ref['events_per_s']:,.0f} "
              f"events/s) {verdict}{detail}")
        failed |= not verdict.startswith("ok")
        # Per-mix RSS marks localize where a leak — e.g. an unbounded
        # plan memo — first moves the needle.  Informational only: the
        # marks are process-lifetime high-water values, so in the
        # multi-pass gate below they inherit earlier passes' peaks and
        # can't be compared 1:1 against a single-pass reference.  The
        # *global* peak_rss_kb gate underneath is the failure mechanism
        # — a real leak compounds across every gate pass and trips it.
        if ref.get("peak_rss_kb") and cur.get("peak_rss_kb"):
            mix_growth = cur["peak_rss_kb"] / ref["peak_rss_kb"] - 1.0
            if mix_growth > rss_budget:
                print(f"  compare[{name}.peak_rss_kb]: "
                      f"{cur['peak_rss_kb']:,} vs {ref['peak_rss_kb']:,} KB "
                      f"({mix_growth:+.1%}) — growth first visible here "
                      f"(info; the global peak_rss_kb gate decides)")
    ref_rss = reference.get("peak_rss_kb")
    cur_rss = results.get("peak_rss_kb")
    if ref_rss and cur_rss:
        growth = cur_rss / ref_rss - 1.0
        verdict = "ok" if growth <= rss_budget else "REGRESSION"
        print(f"  compare[peak_rss_kb]: {cur_rss:,} vs {ref_rss:,} KB "
              f"({growth:+.1%}) {verdict}")
        failed |= verdict != "ok"
    else:
        print("  compare[peak_rss_kb]: no reference, skipped")
    if failed:
        print(f"  compare: FAILED (events/s dropped more than "
              f"{budget:.0%}, or peak RSS grew more than "
              f"{rss_budget:.0%}, vs {reference_path})")
        return 1
    print("  compare: passed")
    return 0


def profile_mix(name: str, quick: bool) -> None:
    """cProfile one mix and print the top 25 functions by cumulative time.

    Ties are broken by (file, line, name) so two runs of the same build
    print rows in the same order — diffs between profiles are then real
    movement, not sort jitter.
    """
    import cProfile
    import pstats

    fn = MIXES[name]
    profiler = cProfile.Profile()
    profiler.enable()
    sample = fn(quick)
    profiler.disable()
    print(f"bench: profile mix={name} quick={quick} "
          f"wall={sample['wall_s']:.3f} s events={sample['events']}")
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative", "name")
    stats.print_stats(25)


def run_all(quick: bool) -> dict:
    results = {}
    for name, fn in MIXES.items():
        sample = fn(quick)
        sample["ops_per_s"] = sample["ops"] / sample["wall_s"]
        sample["events_per_s"] = sample["events"] / sample["wall_s"]
        # RSS high-water mark after each mix.  ru_maxrss is a process-
        # lifetime maximum, so the series is cumulative — but comparing
        # it mix-by-mix against the reference localizes where growth
        # first appears (e.g. the vectorized plan memo leaking under
        # large_msg moves that mix's mark, not only the end-of-run
        # total where it could hide behind later mixes' noise).
        sample["peak_rss_kb"] = _peak_rss_kb()
        results[name] = sample
        print(
            f"  {name:>10}: {sample['ops']:>6} ops in {sample['wall_s']:.3f} s "
            f"({sample['ops_per_s']:,.0f} ops/s, "
            f"{sample['events_per_s']:,.0f} events/s)"
        )
    results["peak_rss_kb"] = _peak_rss_kb()
    print(f"  peak RSS: {results['peak_rss_kb']:,} KB")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small op counts (CI smoke run)")
    parser.add_argument("--label", default="current",
                        help="key to record results under (default: current)")
    parser.add_argument("--out", default=os.path.join(_ROOT, "BENCH_pr10.json"),
                        help="JSON results file (merged, not overwritten)")
    parser.add_argument("--trace-overhead", action="store_true",
                        help="measure observability-layer overhead only "
                             "(asserts tracing-off stays within 5%%)")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="also time the figure-sweep runner serial vs "
                             "N workers (asserts identical results)")
    parser.add_argument("--compare", metavar="FILE",
                        help="regression gate: exit 1 if any mix's events/s "
                             "falls >20%% below FILE's 'current' entry or "
                             "peak RSS grows >25%% over it")
    parser.add_argument("--profile", metavar="MIX", choices=sorted(MIXES),
                        help="cProfile one mix and print the top 25 "
                             "functions by cumulative time, then exit")
    args = parser.parse_args(argv)

    if args.profile:
        profile_mix(args.profile, args.quick)
        return 0

    if args.trace_overhead:
        print(f"bench: trace-overhead quick={args.quick}")
        trace_overhead(args.quick)
        return 0

    print(f"bench: label={args.label} quick={args.quick}")
    results = run_all(args.quick)
    if args.compare:
        # Gate on the median of 5 passes so noisy samples can't fail CI
        # in either direction (best-of-N would let one lucky sample
        # mask a real regression; the median tolerates two bad passes).
        # The first pass above is treated as pure warmup and discarded:
        # interpreter/allocator cold start makes it ~25% slower than
        # steady state.  The recorded spread is *trimmed* — top and
        # bottom pass dropped before measuring — so it reports
        # steady-state repeatability; a single co-tenant burst
        # otherwise shows a misleading 25% spread for a perfectly
        # healthy build.  The spread is kept in the JSON so a flaky
        # host is visible in the artifact.
        passes = 5
        print(f"bench: first pass was warmup; {passes} gate passes "
              f"(median of {passes})")
        samples = [run_all(args.quick) for _ in range(passes)]
        for name in MIXES:
            runs = sorted(
                (sample[name] for sample in samples),
                key=lambda run: run["events_per_s"],
            )
            rates = [run["events_per_s"] for run in runs]
            median = rates[len(rates) // 2]
            chosen = dict(runs[len(runs) // 2])
            inner = rates[1:-1] if len(rates) >= 3 else rates
            chosen["events_per_s_spread"] = (inner[-1] - inner[0]) / median
            chosen["events_per_s_best"] = rates[-1]
            results[name] = chosen
    results["quick"] = args.quick
    if args.jobs > 1:
        results["sweep"] = sweep_timing(args.quick, args.jobs)

    doc = {}
    if os.path.exists(args.out):
        try:
            with open(args.out) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            doc = {}
    doc[args.label] = results
    base, cur = doc.get("baseline"), doc.get("current")
    if base and cur:
        speedups = {}
        for name in MIXES:
            if name in base and name in cur:
                speedups[name] = base[name]["wall_s"] / cur[name]["wall_s"]
        doc["speedup"] = speedups
        for name, factor in speedups.items():
            print(f"  speedup[{name}]: {factor:.2f}x")
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.compare:
        return compare_gate(results, args.compare)
    return 0


if __name__ == "__main__":
    sys.exit(main())
