"""Chaos harness: run LITE applications under randomized fault plans.

Usage:
    PYTHONPATH=src python tools/chaos.py [--seeds N] [--workload kv|mr|both]
                                         [--loss RATE] [--crashes N]
                                         [--duration US] [--verbose]

For each seed, builds a fresh cluster, derives a deterministic
:class:`repro.fault.FaultPlan` from the seed, installs it, runs the
workload (sharded KV store and/or LITE MapReduce) with timeout/retry
armed, and verifies the results against a fault-free oracle.  Any
wrong answer or hang is a bug in the failure semantics; a
``LiteError(ETIMEDOUT)`` is only acceptable when the plan leaves a
needed node permanently dead.

Every run prints its (workload seed, fault seed) pair, so failures
reproduce exactly.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.apps.kvstore import LiteKVClient, LiteKVServer  # noqa: E402
from repro.apps.mapreduce import LiteMR  # noqa: E402
from repro.apps.mapreduce.common import wordcount_map  # noqa: E402
from repro.cluster import Cluster  # noqa: E402
from repro.core import LiteContext, LiteError, lite_boot  # noqa: E402
from repro.core.lmr import ChunkInfo, MappedLmr  # noqa: E402
from repro.fault import FaultInjector, FaultPlan  # noqa: E402
from repro.recovery import RecoveryManager  # noqa: E402
from repro.workloads import generate_corpus  # noqa: E402


def run_kv(seed: int, plan: FaultPlan, n_ops: int, verbose: bool) -> str:
    """One KV run under ``plan``; returns a verdict string."""
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    injector = FaultInjector(cluster, plan, seed=seed).install()
    servers = [LiteKVServer(kernels[1], 0), LiteKVServer(kernels[2], 1)]

    def setup():
        for server in servers:
            yield from server.start()
        yield cluster.sim.timeout(1)

    cluster.run_process(setup())
    client = LiteKVClient(kernels[0], servers,
                          rpc_timeout_us=20000.0, rpc_retries=6)
    expected = {}

    def proc():
        for index in range(n_ops):
            key = b"key-%d" % (index % 13)
            value = b"value-%d-%d" % (seed, index)
            yield from client.put(key, value)
            expected[key] = value
            yield cluster.sim.timeout(50.0)
        for key, value in expected.items():
            got = yield from client.get(key)
            if got != value:
                raise AssertionError(f"KV mismatch on {key!r}: {got!r}")

    try:
        cluster.run_process(proc())
    except LiteError as exc:
        return f"degraded (LiteError errno={exc.errno}: {exc})"
    if verbose:
        print(f"    {injector!r}")
    return "ok"


def run_mr(seed: int, plan: FaultPlan, verbose: bool) -> str:
    """One MapReduce run under ``plan``; returns a verdict string."""
    corpus = generate_corpus(12, 120, vocab_size=200, seed=seed)
    truth = Counter()
    for document in corpus:
        truth.update(wordcount_map(document))
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    injector = FaultInjector(cluster, plan, seed=seed).install()
    engine = LiteMR(kernels, total_threads=4,
                    rpc_timeout_us=50000.0, rpc_retries=6)
    try:
        result = cluster.run_process(engine.run(corpus))
    except LiteError as exc:
        return f"degraded (LiteError errno={exc.errno}: {exc})"
    if result != truth:
        raise AssertionError(f"MapReduce produced wrong counts (seed {seed})")
    if verbose:
        print(f"    {injector!r}")
    return "ok"


# Lease timings for the recovery storm (us, simulated).
_LEASE_TTL = 1500.0
_RENEW = 400.0
_SWEEP = 300.0


def run_recovery(seed: int, n_ops: int, verbose: bool) -> str:
    """One seeded crash/rejoin storm against a ``replicas=2`` LMR.

    Asserts the two recovery invariants: every write acknowledged
    before (or between) the crashes is readable afterwards on the
    promoted primary *and* on every live backup copy (zero committed-
    write loss), and every unavailability window stays bounded by
    lease expiry + detection + promotion slack.
    """
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    sim = cluster.sim
    # Staggered storm: the primary's node and one backup node each
    # crash and restart; node 0 (client + master) is spared.
    crash1 = 3000.0 + (seed % 5) * 700.0
    restart1 = crash1 + 9000.0
    crash2 = restart1 + 4000.0
    restart2 = crash2 + 9000.0
    plan = (FaultPlan()
            .crash(1, crash1, restart_at_us=restart1)
            .crash(2, crash2, restart_at_us=restart2))
    injector = FaultInjector(cluster, plan, seed=seed).install()
    injector.arm_lite(kernels, keepalive_interval_us=500.0, miss_limit=2)
    recovery = RecoveryManager(
        cluster, kernels, lease_ttl_us=_LEASE_TTL,
        renew_interval_us=_RENEW, sweep_interval_us=_SWEEP,
    ).arm()
    ctx = LiteContext(kernels[0], "storm", kernel_level=True)
    committed = {}
    size = 64 * 1024

    def attempt(lh, offset, value):
        for attempt_no in range(10):
            try:
                yield from ctx.lt_write(lh, offset, value)
                return True
            except LiteError:
                # Retry through the unavailability window (the remap
                # lands via CHUNKS_UPDATE; client code never changes).
                yield sim.timeout(300.0 * (attempt_no + 1))
        return False

    def proc():
        # Primary on LITE 2 (the first crashed node); backups land on
        # LITE 1 and 3, so one copy survives every single-node crash.
        lh = yield from ctx.lt_malloc(size, name="storm", nodes=2, replicas=2)
        lmr_id = lh.mapping.lmr_id
        for index in range(n_ops):
            offset = (index * 64) % size
            value = bytes([index & 0xFF]) * 64
            acked = yield from attempt(lh, offset, value)
            if acked:
                committed[offset] = value
            yield sim.timeout(150.0)
        # Let the tail of the storm finish: second restart + rejoin +
        # resync all complete within a few lease periods.
        settle = restart2 + 8000.0
        if sim.now < settle:
            yield sim.timeout(settle - sim.now)
        # Zero committed-write loss on the (possibly promoted) primary.
        for offset, value in sorted(committed.items()):
            got = yield from ctx.lt_read(lh, offset, 64)
            if got != value:
                raise AssertionError(
                    f"lost committed write at offset {offset} "
                    f"(seed {seed}): {got!r} != {value!r}"
                )
        # ... and on every live backup copy (byte-identical replicas).
        entry = cluster.manager.replicas[lmr_id]
        master = kernels[entry["master"] - 1]
        for backup_id in sorted(entry["backups"]):
            backup_map = MappedLmr(
                0, "", entry["size"],
                [ChunkInfo.from_wire(w) for w in entry["backups"][backup_id]],
                0,
            )
            for offset, value in sorted(committed.items()):
                got = yield from master.onesided.read(backup_map, offset, 64)
                if got != value:
                    raise AssertionError(
                        f"backup {backup_id} diverged at offset {offset} "
                        f"(seed {seed})"
                    )
        recovery.stop()

    cluster.run_process(proc())
    if not committed:
        raise AssertionError(f"no write ever committed (seed {seed})")
    if recovery.promotions < 1:
        raise AssertionError(f"storm never exercised failover (seed {seed})")
    # Bounded unavailability: expiry is detected at most TTL + one renew
    # + one sweep after the last successful renewal, and promotion adds
    # only control-plane round trips.
    bound = _LEASE_TTL + _RENEW + _SWEEP + 1000.0
    for sample in recovery.unavailability_samples:
        if sample > bound:
            raise AssertionError(
                f"unavailability {sample:.1f} us exceeds bound {bound:.1f} us "
                f"(seed {seed})"
            )
    entry = cluster.manager.replicas[next(iter(cluster.manager.replicas))]
    if verbose:
        print(f"    {injector!r}")
        print(f"    {recovery!r}")
        print(f"    unavailability={recovery.unavailability_samples}")
    if entry["failed"] or len(entry["backups"]) != 2:
        raise AssertionError(
            f"replica set did not heal (seed {seed}): {entry['backups']}"
        )
    return (f"ok ({len(committed)} committed, "
            f"{recovery.promotions} promotion(s), "
            f"{recovery.resyncs} resync(s), max unavail "
            f"{max(recovery.unavailability_samples):.0f} us)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=5,
                        help="number of fault seeds to run (default 5)")
    parser.add_argument("--workload", choices=("kv", "mr", "both"),
                        default="both")
    parser.add_argument("--loss", type=float, default=0.01,
                        help="uniform packet-loss rate (default 0.01)")
    parser.add_argument("--crashes", type=int, default=1,
                        help="crashed-and-restarted nodes per plan (default 1)")
    parser.add_argument("--duration", type=float, default=5000.0,
                        help="fault-plan horizon in us (default 5000; crash "
                             "times land in the 10-50%% window of this, so "
                             "keep it shorter than the workload runtime)")
    parser.add_argument("--mr-duration", type=float, default=300.0,
                        help="fault-plan horizon for the MapReduce run, "
                             "which finishes in a few hundred us (default 300)")
    parser.add_argument("--kv-ops", type=int, default=40)
    parser.add_argument("--recovery", action="store_true",
                        help="run the crash/rejoin recovery storm instead of "
                             "the kv/mr workloads (replicated LMR, lease "
                             "failover, zero-committed-loss assertion)")
    parser.add_argument("--recovery-ops", type=int, default=200,
                        help="writes attempted per recovery storm")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    failures = 0
    if args.recovery:
        for seed in range(args.seeds):
            try:
                verdict = run_recovery(seed, args.recovery_ops, args.verbose)
            except (AssertionError, LiteError) as exc:
                verdict = f"FAILED: {exc}"
                failures += 1
            print(f"seed {seed:3d} recovery: {verdict}")
        if failures:
            print(f"{failures} recovery storm(s) FAILED")
            return 1
        print("all recovery storms passed")
        return 0
    for seed in range(args.seeds):
        for name, duration in (("kv", args.duration),
                               ("mr", args.mr_duration)):
            if args.workload not in (name, "both"):
                continue
            # Node 0 hosts the client/master; keep it out of the blast
            # radius so every run has a well-defined expected outcome.
            # A plan can only be installed once, so each run gets a
            # fresh (but seed-identical) one.
            plan = FaultPlan.random(
                seed, [0, 1, 2], duration, crashes=args.crashes,
                loss_rate=args.loss, restart=True, spare=0,
            )
            if args.verbose:
                print(f"seed {seed} {name} plan:\n{plan.describe()}")
            try:
                if name == "kv":
                    verdict = run_kv(seed, plan, args.kv_ops, args.verbose)
                else:
                    verdict = run_mr(seed, plan, args.verbose)
            except AssertionError as exc:
                verdict = f"FAILED: {exc}"
                failures += 1
            print(f"seed {seed:3d} {name}: {verdict}")
    if failures:
        print(f"{failures} chaos run(s) FAILED")
        return 1
    print("all chaos runs passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
