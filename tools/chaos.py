"""Chaos harness: run LITE applications under randomized fault plans.

Usage:
    PYTHONPATH=src python tools/chaos.py [--seeds N] [--workload kv|mr|both]
                                         [--loss RATE] [--crashes N]
                                         [--duration US] [--verbose]

For each seed, builds a fresh cluster, derives a deterministic
:class:`repro.fault.FaultPlan` from the seed, installs it, runs the
workload (sharded KV store and/or LITE MapReduce) with timeout/retry
armed, and verifies the results against a fault-free oracle.  Any
wrong answer or hang is a bug in the failure semantics; a
``LiteError(ETIMEDOUT)`` is only acceptable when the plan leaves a
needed node permanently dead.

Every run prints its (workload seed, fault seed) pair, so failures
reproduce exactly.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.apps.kvstore import LiteKVClient, LiteKVServer  # noqa: E402
from repro.apps.mapreduce import LiteMR  # noqa: E402
from repro.apps.mapreduce.common import wordcount_map  # noqa: E402
from repro.cluster import Cluster  # noqa: E402
from repro.core import LiteError, lite_boot  # noqa: E402
from repro.fault import FaultInjector, FaultPlan  # noqa: E402
from repro.workloads import generate_corpus  # noqa: E402


def run_kv(seed: int, plan: FaultPlan, n_ops: int, verbose: bool) -> str:
    """One KV run under ``plan``; returns a verdict string."""
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    injector = FaultInjector(cluster, plan, seed=seed).install()
    servers = [LiteKVServer(kernels[1], 0), LiteKVServer(kernels[2], 1)]

    def setup():
        for server in servers:
            yield from server.start()
        yield cluster.sim.timeout(1)

    cluster.run_process(setup())
    client = LiteKVClient(kernels[0], servers,
                          rpc_timeout_us=20000.0, rpc_retries=6)
    expected = {}

    def proc():
        for index in range(n_ops):
            key = b"key-%d" % (index % 13)
            value = b"value-%d-%d" % (seed, index)
            yield from client.put(key, value)
            expected[key] = value
            yield cluster.sim.timeout(50.0)
        for key, value in expected.items():
            got = yield from client.get(key)
            if got != value:
                raise AssertionError(f"KV mismatch on {key!r}: {got!r}")

    try:
        cluster.run_process(proc())
    except LiteError as exc:
        return f"degraded (LiteError errno={exc.errno}: {exc})"
    if verbose:
        print(f"    {injector!r}")
    return "ok"


def run_mr(seed: int, plan: FaultPlan, verbose: bool) -> str:
    """One MapReduce run under ``plan``; returns a verdict string."""
    corpus = generate_corpus(12, 120, vocab_size=200, seed=seed)
    truth = Counter()
    for document in corpus:
        truth.update(wordcount_map(document))
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    injector = FaultInjector(cluster, plan, seed=seed).install()
    engine = LiteMR(kernels, total_threads=4,
                    rpc_timeout_us=50000.0, rpc_retries=6)
    try:
        result = cluster.run_process(engine.run(corpus))
    except LiteError as exc:
        return f"degraded (LiteError errno={exc.errno}: {exc})"
    if result != truth:
        raise AssertionError(f"MapReduce produced wrong counts (seed {seed})")
    if verbose:
        print(f"    {injector!r}")
    return "ok"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=5,
                        help="number of fault seeds to run (default 5)")
    parser.add_argument("--workload", choices=("kv", "mr", "both"),
                        default="both")
    parser.add_argument("--loss", type=float, default=0.01,
                        help="uniform packet-loss rate (default 0.01)")
    parser.add_argument("--crashes", type=int, default=1,
                        help="crashed-and-restarted nodes per plan (default 1)")
    parser.add_argument("--duration", type=float, default=5000.0,
                        help="fault-plan horizon in us (default 5000; crash "
                             "times land in the 10-50%% window of this, so "
                             "keep it shorter than the workload runtime)")
    parser.add_argument("--mr-duration", type=float, default=300.0,
                        help="fault-plan horizon for the MapReduce run, "
                             "which finishes in a few hundred us (default 300)")
    parser.add_argument("--kv-ops", type=int, default=40)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    failures = 0
    for seed in range(args.seeds):
        for name, duration in (("kv", args.duration),
                               ("mr", args.mr_duration)):
            if args.workload not in (name, "both"):
                continue
            # Node 0 hosts the client/master; keep it out of the blast
            # radius so every run has a well-defined expected outcome.
            # A plan can only be installed once, so each run gets a
            # fresh (but seed-identical) one.
            plan = FaultPlan.random(
                seed, [0, 1, 2], duration, crashes=args.crashes,
                loss_rate=args.loss, restart=True, spare=0,
            )
            if args.verbose:
                print(f"seed {seed} {name} plan:\n{plan.describe()}")
            try:
                if name == "kv":
                    verdict = run_kv(seed, plan, args.kv_ops, args.verbose)
                else:
                    verdict = run_mr(seed, plan, args.verbose)
            except AssertionError as exc:
                verdict = f"FAILED: {exc}"
                failures += 1
            print(f"seed {seed:3d} {name}: {verdict}")
    if failures:
        print(f"{failures} chaos run(s) FAILED")
        return 1
    print("all chaos runs passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
