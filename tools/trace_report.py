"""Latency-breakdown reports from span traces (§5.2 of the paper).

Usage:
    # Reproduce the paper's §5.2 breakdown for a 64B one-sided LT_write
    # from spans alone (no parameter arithmetic):
    PYTHONPATH=src python tools/trace_report.py --demo write64

    # Report over a previously exported JSONL trace:
    PYTHONPATH=src python tools/trace_report.py trace.jsonl [--op op.lt_write]

    # Export the demo trace for Perfetto / diffing:
    PYTHONPATH=src python tools/trace_report.py --demo write64 \
        --jsonl /tmp/t.jsonl --chrome /tmp/t.json --tree

Demos: ``write64`` (one-sided 64B LT_write), ``read64`` (64B LT_read,
cold then warm), ``rpc64`` (one 64B RPC round-trip).  Each demo runs a
few untraced warm-up ops first so the traced op sees steady-state
caches, then traces exactly the ops being reported.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cluster import Cluster  # noqa: E402
from repro.core import LiteContext, lite_boot  # noqa: E402
from repro.determinism import reset_global_counters  # noqa: E402
from repro.obs import (  # noqa: E402
    ReplayTrace,
    aggregate_breakdown,
    format_breakdown,
    install_tracer,
    write_chrome_trace,
    write_jsonl,
)

DEMOS = ("write64", "read64", "rpc64")


def _demo_cluster():
    reset_global_counters()
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    contexts = [LiteContext(k, f"trace{k.lite_id}") for k in kernels]
    return cluster, contexts


def run_demo(name: str):
    """Run one canonical traced scenario; returns (tracer, default op)."""
    cluster, (ctx_a, ctx_b) = _demo_cluster()
    state = {}

    def setup():
        state["lh"] = yield from ctx_a.lt_malloc(1 << 20, "demo", nodes=2)
        for _ in range(5):  # untraced warm-up: steady-state caches
            yield from ctx_a.lt_write(state["lh"], 0, b"w" * 64)
            yield from ctx_a.lt_read(state["lh"], 0, 64)

    cluster.run_process(setup())

    if name == "write64":
        tracer = install_tracer(cluster)

        def driver():
            yield from ctx_a.lt_write(state["lh"], 0, b"x" * 64)

        cluster.run_process(driver())
        return tracer, "op.lt_write"

    if name == "read64":
        tracer = install_tracer(cluster)

        def driver():
            yield from ctx_a.lt_read(state["lh"], 0, 64)

        cluster.run_process(driver())
        return tracer, "op.lt_read"

    if name == "rpc64":
        def server():
            call = yield from ctx_b.lt_recv_rpc(7)
            yield from ctx_b.lt_reply_rpc(call, call.input)

        def client():
            yield from ctx_a.lt_rpc(2, 7, b"r" * 64)

        def driver():
            procs = [cluster.sim.process(server()),
                     cluster.sim.process(client())]
            yield cluster.sim.all_of(procs)

        ctx_b.lt_reg_rpc(7)
        tracer = install_tracer(cluster)
        cluster.run_process(driver())
        return tracer, "op.lt_rpc"

    raise SystemExit(f"unknown demo {name!r} (choose from {DEMOS})")


def print_tree(trace) -> None:
    """Indented span forest, in open order."""
    index = trace.children_index()

    def walk(span, depth):
        dur = "?" if span.end is None else f"{span.end - span.start:.3f}"
        extra = f" {span.nbytes}B" if span.nbytes else ""
        print(f"  {'  ' * depth}{span.name} [{dur} us]"
              f" node={span.node} {span.outcome or 'unfinished'}{extra}")
        for child in index.get(span.sid, ()):
            walk(child, depth + 1)

    for root in index.get(None, ()):
        walk(root, 0)


def report(trace, op_name) -> None:
    ops = sorted({s.name for s in trace.op_roots() if s.parent is None})
    targets = [op_name] if op_name else ops
    if not targets:
        print("no op.* spans in trace")
        return
    for target in targets:
        breakdown, n = aggregate_breakdown(trace, target)
        if not n:
            print(f"no finished {target} ops in trace")
            continue
        print(format_breakdown(breakdown, n, title=f"{target} breakdown"))
        print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl_in", nargs="?", help="JSONL trace to report on")
    parser.add_argument("--demo", choices=DEMOS,
                        help="run a canonical traced scenario instead")
    parser.add_argument("--op", help="restrict to one op type, e.g. op.lt_write")
    parser.add_argument("--jsonl", help="also export the demo trace as JSONL")
    parser.add_argument("--chrome",
                        help="also export the demo trace as Chrome trace_event")
    parser.add_argument("--tree", action="store_true",
                        help="print the span forest before the breakdown")
    args = parser.parse_args(argv)

    if args.demo:
        tracer, default_op = run_demo(args.demo)
        if tracer is None:
            print("tracing kill switch is off; nothing to report")
            return 1
        if args.jsonl:
            write_jsonl(tracer, args.jsonl)
            print(f"wrote {len(tracer.spans)} spans to {args.jsonl}")
        if args.chrome:
            write_chrome_trace(tracer, args.chrome)
            print(f"wrote Chrome trace to {args.chrome}")
        trace = tracer
        op_name = args.op or default_op
    elif args.jsonl_in:
        trace = ReplayTrace.from_jsonl(args.jsonl_in)
        op_name = args.op
    else:
        parser.error("need a JSONL trace path or --demo")
        return 2

    if args.tree:
        print_tree(trace)
        print()
    report(trace, op_name)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
