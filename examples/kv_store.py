#!/usr/bin/env python
"""A sharded key-value store on LITE under the Facebook workload.

The design the paper's intro motivates: PUTs are RPCs to the shard
server; GETs become a *single one-sided read* once the client knows a
value's location — the server CPU never sees them.  Runs a Zipfian
GET-heavy workload (Facebook ETC value sizes) over two shards and
reports the one-sided hit rate and latencies.

Run:  python examples/kv_store.py
"""

import random

from repro.apps.kvstore import LiteKVClient, LiteKVServer
from repro.cluster import Cluster
from repro.core import lite_boot
from repro.workloads import FacebookKV, ZipfSampler

N_KEYS = 200
N_OPS = 2000
GET_RATIO = 0.95  # ETC pools are read-dominated


def main():
    cluster = Cluster(4)
    kernels = lite_boot(cluster)
    sim = cluster.sim
    servers = [LiteKVServer(kernels[2], 0), LiteKVServer(kernels[3], 1)]

    def setup():
        for server in servers:
            yield from server.start()
        yield sim.timeout(1)

    cluster.run_process(setup())
    client = LiteKVClient(kernels[0], servers)

    workload = FacebookKV(seed=4, max_value=2048)
    sampler = ZipfSampler(N_KEYS, s=0.99, rng=random.Random(4))
    rng = random.Random(5)
    keys = [f"user:{i}:profile".encode() for i in range(N_KEYS)]
    values = {}
    get_latencies = []
    put_latencies = []

    def run():
        for key in keys:  # preload
            values[key] = bytes([rng.randrange(256)]) * workload.value_size()
            yield from client.put(key, values[key])
        for _ in range(N_OPS):
            key = keys[sampler.sample()]
            start = sim.now
            if rng.random() < GET_RATIO:
                got = yield from client.get(key)
                assert got == values[key], "stale or corrupt read!"
                get_latencies.append(sim.now - start)
            else:
                values[key] = bytes([rng.randrange(256)]) * workload.value_size()
                yield from client.put(key, values[key])
                put_latencies.append(sim.now - start)

    cluster.run_process(run())

    def pct(samples, p):
        return sorted(samples)[int(len(samples) * p)]

    total_gets = len(get_latencies)
    print(f"{N_OPS} ops over {N_KEYS} Zipfian keys, 2 shards "
          f"({len(get_latencies)} GETs / {len(put_latencies)} PUTs)")
    print(f"  one-sided GETs: {client.onesided_gets}/{total_gets} "
          f"({100 * client.onesided_gets / total_gets:.1f}%), "
          f"lookup RPCs: {client.rpc_lookups}, "
          f"validation retries: {client.validation_retries}")
    print(f"  GET latency p50/p99: {pct(get_latencies, .5):.2f} / "
          f"{pct(get_latencies, .99):.2f} us")
    print(f"  PUT latency p50/p99: {pct(put_latencies, .5):.2f} / "
          f"{pct(put_latencies, .99):.2f} us")
    served = sum(server.puts for server in servers)
    print(f"  server-side work: {served} PUT RPCs, "
          f"{sum(s.lookups for s in servers)} lookups — "
          f"GETs never touched a server CPU")


if __name__ == "__main__":
    main()
