#!/usr/bin/env python
"""Distributed WordCount: Phoenix vs LITE-MR vs Hadoop-sim (§8.2).

Generates a Zipfian corpus, runs all three MapReduce systems with the
same 8 total threads, verifies identical word counts, and prints the
Figure-18-style phase breakdown.

Run:  python examples/wordcount.py
"""

from collections import Counter

from repro.apps.mapreduce import HadoopMR, LiteMR, PhoenixMR
from repro.apps.mapreduce.common import wordcount_map
from repro.cluster import Cluster
from repro.core import lite_boot
from repro.workloads import generate_corpus

N_WORKERS = 4
TOTAL_THREADS = 8


def main():
    corpus = generate_corpus(200, 400, vocab_size=1500, seed=33)
    corpus_bytes = sum(len(doc) for doc in corpus)
    truth = Counter()
    for document in corpus:
        truth.update(wordcount_map(document))
    print(f"corpus: {len(corpus)} documents, {corpus_bytes / 1024:.0f} KB, "
          f"{len(truth)} distinct words")

    runs = {}

    cluster = Cluster(1)
    phoenix = PhoenixMR(cluster[0], n_threads=TOTAL_THREADS)
    assert cluster.run_process(phoenix.run(corpus)) == truth
    runs["Phoenix (1 node, shared memory)"] = phoenix.phase_times

    cluster = Cluster(N_WORKERS + 1)
    kernels = lite_boot(cluster)
    lite_mr = LiteMR(kernels, total_threads=TOTAL_THREADS)
    assert cluster.run_process(lite_mr.run(corpus)) == truth
    runs[f"LITE-MR ({N_WORKERS} workers)"] = lite_mr.phase_times

    cluster = Cluster(N_WORKERS + 1)
    hadoop = HadoopMR(cluster.nodes, total_threads=TOTAL_THREADS)
    assert cluster.run_process(hadoop.run(corpus)) == truth
    runs[f"Hadoop-sim ({N_WORKERS} workers, IPoIB)"] = hadoop.phase_times

    print(f"\nWordCount with {TOTAL_THREADS} total threads "
          f"(all results identical):")
    print(f"  {'system':<36s} {'map':>8s} {'reduce':>8s} "
          f"{'merge':>8s} {'total':>8s}   (ms)")
    for name, phases in runs.items():
        print(
            f"  {name:<36s} {phases['map'] / 1000:8.2f} "
            f"{phases['reduce'] / 1000:8.2f} {phases['merge'] / 1000:8.2f} "
            f"{phases['total'] / 1000:8.2f}"
        )
    lite_total = runs[f"LITE-MR ({N_WORKERS} workers)"]["total"]
    hadoop_total = runs[f"Hadoop-sim ({N_WORKERS} workers, IPoIB)"]["total"]
    print(f"\nLITE-MR beats Hadoop by {hadoop_total / lite_total:.1f}x "
          f"(paper: 4.3-5.3x)")

    top = truth.most_common(3)
    print(f"most common words: {[(w.decode(), c) for w, c in top]}")


if __name__ == "__main__":
    main()
