#!/usr/bin/env python
"""PageRank on LITE-Graph vs the PowerGraph/Grappa baselines (§8.3).

Generates a Twitter-shaped power-law graph, runs the same GAS PageRank
on four engines (LITE-Graph, LITE-Graph-DSM, Grappa-sim,
PowerGraph-sim over IPoIB), verifies they produce identical ranks, and
prints the Figure-19-style comparison.

Run:  python examples/pagerank.py
"""

from repro.apps.dsm import LiteGraphDsm
from repro.apps.graph import (
    GrappaSim,
    LiteGraph,
    PartitionedGraph,
    PowerGraphSim,
    pagerank_reference,
)
from repro.cluster import Cluster
from repro.core import lite_boot
from repro.workloads import degree_histogram, powerlaw_graph

N_VERTICES = 1500
N_NODES = 4
ITERATIONS = 6


def main():
    edges = powerlaw_graph(N_VERTICES, 8, seed=42)
    graph = PartitionedGraph(N_VERTICES, edges, N_NODES)
    histogram = degree_histogram(edges)
    max_degree = max(
        degree for degree, _count in
        ((d, c) for d, c in histogram.items())
    )
    print(f"graph: {N_VERTICES} vertices, {len(edges)} edges, "
          f"power-law in-degree (hub count appears {max_degree}x mean)")

    reference = pagerank_reference(graph, ITERATIONS)
    top = sorted(range(N_VERTICES), key=lambda v: -reference[v])[:5]
    print(f"top-5 vertices by rank: {top}")

    results = {}

    cluster = Cluster(N_NODES)
    engine = LiteGraph(lite_boot(cluster), graph, threads_per_node=4)
    ranks = cluster.run_process(engine.run(ITERATIONS))
    assert max(abs(a - b) for a, b in zip(ranks, reference)) < 1e-12
    results["LITE-Graph"] = engine.elapsed_us

    cluster = Cluster(N_NODES)
    engine = LiteGraphDsm(lite_boot(cluster), graph, threads_per_node=4)
    ranks = cluster.run_process(engine.run(ITERATIONS))
    assert max(abs(a - b) for a, b in zip(ranks, reference)) < 1e-12
    results["LITE-Graph-DSM"] = engine.elapsed_us

    cluster = Cluster(N_NODES)
    engine = GrappaSim(cluster.nodes, graph, threads_per_node=4)
    ranks = cluster.run_process(engine.run(ITERATIONS))
    assert max(abs(a - b) for a, b in zip(ranks, reference)) < 1e-12
    results["Grappa (aggregating IB stack)"] = engine.elapsed_us

    cluster = Cluster(N_NODES)
    engine = PowerGraphSim(cluster.nodes, graph, threads_per_node=4)
    ranks = cluster.run_process(engine.run(ITERATIONS))
    assert max(abs(a - b) for a, b in zip(ranks, reference)) < 1e-12
    results["PowerGraph (IPoIB)"] = engine.elapsed_us

    print(f"\nPageRank x{ITERATIONS} on {N_NODES} nodes, 4 threads each "
          f"(identical ranks from all engines):")
    baseline = results["LITE-Graph"]
    for name, elapsed in sorted(results.items(), key=lambda kv: kv[1]):
        print(f"  {name:<32s} {elapsed / 1000.0:7.2f} ms "
              f"({elapsed / baseline:4.1f}x LITE-Graph)")


if __name__ == "__main__":
    main()
