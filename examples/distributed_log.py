#!/usr/bin/env python
"""Distributed atomic logging with LITE-Log (paper §8.1).

Four nodes: the log lives on node 4 (which runs *no* log code at all —
everything is one-sided), writers on nodes 1-3 commit transactions
concurrently, and a cleaner reclaims space in the background.  Ends by
verifying every committed transaction is intact and reporting the
commit rate.

Run:  python examples/distributed_log.py
"""

from repro.apps.litelog import LiteLog, LogCleaner, LogEntry, LogWriter
from repro.cluster import Cluster
from repro.core import LiteContext, lite_boot

N_WRITERS = 3
COMMITS_EACH = 200


def main():
    cluster = Cluster(4)
    kernels = lite_boot(cluster)
    sim = cluster.sim
    committed = []  # (offset, nbytes, payloads)

    def writer_proc(node_index: int):
        ctx = LiteContext(kernels[node_index], f"writer{node_index}")
        log = yield from LiteLog.open(ctx, "applog")
        writer = LogWriter(log, writer_id=node_index)
        for index in range(COMMITS_EACH):
            payloads = [
                f"node{node_index} txn{index} entry{e}".encode()
                for e in range(1 + index % 3)
            ]
            for payload in payloads:
                writer.append(payload)
            before_tail = sum(len(LogEntry(p).encoded()) for p in payloads) + 12
            offset = yield from writer.commit()
            committed.append((offset, before_tail, payloads, writer))

    def cleaner_proc():
        ctx = LiteContext(kernels[0], "cleaner")
        log = yield from LiteLog.open(ctx, "applog")
        cleaner = LogCleaner(log, batch_bytes=8 * 1024)
        yield from cleaner.run(interval_us=500.0, rounds=10)
        print(f"cleaner reclaimed {cleaner.cleaned_bytes} bytes in background")

    def driver():
        creator = LiteContext(kernels[0], "creator")
        log = yield from LiteLog.create(creator, "applog", 4 << 20, home_node=4)
        print(f"created {log.size >> 20} MB log on node 4 "
              f"(home node runs no log code)")
        start = sim.now
        procs = [sim.process(writer_proc(i)) for i in range(N_WRITERS)]
        sim.process(cleaner_proc())
        yield sim.all_of(procs)
        elapsed = sim.now - start
        total = N_WRITERS * COMMITS_EACH
        print(f"{total} transactions committed from {N_WRITERS} nodes "
              f"in {elapsed / 1000:.2f} ms "
              f"({total / (elapsed / 1e6) / 1000:.0f} K commits/s)")
        # Verify a sample of committed transactions byte-for-byte.
        checked = 0
        for offset, nbytes, payloads, writer in committed[:: len(committed) // 20]:
            blob = yield from writer.read_transaction(offset, nbytes)
            cursor = 0
            for payload in payloads:
                entry, cursor = LogEntry.decode(blob, cursor)
                assert entry.payload == payload, "log corruption!"
            checked += 1
        count = yield from log.committed_count()
        print(f"verified {checked} sampled transactions intact; "
              f"commit counter = {count}")
        assert count == total

    cluster.run_process(driver())


if __name__ == "__main__":
    main()
