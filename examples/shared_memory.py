#!/usr/bin/env python
"""Release-consistency shared memory with LITE-DSM (§8.4).

A producer/consumer pipeline over a page-based MRSW DSM space: node 1
produces batches under acquire/release, nodes 2-4 consume them through
their page caches, and invalidations keep every reader coherent at
synchronization points.

Run:  python examples/shared_memory.py
"""

import struct

from repro.apps.dsm import LiteDsm, PAGE_SIZE
from repro.cluster import Cluster
from repro.core import lite_boot

N_NODES = 4
BATCHES = 8
BATCH_BYTES = 3 * PAGE_SIZE
# Layout: [seq:8][payload...] at offset 0; checksum word at 64 KB.
SEQ_ADDR = 0
DATA_ADDR = 64
CHECK_ADDR = 64 * 1024


def main():
    cluster = Cluster(N_NODES)
    kernels = lite_boot(cluster)
    sim = cluster.sim
    dsm = LiteDsm(kernels, "pipeline", 128 * PAGE_SIZE)
    cluster.run_process(dsm.build())
    print(f"DSM space: {dsm.n_pages} pages over {N_NODES} nodes "
          f"(round-robin homes)")

    stats = {"produced": 0, "consumed": 0, "stale_rejected": 0}

    def producer():
        node = dsm.nodes[0]
        for seq in range(1, BATCHES + 1):
            payload = bytes([seq]) * BATCH_BYTES
            checksum = sum(payload) % (1 << 32)
            yield from node.acquire(SEQ_ADDR, DATA_ADDR + BATCH_BYTES)
            yield from node.acquire(CHECK_ADDR, 8)
            yield from node.write(DATA_ADDR, payload)
            yield from node.write(CHECK_ADDR, struct.pack("<Q", checksum))
            yield from node.write(SEQ_ADDR, struct.pack("<Q", seq))
            yield from node.release()
            stats["produced"] += 1
            yield from node.barrier(f"batch{seq}")
            yield from node.barrier(f"done{seq}")

    def consumer(index: int):
        node = dsm.nodes[index]
        seen = 0
        for seq in range(1, BATCHES + 1):
            yield from node.barrier(f"batch{seq}")
            header = yield from node.read(SEQ_ADDR, 8)
            got_seq = struct.unpack("<Q", header)[0]
            payload = yield from node.read(DATA_ADDR, BATCH_BYTES)
            check = yield from node.read(CHECK_ADDR, 8)
            checksum = struct.unpack("<Q", check)[0]
            assert got_seq == seq, f"stale sequence {got_seq} != {seq}"
            assert sum(payload) % (1 << 32) == checksum, "torn batch!"
            seen += 1
            stats["consumed"] += 1
            yield from node.barrier(f"done{seq}")
        print(f"  consumer on node {index + 1}: {seen} coherent batches, "
              f"{node.invalidations} invalidations, {node.faults} faults")

    def driver():
        start = sim.now
        procs = [sim.process(producer())]
        procs += [sim.process(consumer(i)) for i in range(1, N_NODES)]
        yield sim.all_of(procs)
        elapsed = sim.now - start
        print(f"pipeline moved {BATCHES} x {BATCH_BYTES // 1024} KB batches "
              f"to {N_NODES - 1} consumers in {elapsed / 1000:.2f} ms")

    cluster.run_process(driver())
    assert stats["produced"] == BATCHES
    assert stats["consumed"] == BATCHES * (N_NODES - 1)
    print("all batches observed coherently under release consistency")


if __name__ == "__main__":
    main()
