#!/usr/bin/env python
"""Performance isolation with LITE QoS (paper §6.2).

A latency-sensitive service (small LT_RPCs) shares the cluster with a
bulk-transfer batch job.  We run the same mix under the three QoS
modes and show what happens to the service's p99 latency and the batch
job's bandwidth — the SW-Pri policy protects the service while keeping
the pipes full.

Run:  python examples/qos_isolation.py
"""

from repro.cluster import Cluster
from repro.core import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    LiteContext,
    Permission,
    lite_boot,
    rpc_server_loop,
)
from repro.hw import SimParams

RUNTIME_US = 5_000.0
PARAMS = SimParams(lite_qp_factor_k=4, lite_qp_window=4)


def run_mode(mode):
    cluster = Cluster(2, params=PARAMS)
    kernels = lite_boot(cluster, qos_mode=mode)
    sim = cluster.sim

    # The latency-sensitive service: 64 B RPCs at high priority.
    server = LiteContext(kernels[1], "svc", priority=PRIORITY_HIGH)
    sim.process(rpc_server_loop(server, 1, lambda d: b"r" * 64))
    latencies = []
    bulk_bytes = [0]
    holder = {}

    def setup():
        creator = LiteContext(kernels[0], "bulk-creator")
        holder["name"] = "bulk-target"
        yield from creator.lt_malloc(
            1 << 20, name="bulk-target", nodes=2,
            default_perm=Permission.READ | Permission.WRITE,
        )
        yield sim.timeout(5)

    cluster.run_process(setup())
    stop = []

    def service_client():
        ctx = LiteContext(kernels[0], "svc-client", priority=PRIORITY_HIGH)
        while not stop:
            start = sim.now
            yield from ctx.lt_rpc(2, 1, b"q" * 64, max_reply=128)
            latencies.append(sim.now - start)
            yield sim.timeout(20)

    def bulk_thread(index):
        ctx = LiteContext(kernels[0], f"bulk{index}", priority=PRIORITY_LOW)
        lh = yield from ctx.lt_map("bulk-target")
        payload = b"b" * 8192
        while not stop:
            yield from ctx.lt_write(lh, 0, payload)
            bulk_bytes[0] += len(payload)

    def driver():
        procs = [sim.process(service_client()) for _ in range(4)]
        procs += [sim.process(bulk_thread(i)) for i in range(16)]
        yield sim.timeout(RUNTIME_US)
        stop.append(True)
        yield sim.all_of(procs)

    cluster.run_process(driver())
    latencies.sort()
    return {
        "p50": latencies[len(latencies) // 2],
        "p99": latencies[int(len(latencies) * 0.99)],
        "rpcs": len(latencies),
        "bulk_gbps": bulk_bytes[0] / RUNTIME_US / 1000.0,
    }


def main():
    print(f"{'mode':<10s} {'svc p50':>8s} {'svc p99':>8s} "
          f"{'svc rpcs':>9s} {'bulk GB/s':>10s}")
    results = {}
    for mode in (None, "hw-sep", "sw-pri"):
        label = mode or "no-qos"
        out = results[label] = run_mode(mode)
        print(f"{label:<10s} {out['p50']:8.2f} {out['p99']:8.2f} "
              f"{out['rpcs']:9d} {out['bulk_gbps']:10.2f}")
    improvement = results["no-qos"]["p99"] / results["sw-pri"]["p99"]
    print(f"\nSW-Pri cuts the service's p99 latency by "
          f"{improvement:.1f}x while the batch job keeps "
          f"{results['sw-pri']['bulk_gbps']:.1f} GB/s")


if __name__ == "__main__":
    main()
