#!/usr/bin/env python
"""Quickstart: boot a LITE cluster and use the Table-1 API.

Walks through the paper's core abstractions on a simulated 3-node
testbed: LMR allocation and naming, one-sided reads/writes, permission
grants, RPC, messaging, and synchronization — printing the simulated
latency of each step.

Run:  python examples/quickstart.py
"""

from repro.cluster import Cluster
from repro.core import (
    LiteContext,
    Permission,
    lite_boot,
    rpc_server_loop,
)


def main():
    # -- boot: 3 nodes, LITE installed and fully meshed ---------------
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    sim = cluster.sim
    print(f"booted LITE on {len(kernels)} nodes "
          f"(K x N = {kernels[0].total_qps()} shared QPs per node)")

    alice = LiteContext(kernels[0], "alice")
    bob = LiteContext(kernels[1], "bob")

    def timed(label, gen):
        start = sim.now
        value = yield from gen
        print(f"  {label:<42s} {sim.now - start:7.2f} us")
        return value

    def workload():
        # -- memory: LT_malloc / LT_write / LT_read --------------------
        print("\nmemory API (one-sided RDMA under the hood):")
        lh = yield from timed(
            "LT_malloc 64 KB on node 3",
            alice.lt_malloc(64 * 1024, name="shared-buffer", nodes=3),
        )
        yield from timed(
            "LT_write 4 KB (remote, one-sided)",
            alice.lt_write(lh, 0, b"hello from alice! " * 227),
        )
        data = yield from timed("LT_read 64 B", alice.lt_read(lh, 0, 64))
        assert data.startswith(b"hello from alice!")

        # -- protection: grants and per-process handles ----------------
        print("\nprotection (lh capabilities + master-controlled ACL):")
        try:
            yield from bob.lt_map("shared-buffer")
        except Exception as exc:
            print(f"  bob's map without a grant fails: {exc}")
        yield from alice.lt_grant("shared-buffer", "bob", Permission.READ)
        bob_lh = yield from timed(
            "LT_map after read grant", bob.lt_map("shared-buffer",
                                                  Permission.READ)
        )
        peek = yield from bob.lt_read(bob_lh, 0, 17)
        print(f"  bob reads through his own lh: {peek!r}")

        # -- RPC --------------------------------------------------------
        print("\nRPC (write-imm rings, shared polling thread):")
        server = LiteContext(kernels[2], "kv-server")
        store = {}

        def handler(request: bytes) -> bytes:
            op, _, rest = request.partition(b" ")
            if op == b"PUT":
                key, _, value = rest.partition(b"=")
                store[key] = value
                return b"OK"
            return store.get(rest, b"(nil)")

        sim.process(rpc_server_loop(server, 7, handler))
        yield sim.timeout(1)
        yield from timed(
            "LT_RPC PUT", alice.lt_rpc(3, 7, b"PUT color=green", max_reply=64)
        )
        value = yield from timed(
            "LT_RPC GET", alice.lt_rpc(3, 7, b"GET color", max_reply=64)
        )
        print(f"  kv-server replied: {value!r}")

        # -- synchronization --------------------------------------------
        print("\nsynchronization:")
        lock = yield from alice.lt_create_lock("demo-lock", owner_id=2)
        yield from timed("LT_lock (uncontended fetch-add)",
                         alice.lt_lock(lock))
        yield from timed("LT_unlock", alice.lt_unlock(lock))
        counter_offset = 32 * 1024  # a zeroed word in the shared LMR
        old = yield from timed(
            "LT_fetch-add", alice.lt_fetch_add(lh, counter_offset, 41)
        )
        now = yield from alice.lt_fetch_add(lh, counter_offset, 1)
        print(f"  counter went {old} -> {now}")

        # -- messaging ----------------------------------------------------
        print("\nmessaging:")

        def receiver():
            src, message = yield from bob.lt_recv_msg()
            print(f"  bob received from node {src}: {message!r}")

        sim.process(receiver())
        yield from alice.lt_send(2, b"one-way hello")
        yield sim.timeout(10)

        print(f"\nsimulated time elapsed: {sim.now:.1f} us")

    cluster.run_process(workload())


if __name__ == "__main__":
    main()
