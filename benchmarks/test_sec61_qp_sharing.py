"""§6.1: queue-pair counts — LITE's K×N sharing vs per-process schemes.

The paper's accounting, per node, for N nodes and T threads per node:

- native Verbs (no sharing):      2 × N × T     QPs
- FaRM (per-app sharing, q=4):    2 × N × T / q QPs
- LITE (kernel-wide sharing):     K × N         QPs (1 <= K <= 4)

Verified against the live LITE instances (actual created QPs) plus the
arithmetic table for the paper's example scales.
"""

import pytest

from .common import lite_pair, print_table


def run_sec61():
    rows = []
    n_threads = 8
    farm_q = 4
    for n_nodes in (2, 4, 8):
        cluster, kernels, _ = lite_pair(n_nodes=n_nodes)
        lite_actual = kernels[0].total_qps()
        k = cluster.params.lite_qp_factor_k
        rows.append(
            (
                n_nodes,
                2 * n_nodes * n_threads,
                2 * n_nodes * n_threads // farm_q,
                k * (n_nodes - 1),
                lite_actual,
            )
        )
    return rows


@pytest.mark.benchmark(group="sec61")
def test_sec61_qp_sharing(benchmark):
    rows = benchmark.pedantic(run_sec61, rounds=1, iterations=1)
    print_table(
        "Sec 6.1: QPs per node (N nodes, 8 threads, FaRM q=4, LITE K=2)",
        ["nodes", "Verbs 2NT", "FaRM 2NT/q", "LITE K(N-1) expect",
         "LITE actual"],
        rows,
    )
    for n_nodes, verbs, farm, lite_expect, lite_actual in rows:
        assert lite_actual == lite_expect
        assert lite_actual < farm < verbs
    # The LITE advantage grows with thread count, not node count.
    assert rows[-1][1] / rows[-1][4] > 8
