"""Figure 16: QoS timeline under the synthetic high/low-priority mix.

Scaled 1000:1 in time (ms of simulation per second of paper run):
20 low-priority threads run throughout (4 KB/8 KB reads and writes);
at t=2 ms, 20 high-priority threads join (4 KB ops); at t=12 ms high
threads pause and 8 of them resume at t=14 ms.  Sampled in 1 ms buckets.

Expected shape (paper):
- No QoS: high-priority gets only ~half the bandwidth while active.
- SW-Pri: high-priority near its no-contention rate AND best aggregate.
- HW-Sep: protects high-priority, but its reserved QPs idle when the
  high class is quiet, so aggregate bandwidth is the worst.
"""

import pytest

from repro.core import PRIORITY_HIGH, PRIORITY_LOW, LiteContext, Permission
from repro.hw import SimParams

from .common import lite_pair, print_table

RUNTIME_US = 20_000.0
BUCKET_US = 1_000.0
HIGH_START = 2_000.0
HIGH_PAUSE = 12_000.0
HIGH_RESUME = 14_000.0

QOS_PARAMS = SimParams(lite_qp_factor_k=4, lite_qp_window=4)


def run_mode(mode):
    cluster, kernels, _ = lite_pair(params=QOS_PARAMS)
    for kernel in kernels:
        kernel.qos.mode = mode
    sim = cluster.sim
    n_buckets = int(RUNTIME_US / BUCKET_US)
    high_bytes = [0.0] * n_buckets
    total_bytes = [0.0] * n_buckets
    holder = {}

    def setup():
        creator = LiteContext(kernels[0], "creator")
        holder["lh"] = yield from creator.lt_malloc(
            1 << 20, name="qos-target", nodes=2,
            default_perm=Permission.READ | Permission.WRITE,
        )

    cluster.run_process(setup())
    lh = holder["lh"]
    start_time = sim.now

    def record(size, priority):
        bucket = int((sim.now - start_time) / BUCKET_US)
        if 0 <= bucket < n_buckets:
            total_bytes[bucket] += size
            if priority == PRIORITY_HIGH:
                high_bytes[bucket] += size

    def low_thread(index):
        ctx = LiteContext(kernels[0], f"low{index}", priority=PRIORITY_LOW)
        lh = yield from ctx.lt_map("qos-target")
        size = 8192 if index % 4 < 2 else 4096
        do_write = index % 2 == 0
        payload = b"l" * size
        while sim.now - start_time < RUNTIME_US:
            if do_write:
                yield from ctx.lt_write(lh, 0, payload)
            else:
                yield from ctx.lt_read(lh, 0, size)
            record(size, PRIORITY_LOW)

    def high_thread(index):
        ctx = LiteContext(kernels[0], f"high{index}", priority=PRIORITY_HIGH)
        lh = yield from ctx.lt_map("qos-target")
        payload = b"h" * 4096
        yield sim.timeout(HIGH_START)
        while sim.now - start_time < HIGH_PAUSE:
            if index % 2 == 0:
                yield from ctx.lt_write(lh, 4096, payload)
            else:
                yield from ctx.lt_read(lh, 4096, 4096)
            record(4096, PRIORITY_HIGH)
        if index < 8:
            yield sim.timeout(HIGH_RESUME - (sim.now - start_time))
            while sim.now - start_time < RUNTIME_US - 2_000.0:
                yield from ctx.lt_write(lh, 4096, payload)
                record(4096, PRIORITY_HIGH)

    def driver():
        procs = [sim.process(low_thread(i)) for i in range(20)]
        procs += [sim.process(high_thread(i)) for i in range(20)]
        yield sim.all_of(procs)

    cluster.run_process(driver())
    # GB/s per bucket.
    high_series = [b / BUCKET_US / 1000.0 for b in high_bytes]
    total_series = [b / BUCKET_US / 1000.0 for b in total_bytes]
    return high_series, total_series


def run_fig16():
    out = {}
    for mode in (None, "hw-sep", "sw-pri"):
        out[mode or "none"] = run_mode(mode)
    return out


@pytest.mark.benchmark(group="fig16")
def test_fig16_qos_timeline(benchmark):
    series = benchmark.pedantic(run_fig16, rounds=1, iterations=1)
    rows = []
    n_buckets = len(series["none"][0])
    for bucket in range(n_buckets):
        rows.append(
            (
                bucket,
                series["sw-pri"][1][bucket],
                series["sw-pri"][0][bucket],
                series["hw-sep"][1][bucket],
                series["hw-sep"][0][bucket],
                series["none"][1][bucket],
                series["none"][0][bucket],
            )
        )
    print_table(
        "Figure 16: QoS timeline (GB/s per 1ms bucket)",
        ["ms", "SWPri-Tot", "SWPri-Hi", "HWSep-Tot", "HWSep-Hi",
         "NoQoS-Tot", "NoQoS-Hi"],
        rows,
    )

    def window(series_values, lo, hi):
        chunk = series_values[lo:hi]
        return sum(chunk) / len(chunk)

    contended = (4, 11)  # both classes active
    # 1. Without QoS, high-priority gets roughly half the bandwidth.
    none_high = window(series["none"][0], *contended)
    none_total = window(series["none"][1], *contended)
    assert none_high < 0.62 * none_total
    # 2. SW-Pri hands high-priority most of the bandwidth under contention.
    sw_high = window(series["sw-pri"][0], *contended)
    sw_total = window(series["sw-pri"][1], *contended)
    assert sw_high > 0.75 * sw_total
    assert sw_high > 1.3 * none_high
    # 3. HW-Sep also protects high-priority...
    hw_high = window(series["hw-sep"][0], *contended)
    assert hw_high > 1.2 * none_high
    # ...but wastes reserved capacity when high is idle (0-2 ms window):
    hw_idle_total = window(series["hw-sep"][1], 0, 2)
    sw_idle_total = window(series["sw-pri"][1], 0, 2)
    assert hw_idle_total < 0.8 * sw_idle_total
    # 4. SW-Pri aggregate >= HW-Sep aggregate overall.
    assert sum(series["sw-pri"][1]) > sum(series["hw-sep"][1])
