"""Figure 13 + §5.3 CPU comparison: CPU time under the Facebook workload.

Two experiments:

1. §5.3 micro: 1000 RPCs/s from 8 threads for one second — total CPU
   seconds for LITE vs HERD vs FaSST.  HERD/FaSST burn whole cores in
   client/server busy-poll loops; LITE shares one kernel poller per
   node and lets user threads sleep (adaptive model).

2. Figure 13 macro: Facebook inter-arrival distribution with an
   amplification factor of 1x..8x; average CPU µs per request.
   Lighter load (bigger factor) widens LITE's advantage.
"""

import pytest

from repro.baselines import FasstEndpoint, HerdServer
from repro.cluster import Cluster
from repro.core import LiteContext, rpc_server_loop
from repro.workloads import FacebookKV

from .common import lite_pair, print_table

N_THREADS = 8
REQUESTS_PER_THREAD = 40


def _cpu_totals(cluster):
    return sum(node.cpu.total_busy() for node in cluster.nodes)


def _drive(cluster, make_op, arrivals):
    """Run N_THREADS open-loop request threads with given gap lists."""
    sim = cluster.sim
    done = []

    def thread(index):
        op = make_op(index)
        for gap in arrivals[index]:
            yield sim.timeout(gap)
            yield from op()
        done.append(index)

    def driver():
        procs = [sim.process(thread(index)) for index in range(N_THREADS)]
        yield sim.all_of(procs)

    for node in cluster.nodes:
        node.cpu.reset_accounting()
    start = sim.now
    cluster.run_process(driver())
    elapsed = sim.now - start
    return elapsed


def _gaps(amplification: float, seed: int):
    workload = FacebookKV(seed=seed, mean_inter_arrival_us=1000.0)
    return [
        [workload.inter_arrival(amplification) for _ in range(REQUESTS_PER_THREAD)]
        for _ in range(N_THREADS)
    ]


def lite_cpu(amplification: float) -> float:
    cluster, kernels, _ = lite_pair()
    workload = FacebookKV(seed=99)
    sizes = [workload.value_size() for _ in range(64)]
    for index in range(N_THREADS):
        server = LiteContext(kernels[1], f"s{index}")
        cluster.sim.process(
            rpc_server_loop(server, 1, lambda d: b"v" * sizes[len(d) % 64])
        )
    clients = [LiteContext(kernels[0], f"c{i}") for i in range(N_THREADS)]
    cluster.run_process(_settle(cluster))
    for node in cluster.nodes:
        node.cpu.reset_accounting()

    def make_op(index):
        ctx = clients[index]

        def op():
            yield from ctx.lt_rpc(2, 1, b"key-1234", max_reply=4200)

        return op

    _drive(cluster, make_op, _gaps(amplification, seed=7))
    return _cpu_totals(cluster) / (N_THREADS * REQUESTS_PER_THREAD)


def _settle(cluster):
    yield cluster.sim.timeout(5)


def herd_cpu(amplification: float) -> float:
    cluster = Cluster(2)
    workload = FacebookKV(seed=99)
    sizes = [workload.value_size() for _ in range(64)]
    holder = {"clients": []}

    def setup():
        server = HerdServer(cluster[1], n_threads=N_THREADS)
        yield from server.build(lambda d: b"v" * sizes[len(d) % 64])
        for _ in range(N_THREADS):
            client = yield from server.connect_client(cluster[0])
            holder["clients"].append(client)

    cluster.run_process(setup())
    for node in cluster.nodes:
        node.cpu.reset_accounting()

    def make_op(index):
        client = holder["clients"][index]

        def op():
            yield from client.call(b"key-1234")

        return op

    _drive(cluster, make_op, _gaps(amplification, seed=7))
    return _cpu_totals(cluster) / (N_THREADS * REQUESTS_PER_THREAD)


def fasst_cpu(amplification: float) -> float:
    cluster = Cluster(2)
    workload = FacebookKV(seed=99)
    sizes = [workload.value_size() for _ in range(64)]
    holder = {"pairs": []}

    def setup():
        for _ in range(N_THREADS):
            a = FasstEndpoint(cluster[0])
            b = FasstEndpoint(cluster[1],
                              handler=lambda d: b"v" * sizes[len(d) % 64])
            yield from a.build()
            yield from b.build()
            holder["pairs"].append((a, b))

    cluster.run_process(setup())
    for node in cluster.nodes:
        node.cpu.reset_accounting()

    def make_op(index):
        a, b = holder["pairs"][index]

        def op():
            yield from a.call(b, b"key-1234")

        return op

    _drive(cluster, make_op, _gaps(amplification, seed=7))
    return _cpu_totals(cluster) / (N_THREADS * REQUESTS_PER_THREAD)


def run_fig13():
    rows = []
    for amplification in (1, 2, 4, 8):
        rows.append(
            (
                f"{amplification}x",
                herd_cpu(amplification),
                fasst_cpu(amplification),
                lite_cpu(amplification),
            )
        )
    return rows


@pytest.mark.benchmark(group="fig13")
def test_fig13_cpu_per_request(benchmark):
    rows = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    print_table(
        "Figure 13: CPU time per request, Facebook arrivals (us/request)",
        ["inter-arrival", "HERD", "FaSST", "LITE"],
        rows,
        note="client+server busy time summed; lighter load to the right",
    )
    for label, herd, fasst, lite in rows:
        # LITE uses materially less CPU than both at every load.
        assert lite < 0.75 * herd
        assert lite < 0.75 * fasst
    # LITE's advantage widens as load lightens (adaptive sleep): the
    # LITE/HERD ratio at 8x is smaller than at 1x.
    first_ratio = rows[0][3] / rows[0][1]
    last_ratio = rows[-1][3] / rows[-1][1]
    assert last_ratio <= first_ratio * 1.05
