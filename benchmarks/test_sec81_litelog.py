"""§8.1: LITE-Log commit throughput and scaling.

The paper reports ~833 K commits/s with two nodes concurrently
committing single-entry (16 B) transactions, and that throughput scales
with node count and transaction size.
"""

import pytest

from repro.apps.litelog import LiteLog, LogWriter
from repro.core import LiteContext

from .common import lite_pair, print_table

WINDOW_US = 4000.0
THREADS_PER_NODE = 3


def commit_rate(n_writer_nodes: int, entry_bytes: int,
                entries_per_tx: int = 1) -> float:
    cluster, kernels, _ = lite_pair(n_nodes=n_writer_nodes + 1)
    sim = cluster.sim
    home = kernels[-1].lite_id
    committed = [0]

    def writer(node_index, writer_id):
        ctx = LiteContext(kernels[node_index], f"w{writer_id}")
        log = yield from LiteLog.open(ctx, "tput")
        writer_obj = LogWriter(log, writer_id=writer_id)
        end = sim.now + WINDOW_US
        while sim.now < end:
            for _ in range(entries_per_tx):
                writer_obj.append(b"e" * entry_bytes)
            yield from writer_obj.commit()
            committed[0] += 1

    def driver():
        creator = LiteContext(kernels[0], "creator")
        yield from LiteLog.create(creator, "tput", 1 << 23, home_node=home)
        procs = [
            sim.process(writer(node, node * 8 + thread))
            for node in range(n_writer_nodes)
            for thread in range(THREADS_PER_NODE)
        ]
        yield sim.all_of(procs)

    cluster.run_process(driver())
    return committed[0] / (WINDOW_US / 1e6)  # commits per second


def run_sec81():
    rows = []
    for writers, entry, per_tx in (
        (1, 16, 1),
        (2, 16, 1),
        (4, 16, 1),
        (2, 128, 1),
        (2, 16, 8),
    ):
        rate = commit_rate(writers, entry, per_tx)
        rows.append(
            (f"{writers} node(s), {per_tx}x{entry}B", rate / 1000.0)
        )
    return rows


@pytest.mark.benchmark(group="sec81")
def test_sec81_litelog_throughput(benchmark):
    rows = benchmark.pedantic(run_sec81, rounds=1, iterations=1)
    print_table(
        "Sec 8.1: LITE-Log commit throughput (K commits/s)",
        ["configuration", "K commits/s"],
        rows,
    )
    rates = {label: rate for label, rate in rows}
    two_node = rates["2 node(s), 1x16B"]
    # Paper: ~833 K/s for two committing nodes of 16 B transactions.
    assert 400 < two_node < 1600
    # Scales with committing nodes.
    assert rates["2 node(s), 1x16B"] > rates["1 node(s), 1x16B"]
    assert rates["4 node(s), 1x16B"] > rates["2 node(s), 1x16B"]
    # Bigger transactions never commit faster (latency-bound regime).
    assert rates["2 node(s), 1x128B"] <= rates["2 node(s), 1x16B"] * 1.02
