"""§2.4 control-plane axis: connection setup cost vs QP pooling.

Stock verbs pays ibv_create_qp + the RESET→INIT→RTR→RTS ladder on both
endpoints, a librdmacm handshake, and MR registration before a new
client's first op — milliseconds on real hardware (the KRCORE
motivation measurements).  LITE's kernel-space indirection lets one
node pre-build reserved RC connections and *lease* them: an elastic
client's attach is then a metadata-only grant and its time-to-first-op
collapses to data-plane scale.

The figure drives the elastic-churn workload (INTERNALS §15) pooled vs
cold across client counts, and splits the eager-vs-lazy MR registration
knob to show where the registration cost lands (attach vs first op).
"""

from repro.cluster import Cluster
from repro.core import lite_boot
from repro.determinism import reset_global_counters
from repro.workloads.churn import churn_point, run_churn

from .common import print_table, sweep

CLIENTS = [8, 16, 32]
SEED = 42


def _median(samples):
    ordered = sorted(samples)
    if not ordered:
        return None
    return ordered[len(ordered) // 2]


def test_churn_ttfo_pooled_vs_cold():
    points = [(n, pooled, SEED) for n in CLIENTS for pooled in (True, False)]
    results = {(row["clients"], bool(row["pooled"])): row
               for row in sweep(churn_point, points)}
    rows = []
    for n in CLIENTS:
        pooled = results[(n, True)]
        cold = results[(n, False)]
        ttfo_pooled = pooled["ttfo_hit_med"]
        ttfo_cold = cold["ttfo_cold_med"]
        rows.append([
            n,
            ttfo_pooled,
            ttfo_cold,
            ttfo_cold / ttfo_pooled,
            pooled["hits"],
            pooled["misses"],
            pooled["ops_per_ms"],
            cold["ops_per_ms"],
        ])
    print_table(
        "sec2.4 elastic churn: time-to-first-op, pooled lease vs cold bring-up",
        ["clients", "pooled TTFO (us)", "cold TTFO (us)", "speedup",
         "hits", "misses", "pooled ops/ms", "cold ops/ms"],
        rows,
        note="median over one seeded arrival schedule; pooled = reserved-QP "
             "lease grant, cold = create+transition ladder + CM handshake "
             "per client",
    )
    for row in rows:
        clients, ttfo_pooled, ttfo_cold, speedup = row[0], row[1], row[2], row[3]
        assert ttfo_pooled is not None and ttfo_cold is not None
        # The acceptance bar: pooled attach must collapse TTFO by >= 5x.
        assert speedup >= 5.0, (
            f"{clients} clients: pooled TTFO {ttfo_pooled:.2f} us is only "
            f"{speedup:.1f}x below cold {ttfo_cold:.2f} us"
        )
        # Pooled leases must also not cost steady-state throughput.
        # (Near-parity, not a win: the reserve's prebuild happens before
        # the first arrival and shifts the whole schedule by its cost.)
        assert row[6] >= row[7] * 0.9


def test_churn_eager_vs_lazy_registration():
    """The MR knob moves Fig 8's pin cost between attach and first op."""

    def once(eager):
        reset_global_counters()
        cluster = Cluster(2)
        kernels = lite_boot(cluster)
        stats = run_churn(
            cluster, kernels, n_clients=16, seed=SEED,
            eager_mr=eager, mean_gap_us=40.0,
        )
        attach_med = _median(stats.attach_us["hit"])
        ttfo_med = stats.median_ttfo("hit")
        return attach_med, ttfo_med, stats

    lazy_attach, lazy_ttfo, lazy_stats = once(False)
    eager_attach, eager_ttfo, eager_stats = once(True)
    print_table(
        "sec2.4 elastic churn: eager vs lazy MR registration (pool hits)",
        ["mode", "attach (us)", "TTFO (us)", "first op after attach (us)"],
        [
            ["lazy", lazy_attach, lazy_ttfo, lazy_ttfo - lazy_attach],
            ["eager", eager_attach, eager_ttfo, eager_ttfo - eager_attach],
        ],
        note="both pay the same registration cost inside the TTFO window; "
             "eager moves it into attach so the first op is pure data plane",
    )
    assert lazy_stats.hits and eager_stats.hits
    # Eager attach pays registration up front...
    assert eager_attach > lazy_attach
    # ...so the post-attach first op gets cheaper by about that much.
    assert eager_ttfo - eager_attach < lazy_ttfo - lazy_attach
    # Either way the total control-plane window stays the same scale
    # (the knob moves cost, it does not create or destroy it).
    assert abs(eager_ttfo - lazy_ttfo) < max(eager_ttfo, lazy_ttfo) * 0.5
