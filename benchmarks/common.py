"""Shared benchmark harness: table printing, drivers, setup helpers.

Every ``benchmarks/test_fig*.py`` regenerates one figure/table of the
paper.  Results print as aligned tables (the rows/series the paper
plots); assertions pin the *shape* the paper reports — who wins, by
roughly what factor, where the knees fall — not absolute numbers.
"""

from __future__ import annotations

import statistics
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster import Cluster
from repro.core import LiteContext, lite_boot
from repro.hw import DEFAULT_PARAMS, SimParams
from repro.sweep import run_sweep
from repro.verbs import Access, Opcode, SendWR, Sge

__all__ = [
    "print_table",
    "fmt",
    "lite_pair",
    "verbs_pair",
    "latency_of",
    "throughput_run",
    "sweep",
    "RESULTS",
]

# Collected (figure, table) results, so a full benchmark run can be
# exported into EXPERIMENTS.md by tools/collect_results.py.
RESULTS: Dict[str, dict] = {}


def fmt(value, digits: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{digits}f}"
    return str(value)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence],
                note: str = "") -> None:
    str_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in str_rows)) if str_rows
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    if note:
        print(f"({note})")
    RESULTS[title] = {"headers": list(headers), "rows": rows, "note": note}


# ---------------------------------------------------------------- setup --


def lite_pair(params: Optional[SimParams] = None, n_nodes: int = 2):
    """A booted LITE cluster plus one user context per node."""
    cluster = Cluster(n_nodes, params=params)
    kernels = lite_boot(cluster)
    contexts = [LiteContext(k, f"bench{k.lite_id}") for k in kernels]
    return cluster, kernels, contexts


def verbs_pair(params: Optional[SimParams] = None, mr_bytes: int = 1 << 20,
               n_nodes: int = 2):
    """Two nodes with connected RC QPs and one registered MR each."""
    cluster = Cluster(n_nodes, params=params)
    state = {}

    def setup():
        a, b = cluster[0], cluster[1]
        pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
        state["mr_a"] = yield from a.device.reg_mr(pd_a, mr_bytes, Access.ALL)
        state["mr_b"] = yield from b.device.reg_mr(pd_b, mr_bytes, Access.ALL)
        state["qa"] = a.device.create_qp(pd_a, "RC", send_cq=None)
        state["qb"] = b.device.create_qp(pd_b, "RC", send_cq=None)
        a.device.connect(state["qa"], state["qb"])
        state["pd_a"], state["pd_b"] = pd_a, pd_b

    cluster.run_process(setup())
    state["cluster"] = cluster
    return state


def sweep(point_fn, points, parallel: Optional[int] = None) -> list:
    """Evaluate one figure's sweep points, optionally in parallel.

    Thin figure-facing wrapper over :func:`repro.sweep.run_sweep`:
    ``point_fn(point)`` builds and runs one self-contained simulation,
    ``parallel=None`` defers to the ``REPRO_BENCH_JOBS`` environment
    variable (so CI can fan figure benchmarks out without touching the
    drivers).  Results come back in point order and are byte-identical
    to a serial run; ``point_fn`` must live at module level so workers
    can pickle it.
    """
    return run_sweep(point_fn, points, jobs=parallel)


# -------------------------------------------------------------- drivers --


def latency_of(cluster, op_factory: Callable[[], object], count: int = 200,
               warmup: int = 20) -> float:
    """Average latency of ``count`` sequential ops (µs).

    ``op_factory()`` must return a fresh generator per call.
    """
    sim = cluster.sim
    samples: List[float] = []

    def driver():
        for _ in range(warmup):
            yield from op_factory()
        for _ in range(count):
            start = sim.now
            yield from op_factory()
            samples.append(sim.now - start)

    cluster.run_process(driver())
    return statistics.fmean(samples)


def throughput_run(cluster, op_factory: Callable[[], object],
                   n_workers: int = 16, duration_us: float = 2000.0,
                   warmup_us: float = 200.0):
    """Sustained op rate: ``n_workers`` blocking loops over a window.

    Returns (ops_per_us, bytes_independent completions count).
    """
    sim = cluster.sim
    counted = [0]
    stop_at = [0.0]

    def worker():
        while sim.now < stop_at[0]:
            yield from op_factory()
            if sim.now >= stop_at[0] - duration_us:
                counted[0] += 1

    def driver():
        stop_at[0] = sim.now + warmup_us + duration_us
        procs = [sim.process(worker()) for _ in range(n_workers)]
        yield sim.all_of(procs)

    cluster.run_process(driver())
    return counted[0] / duration_us, counted[0]


def verbs_write_op(state, size: int, remote_offset: int = 0):
    """Generator factory body for one RC write on a verbs_pair state."""
    wr = SendWR(
        Opcode.WRITE,
        sgl=[Sge(state["mr_a"], 0, size)],
        remote_addr=state["mr_b"].base_addr + remote_offset,
        rkey=state["mr_b"].rkey,
        signaled=False,
    )
    status = yield state["qa"].post_send(wr)
    return status
