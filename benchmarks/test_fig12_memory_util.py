"""Figure 12: RPC receive-memory utilization under the Facebook workload.

Send-based RPC must pre-post receive buffers sized for the largest
message; with 1–4 size-classed receive queues utilization improves but
stays poor for the Facebook value-size mixture.  LITE's write-imm ring
consumes payload + a 20 B header, so it sits near 100 %.

Key and value messages are scored separately, as in the paper's figure.
"""

import pytest

from repro.baselines import LiteRingReceiver, memory_utilization
from repro.workloads import FacebookKV

from .common import print_table

N_MESSAGES = 20_000
MAX_MESSAGE = 4096


def run_fig12():
    workload = FacebookKV(seed=12, max_value=MAX_MESSAGE)
    key_sizes = [workload.key_size() for _ in range(N_MESSAGES)]
    value_sizes = [workload.value_size() for _ in range(N_MESSAGES)]

    rows = []
    for queues in (1, 2, 3, 4):
        rows.append(
            (
                f"{queues}RQ",
                100.0 * memory_utilization(key_sizes, queues, MAX_MESSAGE),
                100.0 * memory_utilization(value_sizes, queues, MAX_MESSAGE),
            )
        )
    key_ring = LiteRingReceiver(header_bytes=20)
    value_ring = LiteRingReceiver(header_bytes=20)
    for size in key_sizes:
        key_ring.deliver(size)
    for size in value_sizes:
        value_ring.deliver(size)
    rows.append(
        ("LITE", 100.0 * key_ring.utilization(), 100.0 * value_ring.utilization())
    )
    return rows


@pytest.mark.benchmark(group="fig12")
def test_fig12_memory_utilization(benchmark):
    rows = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    print_table(
        "Figure 12: RPC memory utilization, Facebook KV distribution (%)",
        ["scheme", "key msgs", "value msgs"],
        rows,
    )
    by_scheme = {row[0]: row for row in rows}
    # More receive queues monotonically improve send-based utilization.
    for column in (1, 2):
        series = [by_scheme[f"{q}RQ"][column] for q in (1, 2, 3, 4)]
        assert series == sorted(series)
    # LITE blows past even 4 RQs, for both keys and values.
    assert by_scheme["LITE"][1] > by_scheme["4RQ"][1] * 1.15
    assert by_scheme["LITE"][2] > by_scheme["4RQ"][2] * 1.15
    # LITE utilization is high in absolute terms.
    assert by_scheme["LITE"][1] > 55.0   # keys are tiny: header-bound
    assert by_scheme["LITE"][2] > 85.0
    # Single-queue send/recv wastes most of its memory on keys.
    assert by_scheme["1RQ"][1] < 10.0
