"""Figure 6: write latency vs request size (8 B – 32 KB).

Lines: TCP/IP (qperf on IPoIB), LITE_write user-level, LITE_write
kernel-level (KL), native Verbs write.  LITE-KL should be nearly
indistinguishable from raw Verbs; user-level LITE adds only the
optimized crossing overhead (§5.2); TCP/IP sits an order of magnitude
above all RDMA lines.
"""

import pytest

from repro.cluster import Cluster
from repro.core import LiteContext
from repro.hw.params import SimParams

from .common import latency_of, lite_pair, print_table, verbs_pair, verbs_write_op

SIZES = [8, 64, 512, 4096, 32768]

# §5.2 fast path: chained doorbells + coalesced completion polling.
BATCHED = SimParams(doorbell_batch=16, cq_poll_batch=16)


def verbs_latencies():
    state = verbs_pair(mr_bytes=1 << 20)
    cluster = state["cluster"]
    out = {}
    for size in SIZES:
        out[size] = latency_of(cluster, lambda s=size: verbs_write_op(state, s))
    return out


def lite_latencies(kernel_level: bool, params=None):
    cluster, kernels, _ = lite_pair(params=params)
    ctx = LiteContext(kernels[0], "lat", kernel_level=kernel_level)
    holder = {}

    def setup():
        holder["lh"] = yield from ctx.lt_malloc(1 << 20, nodes=2)

    cluster.run_process(setup())
    lh = holder["lh"]
    out = {}
    for size in SIZES:
        payload = b"z" * size

        def op():
            yield from ctx.lt_write(lh, 0, payload)

        out[size] = latency_of(cluster, op)
    return out


def tcp_latencies():
    cluster = Cluster(2)
    sim = cluster.sim
    listener = cluster[1].tcp.listen(6000)

    def echo_server():
        conn = yield from listener.accept()
        while True:
            data = yield from conn.recv_msg()
            yield from conn.send_msg(b"k")

    holder = {}

    def setup():
        sim.process(echo_server())
        yield sim.timeout(1)
        holder["conn"] = yield from cluster[0].tcp.connect(1, 6000)

    cluster.run_process(setup())
    conn = holder["conn"]
    out = {}
    for size in SIZES:
        payload = b"t" * size

        def op():
            # One-way data + tiny ack, halved: matches qperf's one-way
            # latency reporting convention.
            yield from conn.send_msg(payload)
            yield from conn.recv_msg()

        rtt = latency_of(cluster, op, count=60, warmup=5)
        out[size] = rtt / 2
    return out


def run_fig06():
    tcp = tcp_latencies()
    user = lite_latencies(kernel_level=False)
    kernel = lite_latencies(kernel_level=True)
    batched = lite_latencies(kernel_level=True, params=BATCHED)
    verbs = verbs_latencies()
    return [
        (size, tcp[size], user[size], kernel[size], batched[size], verbs[size])
        for size in SIZES
    ]


@pytest.mark.benchmark(group="fig06")
def test_fig06_write_latency(benchmark):
    rows = benchmark.pedantic(run_fig06, rounds=1, iterations=1)
    print_table(
        "Figure 6: write latency vs size (us)",
        ["size_B", "TCP/IP", "LITE_write", "LITE_write KL", "KL batched",
         "Verbs write"],
        rows,
    )
    for size, tcp, user, kernel, batched, verbs in rows:
        # TCP/IP far above RDMA for small messages (~10x); the gap
        # narrows at 32 KB where serialization dominates (paper: ~2x).
        assert tcp > (8 * verbs if size <= 512 else 1.5 * verbs)
        # Kernel-level LITE is nearly identical to raw Verbs.
        assert abs(kernel - verbs) < 0.8
        # User-level adds well under a microsecond over KL (§5.2).
        assert 0 < user - kernel < 1.0
        # The batched fast path never hurts single-op latency; coalesced
        # completion discovery can only shave the poll wakeup.
        assert batched <= kernel + 0.1
