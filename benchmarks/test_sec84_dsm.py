"""§8.4: LITE-DSM operation latencies on four nodes.

The paper reports: 4 KB random/sequential reads 12.6/17.2 µs; sync
begin (acquire) 9.2 µs; commit of 10 dirty 4 KB pages 74.3 µs.  The
same four micro-operations are measured here.
"""

import random

import pytest

from repro.apps.dsm import LiteDsm, PAGE_SIZE
from repro.core import lite_boot
from repro.cluster import Cluster

from .common import print_table

N_PAGES = 256


def run_sec84():
    cluster = Cluster(4)
    kernels = lite_boot(cluster)
    dsm = LiteDsm(kernels, "bench", N_PAGES * PAGE_SIZE)
    cluster.run_process(dsm.build())
    sim = cluster.sim
    node = dsm.nodes[0]
    rng = random.Random(84)
    out = {}

    def seed_data():
        writer = dsm.nodes[1]
        yield from writer.acquire(0, N_PAGES * PAGE_SIZE)
        for page in range(0, N_PAGES, 16):
            yield from writer.write(page * PAGE_SIZE, bytes([page % 256]) * 64)
        yield from writer.release()

    cluster.run_process(seed_data())

    # -- 4 KB random reads (cold pages, remote homes) -------------------
    def random_reads():
        samples = []
        pages = [p for p in range(N_PAGES) if p % 4 != 0]
        rng.shuffle(pages)
        for page in pages[:40]:
            start = sim.now
            yield from node.read(page * PAGE_SIZE, PAGE_SIZE)
            samples.append(sim.now - start)
        out["random 4KB read"] = sum(samples) / len(samples)

    cluster.run_process(random_reads())

    # -- 4 KB sequential reads (fresh region) ----------------------------
    def sequential_reads():
        node2 = dsm.nodes[2]
        samples = []
        for page in range(40):
            start = sim.now
            yield from node2.read(page * PAGE_SIZE, PAGE_SIZE)
            samples.append(sim.now - start)
        out["sequential 4KB read"] = sum(samples) / len(samples)

    cluster.run_process(sequential_reads())

    # -- sync begin (acquire 10 pages) ------------------------------------
    def sync_begin():
        samples = []
        for round_index in range(20):
            base = (round_index % 8) * 10 * PAGE_SIZE
            start = sim.now
            yield from node.acquire(base, 10 * PAGE_SIZE)
            samples.append(sim.now - start)
            yield from node.release()
        out["sync begin (10 pages)"] = sum(samples) / len(samples)

    cluster.run_process(sync_begin())

    # -- sync commit with 10 dirty pages -----------------------------------
    def sync_commit():
        samples = []
        for round_index in range(20):
            base = (round_index % 8) * 10 * PAGE_SIZE
            yield from node.acquire(base, 10 * PAGE_SIZE)
            for page in range(10):
                yield from node.write(base + page * PAGE_SIZE, b"d" * PAGE_SIZE)
            start = sim.now
            yield from node.release()
            samples.append(sim.now - start)
        out["sync commit (10 dirty pages)"] = sum(samples) / len(samples)

    cluster.run_process(sync_commit())
    return out


@pytest.mark.benchmark(group="sec84")
def test_sec84_dsm_latencies(benchmark):
    out = benchmark.pedantic(run_sec84, rounds=1, iterations=1)
    rows = [(name, value) for name, value in out.items()]
    print_table(
        "Sec 8.4: LITE-DSM latencies, 4 nodes (us)",
        ["operation", "latency"],
        rows,
        note="paper: reads 12.6/17.2; sync begin 9.2; commit 10 pages 74.3",
    )
    # Within the envelope of the paper's measurements.
    assert 8.0 < out["random 4KB read"] < 25.0
    assert 8.0 < out["sequential 4KB read"] < 25.0
    assert 4.0 < out["sync begin (10 pages)"] < 20.0
    assert 15.0 < out["sync commit (10 dirty pages)"] < 120.0
    # Commit of 10 dirty pages costs several times an acquire (paper:
    # 9.2 vs 74.3).
    assert (
        out["sync commit (10 dirty pages)"]
        > 2.5 * out["sync begin (10 pages)"]
    )
