"""Figure 11: RPC throughput (GB/s of returned data) vs return size.

1 and 16 concurrent client/server pairs, 8 B inputs.  LITE's shared
rings and write-imm path keep up with or beat HERD; FaSST's inline
handler execution in the master poller caps its throughput.
"""

import pytest

from repro.baselines import FasstEndpoint, HerdServer
from repro.cluster import Cluster
from repro.core import LiteContext, rpc_server_loop
from repro.hw.params import SimParams

from .common import lite_pair, print_table

RETURN_SIZES = [64, 512, 1024, 2048, 4096]
INPUT = b"i" * 8
DURATION_US = 1500.0

# §5.2 fast path: reply+head piggybacking and coalesced polling.
BATCHED = SimParams(doorbell_batch=16, cq_poll_batch=16)


def _measure(cluster, make_worker, n_clients: int) -> float:
    """Run n_clients call loops; returns completed calls per us."""
    sim = cluster.sim
    counted = [0]
    stop_at = [0.0]

    def worker(call_op):
        while sim.now < stop_at[0]:
            yield from call_op()
            counted[0] += 1

    def driver():
        stop_at[0] = sim.now + DURATION_US
        procs = [sim.process(worker(make_worker(i))) for i in range(n_clients)]
        yield sim.all_of(procs)

    cluster.run_process(driver())
    return counted[0] / DURATION_US


def lite_throughput(size: int, n_clients: int, params=None) -> float:
    cluster, kernels, _ = lite_pair(params=params)
    # 16 concurrent server threads drain the same function id.
    for index in range(max(n_clients, 1)):
        server = LiteContext(kernels[1], f"srv{index}")
        cluster.sim.process(rpc_server_loop(server, 1, lambda _in: b"r" * size))
    clients = [LiteContext(kernels[0], f"cli{i}") for i in range(n_clients)]
    cluster.run_process(_settle(cluster))

    def make_worker(index):
        ctx = clients[index]

        def op():
            yield from ctx.lt_rpc(2, 1, INPUT, max_reply=size + 64)

        return op

    rate = _measure(cluster, make_worker, n_clients)
    return rate * size / 1000.0


def _settle(cluster):
    yield cluster.sim.timeout(5)


def herd_throughput(size: int, n_clients: int) -> float:
    cluster = Cluster(2)
    holder = {"clients": []}

    def setup():
        server = HerdServer(cluster[1], n_threads=max(1, min(n_clients, 8)))
        yield from server.build(lambda _in: b"r" * size)
        for _ in range(n_clients):
            client = yield from server.connect_client(cluster[0])
            holder["clients"].append(client)

    cluster.run_process(setup())

    def make_worker(index):
        client = holder["clients"][index]

        def op():
            yield from client.call(INPUT)

        return op

    rate = _measure(cluster, make_worker, n_clients)
    return rate * size / 1000.0


def fasst_throughput(size: int, n_clients: int) -> float:
    cluster = Cluster(2)
    holder = {}

    def setup():
        # FaSST runs one endpoint (QP + master) per thread; requests
        # from client i go to server endpoint i.
        holder["pairs"] = []
        for _ in range(n_clients):
            a = FasstEndpoint(cluster[0])
            b = FasstEndpoint(cluster[1], handler=lambda _in: b"r" * size)
            yield from a.build()
            yield from b.build()
            holder["pairs"].append((a, b))

    cluster.run_process(setup())

    def make_worker(index):
        a, b = holder["pairs"][index]

        def op():
            yield from a.call(b, INPUT)

        return op

    rate = _measure(cluster, make_worker, n_clients)
    return rate * size / 1000.0


def run_fig11():
    rows = []
    for size in RETURN_SIZES:
        rows.append(
            (
                size,
                lite_throughput(size, 16),
                lite_throughput(size, 16, params=BATCHED),
                herd_throughput(size, 16),
                fasst_throughput(size, 16),
                lite_throughput(size, 1),
                herd_throughput(size, 1),
                fasst_throughput(size, 1),
            )
        )
    return rows


@pytest.mark.benchmark(group="fig11")
def test_fig11_rpc_throughput(benchmark):
    rows = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    print_table(
        "Figure 11: RPC throughput vs return size (GB/s of returned data)",
        ["ret_B", "LITE-16", "LITE-16 batch", "HERD-16", "FaSST-16",
         "LITE-1", "HERD-1", "FaSST-1"],
        rows,
    )
    big = rows[-1]
    _size, lite16, lite16b, herd16, fasst16, lite1, herd1, fasst1 = big
    # At 16 clients and 4 KB returns LITE >= HERD >= FaSST (paper).
    assert lite16 >= 0.9 * herd16
    assert herd16 > fasst16
    # Batched rings keep pace with the seed path under load.
    assert lite16b >= 0.9 * lite16
    # 16 clients always beat 1 client.
    assert lite16 > lite1
    # Large returns approach the link ceiling for LITE.
    assert lite16 > 2.5
