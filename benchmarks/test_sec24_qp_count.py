"""§2.4 third axis: RDMA performance vs the number of active QPs.

RNICs keep per-QP connection state in SRAM; cycling traffic over many
QPs thrashes that cache and degrades latency (the effect FaRM reported
and FaSST's UD design dodges).  LITE needs only K×N QPs regardless of
how many applications/threads run, so it never enters this regime.
"""

import random

import pytest

from repro.verbs import Access, Opcode, SendWR, Sge

from .common import latency_of, lite_pair, print_table, verbs_pair

QP_COUNTS = [4, 64, 256, 1024]


def verbs_latency_with_qps(n_qps: int) -> float:
    state = verbs_pair(mr_bytes=1 << 20)
    cluster = state["cluster"]
    a, b = cluster[0], cluster[1]
    qps = [state["qa"]]
    for _ in range(n_qps - 1):
        qa = a.device.create_qp(state["pd_a"], "RC", send_cq=None)
        qb = b.device.create_qp(state["pd_b"], "RC", send_cq=None)
        a.device.connect(qa, qb)
        qps.append(qa)
    rng = random.Random(24)

    def op():
        qp = qps[rng.randrange(len(qps))]
        wr = SendWR(
            Opcode.WRITE,
            sgl=[Sge(state["mr_a"], 0, 64)],
            remote_addr=state["mr_b"].base_addr,
            rkey=state["mr_b"].rkey,
            signaled=False,
        )
        yield qp.post_send(wr)

    return latency_of(cluster, op, count=400, warmup=50)


def lite_latency_with_many_threads() -> float:
    """LITE: any number of threads share the same K QPs — one number."""
    cluster, _kernels, contexts = lite_pair()
    ctx = contexts[0]
    holder = {}

    def setup():
        holder["lh"] = yield from ctx.lt_malloc(1 << 16, nodes=2)

    cluster.run_process(setup())
    lh = holder["lh"]
    payload = b"q" * 64

    def op():
        yield from ctx.lt_write(lh, 0, payload)

    return latency_of(cluster, op, count=400, warmup=50)


def run_sec24():
    lite = lite_latency_with_many_threads()
    rows = []
    for count in QP_COUNTS:
        rows.append((count, lite, verbs_latency_with_qps(count)))
    return rows


@pytest.mark.benchmark(group="sec24")
def test_sec24_qp_count_scaling(benchmark):
    rows = benchmark.pedantic(run_sec24, rounds=1, iterations=1)
    print_table(
        "Sec 2.4: 64B write latency vs active QPs (us)",
        ["#QPs", "LITE (KxN shared)", "Verbs (per-thread QPs)"],
        rows,
        note="QP-state SRAM holds ~256 entries; LITE never exceeds KxN",
    )
    by_count = {row[0]: row for row in rows}
    # Within SRAM reach, Verbs is fine.
    assert by_count[64][2] < 1.3 * by_count[4][2]
    # Beyond it, per-QP state thrashes: latency up >= 40%.
    assert by_count[1024][2] > 1.4 * by_count[4][2]
    # LITE's shared-QP latency beats Verbs at scale.
    assert by_count[1024][1] < by_count[1024][2]
