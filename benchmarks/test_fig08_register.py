"""Figure 8: (de)registration / (un)map latency vs region size.

Verbs ``ibv_reg_mr`` walks and pins every page (cost linear in size);
deregistration unpins them.  LITE's LT_map/LT_unmap only touch kernel
metadata — no pinning — so they are flat and orders of magnitude
cheaper for large regions.
"""

import pytest

from repro.core import Permission
from repro.verbs import Access

from .common import lite_pair, print_table, verbs_pair

KB = 1024
SIZES = [1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB, 1024 * KB]


def verbs_register_costs(size: int):
    state = verbs_pair(mr_bytes=4096)
    cluster = state["cluster"]
    sim = cluster.sim
    samples = {"reg": [], "dereg": []}

    def driver():
        for _ in range(20):
            start = sim.now
            mr = yield from cluster[0].device.reg_mr(
                state["pd_a"], size, Access.ALL
            )
            samples["reg"].append(sim.now - start)
            start = sim.now
            yield from cluster[0].device.dereg_mr(mr)
            samples["dereg"].append(sim.now - start)

    cluster.run_process(driver())
    return (
        sum(samples["reg"]) / len(samples["reg"]),
        sum(samples["dereg"]) / len(samples["dereg"]),
    )


def lite_map_costs(size: int):
    cluster, _kernels, contexts = lite_pair()
    ctx = contexts[0]
    sim = cluster.sim
    samples = {"map": [], "unmap": []}

    def driver():
        # The paper's Fig 8 maps a *local* LMR.
        yield from ctx.lt_malloc(size, name=f"fig8-{size}")
        for _ in range(20):
            start = sim.now
            lh = yield from ctx.lt_map(f"fig8-{size}", Permission.full())
            samples["map"].append(sim.now - start)
            start = sim.now
            yield from ctx.lt_unmap(lh)
            samples["unmap"].append(sim.now - start)

    cluster.run_process(driver())
    return (
        sum(samples["map"]) / len(samples["map"]),
        sum(samples["unmap"]) / len(samples["unmap"]),
    )


def run_fig08():
    rows = []
    for size in SIZES:
        reg, dereg = verbs_register_costs(size)
        lt_map, lt_unmap = lite_map_costs(size)
        rows.append((size // KB, reg, dereg, lt_unmap, lt_map))
    return rows


@pytest.mark.benchmark(group="fig08")
def test_fig08_registration_latency(benchmark):
    rows = benchmark.pedantic(run_fig08, rounds=1, iterations=1)
    print_table(
        "Figure 8: (de)register / (un)map latency vs size (us)",
        ["size_KB", "Verbs register", "Verbs deregister", "LITE_unmap",
         "LITE_map"],
        rows,
        note="paper: register/deregister grow with pages; map/unmap flat",
    )
    first, last = rows[0], rows[-1]
    # Verbs registration grows ~linearly with page count (1 KB -> 1 MB
    # is 256x the pages; expect >= 30x the cost).
    assert last[1] > 30 * first[1]
    assert last[2] > 10 * first[2]
    # LITE map/unmap are flat: no dependence on region size.
    assert last[4] < 2 * first[4]
    assert last[3] < 2 * first[3]
    # At 1 MB, LITE map is >= 10x faster than Verbs registration.
    assert last[1] > 10 * last[4]
