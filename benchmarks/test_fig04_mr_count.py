"""Figure 4: RDMA write latency vs number of (L)MRs.

Each (L)MR is 4 KB; each write is 64 B to a randomly-chosen region.
Native Verbs degrades once the MR count exceeds the RNIC's key-cache
SRAM (~100 records) because every operation must fetch the MR record
from host memory; LITE uses one global physical MR, so its latency is
flat no matter how many LMRs exist.
"""

import random

import pytest

from repro.core import Permission
from repro.verbs import Access, Opcode, SendWR, Sge

from .common import latency_of, lite_pair, print_table, sweep, verbs_pair

MR_COUNTS = [10, 100, 1_000, 10_000, 100_000]
WRITE_SIZE = 64
MR_BYTES = 4096


def verbs_latency(n_mrs: int) -> float:
    state = verbs_pair(mr_bytes=4096)
    cluster = state["cluster"]
    remote = cluster[1]

    mrs = []

    def register():
        for _ in range(n_mrs):
            mr = yield from remote.device.reg_mr(
                state["pd_b"], MR_BYTES, Access.ALL
            )
            mrs.append(mr)

    cluster.run_process(register())
    rng = random.Random(4)

    def op():
        mr = mrs[rng.randrange(len(mrs))]
        wr = SendWR(
            Opcode.WRITE,
            sgl=[Sge(state["mr_a"], 0, WRITE_SIZE)],
            remote_addr=mr.base_addr,
            rkey=mr.rkey,
            signaled=False,
        )
        yield state["qa"].post_send(wr)

    return latency_of(cluster, op, count=400, warmup=20)


def lite_latency(n_lmrs: int) -> float:
    cluster, _kernels, contexts = lite_pair()
    ctx = contexts[0]
    handles = []

    def setup():
        for index in range(n_lmrs):
            lh = yield from ctx.lt_malloc(MR_BYTES, nodes=2)
            handles.append(lh)

    cluster.run_process(setup())
    rng = random.Random(4)
    payload = b"x" * WRITE_SIZE

    def op():
        lh = handles[rng.randrange(len(handles))]
        yield from ctx.lt_write(lh, 0, payload)

    return latency_of(cluster, op, count=400, warmup=20)


def fig04_point(point):
    count, system = point
    return lite_latency(count) if system == "lite" else verbs_latency(count)


def run_fig04(parallel=None):
    points = [(count, system)
              for count in MR_COUNTS for system in ("lite", "verbs")]
    values = dict(zip(points, sweep(fig04_point, points, parallel=parallel)))
    return [
        (count, values[(count, "lite")], values[(count, "verbs")])
        for count in MR_COUNTS
    ]


@pytest.mark.benchmark(group="fig04")
def test_fig04_write_latency_vs_mr_count(benchmark):
    rows = benchmark.pedantic(run_fig04, rounds=1, iterations=1)
    print_table(
        "Figure 4: 64B write latency vs #(L)MRs (us)",
        ["#MRs", "LITE_write", "Verbs write"],
        rows,
        note="paper: Verbs rises past ~100 MRs; LITE flat",
    )
    lite = {count: value for count, value, _ in rows}
    verbs = {count: value for count, _, value in rows}
    # LITE is flat: <15% swing across 4 decades of LMR count.
    assert max(lite.values()) < 1.15 * min(lite.values())
    # Verbs fast while MRs fit SRAM, then degrades >=2x.
    assert verbs[100_000] > 2.0 * verbs[10]
    # Crossover: LITE wins at scale, Verbs wins when tiny.
    assert lite[100_000] < verbs[100_000]
    assert verbs[10] < lite[10]
