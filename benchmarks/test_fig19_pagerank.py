"""Figure 19: PageRank on 4 and 7 nodes, four threads per node.

Engines: LITE-Graph, LITE-Graph-DSM, Grappa, PowerGraph — all running
the same GAS computation on the same power-law graph and producing the
same ranks.  Expected order: LITE-Graph fastest; PowerGraph slowest
(3.5-5.6x behind LITE-Graph); Grappa and LITE-Graph-DSM in between,
with LITE-Graph-DSM comparable to or better than Grappa.
"""

import pytest

from repro.apps.dsm import LiteGraphDsm
from repro.apps.graph import (
    GrappaSim,
    LiteGraph,
    PartitionedGraph,
    PowerGraphSim,
    pagerank_reference,
)
from repro.cluster import Cluster
from repro.core import lite_boot
from repro.workloads import powerlaw_graph

from .common import print_table

N_VERTICES = 2000
EDGES_PER_VERTEX = 8
ITERATIONS = 5


def run_nodes(n_nodes: int):
    edges = powerlaw_graph(N_VERTICES, EDGES_PER_VERTEX, seed=19)
    graph = PartitionedGraph(N_VERTICES, edges, n_nodes)
    reference = pagerank_reference(graph, ITERATIONS)

    def check(ranks):
        assert max(abs(a - b) for a, b in zip(ranks, reference)) < 1e-12

    out = {}

    cluster = Cluster(n_nodes)
    engine = LiteGraph(lite_boot(cluster), graph, threads_per_node=4)
    check(cluster.run_process(engine.run(ITERATIONS)))
    out["LITE-Graph"] = engine.elapsed_us

    cluster = Cluster(n_nodes)
    engine = LiteGraphDsm(lite_boot(cluster), graph, threads_per_node=4)
    check(cluster.run_process(engine.run(ITERATIONS)))
    out["LITE-Graph-DSM"] = engine.elapsed_us

    cluster = Cluster(n_nodes)
    engine = GrappaSim(cluster.nodes, graph, threads_per_node=4)
    check(cluster.run_process(engine.run(ITERATIONS)))
    out["Grappa"] = engine.elapsed_us

    cluster = Cluster(n_nodes)
    engine = PowerGraphSim(cluster.nodes, graph, threads_per_node=4)
    check(cluster.run_process(engine.run(ITERATIONS)))
    out["PowerGraph"] = engine.elapsed_us
    return out


def run_fig19():
    return {n: run_nodes(n) for n in (4, 7)}


@pytest.mark.benchmark(group="fig19")
def test_fig19_pagerank(benchmark):
    results = benchmark.pedantic(run_fig19, rounds=1, iterations=1)
    rows = []
    for engine in ("LITE-Graph", "LITE-Graph-DSM", "Grappa", "PowerGraph"):
        rows.append(
            (engine, results[4][engine] / 1000.0, results[7][engine] / 1000.0)
        )
    print_table(
        "Figure 19: PageRank run time (ms), 4 threads/node",
        ["engine", "4 nodes", "7 nodes"],
        rows,
        note="all four engines produce bit-identical ranks",
    )
    for n_nodes in (4, 7):
        r = results[n_nodes]
        # Figure 19 ordering.
        assert r["LITE-Graph"] < r["LITE-Graph-DSM"]
        assert r["LITE-Graph-DSM"] < r["PowerGraph"]
        assert r["Grappa"] < r["PowerGraph"]
        # The headline: PowerGraph 3.5-5.6x slower than LITE-Graph
        # (accept a 3.0-6.5x envelope at simulation scale).
        ratio = r["PowerGraph"] / r["LITE-Graph"]
        assert 3.0 < ratio < 6.5, f"PowerGraph/LITE ratio {ratio:.2f}"
