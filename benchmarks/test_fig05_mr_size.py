"""Figure 5: RDMA write throughput vs total (L)MR size.

One region per run; random-offset writes of 64 B and 1 KB.  Native
Verbs thrashes the RNIC's PTE cache once the registered region exceeds
its reach (~4 MB), collapsing throughput; LITE's physical-address
global MR needs no PTEs, so throughput is flat up to 1 GB.
"""

import random

import pytest

from repro.verbs import Access, Opcode, SendWR, Sge

from .common import lite_pair, print_table, sweep, throughput_run, verbs_pair

MB = 1 << 20
SIZES = [1 * MB, 4 * MB, 16 * MB, 64 * MB, 256 * MB, 1024 * MB]
DURATION_US = 800.0
WORKERS = 24


def verbs_throughput(total_size: int, write_size: int) -> float:
    state = verbs_pair(mr_bytes=4096)
    cluster = state["cluster"]
    remote = cluster[1]
    target = {}

    def register():
        target["mr"] = yield from remote.device.reg_mr(
            state["pd_b"], total_size, Access.ALL
        )

    cluster.run_process(register())
    mr = target["mr"]
    rng = random.Random(5)
    span = total_size - write_size

    def op():
        offset = rng.randrange(span)
        wr = SendWR(
            Opcode.WRITE,
            sgl=[Sge(state["mr_a"], 0, write_size)],
            remote_addr=mr.base_addr + offset,
            rkey=mr.rkey,
            signaled=False,
        )
        yield state["qa"].post_send(wr)

    rate, _count = throughput_run(
        cluster, op, n_workers=WORKERS, duration_us=DURATION_US
    )
    return rate


def lite_throughput(total_size: int, write_size: int) -> float:
    cluster, _kernels, contexts = lite_pair()
    ctx = contexts[0]
    holder = {}

    def setup():
        holder["lh"] = yield from ctx.lt_malloc(total_size, nodes=2)

    cluster.run_process(setup())
    lh = holder["lh"]
    rng = random.Random(5)
    span = total_size - write_size
    payload = b"y" * write_size

    def op():
        yield from ctx.lt_write(lh, rng.randrange(span), payload)

    rate, _count = throughput_run(
        cluster, op, n_workers=WORKERS, duration_us=DURATION_US
    )
    return rate


def fig05_point(point):
    size, write_size, system = point
    fn = lite_throughput if system == "lite" else verbs_throughput
    return fn(size, write_size)


def run_fig05(parallel=None):
    points = [(size, write_size, system)
              for size in SIZES
              for write_size in (1024, 64)
              for system in ("lite", "verbs")]
    values = dict(zip(points, sweep(fig05_point, points, parallel=parallel)))
    return [
        (
            size // MB,
            values[(size, 1024, "lite")],
            values[(size, 1024, "verbs")],
            values[(size, 64, "lite")],
            values[(size, 64, "verbs")],
        )
        for size in SIZES
    ]


@pytest.mark.benchmark(group="fig05")
def test_fig05_write_throughput_vs_mr_size(benchmark):
    rows = benchmark.pedantic(run_fig05, rounds=1, iterations=1)
    print_table(
        "Figure 5: write throughput vs total (L)MR size (requests/us)",
        ["size_MB", "LITE-1K", "Verbs-1K", "LITE-64B", "Verbs-64B"],
        rows,
        note="paper: Verbs collapses past 4 MB (PTE thrash); LITE flat",
    )
    by_size = {row[0]: row for row in rows}
    # LITE flat within 20% across three decades, for both sizes.
    lite_64 = [row[3] for row in rows]
    assert max(lite_64) < 1.2 * min(lite_64)
    # Verbs collapses >=2.5x from 1 MB to 1 GB.
    assert by_size[1][4] > 2.5 * by_size[1024][4]
    assert by_size[1][2] > 2.0 * by_size[1024][2]
    # At 1 GB LITE clearly wins.
    assert by_size[1024][3] > 1.5 * by_size[1024][4]
