"""Figure 15: QoS with real applications (LITE-Log and LITE-Graph).

LITE-Log (network-bound commits) and LITE-Graph (CPU-heavy PageRank)
run at high priority against constant low-priority background writers.
Bars are performance normalized to the No-QoS run (higher is better),
plus the no-background-traffic ceiling.

Expected: SW-Pri recovers most of the no-background performance;
HW-Sep helps but less; LITE-Graph is less affected than LITE-Log
because it is more CPU-intensive (paper §6.2).
"""

import pytest

from repro.apps.graph import LiteGraph, PartitionedGraph
from repro.apps.litelog import LiteLog, LogWriter
from repro.core import PRIORITY_HIGH, PRIORITY_LOW, LiteContext, Permission
from repro.hw import SimParams
from repro.workloads import powerlaw_graph

from .common import lite_pair, print_table

QOS_PARAMS = SimParams(lite_qp_factor_k=4, lite_qp_window=4)
LOG_WINDOW_US = 4_000.0


def _background(cluster, kernels, stop_flag):
    """Low-priority writers hammering every node with 4 KB writes."""
    sim = cluster.sim

    def setup():
        creator = LiteContext(kernels[0], "bg-creator")
        for kernel in kernels[1:]:
            yield from creator.lt_malloc(
                1 << 18, name=f"bg{kernel.lite_id}", nodes=kernel.lite_id,
                default_perm=Permission.READ | Permission.WRITE,
            )

    cluster.run_process(setup())

    def bg_thread(index):
        ctx = LiteContext(kernels[0], f"bg{index}", priority=PRIORITY_LOW)
        target = kernels[1 + index % (len(kernels) - 1)].lite_id
        lh = yield from ctx.lt_map(f"bg{target}")
        payload = b"b" * 4096
        while not stop_flag:
            yield from ctx.lt_write(lh, 0, payload)

    for index in range(12):
        sim.process(bg_thread(index))


def litelog_perf(mode, background: bool) -> float:
    cluster, kernels, _ = lite_pair(params=QOS_PARAMS, n_nodes=4)
    for kernel in kernels:
        kernel.qos.mode = mode
    sim = cluster.sim
    stop_flag = []
    if background:
        _background(cluster, kernels, stop_flag)
    committed = [0]

    def writer(node_index, writer_id):
        ctx = LiteContext(
            kernels[node_index], f"log{writer_id}", priority=PRIORITY_HIGH
        )
        log = yield from LiteLog.open(ctx, "qlog")
        writer_obj = LogWriter(log, writer_id=writer_id)
        end = sim.now + LOG_WINDOW_US
        while sim.now < end:
            writer_obj.append(b"x" * 64)
            yield from writer_obj.commit()
            committed[0] += 1

    def driver():
        creator = LiteContext(kernels[0], "log-creator", priority=PRIORITY_HIGH)
        yield from LiteLog.create(creator, "qlog", 1 << 22, home_node=2)
        yield sim.timeout(200)  # let background traffic ramp
        procs = [
            sim.process(writer(node_index, node_index * 4 + thread))
            for node_index in (0, 3)
            for thread in range(4)
        ]
        yield sim.all_of(procs)
        stop_flag.append(True)

    cluster.run_process(driver())
    return committed[0] / LOG_WINDOW_US  # commits per us


def litegraph_perf(mode, background: bool) -> float:
    cluster, kernels, _ = lite_pair(params=QOS_PARAMS, n_nodes=4)
    for kernel in kernels:
        kernel.qos.mode = mode
    stop_flag = []
    if background:
        _background(cluster, kernels, stop_flag)
    edges = powerlaw_graph(400, 6, seed=15)
    graph = PartitionedGraph(400, edges, 4)
    engine = LiteGraph(kernels, graph, threads_per_node=4)

    def driver():
        yield cluster.sim.timeout(200)
        yield from engine.run(4)
        stop_flag.append(True)

    cluster.run_process(driver())
    return 1.0 / engine.elapsed_us  # higher is better


def run_fig15():
    rows = []
    for app_name, runner in (("LITE-Log", litelog_perf),
                             ("LITE-Graph", litegraph_perf)):
        baseline = runner(None, background=True)        # No QoS
        no_bg = runner(None, background=False)
        sw = runner("sw-pri", background=True)
        hw = runner("hw-sep", background=True)
        rows.append(
            (app_name, no_bg / baseline, sw / baseline, hw / baseline, 1.0)
        )
    return rows


@pytest.mark.benchmark(group="fig15")
def test_fig15_qos_real_apps(benchmark):
    rows = benchmark.pedantic(run_fig15, rounds=1, iterations=1)
    print_table(
        "Figure 15: QoS with real applications (performance vs No-QoS)",
        ["app", "No b/g traffic", "SW-Pri", "HW-Sep", "No QoS"],
        rows,
    )
    for app, no_bg, sw, hw, _base in rows:
        # Background traffic hurts: the clean run is the ceiling.
        assert no_bg > 1.05
        # SW-Pri recovers a large share of the ceiling, beating HW-Sep.
        assert sw > hw * 0.95
        assert sw > 1.02
    log_row = rows[0]
    graph_row = rows[1]
    # LITE-Graph (CPU-bound) is less affected by QoS than LITE-Log.
    assert (log_row[1] - 1.0) > (graph_row[1] - 1.0) * 0.9
