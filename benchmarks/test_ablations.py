"""Ablations of LITE's design choices (DESIGN.md §6).

1. Global physical MR vs per-LMR virtual MRs — removing the §4.1 trick
   reintroduces the Figure 4 key-cache degradation (and re-adds
   pinning cost to LT_malloc).
2. Chunked LMRs vs one huge contiguous region — the <2 % overhead
   claim of §4.1.
3. Shared-page syscall optimization vs naive syscalls (§5.2:
   0.9 µs -> 0.17 µs of crossings per RPC).
4. Adaptive busy-check-then-sleep vs always-busy client waits (§5.2) —
   CPU per request at light load.
5. The K factor in K×N QP sharing (§6.1: 1 <= K <= 4 is the sweet
   spot).
"""

import random

import pytest

from repro.core import LiteContext, rpc_server_loop
from repro.hw import SimParams

from .common import latency_of, lite_pair, print_table, throughput_run


# ------------------------------------------------------------------ 1 --

def _lmr_write_latency(n_lmrs: int, use_global_mr: bool):
    from repro.cluster import Cluster
    from repro.core import lite_boot

    cluster = Cluster(2)
    kernels = lite_boot(cluster, use_global_mr=use_global_mr)
    ctx = LiteContext(kernels[0], "abl")
    handles = []
    malloc_times = []
    sim = cluster.sim

    def setup():
        for _ in range(n_lmrs):
            start = sim.now
            lh = yield from ctx.lt_malloc(4096, nodes=2)
            malloc_times.append(sim.now - start)
            handles.append(lh)

    cluster.run_process(setup())
    rng = random.Random(2)
    payload = b"a" * 64

    def op():
        lh = handles[rng.randrange(len(handles))]
        yield from ctx.lt_write(lh, 0, payload)

    latency = latency_of(cluster, op, count=300, warmup=20)
    return latency, sum(malloc_times) / len(malloc_times)


def run_ablation_global_mr():
    rows = []
    for n_lmrs in (10, 1000, 10000):
        glob, glob_malloc = _lmr_write_latency(n_lmrs, True)
        per_mr, per_malloc = _lmr_write_latency(n_lmrs, False)
        rows.append((n_lmrs, glob, per_mr, glob_malloc, per_malloc))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_global_physical_mr(benchmark):
    rows = benchmark.pedantic(run_ablation_global_mr, rounds=1, iterations=1)
    print_table(
        "Ablation 1: global physical MR vs per-LMR MRs (64B write, us)",
        ["#LMRs", "global-MR write", "per-MR write", "global-MR malloc",
         "per-MR malloc"],
        rows,
    )
    by_count = {row[0]: row for row in rows}
    # With the global MR, latency is flat in LMR count.
    assert by_count[10000][1] < 1.1 * by_count[10][1]
    # Without it, the key-cache degradation returns (>= 1.5x at 10K).
    assert by_count[10000][2] > 1.5 * by_count[10000][1]
    assert by_count[10000][2] > 1.5 * by_count[10][2]
    # Per-MR mode also pays pinning at LT_malloc time.
    assert by_count[10][4] > by_count[10][3]


# ------------------------------------------------------------------ 2 --

def run_ablation_chunking():
    rows = []
    for chunk_mb, label in ((4, "4MB chunks"), (128, "contiguous")):
        params = SimParams(lite_chunk_bytes=chunk_mb << 20)
        cluster, _kernels, contexts = lite_pair(params=params)
        ctx = contexts[0]
        holder = {}

        def setup():
            holder["lh"] = yield from ctx.lt_malloc(128 << 20, nodes=2)

        cluster.run_process(setup())
        lh = holder["lh"]
        rng = random.Random(3)
        payload = b"c" * 1024

        def op():
            yield from ctx.lt_write(lh, rng.randrange((128 << 20) - 1024), payload)

        rate, _ = throughput_run(cluster, op, n_workers=16, duration_us=800.0)
        rows.append((label, len(lh.mapping.chunks), rate))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_chunked_lmr(benchmark):
    rows = benchmark.pedantic(run_ablation_chunking, rounds=1, iterations=1)
    print_table(
        "Ablation 2: chunked vs contiguous 128MB LMR (1KB writes, req/us)",
        ["layout", "chunks", "throughput"],
        rows,
        note="paper §4.1: chunking costs < 2%",
    )
    chunked, contiguous = rows[0][2], rows[1][2]
    assert rows[0][1] == 32 and rows[1][1] == 1
    # The paper's < 2% claim.
    assert abs(chunked - contiguous) / contiguous < 0.02


# ------------------------------------------------------------------ 3 --

def _rpc_latency_with(params):
    cluster, kernels, _ = lite_pair(params=params)
    client = LiteContext(kernels[0], "c")
    server = LiteContext(kernels[1], "s")
    cluster.sim.process(rpc_server_loop(server, 1, lambda d: b"r" * 64))
    cluster.run_process(_settle(cluster))

    def op():
        yield from client.lt_rpc(2, 1, b"q" * 8, max_reply=128)

    return latency_of(cluster, op, count=150, warmup=20)


def _settle(cluster):
    yield cluster.sim.timeout(5)


def run_ablation_syscall():
    optimized = _rpc_latency_with(SimParams())
    # Naive path (§5.2): 3 syscalls / 6 crossings ~= 0.9 us per RPC,
    # charged as 0.45 us on entry and return.
    naive = _rpc_latency_with(
        SimParams(lite_syscall_enter_us=0.45, lite_sharedpage_return_us=0.45)
    )
    return [("optimized (shared page)", optimized), ("naive syscalls", naive)]


@pytest.mark.benchmark(group="ablation")
def test_ablation_syscall_optimization(benchmark):
    rows = benchmark.pedantic(run_ablation_syscall, rounds=1, iterations=1)
    print_table(
        "Ablation 3: syscall model, 8B->64B LT_RPC latency (us)",
        ["model", "latency"],
        rows,
        note="paper §5.2: 0.9us naive vs 0.17us optimized crossings",
    )
    optimized = rows[0][1]
    naive = rows[1][1]
    delta = naive - optimized
    # Client avoids ~0.73 us of crossings; the server's recv/reply path
    # avoids roughly as much again on the critical path.
    assert 0.5 < delta < 2.2


# ------------------------------------------------------------------ 4 --

def run_ablation_adaptive():
    """Server-side waits dominate at light load: the server thread sits
    in LT_recvRPC for most of each inter-arrival gap."""
    out = []
    for mode in ("adaptive", "busy"):
        cluster, kernels, _ = lite_pair()
        client = LiteContext(kernels[0], "c")
        server = LiteContext(kernels[1], "s")
        server_cpu = kernels[1].node.cpu
        if mode == "busy":
            def busy_waiter(event):
                value = yield from server_cpu.busy_wait(event, tag=server._tag)
                return value

            server._waiter = lambda: busy_waiter
        cluster.sim.process(rpc_server_loop(server, 1, lambda d: b"r" * 64))
        cluster.run_process(_settle(cluster))
        sim = cluster.sim
        server_cpu.reset_accounting()
        n_requests = 50

        def driver():
            rng = random.Random(4)
            for _ in range(n_requests):
                # Light load: ~500 us between requests.
                yield sim.timeout(400 + rng.random() * 200)
                yield from client.lt_rpc(2, 1, b"q" * 8, max_reply=128)

        cluster.run_process(driver())
        per_request = server_cpu.busy_time.get(server._tag, 0.0) / n_requests
        out.append((mode, per_request))
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_adaptive_wait(benchmark):
    rows = benchmark.pedantic(run_ablation_adaptive, rounds=1, iterations=1)
    print_table(
        "Ablation 4: server wait model, CPU us per request at light load",
        ["wait model", "server-thread CPU / request"],
        rows,
        note="adaptive sleeps after a 10us busy window; busy spins the gap",
    )
    adaptive = rows[0][1]
    busy = rows[1][1]
    # Adaptive charges ~window+wakeup (~12 us); busy burns the whole
    # ~500 us inter-arrival gap (paper §5.2's motivation).
    assert adaptive < 0.1 * busy


# ------------------------------------------------------------------ 5 --

def run_ablation_k_factor():
    rows = []
    for k in (1, 2, 4, 8):
        # Small per-QP windows so the QP count is the lever (real QPs
        # bound outstanding WRs; huge windows would mask K entirely).
        params = SimParams(lite_qp_factor_k=k, lite_qp_window=4)
        cluster, _kernels, contexts = lite_pair(params=params)
        ctx = contexts[0]
        holder = {}

        def setup():
            holder["lh"] = yield from ctx.lt_malloc(1 << 16, nodes=2)

        cluster.run_process(setup())
        lh = holder["lh"]
        payload = b"k" * 64

        def op():
            yield from ctx.lt_write(lh, 0, payload)

        rate, _ = throughput_run(cluster, op, n_workers=32, duration_us=800.0)
        rows.append((k, rate))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_k_factor(benchmark):
    rows = benchmark.pedantic(run_ablation_k_factor, rounds=1, iterations=1)
    print_table(
        "Ablation 5: K in KxN QP sharing (64B write tput, req/us, 32 thr)",
        ["K", "throughput"],
        rows,
        note="paper §6.1: 1 <= K <= 4 gives best performance",
    )
    rates = dict(rows)
    # Going from K=1 to K=2 helps (more windows in flight).
    assert rates[2] >= rates[1]
    # Past the sweet spot, more QPs stop helping (within 10%).
    assert rates[8] < rates[4] * 1.10
