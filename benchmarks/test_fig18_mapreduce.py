"""Figure 18: WordCount — Phoenix vs LITE-MR (2/4/8 workers) vs Hadoop.

Same corpus, same total thread count (8) for every system.  Expected
shape: LITE-MR beats Hadoop by ~4-5.5x; LITE-MR's map+reduce phases
beat single-node Phoenix (per-node split index), its merge phase is
worse (distributed 2-way merging); LITE-MR improves mildly with more
workers.
"""

import pytest

from repro.apps.mapreduce import HadoopMR, LiteMR, PhoenixMR
from repro.cluster import Cluster
from repro.core import lite_boot
from repro.workloads import generate_corpus

from .common import print_table

TOTAL_THREADS = 8
WORKER_COUNTS = (2, 4, 8)


def make_corpus():
    return generate_corpus(256, 500, vocab_size=2000, seed=18)


def run_fig18():
    corpus = make_corpus()
    results = {}

    phoenix_cluster = Cluster(1)
    phoenix = PhoenixMR(phoenix_cluster[0], n_threads=TOTAL_THREADS)
    phoenix_result = phoenix_cluster.run_process(phoenix.run(corpus))
    results["Phoenix"] = dict(phoenix.phase_times)

    reference = phoenix_result
    for workers in WORKER_COUNTS:
        cluster = Cluster(workers + 1)
        kernels = lite_boot(cluster)
        engine = LiteMR(kernels, total_threads=TOTAL_THREADS)
        out = cluster.run_process(engine.run(corpus))
        assert out == reference, "LITE-MR result mismatch"
        results[f"LITE-MR-{workers}"] = dict(engine.phase_times)

        hadoop_cluster = Cluster(workers + 1)
        hadoop = HadoopMR(hadoop_cluster.nodes, total_threads=TOTAL_THREADS)
        out = hadoop_cluster.run_process(hadoop.run(corpus))
        assert out == reference, "Hadoop result mismatch"
        results[f"Hadoop-{workers}"] = dict(hadoop.phase_times)
    return results


@pytest.mark.benchmark(group="fig18")
def test_fig18_mapreduce(benchmark):
    results = benchmark.pedantic(run_fig18, rounds=1, iterations=1)
    order = ["Phoenix"] + [
        name
        for workers in WORKER_COUNTS
        for name in (f"LITE-MR-{workers}", f"Hadoop-{workers}")
    ]
    rows = [
        (
            name,
            results[name]["map"] / 1000.0,
            results[name]["reduce"] / 1000.0,
            results[name]["merge"] / 1000.0,
            results[name]["total"] / 1000.0,
        )
        for name in order
    ]
    print_table(
        "Figure 18: WordCount run time (ms), 8 threads total",
        ["system", "map", "reduce", "merge", "total"],
        rows,
    )
    phoenix = results["Phoenix"]
    for workers in WORKER_COUNTS:
        lite = results[f"LITE-MR-{workers}"]
        hadoop = results[f"Hadoop-{workers}"]
        ratio = hadoop["total"] / lite["total"]
        # Paper: Hadoop is 4.3-5.3x slower; accept a 3.5-7x envelope.
        assert 3.5 < ratio < 7.0, f"Hadoop/LITE ratio {ratio:.2f} at {workers}w"
        # LITE-MR's map+reduce beat Phoenix's (split per-node index).
        assert (lite["map"] + lite["reduce"]) < (
            phoenix["map"] + phoenix["reduce"]
        )
        # ...but its distributed merge phase is slower than Phoenix's.
        assert lite["merge"] > phoenix["merge"]
    # More workers help (amortized LMR management, §8.2).
    assert (
        results["LITE-MR-8"]["total"] <= results["LITE-MR-2"]["total"] * 1.05
    )
    # Overall: LITE-MR (any scale) beats Phoenix end to end.
    assert results["LITE-MR-4"]["total"] < phoenix["total"]
