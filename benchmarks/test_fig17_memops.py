"""Figure 17: LITE memory-op latency vs size (LT_malloc/memset/memcpy).

LT_memcpy(local) moves data between two LMRs co-located on one node
(a local memcpy at the executor); LT_memcpy crosses machines.
LT_memset sends a command, not the data — so it beats writing the
pattern over the wire as sizes grow.  LT_malloc is near-flat.
A raw Verbs write line gives the wire-cost reference.
"""

import pytest

from repro.core import LiteContext

from .common import latency_of, lite_pair, print_table, verbs_pair, verbs_write_op

KB = 1024
SIZES = [1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB, 1024 * KB]


def run_fig17():
    cluster, kernels, contexts = lite_pair(n_nodes=3)
    ctx = contexts[0]
    handles = {}

    def setup():
        handles["src2"] = yield from ctx.lt_malloc(2 << 20, nodes=2)
        handles["dst3"] = yield from ctx.lt_malloc(2 << 20, nodes=3)
        handles["dst2"] = yield from ctx.lt_malloc(2 << 20, nodes=2)

    cluster.run_process(setup())
    verbs_state = verbs_pair(mr_bytes=2 << 20)

    rows = []
    for size in SIZES:
        verbs_write = latency_of(
            verbs_state["cluster"],
            lambda s=size: verbs_write_op(verbs_state, s),
            count=40, warmup=5,
        )

        def memcpy_remote(s=size):
            yield from ctx.lt_memcpy(handles["src2"], 0, handles["dst3"], 0, s)

        def memcpy_local(s=size):
            yield from ctx.lt_memcpy(handles["src2"], 0, handles["dst2"], 0, s)

        def memset_op(s=size):
            yield from ctx.lt_memset(handles["src2"], 0, 0xAB, s)

        def malloc_op(s=size):
            lh = yield from ctx.lt_malloc(s, nodes=2)
            handles.setdefault("scratch", []).append(lh)

        rows.append(
            (
                size // KB,
                verbs_write,
                latency_of(cluster, memcpy_remote, count=40, warmup=5),
                latency_of(cluster, memcpy_local, count=40, warmup=5),
                latency_of(cluster, memset_op, count=40, warmup=5),
                latency_of(cluster, malloc_op, count=40, warmup=5),
            )
        )
    return rows


@pytest.mark.benchmark(group="fig17")
def test_fig17_memory_ops(benchmark):
    rows = benchmark.pedantic(run_fig17, rounds=1, iterations=1)
    print_table(
        "Figure 17: LITE memory-op latency vs size (us)",
        ["size_KB", "Verbs write", "LT_memcpy", "LT_memcpy(local)",
         "LT_memset", "LT_malloc"],
        rows,
    )
    first, last = rows[0], rows[-1]
    # LT_malloc stays cheap and near-flat (command, not data).
    assert last[5] < 4 * first[5]
    # LT_memset at 1 MB is far cheaper than shipping 1 MB of pattern.
    assert last[4] < 0.6 * last[1]
    # Local memcpy beats cross-machine memcpy at every size.
    for row in rows:
        assert row[3] < row[2]
    # Remote memcpy costs more than a raw write (adds the RPC + copy).
    assert last[2] > last[1]
