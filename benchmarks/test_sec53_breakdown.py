"""§5.3: latency breakdown of one LT_RPC (8 B input -> 4 KB reply).

The paper reports ~6.95 µs total, with metadata handling < 0.3 µs,
LT_recvRPC/LT_replyRPC kernel stacks 0.3/0.2 µs, and 0.17 µs of
user-kernel crossings.  We instrument the same stages.
"""

import pytest

from repro.core import LiteContext, rpc_server_loop
from repro.hw.params import SimParams

from .common import lite_pair, print_table

# §5.2 fast path: reply+head piggybacking and coalesced polling.
BATCHED = SimParams(doorbell_batch=16, cq_poll_batch=16)


def _rpc_total(params):
    """Mean LT_RPC latency (8 B -> 4 KB) under the given knobs."""
    cluster, kernels, _ = lite_pair(params=params)
    client = LiteContext(kernels[0], "cli")
    server = LiteContext(kernels[1], "srv")
    cluster.sim.process(rpc_server_loop(server, 1, lambda _in: b"r" * 4096))
    sim = cluster.sim

    def settle():
        yield sim.timeout(5)

    cluster.run_process(settle())
    samples = []

    def driver():
        for _ in range(20):
            yield from client.lt_rpc(2, 1, b"k" * 8, max_reply=4200)
        for _ in range(100):
            start = sim.now
            yield from client.lt_rpc(2, 1, b"k" * 8, max_reply=4200)
            samples.append(sim.now - start)

    cluster.run_process(driver())
    return sum(samples) / len(samples)


def run_sec53():
    cluster, kernels, _ = lite_pair()
    params = cluster.params
    client = LiteContext(kernels[0], "cli")
    server = LiteContext(kernels[1], "srv")
    cluster.sim.process(rpc_server_loop(server, 1, lambda _in: b"r" * 4096))
    sim = cluster.sim

    def settle():
        yield sim.timeout(5)

    cluster.run_process(settle())
    samples = []

    def driver():
        for _ in range(20):
            yield from client.lt_rpc(2, 1, b"k" * 8, max_reply=4200)
        for _ in range(100):
            start = sim.now
            yield from client.lt_rpc(2, 1, b"k" * 8, max_reply=4200)
            samples.append(sim.now - start)

    cluster.run_process(driver())
    total = sum(samples) / len(samples)
    crossings = params.lite_syscall_enter_us + params.lite_sharedpage_return_us
    metadata = params.lite_metadata_us
    recv_stack = params.lite_recv_stack_us + 8 / params.memcpy_bytes_per_us
    reply_stack = params.lite_reply_stack_us
    network = total - crossings - metadata - recv_stack - reply_stack
    return [
        ("total LT_RPC (8B -> 4KB)", total),
        ("total, batched fast path", _rpc_total(BATCHED)),
        ("metadata (map+perm check)", metadata),
        ("LT_recvRPC kernel stack", recv_stack),
        ("LT_replyRPC kernel stack", reply_stack),
        ("user-kernel crossings", crossings),
        ("network + poll + wire", network),
    ]


@pytest.mark.benchmark(group="sec53")
def test_sec53_rpc_breakdown(benchmark):
    rows = benchmark.pedantic(run_sec53, rounds=1, iterations=1)
    print_table(
        "Sec 5.3: LT_RPC latency breakdown (us)",
        ["stage", "time"],
        rows,
        note="paper: 6.95 total; <0.3 metadata; 0.3/0.2 stacks; 0.17 crossings",
    )
    values = dict(rows)
    total = values["total LT_RPC (8B -> 4KB)"]
    # The envelope of the paper's 6.95 us measurement.
    assert 4.0 < total < 9.5
    # Doorbell chaining + reply piggybacking never slow the RPC down.
    assert values["total, batched fast path"] < total + 0.25
    assert values["metadata (map+perm check)"] < 0.3
    assert values["user-kernel crossings"] < 0.25
    assert values["LT_recvRPC kernel stack"] <= 0.35
    assert values["LT_replyRPC kernel stack"] <= 0.25
    # The wire/poll share dominates, as in the paper's accounting.
    assert values["network + poll + wire"] > 0.5 * total
