"""Figure 10: RPC latency vs return size (8 B input).

Lines: LITE_RPC (user), LITE_RPC KL, 2×Verbs-writes lower bound (FaRM
messaging), HERD (write + UD send), FaSST (2× UD send).  Expected
shape: HERD lowest for small returns (raw region polling); LITE within
~1 µs of the 2-write lower bound; FaSST worst at 4 KB.
Also reproduces §5.3's latency breakdown of the 8 B → 4 KB LT_RPC.
"""

import pytest

from repro.baselines import FasstEndpoint, HerdServer, connect_farm_pair
from repro.cluster import Cluster
from repro.core import LiteContext, rpc_server_loop
from repro.hw.params import SimParams

from .common import latency_of, lite_pair, print_table

RETURN_SIZES = [8, 64, 512, 4096]
INPUT = b"k" * 8

# §5.2 fast path: reply+head piggybacking and coalesced polling.
BATCHED = SimParams(doorbell_batch=16, cq_poll_batch=16)


def lite_rpc_latency(kernel_level: bool, params=None):
    cluster, kernels, _ = lite_pair(params=params)
    server = LiteContext(kernels[1], "srv")
    client = LiteContext(kernels[0], "cli", kernel_level=kernel_level)
    replies = {size: b"r" * size for size in RETURN_SIZES}
    size_box = {"value": 8}
    cluster.sim.process(
        rpc_server_loop(server, 1, lambda _in: replies[size_box["value"]])
    )
    cluster.run_process(_idle(cluster, 5))
    out = {}
    for size in RETURN_SIZES:
        size_box["value"] = size

        def op():
            yield from client.lt_rpc(2, 1, INPUT, max_reply=size + 64)

        out[size] = latency_of(cluster, op, count=150, warmup=20)
    return out


def _idle(cluster, us):
    yield cluster.sim.timeout(us)


def farm_two_writes():
    cluster = Cluster(2)
    holder = {}

    def setup():
        a, b = yield from connect_farm_pair(cluster[0], cluster[1])
        holder["a"], holder["b"] = a, b

    cluster.run_process(setup())
    a, b = holder["a"], holder["b"]
    replies = {size: b"r" * size for size in RETURN_SIZES}
    size_box = {"value": 8}

    def server():
        while True:
            _msg = yield from b.recv()
            yield from b.send(replies[size_box["value"]])

    cluster.sim.process(server())
    out = {}
    for size in RETURN_SIZES:
        size_box["value"] = size

        def op():
            yield from a.rpc(INPUT)

        out[size] = latency_of(cluster, op, count=150, warmup=20)
    return out


def herd_latency():
    cluster = Cluster(2)
    holder = {}
    size_box = {"value": 8}
    replies = {size: b"r" * size for size in RETURN_SIZES}

    def setup():
        server = HerdServer(cluster[1], n_threads=1)
        yield from server.build(lambda _in: replies[size_box["value"]])
        holder["client"] = yield from server.connect_client(cluster[0])

    cluster.run_process(setup())
    client = holder["client"]
    out = {}
    for size in RETURN_SIZES:
        size_box["value"] = size

        def op():
            yield from client.call(INPUT)

        out[size] = latency_of(cluster, op, count=150, warmup=20)
    return out


def fasst_latency():
    cluster = Cluster(2)
    holder = {}
    size_box = {"value": 8}
    replies = {size: b"r" * size for size in RETURN_SIZES}

    def setup():
        a = FasstEndpoint(cluster[0])
        b = FasstEndpoint(cluster[1],
                          handler=lambda _in: replies[size_box["value"]])
        yield from a.build()
        yield from b.build()
        holder["a"], holder["b"] = a, b

    cluster.run_process(setup())
    a, b = holder["a"], holder["b"]
    out = {}
    for size in RETURN_SIZES:
        size_box["value"] = size

        def op():
            yield from a.call(b, INPUT)

        out[size] = latency_of(cluster, op, count=150, warmup=20)
    return out


def run_fig10():
    lite = lite_rpc_latency(kernel_level=False)
    lite_batch = lite_rpc_latency(kernel_level=False, params=BATCHED)
    lite_kl = lite_rpc_latency(kernel_level=True)
    farm = farm_two_writes()
    herd = herd_latency()
    fasst = fasst_latency()
    return [
        (size, lite[size], lite_batch[size], lite_kl[size], farm[size],
         herd[size], fasst[size])
        for size in RETURN_SIZES
    ]


@pytest.mark.benchmark(group="fig10")
def test_fig10_rpc_latency(benchmark):
    rows = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    print_table(
        "Figure 10: RPC latency vs return size (us), 8B input",
        ["ret_B", "LITE_RPC", "LITE batch", "LITE_RPC KL", "2 Verbs writes",
         "HERD", "FaSST"],
        rows,
    )
    by_size = {row[0]: row for row in rows}
    for size, lite, lite_batch, lite_kl, farm, herd, fasst in rows:
        # KL within a fraction of a microsecond below user-level.
        assert 0 < lite - lite_kl < 1.0
        # LITE tracks the 2-write lower bound within ~1.5 us.
        assert abs(lite - farm) < 1.5
        # The piggybacked reply path stays within noise of the seed path.
        assert abs(lite_batch - lite) < 0.5
    # HERD's raw polling is fastest at small returns.
    assert by_size[8][5] <= by_size[8][1]
    # FaSST is the slowest mechanism at 4 KB (two full-MTU UD sends).
    row4k = by_size[4096]
    assert row4k[6] >= max(row4k[1], row4k[4], row4k[5]) - 0.2
    # §5.3: the 8B->4KB LT_RPC lands in the ~5-9 us envelope.
    assert 4.5 < row4k[1] < 9.5
