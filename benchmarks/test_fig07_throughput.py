"""Figure 7: write throughput (GB/s) vs size, at 1 and 8 threads.

Lines: LITE-8, Verbs-8, RDMA-CM-8, Verbs-1, RDMA-CM-1, LITE-1, TCP/IP
(single-stream qperf tcp_bw).  All RDMA lines approach the 40 Gbps link
ceiling (~4 GB/s delivered) at 64 KB with 8-way parallelism; TCP stays
well below it.
"""

import pytest

from repro.cluster import Cluster
from repro.hw.params import SimParams
from repro.net import rdma_cm_connect

from .common import lite_pair, print_table, throughput_run, verbs_pair, verbs_write_op

KB = 1024
SIZES = [1 * KB, 4 * KB, 16 * KB, 64 * KB]
DURATION_US = 2000.0

# §5.2 fast path: chained doorbells + coalesced completion polling.
BATCHED = SimParams(doorbell_batch=16, cq_poll_batch=16)


def gbps(rate_ops_per_us: float, size: int) -> float:
    return rate_ops_per_us * size / 1000.0  # bytes/us -> GB/s


def verbs_tput(size: int, workers: int) -> float:
    state = verbs_pair(mr_bytes=1 << 20)
    rate, _ = throughput_run(
        state["cluster"], lambda: verbs_write_op(state, size),
        n_workers=workers, duration_us=DURATION_US,
    )
    return gbps(rate, size)


def rdma_cm_tput(size: int, workers: int) -> float:
    cluster = Cluster(2)
    holder = {}

    def setup():
        chan_a, chan_b = yield from rdma_cm_connect(
            cluster[0], cluster[1], buffer_bytes=1 << 20
        )
        holder["chan"] = chan_a

    cluster.run_process(setup())
    chan = holder["chan"]

    def op():
        yield from chan.write(0, 0, size)

    rate, _ = throughput_run(cluster, op, n_workers=workers,
                             duration_us=DURATION_US)
    return gbps(rate, size)


def lite_tput(size: int, workers: int, params=None) -> float:
    cluster, _k, contexts = lite_pair(params=params)
    ctx = contexts[0]
    holder = {}

    def setup():
        holder["lh"] = yield from ctx.lt_malloc(1 << 20, nodes=2)

    cluster.run_process(setup())
    lh = holder["lh"]
    payload = b"w" * size

    def op():
        yield from ctx.lt_write(lh, 0, payload)

    rate, _ = throughput_run(cluster, op, n_workers=workers,
                             duration_us=DURATION_US)
    return gbps(rate, size)


def tcp_tput(size: int) -> float:
    cluster = Cluster(2)
    sim = cluster.sim
    listener = cluster[1].tcp.listen(6100)
    received = [0]

    def sink():
        conn = yield from listener.accept()
        while True:
            data = yield from conn.recv_msg()
            received[0] += len(data)

    holder = {}

    def setup():
        sim.process(sink())
        yield sim.timeout(1)
        holder["conn"] = yield from cluster[0].tcp.connect(1, 6100)

    cluster.run_process(setup())
    conn = holder["conn"]
    payload = b"t" * size

    def op():
        yield from conn.send_msg(payload)

    rate, _ = throughput_run(cluster, op, n_workers=1,
                             duration_us=DURATION_US)
    return gbps(rate, size)


def run_fig07():
    rows = []
    for size in SIZES:
        rows.append(
            (
                size // KB,
                lite_tput(size, 8),
                lite_tput(size, 8, params=BATCHED),
                verbs_tput(size, 8),
                rdma_cm_tput(size, 8),
                lite_tput(size, 1),
                verbs_tput(size, 1),
                rdma_cm_tput(size, 1),
                tcp_tput(size),
            )
        )
    return rows


@pytest.mark.benchmark(group="fig07")
def test_fig07_write_throughput(benchmark):
    rows = benchmark.pedantic(run_fig07, rounds=1, iterations=1)
    print_table(
        "Figure 7: write throughput vs size (GB/s)",
        ["size_KB", "LITE-8", "LITE-8 batch", "Verbs-8", "CM-8", "LITE-1",
         "Verbs-1", "CM-1", "TCP/IP"],
        rows,
        note="link ceiling = 5 GB/s raw, ~4 GB/s delivered at 64 KB",
    )
    big = rows[-1]
    _size, lite8, lite8b, verbs8, cm8, lite1, verbs1, cm1, tcp = big
    # All 8-way RDMA lines near the link ceiling at 64 KB.
    for value in (lite8, lite8b, verbs8, cm8):
        assert value > 3.0
    # LITE-8 within 10% of Verbs-8 (paper: slightly better with threads).
    assert lite8 > 0.9 * verbs8
    # Batching never costs sustained throughput.
    assert lite8b > 0.9 * lite8
    # TCP single-stream stays well below the RDMA ceiling.
    assert tcp < 0.75 * verbs8
    # Single-thread lines are size-limited but converge upward.
    assert rows[0][5] < rows[-1][5]
