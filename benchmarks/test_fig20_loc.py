"""Figure 20: application implementation effort (LOC using LITE).

The paper's table shows each application needs only tens of lines of
LITE calls (20-49 for Log/MR/Graph) out of hundreds-to-thousands of
application LOC — the networking is fully encapsulated.  We count the
same metric over our implementations.  LITE-Graph-DSM uses *zero* LITE
lines in the paper (it sits purely on DSM loads/stores); ours keeps a
similarly tiny count (barriers only).
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))
from loc import app_effort_table  # noqa: E402

from .common import print_table

PAPER = {
    "LITE-Log": (330, 36),
    "LITE-MR": (600, 49),
    "LITE-Graph": (1400, 20),
    "LITE-DSM": (3000, 45),
    "LITE-Graph-DSM": (1300, 0),
}


def run_fig20():
    root = Path(__file__).resolve().parents[1]
    rows = []
    for name, loc, lite_loc in app_effort_table(root):
        paper_loc, paper_lite = PAPER[name]
        rows.append((name, loc, lite_loc, paper_loc, paper_lite))
    return rows


@pytest.mark.benchmark(group="fig20")
def test_fig20_implementation_effort(benchmark):
    rows = benchmark.pedantic(run_fig20, rounds=1, iterations=1)
    print_table(
        "Figure 20: application implementation effort",
        ["application", "LOC", "LOC using LITE", "paper LOC",
         "paper LITE LOC"],
        rows,
    )
    by_app = {row[0]: row for row in rows}
    for name, loc, lite_loc, _paper_loc, _paper_lite in rows:
        assert loc > 0
        # LITE lines are a small fraction of each app.
        assert lite_loc < 0.30 * loc, f"{name}: {lite_loc}/{loc}"
    # The paper's headline: the graph engine needs ~20 LITE lines; ours
    # stays within the same order (< 40).
    assert by_app["LITE-Graph"][2] <= 40
    # Graph-DSM barely touches LITE directly (paper: 0; allow <= 8 for
    # explicit barrier calls).
    assert by_app["LITE-Graph-DSM"][2] <= 8
