"""Figure 14: LITE one-sided and RPC throughput vs cluster size (2-8).

Every node runs 8 threads doing 64 B LT_writes (or 64 B -> 8 B LT_RPCs)
to all other nodes.  With K×N shared QPs and per-node RNICs, aggregate
throughput scales near-linearly with node count.
"""

import pytest

from repro.core import LiteContext, rpc_server_loop

from .common import lite_pair, print_table, sweep

THREADS_PER_NODE = 8
DURATION_US = 1000.0


def write_scalability(n_nodes: int) -> float:
    cluster, kernels, contexts = lite_pair(n_nodes=n_nodes)
    sim = cluster.sim
    handles = {}

    def setup():
        from repro.core import Permission

        # One world-writable buffer per node; everyone maps the rest.
        for kernel, ctx in zip(kernels, contexts):
            yield from ctx.lt_malloc(
                1 << 16, name=f"buf{kernel.lite_id}",
                default_perm=Permission.READ | Permission.WRITE,
            )
        for ctx in contexts:
            maps = {}
            for kernel in kernels:
                if kernel.lite_id != ctx.lite_id:
                    maps[kernel.lite_id] = yield from ctx.lt_map(
                        f"buf{kernel.lite_id}"
                    )
            handles[ctx.lite_id] = maps

    cluster.run_process(setup())
    counted = [0]
    stop_at = [0.0]
    payload = b"w" * 64

    def worker(ctx, targets, index):
        order = list(targets.items())
        while sim.now < stop_at[0]:
            _peer, lh = order[index % len(order)]
            index += 1
            yield from ctx.lt_write(lh, (index * 64) % 4096, payload)
            counted[0] += 1

    def driver():
        stop_at[0] = sim.now + DURATION_US
        procs = []
        for ctx in contexts:
            for thread in range(THREADS_PER_NODE):
                procs.append(
                    sim.process(worker(ctx, handles[ctx.lite_id], thread))
                )
        yield sim.all_of(procs)

    cluster.run_process(driver())
    return counted[0] / DURATION_US


def rpc_scalability(n_nodes: int) -> float:
    cluster, kernels, contexts = lite_pair(n_nodes=n_nodes)
    sim = cluster.sim
    for kernel in kernels:
        for index in range(THREADS_PER_NODE):
            server = LiteContext(kernel, f"srv{kernel.lite_id}-{index}")
            sim.process(rpc_server_loop(server, 1, lambda _in: b"r" * 8))
    cluster.run_process(_settle(cluster))
    counted = [0]
    stop_at = [0.0]

    def worker(ctx, peers, index):
        while sim.now < stop_at[0]:
            target = peers[index % len(peers)]
            index += 1
            yield from ctx.lt_rpc(target, 1, b"q" * 64, max_reply=64)
            counted[0] += 1

    def driver():
        stop_at[0] = sim.now + DURATION_US
        procs = []
        for ctx in contexts:
            peers = [k.lite_id for k in kernels if k.lite_id != ctx.lite_id]
            for thread in range(THREADS_PER_NODE):
                procs.append(sim.process(worker(ctx, peers, thread)))
        yield sim.all_of(procs)

    cluster.run_process(driver())
    return counted[0] / DURATION_US


def _settle(cluster):
    yield cluster.sim.timeout(5)


def fig14_point(point):
    n_nodes, mode = point
    fn = write_scalability if mode == "write" else rpc_scalability
    return fn(n_nodes)


def run_fig14(parallel=None):
    points = [(n_nodes, mode)
              for n_nodes in (2, 4, 6, 8) for mode in ("write", "rpc")]
    values = dict(zip(points, sweep(fig14_point, points, parallel=parallel)))
    return [
        (n_nodes, values[(n_nodes, "write")], values[(n_nodes, "rpc")])
        for n_nodes in (2, 4, 6, 8)
    ]


@pytest.mark.benchmark(group="fig14")
def test_fig14_scalability(benchmark):
    rows = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    print_table(
        "Figure 14: aggregate throughput vs cluster size (requests/us)",
        ["nodes", "LT_write", "LT_RPC"],
        rows,
        note="8 threads/node, 64B writes / 64B->8B RPCs",
    )
    writes = {n: w for n, w, _ in rows}
    rpcs = {n: r for n, _, r in rows}
    # Near-linear scaling 2 -> 8 nodes (>= 3x for 4x the nodes).
    assert writes[8] > 3.0 * writes[2]
    assert rpcs[8] > 3.0 * rpcs[2]
    # Monotonic growth.
    assert sorted(writes.values()) == [writes[n] for n in (2, 4, 6, 8)]
    assert sorted(rpcs.values()) == [rpcs[n] for n in (2, 4, 6, 8)]
