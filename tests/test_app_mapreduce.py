"""Tests for the three MapReduce systems (§8.2)."""

from collections import Counter

import pytest

from repro.apps.mapreduce import HadoopMR, LiteMR, PhoenixMR
from repro.apps.mapreduce.common import (
    decode_counts,
    encode_counts,
    partition_counts,
    split_tasks,
    wordcount_map,
)
from repro.cluster import Cluster
from repro.core import lite_boot
from repro.workloads import generate_corpus


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(48, 300, vocab_size=500, seed=9)


@pytest.fixture(scope="module")
def truth(corpus):
    total = Counter()
    for document in corpus:
        total.update(wordcount_map(document))
    return total


def test_wordcount_map_counts_words():
    counts = wordcount_map(b"a b a c a b")
    assert counts == Counter({b"a": 3, b"b": 2, b"c": 1})


def test_encode_decode_roundtrip():
    counts = Counter({b"alpha": 3, b"beta": 17, b"gamma": 1})
    assert decode_counts(encode_counts(counts)) == counts


def test_encode_decode_empty():
    assert decode_counts(encode_counts(Counter())) == Counter()


def test_partition_counts_cover_everything():
    counts = wordcount_map(b" ".join(b"w%d" % i for i in range(100)))
    parts = partition_counts(counts, 7)
    merged = Counter()
    for part in parts:
        merged.update(part)
    assert merged == counts


def test_split_tasks_covers_range():
    spans = split_tasks(10, 3)
    assert spans == [(0, 4), (4, 7), (7, 10)]
    assert split_tasks(2, 5) == [(0, 1), (1, 2)]


def test_phoenix_correct(corpus, truth):
    cluster = Cluster(1)
    engine = PhoenixMR(cluster[0], n_threads=8)
    result = cluster.run_process(engine.run(corpus))
    assert result == truth
    assert set(engine.phase_times) == {"map", "reduce", "merge", "total"}
    assert engine.phase_times["total"] > 0


def test_lite_mr_correct(corpus, truth):
    cluster = Cluster(5)
    kernels = lite_boot(cluster)
    engine = LiteMR(kernels, total_threads=8)
    result = cluster.run_process(engine.run(corpus))
    assert result == truth


def test_lite_mr_two_workers(corpus, truth):
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    engine = LiteMR(kernels, total_threads=8)
    result = cluster.run_process(engine.run(corpus))
    assert result == truth


def test_hadoop_correct(corpus, truth):
    cluster = Cluster(5)
    engine = HadoopMR(cluster.nodes, total_threads=8)
    result = cluster.run_process(engine.run(corpus))
    assert result == truth


def test_hadoop_slower_than_lite_mr(corpus):
    lite_cluster = Cluster(5)
    kernels = lite_boot(lite_cluster)
    lite_engine = LiteMR(kernels, total_threads=8)
    lite_cluster.run_process(lite_engine.run(corpus))

    hadoop_cluster = Cluster(5)
    hadoop_engine = HadoopMR(hadoop_cluster.nodes, total_threads=8)
    hadoop_cluster.run_process(hadoop_engine.run(corpus))

    assert hadoop_engine.phase_times["total"] > 2 * lite_engine.phase_times["total"]


def test_lite_mr_scales_with_workers(truth):
    """More worker nodes should not slow the job down (Fig 18 trend)."""
    documents = generate_corpus(64, 400, vocab_size=500, seed=10)
    times = {}
    for n_nodes in (2, 4):
        cluster = Cluster(n_nodes + 1)
        kernels = lite_boot(cluster)
        engine = LiteMR(kernels, total_threads=8)
        result = cluster.run_process(engine.run(documents))
        times[n_nodes] = engine.phase_times["total"]
    assert times[4] <= times[2] * 1.3


def test_lite_mr_rejects_tiny_cluster():
    cluster = Cluster(1)
    kernels = lite_boot(cluster)
    with pytest.raises(ValueError):
        LiteMR(kernels)
