"""Determinism and robustness properties of the whole stack.

A discrete-event simulation must be exactly reproducible: same inputs,
same event order, same timestamps, same data.  These tests pin that
down end-to-end, plus stress the engine with randomized process graphs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core import LiteContext, lite_boot, rpc_server_loop
from repro.sim import Simulator
from repro.workloads import generate_corpus


def _lite_rpc_trace(seed: int):
    """A mixed workload; returns (timestamps, replies)."""
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    sim = cluster.sim
    client = LiteContext(kernels[0], "c")
    server = LiteContext(kernels[1], "s")
    sim.process(rpc_server_loop(server, 1, lambda d: bytes(reversed(d))))
    trace = []
    rng = random.Random(seed)

    def driver():
        yield sim.timeout(1)
        lh = yield from client.lt_malloc(4096, nodes=3)
        for index in range(30):
            yield sim.timeout(rng.random() * 10)
            if index % 3 == 0:
                reply = yield from client.lt_rpc(
                    2, 1, f"m{index}".encode(), max_reply=64
                )
                trace.append((round(sim.now, 6), reply))
            elif index % 3 == 1:
                yield from client.lt_write(lh, index, bytes([index]))
                trace.append((round(sim.now, 6), b"w"))
            else:
                data = yield from client.lt_read(lh, index - 1, 1)
                trace.append((round(sim.now, 6), data))

    cluster.run_process(driver())
    return trace


def test_identical_seeds_produce_identical_traces():
    """Same seed -> byte-identical data; timestamps match to <0.5%
    (global object-id counters change wire-message digit counts between
    runs, which is the only tolerated drift)."""
    trace_a = _lite_rpc_trace(7)
    trace_b = _lite_rpc_trace(7)
    assert [d for _t, d in trace_a] == [d for _t, d in trace_b]
    for (ta, _), (tb, _) in zip(trace_a, trace_b):
        assert tb == pytest.approx(ta, rel=5e-3)


def test_different_seeds_differ():
    times_a = [t for t, _d in _lite_rpc_trace(7)]
    times_b = [t for t, _d in _lite_rpc_trace(8)]
    assert times_a != times_b


def test_empty_fault_plan_is_zero_cost():
    """An installed-but-empty FaultPlan must not perturb the event
    stream: timestamps and data stay byte-identical.

    Uses the KV store (its wire messages carry no global object-id
    counters, so runs are *exactly* reproducible in-process — see the
    §7 note in docs/INTERNALS.md for why the RPC trace above is not).
    """
    from repro.apps.kvstore import LiteKVClient, LiteKVServer
    from repro.determinism import reset_global_counters
    from repro.fault import FaultInjector, FaultPlan

    def run_once(inject: bool):
        # Pin the global object-id counters so both runs see identical
        # wire-message digit counts regardless of what ran before.
        reset_global_counters()
        cluster = Cluster(3)
        kernels = lite_boot(cluster)
        if inject:
            FaultInjector(cluster, FaultPlan(), seed=99).install()
            assert cluster.fabric.fault is None  # hook never armed
        servers = [LiteKVServer(kernels[1], 0), LiteKVServer(kernels[2], 1)]

        def setup():
            for server in servers:
                yield from server.start()
            yield cluster.sim.timeout(1)

        cluster.run_process(setup())
        client = LiteKVClient(kernels[0], servers)
        trace = []

        def proc():
            for index in range(25):
                key = b"key-%d" % (index % 9)
                yield from client.put(key, b"value-%d" % index)
                value = yield from client.get(key)
                trace.append((cluster.sim.now, value))

        cluster.run_process(proc())
        return trace, cluster.sim.now

    trace_plain, now_plain = run_once(False)
    trace_inj, now_inj = run_once(True)
    assert trace_plain == trace_inj  # timestamps exactly equal
    assert now_plain == now_inj


def test_full_app_run_is_deterministic():
    from repro.apps.mapreduce import LiteMR

    corpus = generate_corpus(24, 100, vocab_size=200, seed=3)

    def run_once():
        cluster = Cluster(3)
        kernels = lite_boot(cluster)
        engine = LiteMR(kernels, total_threads=4)
        result = cluster.run_process(engine.run(corpus))
        return engine.phase_times["total"], result

    t1, r1 = run_once()
    t2, r2 = run_once()
    assert r1 == r2                       # identical answers, always
    assert t2 == pytest.approx(t1, rel=5e-3)  # timing drift < 0.5%


# ------------------------------------------------ trace determinism --


def _chaos_plan():
    from repro.fault import FaultPlan

    return (FaultPlan()
            .link_flap(2, start_us=200.0, end_us=1500.0,
                       down_us=30.0, up_us=120.0)
            .packet_loss(0.08, start_us=100.0, end_us=2500.0))


def test_trace_jsonl_byte_identical_across_runs():
    """Two same-seed traced runs export byte-identical JSONL (the
    global object-id counters are reset per run, so even wire-message
    digit counts match exactly)."""
    from repro.obs import to_jsonl
    from tests.obs_helpers import run_mixed

    _c1, tracer_a, records_a, _s1 = run_mixed(seed=7)
    _c2, tracer_b, records_b, _s2 = run_mixed(seed=7)
    assert records_a == records_b
    assert to_jsonl(tracer_a) == to_jsonl(tracer_b)


def test_trace_jsonl_byte_identical_under_faults():
    """Trace determinism survives an active seeded FaultPlan: drops,
    retries, and late spans land identically in both runs."""
    from repro.obs import to_jsonl
    from tests.obs_helpers import run_mixed

    _c1, tracer_a, _r1, _s1 = run_mixed(seed=11, plan=_chaos_plan())
    _c2, tracer_b, _r2, _s2 = run_mixed(seed=11, plan=_chaos_plan())
    jsonl_a, jsonl_b = to_jsonl(tracer_a), to_jsonl(tracer_b)
    assert "dropped" in jsonl_a or "err:" in jsonl_a  # faults visible
    assert jsonl_a == jsonl_b


def test_trace_chrome_export_deterministic():
    import json

    from repro.obs import to_chrome_trace
    from tests.obs_helpers import run_mixed

    _c1, tracer_a, _r1, _s1 = run_mixed(seed=7)
    _c2, tracer_b, _r2, _s2 = run_mixed(seed=7)
    dump = lambda t: json.dumps(to_chrome_trace(t), separators=(",", ":"))
    assert dump(tracer_a) == dump(tracer_b)


def test_trace_metrics_summary_deterministic():
    from tests.obs_helpers import run_mixed

    _c1, tracer_a, _r1, _s1 = run_mixed(seed=7)
    _c2, tracer_b, _r2, _s2 = run_mixed(seed=7)
    summary_a = tracer_a.metrics.summary()
    assert "span.op.lt_write" in summary_a["counters"]
    assert summary_a == tracer_b.metrics.summary()


def test_trace_different_seeds_differ():
    from repro.obs import to_jsonl
    from tests.obs_helpers import run_mixed

    _c1, tracer_a, _r1, _s1 = run_mixed(seed=7)
    _c2, tracer_b, _r2, _s2 = run_mixed(seed=8)
    assert to_jsonl(tracer_a) != to_jsonl(tracer_b)


# --------------------------------------------- engine stress property --


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_property_random_process_graphs_keep_time_monotone(data):
    """Random fork/join/timeout graphs: the clock never goes backwards
    and every spawned process completes."""
    sim = Simulator()
    observations = []
    spawned = []

    def worker(depth):
        steps = data.draw(st.integers(min_value=1, max_value=4))
        for _ in range(steps):
            observations.append(sim.now)
            choice = data.draw(st.integers(min_value=0, max_value=2))
            if choice == 0 or depth >= 3:
                yield sim.timeout(data.draw(
                    st.floats(min_value=0, max_value=5,
                              allow_nan=False)))
            elif choice == 1:
                child = sim.process(worker(depth + 1))
                spawned.append(child)
                yield child
            else:
                children = [sim.process(worker(depth + 1))
                            for _ in range(2)]
                spawned.extend(children)
                yield sim.all_of(children)
        observations.append(sim.now)

    root = sim.process(worker(0))
    spawned.append(root)
    sim.run()
    assert all(b >= a for a, b in zip(observations, observations[1:]))
    assert all(proc.processed for proc in spawned)


@given(delays=st.lists(
    st.floats(min_value=0, max_value=100, allow_nan=False),
    min_size=1, max_size=50,
))
@settings(max_examples=50, deadline=None)
def test_property_timeouts_fire_in_sorted_order(delays):
    sim = Simulator()
    fired = []

    def waiter(delay):
        yield sim.timeout(delay)
        fired.append(delay)

    for delay in delays:
        sim.process(waiter(delay))
    sim.run()
    assert fired == sorted(delays)
