"""Tests for LITE memory management: LMRs, handles, permissions, chunks."""

import pytest

from repro.cluster import Cluster
from repro.core import LiteContext, LiteError, Permission, lite_boot
from repro.hw import SimParams


@pytest.fixture
def env():
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    return cluster, kernels


def run(cluster, gen):
    return cluster.sim.run_process(gen)


def test_malloc_write_read_roundtrip_local(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u1")

    def proc():
        lh = yield from ctx.lt_malloc(4096)
        yield from ctx.lt_write(lh, 0, b"local-data")
        data = yield from ctx.lt_read(lh, 0, 10)
        return data

    assert run(cluster, proc()) == b"local-data"


def test_malloc_write_read_remote(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u1")

    def proc():
        lh = yield from ctx.lt_malloc(4096, name="remote-lmr", nodes=2)
        yield from ctx.lt_write(lh, 128, b"remote-data")
        data = yield from ctx.lt_read(lh, 128, 11)
        return data

    assert run(cluster, proc()) == b"remote-data"


def test_lmr_spread_across_nodes(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u1")

    def proc():
        lh = yield from ctx.lt_malloc(9000, name="spread", nodes=[2, 3])
        nodes = {c.node_id for c in lh.mapping.chunks}
        assert nodes == {2, 3}
        # Write a range spanning the node boundary (4500/4500 split).
        payload = bytes(range(256)) * 40  # 10240 > size; trim
        payload = payload[:6000]
        yield from ctx.lt_write(lh, 1000, payload)
        data = yield from ctx.lt_read(lh, 1000, 6000)
        return data == payload

    assert run(cluster, proc()) is True


def test_large_lmr_is_chunked(env):
    cluster, _ = env
    params = SimParams(lite_chunk_bytes=1 << 20)
    cluster2 = Cluster(2, params=params)
    kernels = lite_boot(cluster2)
    ctx = LiteContext(kernels[0], "u1")

    def proc():
        lh = yield from ctx.lt_malloc(3 * (1 << 20) + 5)
        assert len(lh.mapping.chunks) == 4
        payload = b"q" * ((1 << 20) + 100)  # crosses a chunk boundary
        yield from ctx.lt_write(lh, (1 << 20) - 50, payload)
        data = yield from ctx.lt_read(lh, (1 << 20) - 50, len(payload))
        return data == payload

    assert cluster2.sim.run_process(proc()) is True


def test_map_requires_grant(env):
    cluster, kernels = env
    alice = LiteContext(kernels[0], "alice")
    bob = LiteContext(kernels[1], "bob")

    def proc():
        yield from alice.lt_malloc(1024, name="private", nodes=1)
        with pytest.raises(LiteError, match="permission denied"):
            yield from bob.lt_map("private")
        yield from alice.lt_grant("private", "bob", Permission.READ)
        lh = yield from bob.lt_map("private", Permission.READ)
        return lh

    lh = run(cluster, proc())
    assert lh.perm == Permission.READ


def test_read_only_handle_rejects_write(env):
    cluster, kernels = env
    alice = LiteContext(kernels[0], "alice")
    bob = LiteContext(kernels[1], "bob")

    def proc():
        lh_master = yield from alice.lt_malloc(1024, name="ro", nodes=1)
        yield from alice.lt_write(lh_master, 0, b"x")
        yield from alice.lt_grant("ro", "bob", Permission.READ)
        lh = yield from bob.lt_map("ro", Permission.READ)
        with pytest.raises(PermissionError):
            yield from bob.lt_write(lh, 0, b"nope")
        data = yield from bob.lt_read(lh, 0, 1)
        return data

    assert run(cluster, proc()) == b"x"


def test_lh_is_per_process(env):
    """An lh minted for one context is useless to another (§4.1)."""
    cluster, kernels = env
    alice = LiteContext(kernels[0], "alice")
    eve = LiteContext(kernels[0], "eve")

    def proc():
        lh = yield from alice.lt_malloc(64)
        with pytest.raises(PermissionError, match="different process"):
            yield from eve.lt_read(lh, 0, 8)

    run(cluster, proc())


def test_map_unknown_name_fails(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u")

    def proc():
        with pytest.raises(LiteError, match="no LMR named"):
            yield from ctx.lt_map("does-not-exist")

    run(cluster, proc())


def test_duplicate_name_rejected(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u")

    def proc():
        yield from ctx.lt_malloc(64, name="dup")
        with pytest.raises(KeyError):
            yield from ctx.lt_malloc(64, name="dup")

    run(cluster, proc())


def test_free_invalidates_remote_mappings(env):
    cluster, kernels = env
    alice = LiteContext(kernels[0], "alice")
    bob = LiteContext(kernels[1], "bob")

    def proc():
        yield from alice.lt_malloc(1024, name="doomed", nodes=3)
        yield from alice.lt_grant("doomed", "bob", Permission.READ | Permission.WRITE)
        lh_bob = yield from bob.lt_map("doomed")
        yield from bob.lt_write(lh_bob, 0, b"ok")
        master_lh = None
        for handle in [h for h in []]:
            pass
        # Re-acquire the master handle by mapping as alice (master node).
        lh_alice = yield from alice.lt_map("doomed", Permission.full())
        yield from alice.lt_free(lh_alice)
        # Give the FREE_NOTIFY time to propagate.
        yield cluster.sim.timeout(50)
        with pytest.raises(PermissionError, match="freed"):
            yield from bob.lt_read(lh_bob, 0, 2)

    run(cluster, proc())


def test_free_releases_physical_memory(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u")
    target = kernels[1]
    before = target.node.memory.allocated_bytes

    def proc():
        lh = yield from ctx.lt_malloc(1 << 20, name="mem", nodes=2)
        mid = target.node.memory.allocated_bytes
        assert mid >= before + (1 << 20)
        yield from ctx.lt_free(lh)
        yield cluster.sim.timeout(100)

    run(cluster, proc())
    assert target.node.memory.allocated_bytes == before


def test_unmap_invalidates_handle(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u")

    def proc():
        lh = yield from ctx.lt_malloc(256, name="tmp")
        yield from ctx.lt_unmap(lh)
        with pytest.raises(PermissionError, match="unmapped"):
            yield from ctx.lt_read(lh, 0, 8)

    run(cluster, proc())


def test_out_of_bounds_access_rejected(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u")

    def proc():
        lh = yield from ctx.lt_malloc(100)
        with pytest.raises(ValueError):
            yield from ctx.lt_write(lh, 90, b"x" * 20)
        with pytest.raises(ValueError):
            yield from ctx.lt_read(lh, -1, 4)

    run(cluster, proc())


def test_free_requires_master_permission(env):
    cluster, kernels = env
    alice = LiteContext(kernels[0], "alice")
    bob = LiteContext(kernels[1], "bob")

    def proc():
        yield from alice.lt_malloc(64, name="guarded", nodes=1)
        yield from alice.lt_grant("guarded", "bob", Permission.READ | Permission.WRITE)
        lh = yield from bob.lt_map("guarded")
        with pytest.raises(PermissionError):
            yield from bob.lt_free(lh)

    run(cluster, proc())


def test_memset(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u")

    def proc():
        lh = yield from ctx.lt_malloc(1024, nodes=2)
        yield from ctx.lt_memset(lh, 10, 0xAB, 100)
        data = yield from ctx.lt_read(lh, 0, 120)
        return data

    data = run(cluster, proc())
    assert data[:10] == b"\x00" * 10
    assert data[10:110] == b"\xab" * 100
    assert data[110:] == b"\x00" * 10


def test_memcpy_between_remote_lmrs(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u")

    def proc():
        src = yield from ctx.lt_malloc(512, nodes=2)
        dst = yield from ctx.lt_malloc(512, nodes=3)
        yield from ctx.lt_write(src, 0, b"copy-me-around")
        yield from ctx.lt_memcpy(src, 0, dst, 100, 14)
        data = yield from ctx.lt_read(dst, 100, 14)
        return data

    assert run(cluster, proc()) == b"copy-me-around"


def test_memcpy_same_node_local_fastpath(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u")

    def proc():
        src = yield from ctx.lt_malloc(256, nodes=2)
        dst = yield from ctx.lt_malloc(256, nodes=2)
        yield from ctx.lt_write(src, 0, b"samebox")
        yield from ctx.lt_memcpy(src, 0, dst, 0, 7)
        data = yield from ctx.lt_read(dst, 0, 7)
        return data

    assert run(cluster, proc()) == b"samebox"


def test_memmove_matches_memcpy(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u")

    def proc():
        src = yield from ctx.lt_malloc(128, nodes=2)
        dst = yield from ctx.lt_malloc(128, nodes=2)
        yield from ctx.lt_write(src, 0, b"move-data")
        yield from ctx.lt_memmove(src, 0, dst, 0, 9)
        data = yield from ctx.lt_read(dst, 0, 9)
        return data

    assert run(cluster, proc()) == b"move-data"


def test_anonymous_lmr_not_in_directory(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u")

    def proc():
        lh = yield from ctx.lt_malloc(64)
        return lh

    lh = run(cluster, proc())
    assert lh.name.startswith("__anon:")
    assert lh.name not in cluster.manager.names


def test_malloc_zero_size_rejected(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u")

    def proc():
        with pytest.raises(ValueError):
            yield from ctx.lt_malloc(0)

    run(cluster, proc())
