"""Shared canonical traced scenarios for the observability test suite.

Each scenario builds a fresh 2-node cluster (after resetting the global
object-id counters, so wire-message digit counts — and therefore
simulated timings — are identical across runs in one process), runs any
untraced warm-up ops, installs a tracer, and drives a small canonical
workload.  Returns ``(cluster, tracer)``.
"""

import random

from repro.cluster import Cluster
from repro.core import LiteContext, LiteError, lite_boot, rpc_server_loop
from repro.determinism import reset_global_counters
from repro.fault import FaultInjector, FaultPlan
from repro.obs import install_tracer
from repro.recovery import RecoveryManager
from repro.stats import snapshot

__all__ = ["SCENARIOS", "run_scenario", "run_mixed"]


def _booted_pair():
    reset_global_counters()
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    contexts = [LiteContext(k, f"t{k.lite_id}") for k in kernels]
    return cluster, contexts


def _malloc_remote(cluster, ctx, warm_ops: int):
    """Allocate a remote 1MB LMR; optionally run untraced warm-up I/O."""
    state = {}

    def setup():
        state["lh"] = yield from ctx.lt_malloc(1 << 20, "gold", nodes=2)
        for _ in range(warm_ops):
            yield from ctx.lt_write(state["lh"], 0, b"w" * 64)
            yield from ctx.lt_read(state["lh"], 0, 64)

    cluster.run_process(setup())
    return state["lh"]


def scenario_write64():
    """One warm-cache 64B LT_write."""
    cluster, (ctx, _) = _booted_pair()
    lh = _malloc_remote(cluster, ctx, warm_ops=5)
    tracer = install_tracer(cluster)
    cluster.run_process(ctx.lt_write(lh, 0, b"x" * 64))
    return cluster, tracer


def scenario_read64_cold():
    """One 64B LT_read with cold RNIC caches (first touch of the LMR)."""
    cluster, (ctx, _) = _booted_pair()
    lh = _malloc_remote(cluster, ctx, warm_ops=0)
    tracer = install_tracer(cluster)
    cluster.run_process(ctx.lt_read(lh, 0, 64))
    return cluster, tracer


def scenario_read64_warm():
    """One 64B LT_read after warm-up traffic (steady-state caches)."""
    cluster, (ctx, _) = _booted_pair()
    lh = _malloc_remote(cluster, ctx, warm_ops=5)
    tracer = install_tracer(cluster)
    cluster.run_process(ctx.lt_read(lh, 0, 64))
    return cluster, tracer


def scenario_write_4chunk():
    """One 64KB LT_write fanning out over four 16KB chunks.

    Locks the multi-chunk op decomposition (per-chunk doorbells, fabric
    hops, and coalesced completion) that the vectorized fast path
    (``try_fast_post_vec``) must mirror arithmetically: any drift in the
    striping schedule shows up here before it can silently re-shape the
    vectorized cost chains.
    """
    from repro.hw.params import SimParams

    reset_global_counters()
    cluster = Cluster(2, params=SimParams(lite_chunk_bytes=16 * 1024))
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], f"t{kernels[0].lite_id}")
    state = {}

    def setup():
        state["lh"] = yield from ctx.lt_malloc(1 << 16, "gold4", nodes=2)
        yield from ctx.lt_write(state["lh"], 0, b"w" * (1 << 16))

    cluster.run_process(setup())
    tracer = install_tracer(cluster)
    cluster.run_process(ctx.lt_write(state["lh"], 0, b"x" * (1 << 16)))
    return cluster, tracer


def scenario_rpc_roundtrip():
    """One 64B RPC round-trip (client + one-shot server)."""
    cluster, (ctx_a, ctx_b) = _booted_pair()
    ctx_b.lt_reg_rpc(7)

    def server():
        call = yield from ctx_b.lt_recv_rpc(7)
        yield from ctx_b.lt_reply_rpc(call, call.input)

    def client():
        reply = yield from ctx_a.lt_rpc(2, 7, b"r" * 64)
        assert reply == b"r" * 64

    def driver():
        procs = [cluster.sim.process(server()),
                 cluster.sim.process(client())]
        yield cluster.sim.all_of(procs)

    tracer = install_tracer(cluster)
    cluster.run_process(driver())
    return cluster, tracer


def scenario_recovery_failover():
    """One full crash -> promote -> rejoin -> resync cycle, traced.

    A ``replicas=2`` LMR loses its primary's node to a seeded crash;
    the lease sweeper promotes a backup (retried client writes land on
    it through the unchanged handle), the node restarts, rejoins, and
    is resynced back into the replica set.  Fixed timers throughout, so
    the whole recovery protocol's span tree is golden-locked.
    """
    reset_global_counters()
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    sim = cluster.sim
    # Fabric node 2 is LITE 3: the primary's host (nodes=3 below).
    plan = FaultPlan().crash(2, 2000.0, restart_at_us=6000.0)
    injector = FaultInjector(cluster, plan).install()
    injector.arm_lite(kernels, keepalive_interval_us=500.0, miss_limit=2)
    recovery = RecoveryManager(
        cluster, kernels, lease_ttl_us=1500.0,
        renew_interval_us=400.0, sweep_interval_us=300.0,
    ).arm()
    ctx = LiteContext(kernels[0], "rec")
    state = {}

    def setup():
        state["lh"] = yield from ctx.lt_malloc(
            4096, name="gold-rec", nodes=3, replicas=2
        )
        yield from ctx.lt_write(state["lh"], 0, b"a" * 64)

    cluster.run_process(setup())
    tracer = install_tracer(cluster)

    def driver():
        lh = state["lh"]
        for index in range(6):
            for attempt in range(6):
                try:
                    yield from ctx.lt_write(
                        lh, index * 64, bytes([index + 1]) * 64
                    )
                    break
                except LiteError:
                    yield sim.timeout(400.0 * (attempt + 1))
            yield sim.timeout(700.0)
        # Settle past the restart so rejoin + resync land in the trace.
        if sim.now < 9500.0:
            yield sim.timeout(9500.0 - sim.now)
        data = yield from ctx.lt_read(lh, 0, 64)
        assert data == bytes([1]) * 64
        recovery.stop()

    cluster.run_process(driver())
    assert recovery.promotions >= 1, "golden run must exercise failover"
    assert recovery.rejoins >= 1, "golden run must exercise rejoin"
    assert recovery.resyncs >= 1, "golden run must exercise resync"
    return cluster, tracer


def run_mixed(seed: int = 7, n_ops: int = 32, plan=None, traced: bool = True,
              drain_us: float = 500.0):
    """A fig06/fig10-style mixed workload on 3 nodes: one-sided writes
    and reads of varying sizes (including loopback), plus RPC
    round-trips, optionally under a :class:`FaultPlan`.

    Returns ``(cluster, tracer, records, snaps)`` where each record is
    ``(label, start_us, latency_us)`` for one completed client op and
    ``snaps`` is the ``(baseline, final)`` :func:`repro.stats.snapshot`
    pair bracketing the traced window.  After the driver finishes the
    sim runs ``drain_us`` further so in-flight acks and retries quiesce.
    """
    reset_global_counters()
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    sim = cluster.sim
    client = LiteContext(kernels[0], "mixc")
    server = LiteContext(kernels[1], "mixs")
    if plan is not None:
        FaultInjector(cluster, plan, seed=seed).install()
    sim.process(rpc_server_loop(server, 1, lambda d: bytes(reversed(d))))
    tracer = install_tracer(cluster) if traced else None
    base_snap = snapshot(cluster)
    rng = random.Random(seed)
    records = []
    sizes = (8, 64, 512, 4096)

    def driver():
        yield sim.timeout(1)
        lh = yield from client.lt_malloc(1 << 16, nodes=3)
        loop_lh = yield from client.lt_malloc(8192, nodes=1)
        for index in range(n_ops):
            yield sim.timeout(rng.random() * 5)
            size = sizes[index % len(sizes)]
            start = sim.now
            try:
                kind = index % 4
                if kind == 0:
                    yield from client.lt_write(lh, 0, b"w" * size)
                    label = "op.lt_write"
                elif kind == 1:
                    yield from client.lt_read(lh, 0, size)
                    label = "op.lt_read"
                elif kind == 2:
                    yield from client.lt_rpc(2, 1, b"m" * size,
                                             max_reply=8192,
                                             timeout=3000.0, retries=4)
                    label = "op.lt_rpc"
                else:
                    yield from client.lt_write(loop_lh, 0, b"l" * size)
                    label = "op.lt_write"
            except LiteError:
                continue  # acceptable only under an active fault plan
            records.append((label, start, sim.now - start))

    cluster.run_process(driver())
    sim.run(until=sim.now + drain_us)
    return cluster, tracer, records, (base_snap, snapshot(cluster))


SCENARIOS = {
    "write64": scenario_write64,
    "read64_cold": scenario_read64_cold,
    "read64_warm": scenario_read64_warm,
    "write_4chunk": scenario_write_4chunk,
    "rpc_roundtrip": scenario_rpc_roundtrip,
    "recovery_failover": scenario_recovery_failover,
}


def run_scenario(name: str):
    return SCENARIOS[name]()
