"""Randomized stress tests with strong end-state invariants.

The whole module is tier-2: marked slow, deselected from the default
pytest run (see pyproject.toml); run with ``-m slow``.
"""

import random
import struct

import pytest

pytestmark = pytest.mark.slow

from repro.apps.dsm import LiteDsm, PAGE_SIZE
from repro.cluster import Cluster
from repro.core import LiteContext, Permission, lite_boot
from repro.verbs import Access, Opcode, SendWR, Sge, WcStatus


def test_dsm_randomized_writers_respect_release_consistency():
    """Random acquire/write/release traffic from every node: after each
    global barrier, every node reads exactly the last-released value of
    every slot (MRSW release consistency)."""
    rng = random.Random(99)
    cluster = Cluster(4)
    kernels = lite_boot(cluster)
    dsm = LiteDsm(kernels, "stress", 16 * PAGE_SIZE)
    cluster.run_process(dsm.build())
    sim = cluster.sim
    n_slots = 8
    n_rounds = 6
    # Ground truth, updated only at release points.
    committed = {slot: b"\x00" * 8 for slot in range(n_slots)}
    plan = []  # per round: {slot: (writer, value)}
    for round_index in range(n_rounds):
        round_plan = {}
        for slot in rng.sample(range(n_slots), k=rng.randint(1, n_slots)):
            writer = rng.randrange(4)
            value = struct.pack("<Q", rng.getrandbits(64))
            round_plan[slot] = (writer, value)
        plan.append(round_plan)

    def node_proc(index):
        node = dsm.nodes[index]
        for round_index, round_plan in enumerate(plan):
            mine = {slot: value for slot, (writer, value)
                    in round_plan.items() if writer == index}
            if mine:
                for slot, value in mine.items():
                    addr = slot * PAGE_SIZE
                    yield from node.acquire(addr, 8)
                    yield from node.write(addr, value)
                yield from node.release()
            yield from node.barrier(f"r{round_index}")
            # Everyone validates the full committed state.
            for slot in range(n_slots):
                expect = (round_plan[slot][1] if slot in round_plan
                          else committed[slot])
                data = yield from node.read(slot * PAGE_SIZE, 8)
                assert data == expect, (
                    f"node {index} round {round_index} slot {slot}: "
                    f"{data!r} != {expect!r}"
                )
            yield from node.barrier(f"r{round_index}-done")
            if index == 0:
                for slot, (_writer, value) in round_plan.items():
                    committed[slot] = value
            yield from node.barrier(f"r{round_index}-commit")

    def driver():
        procs = [sim.process(node_proc(i)) for i in range(4)]
        yield sim.all_of(procs)

    cluster.run_process(driver())


def test_verbs_concurrent_ops_one_cqe_per_signaled_wr():
    """A randomized storm of signaled/unsignaled ops: exactly one CQE
    per signaled WR, all successful, payloads intact."""
    rng = random.Random(5)
    cluster = Cluster(2)

    def proc():
        a, b = cluster[0], cluster[1]
        pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
        mr_a = yield from a.device.reg_mr(pd_a, 1 << 16, Access.ALL)
        mr_b = yield from b.device.reg_mr(pd_b, 1 << 16, Access.ALL)
        send_cq = a.device.create_cq()
        qps = []
        for _ in range(3):
            qa = a.device.create_qp(pd_a, "RC", send_cq=send_cq)
            qb = b.device.create_qp(pd_b, "RC")
            a.device.connect(qa, qb)
            qps.append(qa)
        signaled = 0
        procs = []
        expectations = []
        for index in range(60):
            qp = qps[rng.randrange(3)]
            size = rng.choice([8, 64, 700, 4096])
            offset = rng.randrange((1 << 16) - size)
            payload = bytes([index % 256]) * size
            mr_a.write(0, payload)
            is_signaled = rng.random() < 0.5
            if is_signaled:
                signaled += 1
            wr = SendWR(
                Opcode.WRITE,
                inline_data=payload,
                remote_addr=mr_b.base_addr + offset,
                rkey=mr_b.rkey,
                signaled=is_signaled,
            )
            procs.append(qp.post_send(wr))
            expectations.append((offset, payload))
        results = yield cluster.sim.all_of(procs)
        assert all(status is WcStatus.SUCCESS for status in results.values())
        completions = send_cq.poll(max_entries=1000)
        assert len(completions) == signaled
        assert all(wc.ok for wc in completions)
        # Last-writer-wins per offset is unverifiable with overlaps;
        # check a non-overlapping suffix instead: rewrite disjoint slots.
        checks = []
        for index in range(8):
            offset = index * 5000
            payload = bytes([200 + index]) * 128
            wr = SendWR(Opcode.WRITE, inline_data=payload,
                        remote_addr=mr_b.base_addr + offset,
                        rkey=mr_b.rkey, signaled=False)
            checks.append((offset, payload, qps[index % 3].post_send(wr)))
        yield cluster.sim.all_of([proc for _o, _p, proc in checks])
        for offset, payload, _proc in checks:
            assert mr_b.read(offset, 128) == payload
        return True

    assert cluster.run_process(proc()) is True


def test_lite_mixed_op_storm_preserves_data():
    """Concurrent writes/reads/atomics/RPCs from three nodes against
    shared LMRs: final counters and buffers are exactly as expected."""
    rng = random.Random(11)
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    sim = cluster.sim
    n_counters = 4
    increments = {i: 0 for i in range(n_counters)}
    from repro.core import rpc_server_loop

    echo_ctx = LiteContext(kernels[2], "echo")
    sim.process(rpc_server_loop(echo_ctx, 5, lambda d: d))

    def setup():
        creator = LiteContext(kernels[0], "creator")
        yield from creator.lt_malloc(
            4096, name="storm", nodes=2,
            default_perm=Permission.READ | Permission.WRITE,
        )
        yield sim.timeout(2)

    cluster.run_process(setup())

    def worker(node_index, worker_index, ops):
        ctx = LiteContext(kernels[node_index], f"w{node_index}-{worker_index}")
        lh = yield from ctx.lt_map("storm")
        for op_index in range(ops):
            kind = rng.random()
            if kind < 0.4:
                counter = rng.randrange(n_counters)
                increments[counter] += 1
                yield from ctx.lt_fetch_add(lh, counter * 8, 1)
            elif kind < 0.7:
                slot = 512 + (node_index * 4 + worker_index) * 64
                yield from ctx.lt_write(
                    lh, slot, f"{node_index}:{worker_index}:{op_index}".encode()
                )
            elif kind < 0.9:
                yield from ctx.lt_read(lh, 512, 64)
            else:
                reply = yield from ctx.lt_rpc(3, 5, b"ping", max_reply=32)
                assert reply == b"ping"

    def driver():
        procs = [
            sim.process(worker(node, w, 25))
            for node in range(3) for w in range(2)
        ]
        yield sim.all_of(procs)
        reader = LiteContext(kernels[0], "reader")
        lh = yield from reader.lt_map("storm")
        values = []
        for counter in range(n_counters):
            data = yield from reader.lt_read(lh, counter * 8, 8)
            values.append(struct.unpack("<Q", data)[0])
        return values

    values = cluster.run_process(driver())
    assert values == [increments[i] for i in range(n_counters)]
