"""Unit tests for simulation resources (Resource, Store, Signal, Gauge)."""

import pytest

from repro.sim import (
    Gauge,
    PriorityResource,
    Resource,
    Signal,
    SimulationError,
    Simulator,
    Store,
)


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    granted = []

    def user(label, hold):
        yield res.request()
        granted.append((label, sim.now))
        yield sim.timeout(hold)
        res.release()

    sim.process(user("a", 10))
    sim.process(user("b", 10))
    sim.process(user("c", 10))
    sim.run()
    assert granted[0] == ("a", 0.0)
    assert granted[1] == ("b", 0.0)
    assert granted[2] == ("c", 10.0)


def test_resource_fifo_waiters():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(label):
        yield res.request()
        order.append(label)
        yield sim.timeout(1)
        res.release()

    for label in "abc":
        sim.process(user(label))
    sim.run()
    assert order == ["a", "b", "c"]


def test_release_without_request_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_priority_resource_serves_high_priority_first():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        yield res.request(priority=0)
        yield sim.timeout(10)
        res.release()

    def user(label, priority, delay):
        yield sim.timeout(delay)
        yield res.request(priority=priority)
        order.append(label)
        yield sim.timeout(1)
        res.release()

    sim.process(holder())
    sim.process(user("low", 5, 1))
    sim.process(user("high", 1, 2))
    sim.run()
    assert order == ["high", "low"]


def test_store_fifo_and_blocking_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((sim.now, item))

    def producer():
        store.put("x")
        yield sim.timeout(5)
        store.put("y")
        store.put("z")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(0.0, "x"), (5.0, "y"), (5.0, "z")]


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put(1)
    assert store.try_get() == 1
    assert store.try_get() is None


def test_signal_wakes_all_waiters():
    sim = Simulator()
    signal = Signal(sim)
    woken = []

    def waiter(label):
        value = yield signal.wait()
        woken.append((label, value, sim.now))

    def firer():
        yield sim.timeout(3)
        assert signal.fire("v") == 2

    sim.process(waiter("a"))
    sim.process(waiter("b"))
    sim.process(firer())
    sim.run()
    assert sorted(woken) == [("a", "v", 3.0), ("b", "v", 3.0)]


def test_gauge_time_average():
    sim = Simulator()
    gauge = Gauge(sim)

    def proc():
        gauge.set(10)
        yield sim.timeout(5)
        gauge.set(0)
        yield sim.timeout(5)

    sim.run_process(proc())
    assert gauge.time_average() == pytest.approx(5.0)


def test_gauge_add():
    sim = Simulator()
    gauge = Gauge(sim, value=1.0)
    gauge.add(2.0)
    assert gauge.value == 3.0
