"""Tests for the sharded KV store (one-sided GETs + RPC PUTs)."""

import pytest

from repro.apps.kvstore import LiteKVClient, LiteKVServer, kv_shard_of
from repro.cluster import Cluster
from repro.core import lite_boot
from repro.workloads import FacebookKV, ZipfSampler


@pytest.fixture
def kv_env():
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    servers = [LiteKVServer(kernels[1], 0), LiteKVServer(kernels[2], 1)]

    def setup():
        for server in servers:
            yield from server.start()
        yield cluster.sim.timeout(1)

    cluster.run_process(setup())
    client = LiteKVClient(kernels[0], servers)
    return cluster, client, servers


def test_put_get_roundtrip(kv_env):
    cluster, client, _servers = kv_env

    def proc():
        yield from client.put(b"alpha", b"value-one")
        value = yield from client.get(b"alpha")
        return value

    assert cluster.run_process(proc()) == b"value-one"


def test_get_missing_key_returns_none(kv_env):
    cluster, client, _servers = kv_env

    def proc():
        value = yield from client.get(b"ghost")
        return value

    assert cluster.run_process(proc()) is None


def test_overwrite_bumps_version_and_reads_latest(kv_env):
    cluster, client, _servers = kv_env

    def proc():
        yield from client.put(b"k", b"v1")
        yield from client.put(b"k", b"v2-longer")
        value = yield from client.get(b"k")
        return value

    assert cluster.run_process(proc()) == b"v2-longer"


def test_gets_are_one_sided_after_warmup(kv_env):
    cluster, client, servers = kv_env

    def proc():
        yield from client.put(b"hot", b"cached")
        for _ in range(10):
            value = yield from client.get(b"hot")
            assert value == b"cached"

    cluster.run_process(proc())
    # PUT primed the location cache: all 10 GETs were one-sided reads.
    assert client.onesided_gets == 10
    assert client.rpc_lookups == 0
    assert all(server.lookups == 0 for server in servers)


def test_cold_get_does_one_lookup_then_caches(kv_env):
    cluster, client, servers = kv_env
    other = LiteKVClient(client.ctx.kernel, servers, principal="cold")

    def proc():
        yield from client.put(b"warm", b"data")
        for _ in range(5):
            value = yield from other.get(b"warm")
            assert value == b"data"

    cluster.run_process(proc())
    assert other.rpc_lookups == 1
    assert other.onesided_gets == 5


def test_stale_cache_detected_and_healed(kv_env):
    cluster, client, servers = kv_env
    reader = LiteKVClient(client.ctx.kernel, servers, principal="reader")

    def proc():
        yield from client.put(b"mut", b"aaaa")
        first = yield from reader.get(b"mut")
        assert first == b"aaaa"
        # Overwrite: a new record at a new log offset.
        yield from client.put(b"mut", b"bbbbbbbb")
        second = yield from reader.get(b"mut")
        return second

    assert cluster.run_process(proc()) == b"bbbbbbbb"
    # Reader's cached location pointed at the old record; header
    # validation caught it (version/length) and re-looked-up.
    assert reader.validation_retries >= 0
    assert reader.rpc_lookups >= 1


def test_delete(kv_env):
    cluster, client, _servers = kv_env

    def proc():
        yield from client.put(b"temp", b"x")
        ok = yield from client.delete(b"temp")
        assert ok
        value = yield from client.get(b"temp")
        return value

    assert cluster.run_process(proc()) is None


def test_sharding_spreads_keys(kv_env):
    cluster, client, servers = kv_env
    keys = [f"key-{i}".encode() for i in range(40)]

    def proc():
        for key in keys:
            yield from client.put(key, b"v:" + key)
        for key in keys:
            value = yield from client.get(key)
            assert value == b"v:" + key

    cluster.run_process(proc())
    assert servers[0].puts > 0 and servers[1].puts > 0
    assert servers[0].puts + servers[1].puts == 40


def test_shard_of_is_stable():
    assert kv_shard_of(b"abc", 4) == kv_shard_of(b"abc", 4)
    assert 0 <= kv_shard_of(b"anything", 3) < 3


def test_zipfian_facebook_workload_mostly_one_sided(kv_env):
    """Under a realistic skewed workload, the vast majority of GETs are
    served with a single one-sided read (the RDMA-KV design's point)."""
    cluster, client, _servers = kv_env
    import random

    workload = FacebookKV(seed=77, max_value=1024)
    sampler = ZipfSampler(50, rng=random.Random(7))
    keys = [f"obj{i}".encode() for i in range(50)]
    values = {key: b"d" * workload.value_size() for key in keys}

    def proc():
        for key in keys:
            yield from client.put(key, values[key])
        hits = 0
        for _ in range(300):
            key = keys[sampler.sample()]
            got = yield from client.get(key)
            assert got == values[key]
            hits += 1
        return hits

    assert cluster.run_process(proc()) == 300
    total_gets = client.onesided_gets
    assert total_gets == 300            # every GET ended one-sided
    assert client.rpc_lookups == 0      # all locations came from PUTs
