"""Structural invariants every recorded trace must satisfy.

Golden tests pin exact bytes for canonical ops; these tests instead run
richer workloads (a fig06/fig10-style mix, and the same mix under a
seeded fault plan) and check properties that must hold for *any* trace:
spans nest, exclusive resources never double-book, the breakdown is an
exact partition of each op's latency, span byte counts reconcile with
the cluster's own counters, and tracing never perturbs simulated time.
"""

import pytest

from repro.fault import FaultPlan
from repro.hw import DEFAULT_PARAMS
from repro.obs import install_tracer, op_breakdown, set_enabled
from repro.obs.trace import is_enabled

from tests.obs_helpers import run_mixed

EPS = 1e-9


@pytest.fixture(scope="module")
def mixed():
    """One fault-free mixed run shared by the read-only invariants."""
    return run_mixed(seed=7)


def _chaos_plan():
    """Flapping link on a data node plus uniform packet loss."""
    return (FaultPlan()
            .link_flap(2, start_us=200.0, end_us=1500.0,
                       down_us=30.0, up_us=120.0)
            .packet_loss(0.08, start_us=100.0, end_us=2500.0))


def _check_nesting(tracer, allow_late: bool) -> None:
    for span in tracer.spans:
        parent = span.parent
        if span.end is None or parent is None:
            continue
        assert parent.start - EPS <= span.start, \
            f"{span!r} starts before its parent {parent!r}"
        if span.late:
            if not allow_late:
                # The one legitimate fault-free case: the RPC send path
                # hands its WR to an async sender and returns, so that
                # kernel.post outlives rpc.append / rpc.reply_stack.
                assert span.name == "kernel.post" and \
                    parent.name in ("rpc.append", "rpc.reply_stack"), \
                    f"unexpected late span in a fault-free run: {span!r}"
            continue
        if parent.end is not None:
            assert span.end <= parent.end + EPS, \
                f"{span!r} ends after its parent {parent!r}"


def _check_exclusive(tracer) -> None:
    # fabric.serialize = TX-link occupancy: at most one per source node.
    by_node = {}
    for span in tracer.spans:
        if span.name == "fabric.serialize" and span.end is not None:
            by_node.setdefault(span.node, []).append((span.start, span.end))
    assert by_node, "workload produced no serialization spans"
    for node, ivals in by_node.items():
        ivals.sort()
        for (_s0, e0), (s1, _e1) in zip(ivals, ivals[1:]):
            assert s1 >= e0 - EPS, \
                f"TX link of node {node} double-booked: {e0} > {s1}"
    # rnic.proc includes queueing; active occupancy starts q_us later
    # and may overlap at most rnic_processing_units deep.
    units = DEFAULT_PARAMS.rnic_processing_units
    by_node = {}
    for span in tracer.spans:
        if span.name == "rnic.proc" and span.end is not None:
            busy_from = span.start + (span.attrs or {}).get("q_us", 0.0)
            by_node.setdefault(span.node, []).append((busy_from, span.end))
    for node, ivals in by_node.items():
        edges = [(start, 1) for start, _ in ivals]
        edges += [(end, -1) for _, end in ivals]
        depth = 0
        for _at, step in sorted(edges, key=lambda e: (e[0], e[1])):
            depth += step
            assert depth <= units, \
                f"node {node} ran {depth} WQEs on {units} RNIC units"


def test_spans_nest_within_parents(mixed):
    _cluster, tracer, records, _snaps = mixed
    assert len(records) >= 30 and len(tracer.spans) > 300
    _check_nesting(tracer, allow_late=False)
    # After the drain the only open spans are blocked waits: the RPC
    # server parked in reply-and-receive for a call that never comes.
    blocked_ok = {"cpu.wait", "rpc.wait", "op.lt_recv_rpc",
                  "op.lt_reply_recv"}
    stuck = [s for s in tracer.spans
             if s.end is None and s.name not in blocked_ok]
    assert not stuck, f"fault-free run left unfinished work: {stuck}"


def test_exclusive_resources_never_overlap(mixed):
    _cluster, tracer, _records, _snaps = mixed
    _check_exclusive(tracer)


def test_breakdown_is_exact_partition_of_latency(mixed):
    """Per-op category times sum to the op's span duration, and the op
    span duration equals the latency the driver measured around the
    call — so the breakdown explains 100% of observed latency."""
    _cluster, tracer, records, _snaps = mixed
    roots = [s for s in tracer.op_roots()
             if s.parent is None and s.end is not None]
    by_start = {round(s.start, 9): s for s in roots}
    matched = 0
    for label, start, latency in records:
        root = by_start.get(round(start, 9))
        if root is None:
            continue
        assert root.name == label
        assert root.duration == pytest.approx(latency, abs=EPS)
        parts = op_breakdown(root, tracer)
        assert sum(parts.values()) == pytest.approx(root.duration, abs=1e-6)
        matched += 1
    assert matched >= 30, f"only matched {matched} ops to their spans"


def test_span_bytes_reconcile_with_snapshot(mixed):
    """Summing fabric.hop span bytes per node reproduces the port
    tx/rx counters exactly (loopback hops count for both sides)."""
    cluster, tracer, _records, (base, final) = mixed
    delta = final.delta(base)
    tx = {n: 0 for n in delta.nodes}
    rx = {n: 0 for n in delta.nodes}
    for span in tracer.spans:
        if span.name != "fabric.hop":
            continue
        dst = (span.attrs or {}).get("dst")
        if span.end is not None and span.duration > 0:
            tx[span.node] += span.nbytes
        if span.outcome == "ok":
            rx[dst] += span.nbytes
    for node_id, stats in delta.nodes.items():
        assert tx[node_id] == stats.tx_bytes, f"tx mismatch on {node_id}"
        assert rx[node_id] == stats.rx_bytes, f"rx mismatch on {node_id}"
    assert sum(tx.values()) == delta.fabric_bytes


def test_snapshot_op_latency_matches_spans(mixed):
    """The per-op histograms riding on Snapshot agree with the raw
    spans: same op count, and p50/p99 bracket the observed extremes."""
    _cluster, tracer, _records, (_base, final) = mixed
    assert final.op_latency, "tracer installed => op_latency populated"
    for name, snap in final.op_latency.items():
        durs = [s.duration for s in tracer.op_roots()
                if s.name == name and s.end is not None]
        assert snap.count == len(durs)
        # Buckets are power-of-two wide, so any percentile is exact to
        # within one bucket: it lands inside [min/2, max*2).
        assert min(durs) / 2 <= snap.percentile(50) <= max(durs) * 2
        assert snap.percentile(50) <= snap.percentile(99) + EPS
        assert snap.percentile(99) <= max(durs) * 2
        assert snap.min == pytest.approx(min(durs))
        assert snap.max == pytest.approx(max(durs))
    assert "p50" in final.summary() or "n=" in final.summary()


def test_invariants_hold_under_faults():
    """A seeded chaos run (flapping link + 8% loss) still yields a
    structurally valid trace: spans nest (late retries tolerated),
    exclusive resources never double-book, and the fault machinery
    visibly fired (dropped hops or non-success WQE outcomes)."""
    _cluster, tracer, records, _snaps = run_mixed(seed=11, plan=_chaos_plan())
    assert records, "every op failed under the fault plan"
    _check_nesting(tracer, allow_late=True)
    _check_exclusive(tracer)
    hops = [s for s in tracer.spans if s.name == "fabric.hop"]
    wqes = [s for s in tracer.spans if s.name == "qp.wqe"]
    faulted = (any(s.outcome == "dropped" for s in hops)
               or any(s.end is not None and s.outcome != "success"
                      for s in wqes))
    assert faulted, "fault plan never produced a visible fault in spans"


def test_tracing_off_runs_timing_identical():
    """The tracer records in simulated time but never schedules events:
    a traced run and an untraced run of the same workload produce
    exactly equal per-op latencies and the same final clock."""
    cluster_off, tracer_off, records_off, _ = run_mixed(seed=7, traced=False)
    cluster_on, tracer_on, records_on, _ = run_mixed(seed=7, traced=True)
    assert tracer_off is None and tracer_on is not None
    assert records_off == records_on  # exact float equality
    assert cluster_off.sim.now == cluster_on.sim.now


def test_kill_switch_makes_install_a_noop():
    from repro.cluster import Cluster

    assert is_enabled()
    set_enabled(False)
    try:
        cluster = Cluster(2)
        assert install_tracer(cluster) is None
        assert cluster.sim.tracer is None
        assert all(n.memory.tracer is None for n in cluster.nodes)
    finally:
        set_enabled(True)
