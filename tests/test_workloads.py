"""Tests for the workload generators (stand-ins for the paper's traces)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    FacebookKV,
    ZipfSampler,
    degree_histogram,
    generate_corpus,
    powerlaw_graph,
    vocabulary,
)


# ------------------------------------------------------------- Zipf --


def test_zipf_is_deterministic_with_seeded_rng():
    a = ZipfSampler(100, rng=random.Random(1)).sample_many(50)
    b = ZipfSampler(100, rng=random.Random(1)).sample_many(50)
    assert a == b


def test_zipf_head_dominates():
    sampler = ZipfSampler(1000, s=1.0, rng=random.Random(2))
    draws = sampler.sample_many(20_000)
    head_share = sum(1 for d in draws if d < 10) / len(draws)
    assert head_share > 0.30


def test_zipf_zero_exponent_is_uniformish():
    sampler = ZipfSampler(10, s=0.0, rng=random.Random(3))
    draws = sampler.sample_many(20_000)
    counts = [draws.count(i) for i in range(10)]
    assert max(counts) < 2 * min(counts)


def test_zipf_validates_inputs():
    with pytest.raises(ValueError):
        ZipfSampler(0)
    with pytest.raises(ValueError):
        ZipfSampler(5, s=-1)


@given(n=st.integers(min_value=1, max_value=200))
@settings(max_examples=30, deadline=None)
def test_property_zipf_samples_in_range(n):
    sampler = ZipfSampler(n, rng=random.Random(4))
    for draw in sampler.sample_many(50):
        assert 0 <= draw < n


# ------------------------------------------------------ Facebook KV --


def test_fb_key_sizes_in_published_range():
    workload = FacebookKV(seed=5)
    sizes = [workload.key_size() for _ in range(5000)]
    assert all(16 <= s <= 250 for s in sizes)
    median = sorted(sizes)[len(sizes) // 2]
    assert 25 <= median <= 40  # Atikoglu: median ~31 B


def test_fb_value_sizes_bimodal_with_tail():
    workload = FacebookKV(seed=6)
    sizes = [workload.value_size() for _ in range(10_000)]
    assert all(1 <= s <= 4096 for s in sizes)
    small_share = sum(1 for s in sizes if s <= 100) / len(sizes)
    tail_share = sum(1 for s in sizes if s > 2048) / len(sizes)
    assert small_share > 0.5
    assert 0.01 < tail_share < 0.15


def test_fb_inter_arrival_mean_and_amplification():
    workload = FacebookKV(seed=7, mean_inter_arrival_us=1000.0)
    gaps = [workload.inter_arrival() for _ in range(20_000)]
    mean = sum(gaps) / len(gaps)
    assert 850 < mean < 1150
    workload2 = FacebookKV(seed=7, mean_inter_arrival_us=1000.0)
    amplified = [workload2.inter_arrival(4.0) for _ in range(20_000)]
    assert 3.5 < (sum(amplified) / len(amplified)) / mean < 4.5


def test_fb_arrival_times_monotone():
    workload = FacebookKV(seed=8)
    times = workload.arrival_times(100)
    assert all(b > a for a, b in zip(times, times[1:]))


# ------------------------------------------------------------ graphs --


def test_powerlaw_graph_deterministic():
    assert powerlaw_graph(500, 5, seed=1) == powerlaw_graph(500, 5, seed=1)
    assert powerlaw_graph(500, 5, seed=1) != powerlaw_graph(500, 5, seed=2)


def test_powerlaw_graph_no_self_loops_or_duplicates():
    edges = powerlaw_graph(1000, 6)
    assert len(edges) == len(set(edges))
    assert all(src != dst for src, dst in edges)


def test_powerlaw_graph_every_vertex_has_out_edges():
    edges = powerlaw_graph(400, 4)
    sources = {src for src, _dst in edges}
    # All but vertex 0 (the seed) emit edges.
    assert sources >= set(range(1, 400))


def test_powerlaw_degree_tail():
    edges = powerlaw_graph(3000, 8)
    hist = degree_histogram(edges, "in")
    mean_degree = len(edges) / 3000
    assert max(hist) > 15 * mean_degree


def test_powerlaw_validates():
    with pytest.raises(ValueError):
        powerlaw_graph(1, 2)
    with pytest.raises(ValueError):
        powerlaw_graph(10, 0)


# -------------------------------------------------------------- text --


def test_corpus_deterministic_and_sized():
    a = generate_corpus(10, 50, seed=9)
    b = generate_corpus(10, 50, seed=9)
    assert a == b
    assert len(a) == 10
    assert all(len(doc.split()) == 50 for doc in a)


def test_corpus_word_frequencies_zipfian():
    from collections import Counter

    corpus = generate_corpus(50, 200, vocab_size=500, seed=10)
    counts = Counter()
    for doc in corpus:
        counts.update(doc.split())
    frequencies = sorted(counts.values(), reverse=True)
    # Top word appears far more often than the median word.
    assert frequencies[0] > 10 * frequencies[len(frequencies) // 2]


def test_vocabulary_unique():
    words = vocabulary(500)
    assert len(set(words)) == 500


def test_corpus_validates():
    with pytest.raises(ValueError):
        generate_corpus(0, 10)
