"""Tests for LITE-Log (distributed atomic logging, §8.1)."""

import struct

import pytest

from repro.apps.litelog import LiteLog, LogCleaner, LogEntry, LogWriter
from repro.cluster import Cluster
from repro.core import LiteContext, lite_boot


@pytest.fixture
def env():
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    return cluster, kernels


def test_entry_roundtrip():
    entry = LogEntry(b"payload-bytes")
    blob = entry.encoded()
    decoded, end = LogEntry.decode(blob, 0)
    assert decoded.payload == b"payload-bytes"
    assert end == len(blob)


def test_entry_corruption_detected():
    blob = bytearray(LogEntry(b"x" * 32).encoded())
    blob[1] ^= 0xFF  # flip a length byte
    with pytest.raises(ValueError):
        LogEntry.decode(bytes(blob), 0)


def test_commit_is_remote_and_atomic(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "logger")

    def proc():
        # Log hosted on node 3; writer on node 1: fully one-sided.
        log = yield from LiteLog.create(ctx, "L1", 1 << 20, home_node=3)
        writer = LogWriter(log, writer_id=1)
        writer.append(b"entry-one")
        writer.append(b"entry-two")
        offset = yield from writer.commit()
        tail = yield from log.read_tail()
        count = yield from log.committed_count()
        blob = yield from writer.read_transaction(offset, tail - offset)
        return offset, tail, count, blob

    offset, tail, count, blob = cluster.run_process(proc())
    assert offset == 0
    assert count == 1
    entry1, next_off = LogEntry.decode(blob, 0)
    entry2, rec_off = LogEntry.decode(blob, next_off)
    assert (entry1.payload, entry2.payload) == (b"entry-one", b"entry-two")
    txid, magic = struct.unpack_from("<QI", blob, rec_off)
    assert magic == 0xC0FFEE01
    assert tail == len(blob)


def test_concurrent_writers_get_disjoint_space(env):
    cluster, kernels = env
    sim = cluster.sim
    offsets = []

    def writer_proc(ctx, writer_id, n_commits):
        log = yield from LiteLog.open(ctx, "L2")
        writer = LogWriter(log, writer_id=writer_id)
        for index in range(n_commits):
            writer.append(f"w{writer_id}-c{index}".encode() * 3)
            offset = yield from writer.commit()
            size = 0  # recompute committed blob size
            offsets.append((offset, writer_id, index))

    def proc():
        creator = LiteContext(kernels[0], "creator")
        yield from LiteLog.create(creator, "L2", 1 << 20, home_node=2)
        procs = [
            sim.process(writer_proc(LiteContext(kernels[i], f"w{i}"), i, 10))
            for i in (0, 1, 2)
        ]
        yield sim.all_of(procs)

    cluster.run_process(proc())
    starts = sorted(offset for offset, _w, _i in offsets)
    assert len(starts) == 30
    assert len(set(starts)) == 30  # all reservations disjoint


def test_committed_counter_matches_commits(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "logger")

    def proc():
        log = yield from LiteLog.create(ctx, "L3", 1 << 18, home_node=2)
        writer = LogWriter(log)
        for index in range(25):
            writer.append(bytes([index]) * 16)
            yield from writer.commit()
        count = yield from log.committed_count()
        return count

    assert cluster.run_process(proc()) == 25


def test_commit_without_entries_rejected(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "logger")

    def proc():
        log = yield from LiteLog.create(ctx, "L4", 1 << 16)
        writer = LogWriter(log)
        with pytest.raises(ValueError):
            yield from writer.commit()

    cluster.run_process(proc())


def test_cleaner_reclaims_committed_space(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "logger")

    def proc():
        log = yield from LiteLog.create(ctx, "L5", 1 << 18, home_node=2)
        writer = LogWriter(log)
        for _ in range(10):
            writer.append(b"z" * 100)
            yield from writer.commit()
        cleaner = LogCleaner(log, batch_bytes=1 << 16)
        reclaimed = yield from cleaner.clean_once()
        head = yield from log.read_head()
        return reclaimed, head

    reclaimed, head = cluster.run_process(proc())
    assert reclaimed > 0
    assert head == reclaimed


def test_cleaner_lock_excludes_concurrent_cleaners(env):
    cluster, kernels = env
    sim = cluster.sim
    results = []

    def clean_proc(ctx):
        log = yield from LiteLog.open(ctx, "L6")
        cleaner = LogCleaner(log)
        got = yield from cleaner.clean_once()
        results.append(got)

    def proc():
        creator = LiteContext(kernels[0], "creator")
        log = yield from LiteLog.create(creator, "L6", 1 << 18, home_node=3)
        writer = LogWriter(log)
        for _ in range(20):
            writer.append(b"q" * 200)
            yield from writer.commit()
        procs = [
            sim.process(clean_proc(LiteContext(kernels[i], f"c{i}")))
            for i in (0, 1)
        ]
        yield sim.all_of(procs)

    cluster.run_process(proc())
    # One cleaner won the test-and-set; the other got nothing.
    assert sorted(results)[0] == 0
    assert sorted(results)[1] > 0


def test_log_wraps_around(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "logger")

    def proc():
        log = yield from LiteLog.create(ctx, "L7", 4096, home_node=2)
        writer = LogWriter(log)
        for index in range(10):
            writer.append(bytes([index]) * 700)
            yield from writer.commit()
        count = yield from log.committed_count()
        return count

    # 10 commits of ~720 B in a 4 KB log: must wrap repeatedly, no error.
    assert cluster.run_process(proc()) == 10


def test_commit_throughput_is_hundreds_of_k_per_sec(env):
    """§8.1: ~833 K single-entry (16 B) commits/s from two nodes."""
    cluster, kernels = env
    sim = cluster.sim
    committed = [0]

    def writer_proc(ctx, writer_id):
        log = yield from LiteLog.open(ctx, "L8")
        writer = LogWriter(log, writer_id=writer_id)
        while sim.now < 5000.0:  # 5 ms of simulated commits
            writer.append(b"x" * 16)
            yield from writer.commit()
            committed[0] += 1

    def proc():
        creator = LiteContext(kernels[0], "creator")
        yield from LiteLog.create(creator, "L8", 1 << 22, home_node=3)
        procs = []
        for node_index in (0, 1):  # two committing nodes, 2 threads each
            for thread in range(2):
                ctx = LiteContext(kernels[node_index], f"w{node_index}{thread}")
                procs.append(
                    sim.process(writer_proc(ctx, node_index * 10 + thread))
                )
        yield sim.all_of(procs)

    cluster.run_process(proc())
    rate_per_sec = committed[0] / 5e-3
    assert rate_per_sec > 300_000
