"""Tests for LITE RPC (§5): rings, IMM encoding, replies, failures."""

import pytest

from repro.cluster import Cluster
from repro.core import LiteContext, RpcError, RpcTimeoutError, lite_boot, rpc_server_loop
from repro.core.protocol import (
    IMM_KIND_REPLY,
    IMM_KIND_REQUEST,
    pack_request_imm,
    unpack_imm,
)
from repro.core.rpc import RpcEngine
from repro.hw import SimParams


@pytest.fixture
def env():
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    client = LiteContext(kernels[0], "client")
    server = LiteContext(kernels[1], "server")
    return cluster, client, server


def run(cluster, gen):
    return cluster.sim.run_process(gen)


def echo_server(cluster, server, func_id=1):
    cluster.sim.process(rpc_server_loop(server, func_id, lambda data: b"echo:" + data))


def test_basic_rpc_roundtrip(env):
    cluster, client, server = env
    echo_server(cluster, server)

    def proc():
        yield cluster.sim.timeout(1)
        reply = yield from client.lt_rpc(2, 1, b"hello", max_reply=64)
        return reply

    assert run(cluster, proc()) == b"echo:hello"


def test_rpc_payload_bytes_are_exact(env):
    cluster, client, server = env
    cluster.sim.process(
        rpc_server_loop(server, 1, lambda data: bytes(reversed(data)))
    )

    def proc():
        yield cluster.sim.timeout(1)
        payload = bytes(range(200))
        reply = yield from client.lt_rpc(2, 1, payload, max_reply=256)
        return reply

    assert run(cluster, proc()) == bytes(reversed(bytes(range(200))))


def test_many_sequential_rpcs_reuse_ring(env):
    cluster, client, server = env
    echo_server(cluster, server)

    def proc():
        yield cluster.sim.timeout(1)
        for index in range(50):
            reply = yield from client.lt_rpc(
                2, 1, f"m{index}".encode(), max_reply=64
            )
            assert reply == f"echo:m{index}".encode()
        engine = client.kernel.rpc
        assert len(engine.client_rings) == 1
        return engine.calls_sent

    assert run(cluster, proc()) == 50


def test_concurrent_rpcs_from_many_threads(env):
    cluster, client, server = env
    echo_server(cluster, server)
    sim = cluster.sim
    results = []

    def worker(index):
        reply = yield from client.lt_rpc(2, 1, f"w{index}".encode(), max_reply=64)
        results.append(reply)

    def proc():
        yield sim.timeout(1)
        procs = [sim.process(worker(i)) for i in range(16)]
        yield sim.all_of(procs)

    run(cluster, proc())
    assert sorted(results) == sorted(f"echo:w{i}".encode() for i in range(16))


def test_rpc_ring_wraps_correctly():
    """Force tiny rings so requests wrap the physical ring end."""
    params = SimParams(lite_rpc_ring_bytes=1 << 12)  # 4 KB ring
    cluster = Cluster(2, params=params)
    kernels = lite_boot(cluster)
    client = LiteContext(kernels[0], "c")
    server = LiteContext(kernels[1], "s")
    cluster.sim.process(rpc_server_loop(server, 1, lambda d: d))

    def proc():
        yield cluster.sim.timeout(1)
        for index in range(40):
            payload = bytes([index]) * 300
            reply = yield from client.lt_rpc(2, 1, payload, max_reply=512)
            assert reply == payload
        return True

    assert cluster.sim.run_process(proc()) is True


def test_rpc_flow_control_blocks_until_server_drains():
    """A ring smaller than the burst forces head-pointer flow control."""
    params = SimParams(lite_rpc_ring_bytes=1 << 12)
    cluster = Cluster(2, params=params)
    kernels = lite_boot(cluster)
    client = LiteContext(kernels[0], "c")
    server = LiteContext(kernels[1], "s")
    sim = cluster.sim

    def slow_handler(data):
        yield sim.timeout(30)
        return data

    sim.process(rpc_server_loop(server, 1, slow_handler))
    replies = []

    def worker(index):
        reply = yield from client.lt_rpc(2, 1, bytes([index]) * 900, max_reply=1024)
        replies.append(reply[0])

    def proc():
        yield sim.timeout(1)
        procs = [sim.process(worker(i)) for i in range(12)]
        yield sim.all_of(procs)

    cluster.sim.run_process(proc())
    assert sorted(replies) == list(range(12))


def test_unknown_function_raises(env):
    cluster, client, _server = env

    def proc():
        yield cluster.sim.timeout(1)
        with pytest.raises(RpcError, match="no RPC function"):
            yield from client.lt_rpc(2, 42, b"x", max_reply=64)

    run(cluster, proc())


def test_reply_too_big_raises(env):
    cluster, client, server = env
    cluster.sim.process(rpc_server_loop(server, 1, lambda d: b"y" * 1000))

    def proc():
        yield cluster.sim.timeout(1)
        with pytest.raises(RpcError, match="max_reply"):
            yield from client.lt_rpc(2, 1, b"x", max_reply=100)

    run(cluster, proc())


def test_rpc_timeout_fires_when_server_never_replies(env):
    cluster, client, server = env
    server.lt_reg_rpc(7)  # registered but nobody serves it

    def proc():
        yield cluster.sim.timeout(1)
        with pytest.raises(RpcTimeoutError):
            yield from client.lt_rpc(2, 7, b"x", max_reply=64, timeout=500.0)

    run(cluster, proc())


def test_double_reply_rejected(env):
    cluster, client, server = env
    server.lt_reg_rpc(1)

    def server_proc():
        call = yield from server.lt_recv_rpc(1)
        yield from server.lt_reply_rpc(call, b"once")
        with pytest.raises(RpcError, match="already replied"):
            yield from server.lt_reply_rpc(call, b"twice")

    def proc():
        sproc = cluster.sim.process(server_proc())
        yield cluster.sim.timeout(1)
        reply = yield from client.lt_rpc(2, 1, b"x", max_reply=64)
        yield sproc
        return reply

    assert run(cluster, proc()) == b"once"


def test_kernel_level_rpc_is_faster_than_user_level(env):
    cluster, client, server = env
    kernels = client.kernel, server.kernel
    kl_client = LiteContext(kernels[0], "kl", kernel_level=True)
    echo_server(cluster, server)
    sim = cluster.sim

    def measure(ctx):
        # Warm up, then measure.
        yield from ctx.lt_rpc(2, 1, b"warm", max_reply=64)
        start = sim.now
        for _ in range(5):
            yield from ctx.lt_rpc(2, 1, b"ping", max_reply=64)
        return (sim.now - start) / 5

    def proc():
        yield sim.timeout(1)
        user_lat = yield from measure(client)
        kl_lat = yield from measure(kl_client)
        return user_lat, kl_lat

    user_lat, kl_lat = run(cluster, proc())
    assert kl_lat < user_lat
    # The crossing overhead is fractions of a microsecond (§5.2).
    assert user_lat - kl_lat < 1.0


def test_multicast_rpc():
    cluster = Cluster(4)
    kernels = lite_boot(cluster)
    client = LiteContext(kernels[0], "c")
    sim = cluster.sim
    for index in (1, 2, 3):
        server = LiteContext(kernels[index], f"s{index}")
        sim.process(
            rpc_server_loop(server, 9, lambda d, i=index: f"n{i}:".encode() + d)
        )

    def proc():
        yield sim.timeout(1)
        replies = yield from client.lt_multicast_rpc([2, 3, 4], 9, b"all")
        return replies

    replies = cluster.sim.run_process(proc())
    assert replies == [b"n1:all", b"n2:all", b"n3:all"]


def test_bidirectional_rpc(env):
    """Both nodes act as client and server simultaneously."""
    cluster, a_ctx, b_ctx = env
    sim = cluster.sim
    cluster.sim.process(rpc_server_loop(b_ctx, 1, lambda d: b"B" + d))
    cluster.sim.process(rpc_server_loop(a_ctx, 2, lambda d: b"A" + d))

    def proc():
        yield sim.timeout(1)
        r1 = yield from a_ctx.lt_rpc(2, 1, b"x", max_reply=16)
        r2 = yield from b_ctx.lt_rpc(1, 2, b"y", max_reply=16)
        return r1, r2

    assert run(cluster, proc()) == (b"Bx", b"Ay")


def test_lt_send_and_recv_msg(env):
    cluster, a_ctx, b_ctx = env
    sim = cluster.sim
    got = []

    def receiver():
        src, data = yield from b_ctx.lt_recv_msg()
        got.append((src, data))

    def proc():
        sim.process(receiver())
        yield sim.timeout(1)
        yield from a_ctx.lt_send(2, b"one-way")
        yield sim.timeout(20)

    run(cluster, proc())
    assert got == [(1, b"one-way")]


# ---------------------------------------------------------------- IMM --


def test_imm_roundtrip():
    imm = pack_request_imm(17, 123456)
    kind, func, offset = unpack_imm(imm)
    assert (kind, func, offset) == (IMM_KIND_REQUEST, 17, 123456)


def test_imm_bounds():
    with pytest.raises(ValueError):
        pack_request_imm(64, 0)
    with pytest.raises(ValueError):
        pack_request_imm(1, 1 << 24)


def test_imm_reply_kind():
    from repro.core.protocol import pack_reply_imm

    imm = pack_reply_imm((1 << 30) - 1)
    kind, _func, token = unpack_imm(imm)
    assert kind == IMM_KIND_REPLY
    assert token == (1 << 30) - 1


def test_rpc_memory_is_reclaimed(env):
    """Reply slots are freed after each call: no allocator leak."""
    cluster, client, server = env
    echo_server(cluster, server)
    memory = client.kernel.node.memory

    def proc():
        yield cluster.sim.timeout(1)
        yield from client.lt_rpc(2, 1, b"x", max_reply=128)
        before = memory.allocated_bytes
        for _ in range(20):
            yield from client.lt_rpc(2, 1, b"x", max_reply=128)
        return before, memory.allocated_bytes

    before, after = run(cluster, proc())
    assert after == before


def test_reply_to_dead_marked_client_drops_instead_of_killing_server(env):
    """A reply toward a dead-marked requester is dropped, never fatal.

    The keep-alive verdict (or a server restart mid-exchange) can flip a
    client to dead between its request arriving and our reply going out.
    The reply-direction writes must swallow that ENODEV and count a drop
    instead of letting LiteError escape the server's poll loop.
    """
    cluster, client, server = env
    echo_server(cluster, server)

    def proc():
        yield cluster.sim.timeout(1)
        reply = yield from client.lt_rpc(2, 1, b"warm", max_reply=64)
        assert reply == b"echo:warm"
        server.kernel.peers[client.kernel.lite_id].alive = False
        with pytest.raises(RpcTimeoutError):
            yield from client.lt_rpc(2, 1, b"lost", max_reply=64,
                                     timeout=150.0)
        assert server.kernel.rpc.replies_dropped >= 1
        # Verdict reversed (a probe got through): the next call must be
        # answered normally — the server never lost its loop.
        server.kernel.peers[client.kernel.lite_id].alive = True
        reply = yield from client.lt_rpc(2, 1, b"back", max_reply=64,
                                         timeout=500.0, retries=1)
        assert reply == b"echo:back"
        return True

    assert run(cluster, proc())
