"""Run-to-completion fast path: equivalence and cost-table invalidation.

The contract under test (docs/INTERNALS.md §13): with the fast path on,
every observable — final simulated time, the event sequence counter,
and the whole-cluster :class:`~repro.stats.Snapshot` — is *bit-identical*
to a run with ``REPRO_NO_FASTPATH=1``.  The property test drives
randomized mixed workloads (one-sided ops of many sizes, RPCs, and a
seeded fault plan) through both modes and compares at quiescence.

Comparison happens only after ``sim.run()`` drains every in-flight op:
the fast path accounts counters at commit time while the generator path
accounts them as events arrive, so mid-flight snapshots may legally
differ — end states may not.
"""

import dataclasses
import os
import random

import pytest

from repro.cluster import Cluster
from repro.determinism import reset_global_counters
from repro.core import (
    LiteContext,
    LiteError,
    RpcTimeoutError,
    lite_boot,
    rpc_server_loop,
)
from repro.fault import FaultInjector, FaultPlan
from repro.hw.params import MB, SimParams
from repro.recovery import RecoveryManager
from repro.stats import snapshot
from repro.verbs import Access
from repro.verbs.fastpath import CostTable, fp_stats, prime_qp, try_fast_post


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------
def _with_fastpath(enabled):
    """Context-manager-free env toggle (Simulator reads it at __init__)."""
    if enabled:
        os.environ.pop("REPRO_NO_FASTPATH", None)
    else:
        os.environ["REPRO_NO_FASTPATH"] = "1"


def _run_workload(seed: int, fastpath: bool, faults: bool):
    """One randomized mixed workload; returns the end-state observables."""
    saved = os.environ.get("REPRO_NO_FASTPATH")
    _with_fastpath(fastpath)
    # Process-global id counters feed token digit counts into control-
    # message sizes (see repro.determinism); rewind them so the fast and
    # slow runs see byte-identical wire traffic.
    reset_global_counters()
    try:
        cluster = Cluster(3)
        kernels = lite_boot(cluster)
        if faults:
            plan = FaultPlan.random(
                seed, [node.node_id for node in cluster.nodes], 40000.0,
                crashes=0, flaps=1, loss_rate=0.02,
            )
            FaultInjector(cluster, plan).install()
        ctx = LiteContext(kernels[0], "prop", kernel_level=True)
        server = LiteContext(kernels[2], "srv")
        cluster.sim.process(rpc_server_loop(server, 1, lambda data: data))

        holder = {}

        def setup():
            holder["lh"] = yield from ctx.lt_malloc(1 * MB, nodes=2)

        cluster.run_process(setup())
        lh = holder["lh"]
        rng = random.Random(seed)
        errors = []

        def driver():
            yield cluster.sim.timeout(5)
            for index in range(80):
                kind = rng.randrange(4)
                size = rng.choice((8, 64, 512, 4096, 32768))
                offset = rng.randrange(0, 64) * 1024
                try:
                    if kind == 0:
                        yield from ctx.lt_write(
                            lh, offset, bytes([index & 0xFF]) * size
                        )
                    elif kind == 1:
                        yield from ctx.lt_read(lh, offset, size)
                    elif kind == 2:
                        reply = yield from ctx.lt_rpc(
                            3, 1, b"q" * min(size, 1024), max_reply=2048
                        )
                        errors.append(len(reply))
                    else:
                        kernels[0].onesided.raw_write_async(
                            kernels[1].lite_id,
                            holder_addr + offset,
                            b"a" * min(size, 256),
                        )
                except (LiteError, RpcTimeoutError) as exc:
                    errors.append(type(exc).__name__)

        sink = kernels[1].node.memory.alloc(256 * 1024)
        holder_addr = sink.addr
        cluster.run_process(driver())
        cluster.sim.run()  # drain in-flight tails before comparing
        snap = dataclasses.asdict(snapshot(cluster))
        return cluster.sim.now, cluster.sim._seq, snap, errors
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_FASTPATH", None)
        else:
            os.environ["REPRO_NO_FASTPATH"] = saved


# ---------------------------------------------------------------------------
# Equivalence property: fast on == fast off, bit for bit
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [7, 23, 91])
@pytest.mark.parametrize("faults", [False, True])
def test_fastpath_equivalence_randomized(seed, faults):
    fast = _run_workload(seed, fastpath=True, faults=faults)
    slow = _run_workload(seed, fastpath=False, faults=faults)
    assert fast[0] == slow[0], "final sim time diverged"
    assert fast[1] == slow[1], "event sequence counter diverged"
    assert fast[2] == slow[2], "cluster snapshot diverged"
    assert fast[3] == slow[3], "op outcomes diverged"


def _run_crash_burst(fastpath: bool):
    """A write burst whose target node crashes (and restarts) mid-burst,
    with keep-alive + lease recovery armed; returns end-state observables."""
    saved = os.environ.get("REPRO_NO_FASTPATH")
    _with_fastpath(fastpath)
    reset_global_counters()
    try:
        cluster = Cluster(3)
        kernels = lite_boot(cluster)
        sim = cluster.sim
        # LITE 2 hosts the primary chunks and dies mid-burst, then
        # restarts into a remapped world (its old LMR was promoted away).
        plan = FaultPlan().crash(1, 1500.0, restart_at_us=6000.0)
        injector = FaultInjector(cluster, plan).install()
        injector.arm_lite(kernels, keepalive_interval_us=500.0, miss_limit=2)
        recovery = RecoveryManager(
            cluster, kernels, lease_ttl_us=1500.0,
            renew_interval_us=400.0, sweep_interval_us=300.0,
        ).arm()
        ctx = LiteContext(kernels[0], "burst", kernel_level=True)
        holder = {}

        def setup():
            holder["lh"] = yield from ctx.lt_malloc(
                256 * 1024, nodes=2, replicas=1
            )

        cluster.run_process(setup())
        lh = holder["lh"]
        outcomes = []

        def driver():
            for index in range(60):
                offset = (index * 64) % (256 * 1024)
                try:
                    yield from ctx.lt_write(
                        lh, offset, bytes([index & 0xFF]) * 64
                    )
                    outcomes.append(index)
                except LiteError as exc:
                    outcomes.append((type(exc).__name__, exc.errno))
                    yield sim.timeout(200.0)
                yield sim.timeout(40.0)
            # Settle past restart + rejoin so fence/re-prime paths run.
            if sim.now < 10000.0:
                yield sim.timeout(10000.0 - sim.now)
            recovery.stop()

        # No trailing sim.run(): the keep-alive/lease loops never exit,
        # and the driver's settle window already drains in-flight tails.
        cluster.run_process(driver())
        snap = dataclasses.asdict(snapshot(cluster))
        return (sim.now, sim._seq, snap, outcomes,
                recovery.promotions, recovery.rejoins)
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_FASTPATH", None)
        else:
            os.environ["REPRO_NO_FASTPATH"] = saved


def test_crash_mid_burst_fastpath_ab_identity():
    """Regression for the fast-path/fault interplay (ISSUE 7 satellite):
    a QP entering ERROR or its peer crashing/rejoining must fence every
    primed CostTable, so a mid-burst crash produces bit-identical sim
    time, event order, snapshots, and op outcomes with the fast path on
    vs ``REPRO_NO_FASTPATH=1`` — a stale table committing against the
    dead (or post-restart remapped) peer would diverge all four."""
    commits_before = fp_stats.commits
    fast = _run_crash_burst(fastpath=True)
    assert fp_stats.commits > commits_before, \
        "the burst must actually exercise fast-path commits"
    slow = _run_crash_burst(fastpath=False)
    assert fast[0] == slow[0], "final sim time diverged"
    assert fast[1] == slow[1], "event sequence counter diverged"
    assert fast[2] == slow[2], "cluster snapshot diverged"
    assert fast[3] == slow[3], "op outcomes diverged"
    assert fast[4:] == slow[4:], "recovery lifecycle diverged"
    assert fast[4] >= 1, "the crash must trigger a promotion"
    assert fast[5] >= 1, "the restart must trigger a rejoin"


def _run_retry_storm(fastpath: bool):
    """Loss-driven RPC retry storm against the reply cache.

    Seeded packet loss drops some reply writes on the wire, so the
    client times out and resends an already-answered token — the server
    must answer from the reply cache (hit → cached resend) or, when the
    handler is still running, drop the duplicate (in-flight
    suppression).  Timed calls stay on the generator client path by
    design, but their ring appends still commit fused WRITE_IMM chains
    and the server's recv/reply sides still fuse, so this drives the
    duplicate-suppression machinery through the fast path under faults.
    Returns end-state observables + cache hit/install counters.
    """
    saved = os.environ.get("REPRO_NO_FASTPATH")
    _with_fastpath(fastpath)
    reset_global_counters()
    try:
        cluster = Cluster(3)
        kernels = lite_boot(cluster)
        sim = cluster.sim
        plan = FaultPlan().packet_loss(0.08, start_us=10.0)
        FaultInjector(cluster, plan).install()
        client = LiteContext(kernels[0], "storm-cli")
        server = LiteContext(kernels[2], "storm-srv")
        sim.process(rpc_server_loop(server, 9, lambda data: data[:16] * 2))
        outcomes = []

        def driver():
            yield sim.timeout(5)
            for index in range(120):
                payload = bytes([index & 0xFF]) * 96
                try:
                    reply = yield from client.lt_rpc(
                        3, 9, payload, max_reply=1024,
                        timeout=700.0, retries=4,
                    )
                    outcomes.append(len(reply))
                except (LiteError, RpcTimeoutError) as exc:
                    outcomes.append(type(exc).__name__)
                    yield sim.timeout(60.0)

        cluster.run_process(driver())
        sim.run()  # drain straggler retries / late replies
        snap = dataclasses.asdict(snapshot(cluster))
        cache = kernels[2].rpc._reply_cache
        return (sim.now, sim._seq, snap, outcomes,
                cache.stats.hits, cache.stats.installs)
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_FASTPATH", None)
        else:
            os.environ["REPRO_NO_FASTPATH"] = saved


def test_retry_storm_reply_cache_fastpath_ab_identity():
    """ISSUE 8 satellite: retried tokens must hit the (now LruDict)
    reply cache identically with the fast path on and off — a fused
    request delivery that mis-handled duplicate suppression would skew
    outcomes, sim time, or the cache counters between the modes."""
    fast = _run_retry_storm(fastpath=True)
    slow = _run_retry_storm(fastpath=False)
    assert fast[0] == slow[0], "final sim time diverged"
    assert fast[1] == slow[1], "event sequence counter diverged"
    assert fast[2] == slow[2], "cluster snapshot diverged"
    assert fast[3] == slow[3], "op outcomes diverged"
    assert fast[4:] == slow[4:], "reply-cache activity diverged"
    assert fast[4] > 0, \
        "the storm must actually resend answered tokens (cache hits)"


def _run_ring_wrap_burst(fastpath: bool):
    """An RPC burst on a deliberately tiny ring, forcing mid-burst wraps.

    A wrapped append lands its imm-carrying remainder at the ring start
    while the imm offset names the pre-wrap tail; ``fp_rpc_gate``'s
    offset-mismatch detector must drop the primed chain and leave the
    wrap on the generator path.  Returns end-state observables.
    """
    saved = os.environ.get("REPRO_NO_FASTPATH")
    _with_fastpath(fastpath)
    reset_global_counters()
    try:
        params = SimParams(lite_rpc_ring_bytes=4096)
        cluster = Cluster(2, params=params)
        kernels = lite_boot(cluster)
        sim = cluster.sim
        client = LiteContext(kernels[0], "wrap-cli")
        server = LiteContext(kernels[1], "wrap-srv")
        sim.process(rpc_server_loop(server, 5, lambda data: data[::-1]))
        payload_sizes = (256, 512, 128, 384)
        outcomes = []

        def driver():
            yield sim.timeout(5)
            for index in range(80):
                payload = bytes([index & 0xFF]) * payload_sizes[index % 4]
                reply = yield from client.lt_rpc(
                    2, 5, payload, max_reply=2048, timeout=None
                )
                outcomes.append((len(reply), reply[:4]))

        cluster.run_process(driver())
        sim.run()
        # Arithmetic guarantee that the burst wrapped (several times):
        # every entry is header + payload bytes, all through one ring.
        appended = sum(20 + size for size in payload_sizes) * 20
        assert appended > 5 * params.lite_rpc_ring_bytes
        snap = dataclasses.asdict(snapshot(cluster))
        return sim.now, sim._seq, snap, outcomes
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_FASTPATH", None)
        else:
            os.environ["REPRO_NO_FASTPATH"] = saved


def test_ring_wrap_mid_burst_fastpath_ab_identity():
    """ISSUE 8 satellite: ring wrap must invalidate the primed chain.
    With a 4 KB ring the burst wraps every ~13 calls; the fused path
    must decline exactly the wrapping appends (generator path handles
    the two-part write) and stay bit-identical to the slow run."""
    commits_before = fp_stats.commits + fp_stats.chain_commits
    attempts_before = fp_stats.attempts + fp_stats.chain_attempts
    fast = _run_ring_wrap_burst(fastpath=True)
    commits = fp_stats.commits + fp_stats.chain_commits - commits_before
    attempts = fp_stats.attempts + fp_stats.chain_attempts - attempts_before
    assert commits > 0, "the burst must exercise fused commits"
    assert attempts > commits, \
        "wrapping appends must decline the fused chain"
    slow = _run_ring_wrap_burst(fastpath=False)
    assert fast[0] == slow[0], "final sim time diverged"
    assert fast[1] == slow[1], "event sequence counter diverged"
    assert fast[2] == slow[2], "cluster snapshot diverged"
    assert fast[3] == slow[3], "op outcomes diverged"


def test_kill_switch_disables_commits():
    saved = os.environ.get("REPRO_NO_FASTPATH")
    os.environ["REPRO_NO_FASTPATH"] = "1"
    try:
        cluster = Cluster(2)
        kernels = lite_boot(cluster)
        assert cluster.sim.fastpath_enabled is False
        before = fp_stats.commits
        ctx = LiteContext(kernels[0], "ks", kernel_level=True)
        holder = {}

        def setup():
            holder["lh"] = yield from ctx.lt_malloc(64 * 1024, nodes=2)

        cluster.run_process(setup())

        def driver():
            yield from ctx.lt_write(holder["lh"], 0, b"x" * 64)

        cluster.run_process(driver())
        assert fp_stats.commits == before
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_FASTPATH", None)
        else:
            os.environ["REPRO_NO_FASTPATH"] = saved


# ---------------------------------------------------------------------------
# Cost-table keying and invalidation
# ---------------------------------------------------------------------------
def _connected_qp(kernels):
    """A shared QP from kernel 0 toward kernel 1 (primed at connect)."""
    peer = kernels[0].peers[kernels[1].lite_id]
    return peer.qps[0]


def test_cost_table_built_at_connect_and_stable():
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    qp = _connected_qp(kernels)
    table = qp._fp_table
    assert isinstance(table, CostTable), "connect() should prime the table"
    assert table.valid()
    builds = fp_stats.table_builds
    prime_qp(qp)  # re-prime: still valid, no rebuild
    assert qp._fp_table is table
    assert fp_stats.table_builds == builds


def test_cost_table_invalidated_by_mr_dereg():
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    qp = _connected_qp(kernels)
    table = qp._fp_table
    assert table is not None and table.valid()

    # Deregister a virtual MR on the *remote* device: its RNIC's
    # cost_version bumps, so the table (which folds that RNIC's cache
    # objects and MR memo) must die.
    rdev = kernels[1].device
    holder = {}

    def reg():
        holder["mr"] = yield from rdev.reg_mr(
            kernels[1].pd, 64 * 1024, Access.ALL
        )

    cluster.run_process(reg())
    assert table.valid(), "registration alone must not invalidate"

    def dereg():
        yield from rdev.dereg_mr(holder["mr"])

    cluster.run_process(dereg())
    assert not table.valid()
    rebuilt = type(table)(qp)  # a fresh build sees the new stamp
    assert rebuilt.valid()


def test_cost_table_invalidated_by_param_mutation():
    # Fresh SimParams: the default is a process-wide singleton, and the
    # doubled knob below must not leak into later tests' clusters.
    cluster = Cluster(2, params=SimParams())
    kernels = lite_boot(cluster)
    qp = _connected_qp(kernels)
    table = qp._fp_table
    assert table is not None and table.valid()
    kernels[1].params.rnic_wqe_process_us *= 2.0
    assert not table.valid(), "remote SimParams mutation must invalidate"


def test_cost_table_invalidated_by_cache_resize():
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    qp = _connected_qp(kernels)
    table = qp._fp_table
    assert table is not None and table.valid()
    kernels[0].device.rnic.resize_caches(key_entries=32)
    assert not table.valid(), "local cache resize must invalidate"


def test_fast_post_rejects_tracer_and_disabled():
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    qp = _connected_qp(kernels)
    # Tracer installed → fast path must refuse (trace goldens depend on
    # the generator path's span tree).
    cluster.sim.tracer = object.__new__(type("T", (), {}))
    try:
        from repro.verbs.wr import Opcode, SendWR

        wr = SendWR(opcode=Opcode.WRITE, inline_data=b"x" * 16,
                    remote_addr=0, rkey=0)
        assert try_fast_post(qp, wr) is None
    finally:
        cluster.sim.tracer = None
