"""Additional edge-condition coverage across the stack."""

import pytest

from repro.apps.dsm import LiteDsm, PAGE_SIZE
from repro.apps.graph import LiteGraph, PartitionedGraph, pagerank_reference
from repro.apps.mapreduce import LiteMR
from repro.cluster import Cluster
from repro.core import LiteContext, Permission, lite_boot
from repro.verbs import Access, Opcode, RecvWR, SendWR, Sge, WcStatus
from repro.workloads import generate_corpus, powerlaw_graph


# -------------------------------------------------------------- verbs --


def test_uc_write_completes_without_ack():
    """UC writes complete locally (no ACK wait): faster completion but
    the same data placement."""
    cluster = Cluster(2)
    sim = cluster.sim

    def measure(qp_type):
        local = Cluster(2)

        def proc():
            a, b = local[0], local[1]
            pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
            mr_a = yield from a.device.reg_mr(pd_a, 4096, Access.ALL)
            mr_b = yield from b.device.reg_mr(pd_b, 4096, Access.ALL)
            qa = a.device.create_qp(pd_a, qp_type)
            qb = b.device.create_qp(pd_b, qp_type)
            a.device.connect(qa, qb)
            mr_a.write(0, b"uc-data!")
            # Warm up.
            yield qa.post_send(SendWR(
                Opcode.WRITE, sgl=[Sge(mr_a, 0, 8)],
                remote_addr=mr_b.base_addr, rkey=mr_b.rkey))
            start = local.sim.now
            yield qa.post_send(SendWR(
                Opcode.WRITE, sgl=[Sge(mr_a, 0, 8)],
                remote_addr=mr_b.base_addr + 64, rkey=mr_b.rkey))
            elapsed = local.sim.now - start
            return elapsed, mr_b.read(64, 8)

        return local.run_process(proc())

    rc_time, rc_data = measure("RC")
    uc_time, uc_data = measure("UC")
    assert rc_data == uc_data == b"uc-data!"
    assert uc_time < rc_time  # no ACK round


def test_same_qp_writes_land_in_posting_order():
    """RC ordering guarantee: two writes to the same address from one
    QP always leave the second value, even with cache-miss jitter."""
    cluster = Cluster(2)

    def proc():
        a, b = cluster[0], cluster[1]
        pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
        mr_a = yield from a.device.reg_mr(pd_a, 4096, Access.ALL)
        mr_b = yield from b.device.reg_mr(pd_b, 4096, Access.ALL)
        qa = a.device.create_qp(pd_a, "RC")
        qb = b.device.create_qp(pd_b, "RC")
        a.device.connect(qa, qb)
        mr_a.write(0, b"first!")
        mr_a.write(100, b"second")
        p1 = qa.post_send(SendWR(
            Opcode.WRITE, sgl=[Sge(mr_a, 0, 6)],
            remote_addr=mr_b.base_addr, rkey=mr_b.rkey, signaled=False))
        p2 = qa.post_send(SendWR(
            Opcode.WRITE, sgl=[Sge(mr_a, 100, 6)],
            remote_addr=mr_b.base_addr, rkey=mr_b.rkey, signaled=False))
        yield cluster.sim.all_of([p1, p2])
        return mr_b.read(0, 6)

    assert cluster.run_process(proc()) == b"second"


def test_dereg_invalidates_rnic_cached_state():
    cluster = Cluster(2)

    def proc():
        a, b = cluster[0], cluster[1]
        pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
        mr_a = yield from a.device.reg_mr(pd_a, 4096, Access.ALL)
        mr_b = yield from b.device.reg_mr(pd_b, 4096, Access.ALL)
        qa = a.device.create_qp(pd_a, "RC")
        qb = b.device.create_qp(pd_b, "RC")
        a.device.connect(qa, qb)
        # Warm the remote caches.
        yield qa.post_send(SendWR(
            Opcode.WRITE, sgl=[Sge(mr_a, 0, 8)],
            remote_addr=mr_b.base_addr, rkey=mr_b.rkey))
        rkey = mr_b.rkey
        assert b.rnic.key_cache.contains(rkey)
        yield from b.device.dereg_mr(mr_b)
        assert not b.rnic.key_cache.contains(rkey)
        # Accessing the dead rkey now fails remotely.
        status = yield qa.post_send(SendWR(
            Opcode.WRITE, sgl=[Sge(mr_a, 0, 8)],
            remote_addr=0, rkey=rkey))
        return status

    assert cluster.run_process(proc()) is WcStatus.REM_INV_REQ_ERR


# ---------------------------------------------------------------- DSM --


def test_dsm_concurrent_writers_on_disjoint_pages():
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    dsm = LiteDsm(kernels, "disjoint", 32 * PAGE_SIZE)
    cluster.run_process(dsm.build())
    sim = cluster.sim

    def writer(node, page, stamp):
        yield from node.acquire(page * PAGE_SIZE, PAGE_SIZE)
        yield from node.write(page * PAGE_SIZE, stamp * 64)
        yield from node.release()

    def proc():
        procs = [
            sim.process(writer(dsm.nodes[0], 3, b"A")),
            sim.process(writer(dsm.nodes[1], 7, b"B")),
            sim.process(writer(dsm.nodes[2], 11, b"C")),
        ]
        yield sim.all_of(procs)
        reader = dsm.nodes[0]
        a = yield from reader.read(3 * PAGE_SIZE, 4)
        b = yield from reader.read(7 * PAGE_SIZE, 4)
        c = yield from reader.read(11 * PAGE_SIZE, 4)
        return a, b, c

    assert cluster.run_process(proc()) == (b"AAAA", b"BBBB", b"CCCC")


def test_dsm_release_without_acquire_is_noop():
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    dsm = LiteDsm(kernels, "noop", 8 * PAGE_SIZE)
    cluster.run_process(dsm.build())
    sim = cluster.sim

    def proc():
        start = sim.now
        yield from dsm.nodes[0].release()
        return sim.now - start

    assert cluster.run_process(proc()) == 0.0


def test_dsm_read_out_of_bounds_rejected():
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    dsm = LiteDsm(kernels, "oob", 4 * PAGE_SIZE)
    cluster.run_process(dsm.build())

    def proc():
        with pytest.raises(ValueError):
            yield from dsm.nodes[0].read(4 * PAGE_SIZE - 2, 8)

    cluster.run_process(proc())


# -------------------------------------------------------------- graph --


def test_litegraph_single_partition_degenerates_gracefully():
    edges = powerlaw_graph(80, 4, seed=31)
    graph = PartitionedGraph(80, edges, 1)
    cluster = Cluster(1)
    kernels = lite_boot(cluster)
    engine = LiteGraph(kernels, graph)
    ranks = cluster.run_process(engine.run(3))
    assert ranks == pagerank_reference(graph, 3)


def test_partitioned_graph_rejects_zero_partitions():
    with pytest.raises(ValueError):
        PartitionedGraph(10, [(0, 1)], 0)


# ---------------------------------------------------------- MapReduce --


def test_lite_mr_handles_empty_documents():
    corpus = [b"", b"a b a", b"", b"c"]
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    engine = LiteMR(kernels, total_threads=4, n_partitions=4)
    result = cluster.run_process(engine.run(corpus))
    assert result == {b"a": 2, b"b": 1, b"c": 1}


def test_lite_mr_more_workers_than_documents():
    corpus = generate_corpus(3, 20, vocab_size=30, seed=41)
    cluster = Cluster(6)
    kernels = lite_boot(cluster)
    engine = LiteMR(kernels, total_threads=8)
    result = cluster.run_process(engine.run(corpus))
    from collections import Counter
    from repro.apps.mapreduce.common import wordcount_map

    truth = Counter()
    for doc in corpus:
        truth.update(wordcount_map(doc))
    assert result == truth


# ---------------------------------------------------------------- TCP --


def test_tcp_many_concurrent_connections():
    cluster = Cluster(3)
    sim = cluster.sim
    listener = cluster[2].tcp.listen(9100)
    results = []

    def echo():
        while True:
            conn = yield from listener.accept()

            def serve(c):
                msg = yield from c.recv_msg()
                yield from c.send_msg(b"ok:" + msg)

            sim.process(serve(conn))

    def client(node_index, label):
        conn = yield from cluster[node_index].tcp.connect(2, 9100)
        yield from conn.send_msg(label)
        reply = yield from conn.recv_msg()
        results.append(reply)

    def proc():
        sim.process(echo())
        yield sim.timeout(1)
        procs = [
            sim.process(client(index % 2, f"c{index}".encode()))
            for index in range(6)
        ]
        yield sim.all_of(procs)

    cluster.run_process(proc())
    assert sorted(results) == sorted(f"ok:c{i}".encode() for i in range(6))


# ----------------------------------------------------------- memops --


def test_memset_out_of_bounds_rejected():
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], "m")

    def proc():
        lh = yield from ctx.lt_malloc(100, nodes=2)
        with pytest.raises(ValueError):
            yield from ctx.lt_memset(lh, 90, 1, 20)

    cluster.run_process(proc())


def test_memcpy_from_spread_source():
    """Source spread over two nodes: the gather-then-push path."""
    cluster = Cluster(4)
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], "m")

    def proc():
        src = yield from ctx.lt_malloc(4000, nodes=[2, 3])
        dst = yield from ctx.lt_malloc(4000, nodes=4)
        payload = bytes(range(250)) * 16
        yield from ctx.lt_write(src, 0, payload)
        yield from ctx.lt_memcpy(src, 0, dst, 0, 4000)
        data = yield from ctx.lt_read(dst, 0, 4000)
        return data == payload

    assert cluster.run_process(proc()) is True


def test_grant_can_add_master_role():
    """§4.1: a master can grant the master permission to another user."""
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    alice = LiteContext(kernels[0], "alice")
    bob = LiteContext(kernels[0], "bob")  # same node: record is local

    def proc():
        yield from alice.lt_malloc(256, name="comaster")
        yield from alice.lt_grant("comaster", "bob", Permission.full())
        bob_lh = yield from bob.lt_map("comaster", Permission.full())
        # Bob, now a master on the record-holding node, can free it.
        yield from bob.lt_free(bob_lh)
        return "comaster" in kernels[0].registry

    assert cluster.run_process(proc()) is False
