"""Tests for the baseline RPC systems (FaRM 2-write, HERD, FaSST)."""

import pytest

from repro.baselines import (
    FasstEndpoint,
    HerdServer,
    LiteRingReceiver,
    SizeClassedReceiver,
    connect_farm_pair,
    geometric_classes,
    memory_utilization,
)
from repro.cluster import Cluster


@pytest.fixture
def cluster():
    return Cluster(2)


def test_farm_rpc_roundtrip(cluster):
    sim = cluster.sim

    def main():
        a, b = yield from connect_farm_pair(cluster[0], cluster[1])

        def server():
            while True:
                msg = yield from b.recv()
                yield from b.send(b"re:" + msg)

        sim.process(server())
        reply = yield from a.rpc(b"q1")
        assert reply == b"re:q1"
        reply = yield from a.rpc(b"q2")
        return reply

    assert cluster.run_process(main()) == b"re:q2"


def test_farm_messages_carry_real_bytes(cluster):
    sim = cluster.sim

    def main():
        a, b = yield from connect_farm_pair(cluster[0], cluster[1])
        payload = bytes(range(256)) * 4
        yield from a.send(payload)
        got = yield from b.recv()
        return got == payload

    assert cluster.run_process(main()) is True


def test_farm_receiver_charges_poll_cpu(cluster):
    sim = cluster.sim

    def main():
        a, b = yield from connect_farm_pair(cluster[0], cluster[1])

        def server():
            msg = yield from b.recv()
            return msg

        sproc = sim.process(server())
        yield sim.timeout(100)  # receiver spins for 100 us
        yield from a.send(b"late")
        yield sproc

    cluster.run_process(main())
    assert cluster[1].cpu.busy_time["farm-poll"] >= 100


def test_herd_rpc_roundtrip(cluster):
    sim = cluster.sim

    def main():
        server = HerdServer(cluster[1], n_threads=2)
        yield from server.build(lambda data: b"h:" + data)
        client = yield from server.connect_client(cluster[0])
        r1 = yield from client.call(b"one")
        r2 = yield from client.call(b"two")
        return r1, r2, server.requests_served

    r1, r2, served = cluster.run_process(main())
    assert (r1, r2) == (b"h:one", b"h:two")
    assert served == 2


def test_herd_multiple_clients_dispatch_to_threads(cluster):
    sim = cluster.sim

    def main():
        server = HerdServer(cluster[1], n_threads=2)
        yield from server.build(lambda data: data.upper())
        clients = []
        for _ in range(4):
            client = yield from server.connect_client(cluster[0])
            clients.append(client)
        procs = [
            sim.process(c.call(f"msg{i}".encode())) for i, c in enumerate(clients)
        ]
        results = yield sim.all_of(procs)
        return sorted(results.values())

    results = cluster.run_process(main())
    assert results == [b"MSG0", b"MSG1", b"MSG2", b"MSG3"]


def test_herd_dispatch_cost_scales_with_clients(cluster):
    """More clients per thread -> longer slot scans (HERD's weakness)."""
    sim = cluster.sim

    def latency_with_clients(n_clients):
        local = Cluster(2)

        def main():
            server = HerdServer(local[1], n_threads=1)
            yield from server.build(lambda data: data)
            clients = []
            for _ in range(n_clients):
                client = yield from server.connect_client(local[0])
                clients.append(client)
            # Warm up, then measure one call.
            yield from clients[0].call(b"w")
            start = local.sim.now
            yield from clients[0].call(b"x")
            return local.sim.now - start

        return local.run_process(main())

    assert latency_with_clients(32) > latency_with_clients(1)


def test_fasst_rpc_roundtrip(cluster):
    def main():
        a = FasstEndpoint(cluster[0])
        b = FasstEndpoint(cluster[1], handler=lambda d: b"f:" + d)
        yield from a.build()
        yield from b.build()
        r = yield from a.call(b, b"hi")
        return r

    assert cluster.run_process(main()) == b"f:hi"


def test_fasst_handler_serializes_in_master(cluster):
    """Two concurrent calls with a slow handler: served back-to-back."""
    sim = cluster.sim

    def slow(data):
        yield sim.timeout(50)
        return data

    def main():
        a = FasstEndpoint(cluster[0])
        b = FasstEndpoint(cluster[1], handler=slow)
        yield from a.build()
        yield from b.build()
        start = sim.now
        procs = [sim.process(a.call(b, b"1")), sim.process(a.call(b, b"2"))]
        yield sim.all_of(procs)
        return sim.now - start

    elapsed = cluster.run_process(main())
    # Inline handlers can't overlap: >= 2 x 50 us of handler time.
    assert elapsed >= 100


def test_fasst_mtu_limit(cluster):
    def main():
        a = FasstEndpoint(cluster[0])
        b = FasstEndpoint(cluster[1], handler=lambda d: d)
        yield from a.build()
        yield from b.build()
        # Up to two fragments are allowed; beyond that is rejected.
        reply = yield from a.call(b, b"x" * 5000)
        assert reply == b"x" * 5000
        with pytest.raises(ValueError, match="MTU"):
            yield from a.call(b, b"x" * 10000)

    cluster.run_process(main())


def test_fasst_concurrent_calls_matched_by_token(cluster):
    sim = cluster.sim

    def main():
        a = FasstEndpoint(cluster[0])
        b = FasstEndpoint(cluster[1], handler=lambda d: b"r" + d)
        yield from a.build()
        yield from b.build()
        procs = [sim.process(a.call(b, bytes([i]))) for i in range(8)]
        results = yield sim.all_of(procs)
        return [results[i] for i in range(8)]

    results = cluster.run_process(main())
    assert results == [b"r" + bytes([i]) for i in range(8)]


# ------------------------------------------------------- Fig 12 model --


def test_size_classed_receiver_single_queue_wastes_space():
    receiver = SizeClassedReceiver([4096], max_message=4096)
    receiver.deliver(64)
    receiver.deliver(64)
    assert receiver.utilization() == pytest.approx(128 / 8192)


def test_size_classed_receiver_picks_smallest_fit():
    receiver = SizeClassedReceiver([64, 1024, 4096], max_message=4096)
    assert receiver.deliver(10) == 64
    assert receiver.deliver(64) == 64
    assert receiver.deliver(65) == 1024
    assert receiver.deliver(4000) == 4096


def test_size_classed_receiver_rejects_oversize():
    receiver = SizeClassedReceiver([512], max_message=512)
    with pytest.raises(ValueError):
        receiver.deliver(513)


def test_more_queues_improve_utilization():
    sizes = [32, 100, 700, 3000] * 100
    utils = [memory_utilization(sizes, q, 4096) for q in (1, 2, 3, 4)]
    assert utils == sorted(utils)
    assert utils[0] < 0.5


def test_lite_ring_utilization_near_one_for_big_messages():
    ring = LiteRingReceiver(header_bytes=20)
    for _ in range(100):
        ring.deliver(4096)
    assert ring.utilization() > 0.99


def test_lite_ring_beats_send_recv_on_mixed_sizes():
    sizes = [24, 150, 900, 4096] * 50
    send_recv = memory_utilization(sizes, 4, 4096)
    ring = LiteRingReceiver(header_bytes=20)
    for size in sizes:
        ring.deliver(size)
    assert ring.utilization() > send_recv


def test_geometric_classes_cover_max():
    classes = geometric_classes(3, 4096)
    assert max(classes) == 4096
    assert len(classes) == 3
