"""Tests for the graph engines (§8.3) and LITE-DSM (§8.4)."""

import pytest

from repro.apps.dsm import LiteDsm, LiteGraphDsm, PAGE_SIZE
from repro.apps.graph import (
    GrappaSim,
    LiteGraph,
    PartitionedGraph,
    PowerGraphSim,
    pagerank_reference,
)
from repro.cluster import Cluster
from repro.core import lite_boot
from repro.workloads import degree_histogram, powerlaw_graph


@pytest.fixture(scope="module")
def graph():
    edges = powerlaw_graph(300, 5, seed=3)
    return PartitionedGraph(300, edges, 4)


@pytest.fixture(scope="module")
def reference(graph):
    return pagerank_reference(graph, 4)


def _close(ranks, reference):
    return max(abs(a - b) for a, b in zip(ranks, reference)) < 1e-12


# --------------------------------------------------------- structure --


def test_powerlaw_graph_has_heavy_tail():
    edges = powerlaw_graph(2000, 8)
    histogram = degree_histogram(edges, "in")
    max_degree = max(histogram)
    # A hub with far more than the average in-degree must exist.
    assert max_degree > 8 * 10


def test_partition_covers_all_vertices(graph):
    owned = [v for part in graph.owned for v in part]
    assert sorted(owned) == list(range(graph.n_vertices))


def test_pull_sets_are_exactly_the_remote_in_neighbors(graph):
    for part in range(graph.n_partitions):
        needed = set()
        for vertex in graph.owned[part]:
            for src in graph.in_neighbors.get(vertex, ()):
                if graph.owner_of(src) != part:
                    needed.add(src)
        advertised = {
            v for vertices in graph.pull_sets[part].values() for v in vertices
        }
        assert advertised == needed


def test_reference_pagerank_is_a_positive_subdistribution(graph, reference):
    # Without dangling-mass redistribution rank sums to <= 1 and every
    # vertex keeps at least the teleport floor.
    floor = (1.0 - 0.85) / graph.n_vertices
    assert all(rank >= floor - 1e-15 for rank in reference)
    assert 0.0 < sum(reference) <= 1.0 + 1e-9


# ----------------------------------------------------------- engines --


def test_lite_graph_matches_reference(graph, reference):
    cluster = Cluster(4)
    kernels = lite_boot(cluster)
    engine = LiteGraph(kernels, graph)
    ranks = cluster.run_process(engine.run(4))
    assert _close(ranks, reference)
    assert engine.elapsed_us > 0


def test_powergraph_matches_reference(graph, reference):
    cluster = Cluster(4)
    engine = PowerGraphSim(cluster.nodes, graph)
    ranks = cluster.run_process(engine.run(4))
    assert _close(ranks, reference)


def test_grappa_matches_reference(graph, reference):
    cluster = Cluster(4)
    engine = GrappaSim(cluster.nodes, graph)
    ranks = cluster.run_process(engine.run(4))
    assert _close(ranks, reference)


def test_graph_dsm_matches_reference(graph, reference):
    cluster = Cluster(4)
    kernels = lite_boot(cluster)
    engine = LiteGraphDsm(kernels, graph)
    ranks = cluster.run_process(engine.run(4))
    assert _close(ranks, reference)


def test_lite_graph_fastest(graph):
    """Figure 19 ordering: LITE-Graph beats both baselines."""
    lite_cluster = Cluster(4)
    kernels = lite_boot(lite_cluster)
    lite_engine = LiteGraph(kernels, graph)
    lite_cluster.run_process(lite_engine.run(4))

    pg_cluster = Cluster(4)
    pg_engine = PowerGraphSim(pg_cluster.nodes, graph)
    pg_cluster.run_process(pg_engine.run(4))

    assert lite_engine.elapsed_us < pg_engine.elapsed_us


# --------------------------------------------------------------- DSM --


@pytest.fixture
def dsm_env():
    cluster = Cluster(4)
    kernels = lite_boot(cluster)
    dsm = LiteDsm(kernels, "testdsm", 64 * PAGE_SIZE)
    cluster.run_process(dsm.build())
    return cluster, dsm


def test_dsm_write_visible_after_release(dsm_env):
    cluster, dsm = dsm_env
    a, b = dsm.nodes[0], dsm.nodes[1]

    def proc():
        yield from a.acquire(0, 100)
        yield from a.write(10, b"shared-data")
        yield from a.release()
        data = yield from b.read(10, 11)
        return data

    assert cluster.run_process(proc()) == b"shared-data"


def test_dsm_write_without_acquire_rejected(dsm_env):
    cluster, dsm = dsm_env
    a = dsm.nodes[0]

    def proc():
        with pytest.raises(PermissionError):
            yield from a.write(0, b"illegal")

    cluster.run_process(proc())


def test_dsm_invalidation_on_release(dsm_env):
    cluster, dsm = dsm_env
    a, b = dsm.nodes[0], dsm.nodes[1]

    def proc():
        yield from a.acquire(0, 8)
        yield from a.write(0, b"version1")
        yield from a.release()
        first = yield from b.read(0, 8)   # b now caches the page
        yield from a.acquire(0, 8)
        yield from a.write(0, b"version2")
        yield from a.release()            # must invalidate b's copy
        second = yield from b.read(0, 8)
        return first, second, b.invalidations

    first, second, invalidations = cluster.run_process(proc())
    assert first == b"version1"
    assert second == b"version2"
    assert invalidations >= 1


def test_dsm_single_writer_serialized(dsm_env):
    cluster, dsm = dsm_env
    sim = cluster.sim
    a, b = dsm.nodes[0], dsm.nodes[1]
    order = []

    def writer(node, label, hold):
        yield from node.acquire(0, 8)
        order.append(("acq", label, sim.now))
        yield sim.timeout(hold)
        yield from node.write(0, label.encode() * 4)
        yield from node.release()
        order.append(("rel", label, sim.now))

    def proc():
        pa = sim.process(writer(a, "AA", 50))
        yield sim.timeout(5)
        pb = sim.process(writer(b, "BB", 5))
        yield sim.all_of([pa, pb])

    cluster.run_process(proc())
    # B's acquire must come after A's release.
    a_release = next(t for kind, label, t in order if kind == "rel" and label == "AA")
    b_acquire = next(t for kind, label, t in order if kind == "acq" and label == "BB")
    assert b_acquire >= a_release


def test_dsm_cached_read_is_free(dsm_env):
    cluster, dsm = dsm_env
    sim = cluster.sim
    b = dsm.nodes[1]

    def proc():
        yield from b.read(0, 64)      # cold: fault + fetch
        start = sim.now
        yield from b.read(0, 64)      # warm: cache hit
        return sim.now - start

    assert cluster.run_process(proc()) == 0.0


def test_dsm_reads_cross_page_boundaries(dsm_env):
    cluster, dsm = dsm_env
    a, b = dsm.nodes[0], dsm.nodes[1]
    payload = bytes(range(256)) * 40  # 10240 B: spans 3+ pages

    def proc():
        yield from a.acquire(PAGE_SIZE - 100, len(payload))
        yield from a.write(PAGE_SIZE - 100, payload)
        yield from a.release()
        data = yield from b.read(PAGE_SIZE - 100, len(payload))
        return data

    assert cluster.run_process(proc()) == payload


def test_dsm_remote_read_latency_matches_paper(dsm_env):
    """§8.4: 4 KB random remote read = ~12-19 us (fault + LT_read)."""
    cluster, dsm = dsm_env
    sim = cluster.sim
    b = dsm.nodes[1]

    def proc():
        start = sim.now
        yield from b.read(8 * PAGE_SIZE, PAGE_SIZE)
        return sim.now - start

    latency = cluster.run_process(proc())
    assert 8.0 < latency < 25.0


def test_graph_dsm_slower_than_lite_graph(graph):
    lite_cluster = Cluster(4)
    lite_engine = LiteGraph(lite_boot(lite_cluster), graph)
    lite_cluster.run_process(lite_engine.run(3))

    dsm_cluster = Cluster(4)
    dsm_engine = LiteGraphDsm(lite_boot(dsm_cluster), graph)
    dsm_cluster.run_process(dsm_engine.run(3))

    assert dsm_engine.elapsed_us > lite_engine.elapsed_us
