"""Tests for the instrumentation module and LiteLog.verify."""

import pytest

from repro.apps.litelog import LiteLog, LogCleaner, LogWriter
from repro.cluster import Cluster
from repro.core import LiteContext, lite_boot
from repro.stats import snapshot


@pytest.fixture
def env():
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    return cluster, kernels


def test_snapshot_counts_lite_ops(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u")
    base = snapshot(cluster)

    def proc():
        lh = yield from ctx.lt_malloc(4096, nodes=2)
        yield from ctx.lt_write(lh, 0, b"abc")
        yield from ctx.lt_write(lh, 10, b"def")
        yield from ctx.lt_read(lh, 0, 3)
        yield from ctx.lt_fetch_add(lh, 100, 5)

    cluster.run_process(proc())
    delta = snapshot(cluster).delta(base)
    node0 = delta.nodes[0]
    assert node0.lite_writes == 2
    assert node0.lite_reads == 1
    assert node0.lite_atomics == 1
    assert delta.fabric_bytes > 0
    assert delta.at > 0


def test_snapshot_tracks_dram(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u")
    base = snapshot(cluster)

    def proc():
        yield from ctx.lt_malloc(1 << 20, nodes=2)

    cluster.run_process(proc())
    delta = snapshot(cluster).delta(base)
    assert delta.nodes[1].dram_allocated >= 1 << 20


def test_snapshot_cache_hit_rates_bounded(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u")

    def proc():
        lh = yield from ctx.lt_malloc(4096, nodes=2)
        for _ in range(20):
            yield from ctx.lt_write(lh, 0, b"x")

    cluster.run_process(proc())
    stats = snapshot(cluster)
    for node_stats in stats.nodes.values():
        assert 0.0 <= node_stats.key_hit_rate <= 1.0
        assert 0.0 <= node_stats.pte_hit_rate <= 1.0
    # LITE's physical addressing: warm key hit-rate is high.
    assert stats.nodes[1].key_hit_rate > 0.8


def test_snapshot_delta_rejects_mismatched_nodes(env):
    cluster, _k = env
    stats = snapshot(cluster)
    with pytest.raises(ValueError):
        stats.nodes[0].delta(stats.nodes[1])


def test_summary_renders(env):
    cluster, _k = env
    text = snapshot(cluster).summary()
    assert "node 0" in text and "node 1" in text


# --------------------------------------------------------- log verify --


def test_log_verify_counts_transactions_and_entries(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "logger")

    def proc():
        log = yield from LiteLog.create(ctx, "verilog", 1 << 18, home_node=2)
        writer = LogWriter(log)
        for index in range(15):
            writer.append(bytes([index]) * 24)
            if index % 3 == 0:
                writer.append(b"extra-entry")
            yield from writer.commit()
        return (yield from log.verify())

    transactions, entries = cluster.run_process(proc())
    assert transactions == 15
    assert entries == 15 + 5


def test_log_verify_empty_log(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "logger")

    def proc():
        log = yield from LiteLog.create(ctx, "emptyv", 1 << 16, home_node=2)
        return (yield from log.verify())

    assert cluster.run_process(proc()) == (0, 0)


def test_log_verify_detects_corruption(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "logger")

    def proc():
        log = yield from LiteLog.create(ctx, "corrupt", 1 << 16, home_node=2)
        writer = LogWriter(log)
        writer.append(b"good-entry")
        yield from writer.commit()
        # Smash the entry header in place.
        yield from ctx.lt_memset(log.log_lh, 1, 0xFF, 2)
        with pytest.raises(ValueError):
            yield from log.verify()

    cluster.run_process(proc())


def test_log_verify_after_cleaning(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "logger")

    def proc():
        log = yield from LiteLog.create(ctx, "cleanv", 1 << 18, home_node=2)
        writer = LogWriter(log)
        for _ in range(10):
            writer.append(b"z" * 50)
            yield from writer.commit()
        cleaner = LogCleaner(log, batch_bytes=140)  # two transactions
        reclaimed = yield from cleaner.clean_once()
        assert reclaimed == 140
        return (yield from log.verify())

    transactions, _entries = cluster.run_process(proc())
    assert transactions == 8  # two were reclaimed past the head
