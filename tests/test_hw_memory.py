"""Unit + property tests for the host physical-memory allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import HostMemory, OutOfMemoryError


def make_mem(capacity=1 << 20):
    return HostMemory(node_id=0, capacity=capacity)


def test_alloc_and_data_roundtrip():
    mem = make_mem()
    region = mem.alloc(4096)
    region.write(100, b"hello")
    assert region.read(100, 5) == b"hello"
    assert region.read(0, 4) == b"\x00\x00\x00\x00"


def test_alloc_distinct_extents():
    mem = make_mem()
    a = mem.alloc(1000)
    b = mem.alloc(1000)
    assert a.addr + a.size <= b.addr or b.addr + b.size <= a.addr


def test_out_of_memory():
    mem = make_mem(capacity=1024)
    mem.alloc(1024)
    with pytest.raises(OutOfMemoryError):
        mem.alloc(1)


def test_free_and_reuse():
    mem = make_mem(capacity=1024)
    region = mem.alloc(1024)
    mem.free(region)
    again = mem.alloc(1024)
    assert again.addr == region.addr


def test_double_free_rejected():
    mem = make_mem()
    region = mem.alloc(64)
    mem.free(region)
    with pytest.raises(ValueError):
        mem.free(region)


def test_access_after_free_rejected():
    mem = make_mem()
    region = mem.alloc(64)
    mem.free(region)
    with pytest.raises(ValueError):
        region.read(0, 1)
    with pytest.raises(ValueError):
        region.write(0, b"x")


def test_coalescing_restores_full_extent():
    mem = make_mem(capacity=3000)
    a = mem.alloc(1000)
    b = mem.alloc(1000)
    c = mem.alloc(1000)
    mem.free(a)
    mem.free(c)
    mem.free(b)  # middle free must merge all three
    assert mem.fragment_count == 1
    assert mem.largest_free == 3000


def test_external_fragmentation_blocks_large_alloc():
    """Free space exists but no contiguous extent — the §4.1 problem."""
    mem = make_mem(capacity=4000)
    keep = []
    holes = []
    for index in range(4):
        region = mem.alloc(500)
        region2 = mem.alloc(500)
        holes.append(region)
        keep.append(region2)
    for region in holes:
        mem.free(region)
    assert mem.free_bytes == 2000
    with pytest.raises(OutOfMemoryError):
        mem.alloc(1500)


def test_resolve_physical_address():
    mem = make_mem()
    region = mem.alloc(4096)
    region.write(10, b"abc")
    found, offset = mem.resolve(region.addr + 10, 3)
    assert found is region
    assert offset == 10


def test_resolve_unbacked_address_raises():
    mem = make_mem()
    mem.alloc(4096)
    with pytest.raises(ValueError):
        mem.resolve(1 << 19, 8)


def test_resolve_after_free_raises():
    mem = make_mem()
    region = mem.alloc(4096)
    addr = region.addr
    mem.free(region)
    with pytest.raises(ValueError):
        mem.resolve(addr, 1)


def test_page_ids_span():
    mem = make_mem()
    region = mem.alloc(3 * 4096)
    pages = region.page_ids(4096, offset=0, nbytes=3 * 4096)
    assert len(pages) == 3
    # A 2-byte access crossing a page boundary touches 2 pages.
    pages = region.page_ids(4096, offset=4095, nbytes=2)
    assert len(pages) == 2


def test_read_write_bounds():
    mem = make_mem()
    region = mem.alloc(64)
    with pytest.raises(ValueError):
        region.write(60, b"hello")
    with pytest.raises(ValueError):
        region.read(-1, 4)


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=2048), min_size=1, max_size=40),
    free_mask=st.lists(st.booleans(), min_size=40, max_size=40),
)
@settings(max_examples=60, deadline=None)
def test_property_allocator_accounting(sizes, free_mask):
    mem = make_mem(capacity=1 << 17)
    live = []
    for size, do_free in zip(sizes, free_mask):
        try:
            region = mem.alloc(size)
        except OutOfMemoryError:
            continue
        if do_free:
            mem.free(region)
        else:
            live.append(region)
    assert mem.allocated_bytes == sum(r.size for r in live)
    assert mem.free_bytes == mem.capacity - mem.allocated_bytes
    # Every live region resolvable, non-overlapping.
    spans = sorted((r.addr, r.addr + r.size) for r in live)
    for (alo, ahi), (blo, bhi) in zip(spans, spans[1:]):
        assert ahi <= blo
    for region in live:
        found, offset = mem.resolve(region.addr, region.size)
        assert found is region and offset == 0


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_property_free_always_coalesces_adjacent(data):
    mem = make_mem(capacity=1 << 16)
    regions = [mem.alloc(1024) for _ in range(16)]
    order = data.draw(st.permutations(range(16)))
    for index in order:
        mem.free(regions[index])
    assert mem.fragment_count == 1
    assert mem.largest_free == mem.capacity


def test_sparse_read_materializes_no_blocks():
    """Reading untouched ranges must not allocate backing blocks."""
    mem = make_mem()
    region = mem.alloc(1 << 20)
    data = region.read(0, 1 << 20)
    assert data == bytes(1 << 20)
    assert region._blocks == {}


def test_read_crossing_blocks_with_holes():
    mem = make_mem()
    region = mem.alloc(4 * 65536)
    # Touch only the second block; read a range spanning all four.
    region.write(65536 + 10, b"island")
    data = region.read(65530, 3 * 65536)
    expected = bytearray(3 * 65536)
    expected[16 : 16 + 6] = b"island"
    assert data == bytes(expected)


def test_read_into_matches_read():
    mem = make_mem()
    region = mem.alloc(3 * 65536)
    payload = bytes(range(256)) * 700  # 179200 B, crosses all blocks
    region.write(100, payload)
    buf = bytearray(len(payload))
    n = region.read_into(100, buf)
    assert n == len(payload)
    assert bytes(buf) == payload == region.read(100, len(payload))


def test_write_accepts_memoryview_slices():
    mem = make_mem()
    region = mem.alloc(3 * 65536)
    backing = bytes(range(256)) * 400
    view = memoryview(backing)[17 : 17 + 90000]
    region.write(65000, view)
    assert region.read(65000, 90000) == bytes(view)
