"""Scheduler tests for the timer-wheel + heap hybrid (INTERNALS §12).

Pins the two ordering invariants the hybrid must preserve over the old
single-heap scheduler — total order by (time, seq) and same-timestamp
FIFO — plus the lazy-cancellation compaction bound: a seeded
cancel-storm chaos run must never grow the pending queues in
proportion to the number of cancelled timers.
"""

import random

from repro.sim import Simulator
from repro.sim.engine import _COMPACT_MIN_CANCELLED


def _pending(sim) -> int:
    """Entries currently sitting in any scheduler tier (live or dead)."""
    return len(sim._heap) + sim._wheel_count + len(sim._nowq)


# ------------------------------------------------------- ordering --


def test_same_timestamp_fifo_across_tiers():
    """Events landing on one timestamp fire in creation (seq) order even
    when they entered via different tiers: overflow heap (armed far in
    advance), wheel (armed within the horizon), and now-queue (delay 0
    at the deadline itself)."""
    sim = Simulator()
    fired = []

    def late_armer():
        # Arm when=500 from t=400: delta 100 µs lands in the wheel.
        yield sim.timeout(400.0)
        wheel_ev = sim.timeout(100.0)
        wheel_ev.callbacks.append(lambda _e: fired.append("wheel"))

    def at_deadline():
        # Wake exactly at 500 and push a delay-0 event: now-queue.
        yield sim.timeout(500.0)
        zero_ev = sim.timeout(0.0)
        zero_ev.callbacks.append(lambda _e: fired.append("nowq"))

    heap_ev = sim.timeout(500.0)  # armed first, from t=0: overflow heap
    heap_ev.callbacks.append(lambda _e: fired.append("heap"))
    sim.process(late_armer())
    sim.process(at_deadline())
    sim.run()

    assert fired == ["heap", "nowq", "wheel"] or fired == [
        "heap", "wheel", "nowq"]
    # All three fired at the same instant...
    assert sim.now == 500.0
    # ...and strictly in seq (creation) order: heap (armed at t=0)
    # before wheel (armed at t=400) before nowq (armed at t=500).  The
    # at_deadline process itself woke after the heap event (its own
    # timeout has a later seq), so:
    assert fired == ["heap", "wheel", "nowq"]


def test_randomized_total_order_across_tiers():
    """A seeded mix of delays spanning all three tiers fires in exactly
    sorted-(when, seq) order."""
    sim = Simulator()
    rng = random.Random(11)
    fired = []
    delays = []
    for _ in range(400):
        bucket = rng.randrange(4)
        if bucket == 0:
            delays.append(0.0)  # now-queue
        elif bucket == 1:
            delays.append(rng.uniform(0.01, 4.0))  # dense wheel slots
        elif bucket == 2:
            delays.append(rng.uniform(4.0, 250.0))  # sparse wheel
        else:
            delays.append(rng.uniform(260.0, 9_000.0))  # overflow heap
    for index, delay in enumerate(delays):
        event = sim.timeout(delay)
        event.callbacks.append(
            lambda _e, index=index: fired.append((sim.now, index)))
    sim.run()

    expected = sorted(range(len(delays)), key=lambda i: (delays[i], i))
    assert [index for _time, index in fired] == expected
    for (time_fired, index) in fired:
        assert time_fired == delays[index]


# ----------------------------------------------- compaction bound --


def test_heap_stays_bounded_under_cancel_storm():
    """Satellite regression: the keep-alive pattern (arm a far deadline,
    complete fast, cancel) must not accrete dead timers.

    Under pure lazy cancellation every cancelled deadline sits in the
    heap until its distant expiry — pending grows linearly with op
    count (tens of thousands here).  Compaction must keep the resident
    total within a small constant factor of the live population.
    """
    sim = Simulator()
    rng = random.Random(7)
    workers = 8
    rounds = 3_000
    peak = [0]
    cancelled = [0]

    def worker():
        for _ in range(rounds):
            deadline = sim.timeout(10_000.0 + rng.random())
            yield sim.timeout(0.25 + rng.random())
            deadline.cancel()
            cancelled[0] += 1
            peak[0] = max(peak[0], _pending(sim))

    def driver():
        procs = [sim.process(worker()) for _ in range(workers)]
        for proc in procs:
            yield proc

    sim.run_process(driver())

    assert cancelled[0] == workers * rounds
    # Live population is ~2 timers per worker; allow compaction slack of
    # a few trigger thresholds, but nothing within an order of magnitude
    # of the 24 000 cancels issued.
    bound = 8 * _COMPACT_MIN_CANCELLED + 4 * workers
    assert peak[0] <= bound, (
        f"pending peaked at {peak[0]} entries (> {bound}): "
        f"cancelled timers are accreting in the scheduler"
    )


def test_cancel_storm_result_unchanged_by_compaction():
    """Compaction is invisible to simulation semantics: final time and
    any timers that do survive still fire exactly once, in order."""
    sim = Simulator()
    fired = []

    def churn():
        for index in range(500):
            doomed = sim.timeout(5_000.0)
            keeper = sim.timeout(2.0 + index)
            keeper.callbacks.append(
                lambda _e, index=index: fired.append(index))
            yield sim.timeout(1.0)
            doomed.cancel()

    sim.run_process(churn())
    sim.run()
    assert fired == list(range(500))
    # Keeper ``index`` is armed at t=index with delay 2+index, so the
    # last one fires at 2*499 + 2.
    assert sim.now == 1000.0
