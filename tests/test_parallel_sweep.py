"""Parallel sweep runner: serial == parallel, byte for byte.

The contract of ``repro.sweep`` (INTERNALS §12) is that ``--jobs N`` is
a pure wall-clock optimization: per-point results, their order, and any
table built from them must be identical to a serial run.  That requires
per-point isolation of every process-global counter — which these tests
verify directly by returning counter-derived ids from the points.
"""

import io
import json
from contextlib import redirect_stdout

from repro.sweep import SWEEP_JOBS_ENV, resolve_jobs, run_sweep

JOBS = 4


def _point(ops: int) -> dict:
    """One self-contained sweep point: boot a cluster, run ops, report
    deterministic results plus counter-derived ids (qpn, LMR handle)
    that leak any isolation failure between points or workers."""
    from repro.cluster import Cluster
    from repro.core import LiteContext, lite_boot

    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], "sweep", kernel_level=True)
    holder = {}

    def setup():
        holder["lh"] = yield from ctx.lt_malloc(1 << 16, nodes=2)

    cluster.run_process(setup())
    payload = b"z" * 64

    def driver():
        for _ in range(ops):
            yield from ctx.lt_write(holder["lh"], 0, payload)

    cluster.run_process(driver())
    device = cluster[0].device
    pd = device.alloc_pd()
    probe_qp = device.create_qp(pd, "RC", send_cq=None)
    lh = holder["lh"]
    return {
        "ops": ops,
        "sim_us": cluster.sim.now,
        "events": cluster.sim._seq,
        "lh_id": lh.lh_id,
        "lmr_id": lh.mapping.lmr_id,
        "probe_qpn": probe_qp.qpn,
    }


def test_parallel_matches_serial_byte_identical():
    points = [20, 30, 40, 50, 60, 70]
    serial = run_sweep(_point, points, jobs=1)
    parallel = run_sweep(_point, points, jobs=JOBS)
    assert serial == parallel
    # Byte identity of the canonical serialization, not just equality:
    # float results must round-trip bit-exact through the worker pool.
    assert json.dumps(serial, sort_keys=True) == \
        json.dumps(parallel, sort_keys=True)
    # Results came back in point order, not completion order.
    assert [r["ops"] for r in parallel] == points


def test_worker_isolation_resets_global_counters():
    """Identical points must yield identical counter-derived ids no
    matter which worker ran them or how many ran before: a pool worker
    evaluates several points in one process, so any missing
    reset_global_counters call shows up as drifting qpn/handle ids."""
    points = [25] * (2 * JOBS)  # every worker sees at least ~2 points
    serial = run_sweep(_point, points, jobs=1)
    parallel = run_sweep(_point, points, jobs=JOBS)
    assert serial == parallel
    first = serial[0]
    for result in serial[1:] + parallel:
        assert result == first


def test_parallel_run_is_repeatable():
    points = [15, 35, 55]
    first = run_sweep(_point, points, jobs=JOBS)
    second = run_sweep(_point, points, jobs=JOBS)
    assert first == second


def test_results_tables_identical():
    """The figure-facing wrapper: a table printed from a parallel sweep
    is character-identical to one printed from a serial sweep."""
    from benchmarks.common import RESULTS, print_table, sweep

    points = [20, 40, 60]

    def render(parallel):
        rows = [
            (ops, result["sim_us"], result["events"])
            for ops, result in zip(points, sweep(_point, points,
                                                 parallel=parallel))
        ]
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            print_table("sweep determinism probe",
                        ["ops", "sim_us", "events"], rows)
        return buffer.getvalue()

    serial_table = render(parallel=1)
    parallel_table = render(parallel=JOBS)
    RESULTS.pop("sweep determinism probe", None)
    assert serial_table == parallel_table


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.delenv(SWEEP_JOBS_ENV, raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(-2) == 1
    monkeypatch.setenv(SWEEP_JOBS_ENV, "5")
    assert resolve_jobs(None) == 5
    assert resolve_jobs(2) == 2  # explicit arg wins over env
    monkeypatch.setenv(SWEEP_JOBS_ENV, "not-a-number")
    assert resolve_jobs(None) == 1
    monkeypatch.setenv(SWEEP_JOBS_ENV, "auto")
    assert resolve_jobs(None) >= 1
