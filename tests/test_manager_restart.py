"""§3.3: cluster-manager state survives a failure restart, plus SRQ
semantics used by LITE's shared receive path."""

import json

import pytest

from repro.cluster import Cluster, ClusterManager
from repro.core import LiteContext, Permission, lite_boot
from repro.fault import FaultInjector, FaultPlan
from repro.recovery import RecoveryManager
from repro.verbs import Access, Opcode, RecvWR, SendWR, Sge


def test_manager_snapshot_roundtrips_through_json():
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], "u")

    def setup():
        yield from ctx.lt_malloc(64, name="persisted", nodes=2)

    cluster.run_process(setup())
    blob = json.dumps(cluster.manager.snapshot())
    restored = ClusterManager.restore(json.loads(blob), cluster.nodes)
    assert restored.lookup_name("persisted") == 1
    for lite_id in (1, 2, 3):
        assert restored.lookup(lite_id) is cluster.manager.lookup(lite_id)


def test_lite_keeps_working_after_manager_restart():
    """Swap the manager for a restored replica mid-run: joins, name
    lookups and new allocations all keep working."""
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    alice = LiteContext(kernels[0], "alice")
    bob = LiteContext(kernels[1], "bob")

    def phase1():
        yield from alice.lt_malloc(
            1024, name="survivor", nodes=3,
            default_perm=Permission.READ | Permission.WRITE,
        )
        lh = yield from alice.lt_map("survivor", Permission.full())
        yield from alice.lt_write(lh, 0, b"pre-crash")

    cluster.run_process(phase1())

    # Simulated manager crash + restart from its snapshot.
    snapshot = cluster.manager.snapshot()
    new_manager = ClusterManager.restore(snapshot, cluster.nodes)
    cluster.manager = new_manager
    for kernel in kernels:
        kernel.manager = new_manager

    def phase2():
        lh = yield from bob.lt_map("survivor")
        data = yield from bob.lt_read(lh, 0, 9)
        assert data == b"pre-crash"
        # New names register against the restored directory.
        yield from bob.lt_malloc(64, name="post-crash")
        assert new_manager.lookup_name("post-crash") == 2
        return data

    assert cluster.run_process(phase2()) == b"pre-crash"


def test_restore_roundtrips_replica_and_lease_state():
    """The replicated-LMR directory and the lease table survive the
    JSON round trip bit-for-bit, including the int keys JSON mangles
    into strings and the ``lost``/``failed``/``version`` bookkeeping."""
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    recovery = RecoveryManager(cluster, kernels).arm()
    ctx = LiteContext(kernels[0], "rep", kernel_level=True)

    def setup():
        lh = yield from ctx.lt_malloc(8192, name="repl", nodes=2, replicas=2)
        yield from ctx.lt_write(lh, 0, b"v" * 64)
        recovery.stop()
        return lh.mapping.lmr_id

    lmr_id = cluster.run_process(setup())
    # Exercise the lost-copy branch too.
    cluster.manager.mark_replica_stale(lmr_id, 3)
    blob = json.dumps(cluster.manager.snapshot())
    restored = ClusterManager.restore(json.loads(blob), cluster.nodes)
    assert restored.replicas == cluster.manager.replicas
    assert restored.leases == cluster.manager.leases
    entry = restored.replicas[lmr_id]
    assert entry["version"] == 1
    assert 3 in entry["lost"] and 3 not in entry["backups"]
    assert all(isinstance(k, int) for k in restored.replicas)
    assert all(isinstance(k, int) for k in entry["backups"])
    assert all(isinstance(k, int) for k in entry["lost"])
    assert all(isinstance(k, int) for k in restored.leases)
    # Restoring the same snapshot twice is idempotent.
    again = ClusterManager.restore(json.loads(blob), cluster.nodes)
    assert again.snapshot() == restored.snapshot()


def test_restart_under_active_fault_plan_still_fails_over():
    """Swap the manager for a restored replica *while a crash plan is
    in flight*: lease expiry, promotion, and the remapped read must all
    work against the restored directory (the healthy-cluster restart
    tests never exercised this)."""
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    sim = cluster.sim
    plan = FaultPlan().crash(1, 3000.0)  # LITE 2 (primary's node) dies
    injector = FaultInjector(cluster, plan).install()
    injector.arm_lite(kernels, keepalive_interval_us=500.0, miss_limit=2)
    recovery = RecoveryManager(
        cluster, kernels, lease_ttl_us=1500.0,
        renew_interval_us=400.0, sweep_interval_us=300.0,
    ).arm()
    ctx = LiteContext(kernels[0], "ha", kernel_level=True)
    state = {}

    def phase1():
        lh = yield from ctx.lt_malloc(8192, name="ha", nodes=2, replicas=2)
        yield from ctx.lt_write(lh, 0, b"pre-restart")
        state["lh"] = lh
        # Ride into the crash (but before lease expiry declares it).
        yield sim.timeout(3200.0 - sim.now)

    cluster.run_process(phase1())
    assert cluster.nodes[1].crashed, "the plan must have fired by now"

    # Manager crash + restart from snapshot, mid-failure: every client
    # of the old instance is repointed, like the healthy-restart test.
    new_manager = ClusterManager.restore(
        json.loads(json.dumps(cluster.manager.snapshot())), cluster.nodes
    )
    cluster.manager = new_manager
    recovery.manager = new_manager
    for kernel in kernels:
        kernel.manager = new_manager

    def phase2():
        lh = state["lh"]
        # Let lease expiry + promotion land against the restored state.
        yield sim.timeout(6000.0 - sim.now)
        entry = new_manager.replicas[lh.mapping.lmr_id]
        assert entry["master"] != 2, "promotion must use restored directory"
        assert not entry["failed"]
        data = yield from ctx.lt_read(lh, 0, 11)
        assert data == b"pre-restart"
        yield from ctx.lt_write(lh, 64, b"post-restart")
        recovery.stop()

    cluster.run_process(phase2())
    assert recovery.promotions == 1
    # Writes after the restart keep moving the restored version counter.
    assert new_manager.replicas[state["lh"].mapping.lmr_id]["version"] == 2


def test_restored_manager_preserves_id_allocation():
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    restored = ClusterManager.restore(
        cluster.manager.snapshot(), cluster.nodes
    )
    # A brand-new node joining after restart gets a fresh id, not a
    # recycled one.
    from repro.cluster import Node

    new_node = Node(cluster.sim, 99, cluster.params, cluster.fabric)
    assert restored.join(new_node) == 3


# ------------------------------------------------------------- SRQ --


def test_srq_shared_across_qps():
    """One buffer pool feeds receives on many QPs (how LITE posts its
    control slots once for all K x N connections)."""
    cluster = Cluster(2)
    sim = cluster.sim

    def proc():
        a, b = cluster[0], cluster[1]
        pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
        mr_a = yield from a.device.reg_mr(pd_a, 4096, Access.ALL)
        mr_b = yield from b.device.reg_mr(pd_b, 4096, Access.ALL)
        srq = b.device.create_srq()
        shared_cq = b.device.create_cq()
        qps_b = [
            b.device.create_qp(pd_b, "RC", recv_cq=shared_cq, srq=srq)
            for _ in range(3)
        ]
        qps_a = []
        for qp_b in qps_b:
            qp_a = a.device.create_qp(pd_a, "RC")
            a.device.connect(qp_a, qp_b)
            qps_a.append(qp_a)
        for index in range(3):
            srq.post_recv(RecvWR(mr=mr_b, offset=index * 256, length=256,
                                 wr_id=index))
        # One send per QP; all consume from the same SRQ pool.
        for index, qp_a in enumerate(qps_a):
            mr_a.write(index * 8, f"qp{index}msg".encode())
            yield qp_a.post_send(
                SendWR(Opcode.SEND, sgl=[Sge(mr_a, index * 8, 6)])
            )
        seen_qpns = set()
        payloads = set()
        for _ in range(3):
            wc = yield shared_cq.wait_wc()
            seen_qpns.add(wc.qp_num)
            offset = wc.wr_id * 256
            payloads.add(mr_b.read(offset, 6))
        assert len(seen_qpns) == 3
        return payloads

    payloads = cluster.run_process(proc())
    assert payloads == {b"qp0msg", b"qp1msg", b"qp2msg"}


def test_srq_counts_postings():
    cluster = Cluster(1)
    srq = cluster[0].device.create_srq()
    srq.post_recv(RecvWR())
    srq.post_recv(RecvWR())
    assert srq.posted == 2
    assert len(srq) == 2


# ---------------------------------------------------------------------------
# QP-lease table (INTERNALS §15): snapshot/restore + mid-churn restart
# ---------------------------------------------------------------------------
def test_restore_roundtrips_qp_lease_state():
    from repro.determinism import reset_global_counters

    reset_global_counters()
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    pool = kernels[0].qp_pool(kernels[1].lite_id, reserve=2)

    def setup():
        yield from pool.prebuild()
        yield from pool.acquire(41)
        yield from pool.acquire(77)

    cluster.run_process(setup())
    blob = json.dumps(cluster.manager.snapshot())  # must be JSON-clean
    restored = ClusterManager.restore(json.loads(blob), cluster.nodes)
    # JSON stringifies dict keys; restore must coerce them back to int.
    assert set(restored.qp_leases) == {41, 77}
    assert all(isinstance(key, int) for key in restored.qp_leases)
    assert restored.qp_leases == cluster.manager.qp_leases
    entry = restored.qp_leases[41]
    assert entry["holder"] == kernels[0].lite_id
    assert entry["peer"] == kernels[1].lite_id
    assert isinstance(entry["conn"], int)
    assert entry["expires"] > 0
    # Restore is idempotent: restoring the same blob twice agrees.
    again = ClusterManager.restore(json.loads(blob), cluster.nodes)
    assert again.snapshot() == restored.snapshot()


def _churn_with_optional_manager_restart(restart_mid):
    """Drive short sessions; optionally swap the manager mid-churn.

    The pool reads the lease table through ``kernel.manager`` on every
    touch, so a restart (restore from a JSON snapshot + swap) must be
    invisible: leases keep renewing and expiring against the restored
    table and the rest of the run is bit-identical to a no-restart run.
    """
    from repro.core.api import ClientSession
    from repro.determinism import reset_global_counters

    reset_global_counters()
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    sim = cluster.sim
    pool = kernels[0].qp_pool(
        kernels[1].lite_id, reserve=2, lease_ttl_us=800.0
    )
    abandoned = []

    def driver():
        pool.arm()
        yield from pool.prebuild()
        for index in range(10):
            ctx = LiteContext(kernels[0], f"restart{index}",
                              kernel_level=True)
            session = ClientSession(
                ctx, kernels[1].lite_id, session_id=index + 1,
                buffer_bytes=128,
            )
            yield from session.attach()
            yield from session.write(b"x" * 128)
            if index % 3 == 2:
                abandoned.append(index)  # lease expires via the sweeper
            else:
                yield from session.detach()
            yield sim.timeout(120.0)
        yield sim.timeout(2000.0)  # let abandoned leases expire
        pool.stop()
        yield sim.timeout(pool.sweep_interval_us)

    sim.process(driver(), name="restart-churn-driver")
    if restart_mid:
        sim.run(until=600.0)  # mid-churn: some leases live, some expired
        new_manager = ClusterManager.restore(
            json.loads(json.dumps(cluster.manager.snapshot())),
            cluster.nodes,
        )
        cluster.manager = new_manager
        for kernel in kernels:
            kernel.manager = new_manager
    sim.run()
    return (
        sim.now, sim._seq, pool.hits, pool.misses, pool.expiries,
        len(abandoned), dict(cluster.manager.qp_leases),
    )


def test_manager_restart_mid_churn_resumes_deterministically():
    baseline = _churn_with_optional_manager_restart(restart_mid=False)
    restarted = _churn_with_optional_manager_restart(restart_mid=True)
    assert baseline == restarted
    # Sanity on the shape: every lease either released or expired.
    assert baseline[4] == baseline[5] > 0  # expiries == abandons
    assert baseline[6] == {}
