"""§3.3: cluster-manager state survives a failure restart, plus SRQ
semantics used by LITE's shared receive path."""

import json

import pytest

from repro.cluster import Cluster, ClusterManager
from repro.core import LiteContext, Permission, lite_boot
from repro.verbs import Access, Opcode, RecvWR, SendWR, Sge


def test_manager_snapshot_roundtrips_through_json():
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], "u")

    def setup():
        yield from ctx.lt_malloc(64, name="persisted", nodes=2)

    cluster.run_process(setup())
    blob = json.dumps(cluster.manager.snapshot())
    restored = ClusterManager.restore(json.loads(blob), cluster.nodes)
    assert restored.lookup_name("persisted") == 1
    for lite_id in (1, 2, 3):
        assert restored.lookup(lite_id) is cluster.manager.lookup(lite_id)


def test_lite_keeps_working_after_manager_restart():
    """Swap the manager for a restored replica mid-run: joins, name
    lookups and new allocations all keep working."""
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    alice = LiteContext(kernels[0], "alice")
    bob = LiteContext(kernels[1], "bob")

    def phase1():
        yield from alice.lt_malloc(
            1024, name="survivor", nodes=3,
            default_perm=Permission.READ | Permission.WRITE,
        )
        lh = yield from alice.lt_map("survivor", Permission.full())
        yield from alice.lt_write(lh, 0, b"pre-crash")

    cluster.run_process(phase1())

    # Simulated manager crash + restart from its snapshot.
    snapshot = cluster.manager.snapshot()
    new_manager = ClusterManager.restore(snapshot, cluster.nodes)
    cluster.manager = new_manager
    for kernel in kernels:
        kernel.manager = new_manager

    def phase2():
        lh = yield from bob.lt_map("survivor")
        data = yield from bob.lt_read(lh, 0, 9)
        assert data == b"pre-crash"
        # New names register against the restored directory.
        yield from bob.lt_malloc(64, name="post-crash")
        assert new_manager.lookup_name("post-crash") == 2
        return data

    assert cluster.run_process(phase2()) == b"pre-crash"


def test_restored_manager_preserves_id_allocation():
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    restored = ClusterManager.restore(
        cluster.manager.snapshot(), cluster.nodes
    )
    # A brand-new node joining after restart gets a fresh id, not a
    # recycled one.
    from repro.cluster import Node

    new_node = Node(cluster.sim, 99, cluster.params, cluster.fabric)
    assert restored.join(new_node) == 3


# ------------------------------------------------------------- SRQ --


def test_srq_shared_across_qps():
    """One buffer pool feeds receives on many QPs (how LITE posts its
    control slots once for all K x N connections)."""
    cluster = Cluster(2)
    sim = cluster.sim

    def proc():
        a, b = cluster[0], cluster[1]
        pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
        mr_a = yield from a.device.reg_mr(pd_a, 4096, Access.ALL)
        mr_b = yield from b.device.reg_mr(pd_b, 4096, Access.ALL)
        srq = b.device.create_srq()
        shared_cq = b.device.create_cq()
        qps_b = [
            b.device.create_qp(pd_b, "RC", recv_cq=shared_cq, srq=srq)
            for _ in range(3)
        ]
        qps_a = []
        for qp_b in qps_b:
            qp_a = a.device.create_qp(pd_a, "RC")
            a.device.connect(qp_a, qp_b)
            qps_a.append(qp_a)
        for index in range(3):
            srq.post_recv(RecvWR(mr=mr_b, offset=index * 256, length=256,
                                 wr_id=index))
        # One send per QP; all consume from the same SRQ pool.
        for index, qp_a in enumerate(qps_a):
            mr_a.write(index * 8, f"qp{index}msg".encode())
            yield qp_a.post_send(
                SendWR(Opcode.SEND, sgl=[Sge(mr_a, index * 8, 6)])
            )
        seen_qpns = set()
        payloads = set()
        for _ in range(3):
            wc = yield shared_cq.wait_wc()
            seen_qpns.add(wc.qp_num)
            offset = wc.wr_id * 256
            payloads.add(mr_b.read(offset, 6))
        assert len(seen_qpns) == 3
        return payloads

    payloads = cluster.run_process(proc())
    assert payloads == {b"qp0msg", b"qp1msg", b"qp2msg"}


def test_srq_counts_postings():
    cluster = Cluster(1)
    srq = cluster[0].device.create_srq()
    srq.post_recv(RecvWR())
    srq.post_recv(RecvWR())
    assert srq.posted == 2
    assert len(srq) == 2
