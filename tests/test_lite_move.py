"""Tests for LT_move: master-driven LMR migration (§4.1)."""

import pytest

from repro.cluster import Cluster
from repro.core import LiteContext, LiteError, Permission, lite_boot
from repro.hw import SimParams


@pytest.fixture
def env():
    cluster = Cluster(4)
    kernels = lite_boot(cluster)
    return cluster, kernels


def test_move_preserves_contents(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "m")
    payload = bytes(range(256)) * 16

    def proc():
        lh = yield from ctx.lt_malloc(8192, name="mv1", nodes=2)
        yield from ctx.lt_write(lh, 100, payload)
        yield from ctx.lt_move(lh, 3)
        assert {c.node_id for c in lh.mapping.chunks} == {3}
        data = yield from ctx.lt_read(lh, 100, len(payload))
        return data

    assert cluster.run_process(proc()) == payload


def test_move_retargets_remote_mappings_transparently(env):
    cluster, kernels = env
    alice = LiteContext(kernels[0], "alice")
    bob = LiteContext(kernels[1], "bob")

    def proc():
        lh = yield from alice.lt_malloc(
            4096, name="mv2", nodes=3,
            default_perm=Permission.READ | Permission.WRITE,
        )
        yield from alice.lt_write(lh, 0, b"before-move")
        bob_lh = yield from bob.lt_map("mv2")
        yield from alice.lt_move(lh, 4)
        # Bob's existing lh keeps working without remapping.
        data = yield from bob.lt_read(bob_lh, 0, 11)
        assert data == b"before-move"
        assert {c.node_id for c in bob_lh.mapping.chunks} == {4}
        yield from bob.lt_write(bob_lh, 0, b"after-move!")
        back = yield from alice.lt_read(lh, 0, 11)
        return back

    assert cluster.run_process(proc()) == b"after-move!"


def test_move_frees_old_chunks(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "m")
    old_node = kernels[1].node
    before = old_node.memory.allocated_bytes

    def proc():
        lh = yield from ctx.lt_malloc(1 << 20, name="mv3", nodes=2)
        during = old_node.memory.allocated_bytes
        assert during >= before + (1 << 20)
        yield from ctx.lt_move(lh, 3)
        yield cluster.sim.timeout(50)

    cluster.run_process(proc())
    assert old_node.memory.allocated_bytes == before


def test_move_requires_master(env):
    cluster, kernels = env
    alice = LiteContext(kernels[0], "alice")
    bob = LiteContext(kernels[1], "bob")

    def proc():
        yield from alice.lt_malloc(
            64, name="mv4", nodes=2,
            default_perm=Permission.READ | Permission.WRITE,
        )
        bob_lh = yield from bob.lt_map("mv4")
        with pytest.raises(PermissionError):
            yield from bob.lt_move(bob_lh, 3)

    cluster.run_process(proc())


def test_move_can_spread_across_nodes(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "m")

    def proc():
        lh = yield from ctx.lt_malloc(10_000, name="mv5", nodes=2)
        yield from ctx.lt_write(lh, 0, b"spread-me" * 100)
        yield from ctx.lt_move(lh, [3, 4])
        assert {c.node_id for c in lh.mapping.chunks} == {3, 4}
        data = yield from ctx.lt_read(lh, 0, 900)
        return data

    assert cluster.run_process(proc()) == b"spread-me" * 100


def test_move_large_chunked_lmr():
    params = SimParams(lite_chunk_bytes=1 << 16)
    cluster = Cluster(3, params=params)
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], "m")

    def proc():
        lh = yield from ctx.lt_malloc(5 * (1 << 16), name="mv6", nodes=2)
        assert len(lh.mapping.chunks) == 5
        pattern = bytes(range(200)) * ((5 << 16) // 200 + 1)
        pattern = pattern[: 5 << 16]
        yield from ctx.lt_write(lh, 0, pattern)
        yield from ctx.lt_move(lh, 3)
        data = yield from ctx.lt_read(lh, 0, 5 << 16)
        return data == pattern

    assert cluster.run_process(proc()) is True


def test_move_to_empty_destination_list_rejected(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "m")

    def proc():
        lh = yield from ctx.lt_malloc(64, name="mv7")
        with pytest.raises(ValueError):
            yield from ctx.lt_move(lh, [])

    cluster.run_process(proc())
