"""Property-based tests (hypothesis) on LITE's core invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.litelog import LogEntry
from repro.cluster import Cluster
from repro.core import LiteContext, lite_boot
from repro.core.lmr import ChunkInfo, MappedLmr, Permission
from repro.core.protocol import (
    pack_reply_imm,
    pack_request_imm,
    unpack_imm,
)
from repro.verbs.wr import wire_bytes


# ----------------------------------------------------- plan() algebra --


@st.composite
def chunked_lmr(draw):
    n_chunks = draw(st.integers(min_value=1, max_value=6))
    sizes = [draw(st.integers(min_value=1, max_value=4096))
             for _ in range(n_chunks)]
    chunks = []
    addr = 0x1000
    for index, size in enumerate(sizes):
        chunks.append(ChunkInfo(node_id=index % 3 + 1, addr=addr, size=size))
        addr += size + draw(st.integers(min_value=0, max_value=64))
    return MappedLmr(1, "prop", sum(sizes), chunks, 1)


@given(mapping=chunked_lmr(), data=st.data())
@settings(max_examples=100, deadline=None)
def test_property_plan_partitions_exactly(mapping, data):
    """plan() tiles [offset, offset+n) exactly, in order, within chunks."""
    offset = data.draw(st.integers(min_value=0, max_value=mapping.size))
    nbytes = data.draw(st.integers(min_value=0, max_value=mapping.size - offset))
    pieces = mapping.plan(offset, nbytes)
    assert sum(piece_len for _c, _o, piece_len, _b in pieces) == nbytes
    # Buffer offsets are contiguous from zero.
    cursor = 0
    for _chunk, _chunk_off, piece_len, buf_off in pieces:
        assert buf_off == cursor
        cursor += piece_len
    # Every piece stays inside its chunk.
    for chunk, chunk_off, piece_len, _buf in pieces:
        assert 0 <= chunk_off
        assert chunk_off + piece_len <= chunk.size
    # Pieces cover the requested global range in order.
    covered = 0
    lmr_cursor = 0
    for chunk in mapping.chunks:
        for piece_chunk, chunk_off, piece_len, _buf in pieces:
            if piece_chunk is chunk:
                global_start = lmr_cursor + chunk_off
                assert global_start == offset + covered
                covered += piece_len
        lmr_cursor += chunk.size
    assert covered == nbytes


@given(mapping=chunked_lmr(), data=st.data())
@settings(max_examples=50, deadline=None)
def test_property_plan_rejects_out_of_bounds(mapping, data):
    offset = data.draw(st.integers(min_value=0, max_value=mapping.size))
    overshoot = data.draw(st.integers(min_value=1, max_value=1000))
    with pytest.raises(ValueError):
        mapping.plan(offset, mapping.size - offset + overshoot)


# --------------------------------------------------------- IMM field --


@given(
    func=st.integers(min_value=0, max_value=63),
    offset=st.integers(min_value=0, max_value=(1 << 24) - 1),
)
@settings(max_examples=200, deadline=None)
def test_property_request_imm_roundtrip(func, offset):
    kind, got_func, got_offset = unpack_imm(pack_request_imm(func, offset))
    assert (kind, got_func, got_offset) == (0, func, offset)


@given(token=st.integers(min_value=0, max_value=(1 << 30) - 1))
@settings(max_examples=200, deadline=None)
def test_property_reply_imm_roundtrip(token):
    kind, _func, got = unpack_imm(pack_reply_imm(token))
    assert (kind, got) == (1, token)
    # Requests and replies can never be confused.
    assert pack_reply_imm(token) >> 30 != 0


# ------------------------------------------------------ wire framing --


@given(
    a=st.integers(min_value=0, max_value=1 << 20),
    b=st.integers(min_value=0, max_value=1 << 20),
)
@settings(max_examples=100, deadline=None)
def test_property_wire_bytes_monotone_and_superadditive(a, b):
    assert wire_bytes(a) >= a
    if a <= b:
        assert wire_bytes(a) <= wire_bytes(b)
    # Splitting a message never saves header bytes.
    assert wire_bytes(a) + wire_bytes(b) >= wire_bytes(a + b)


# -------------------------------------------------------- log entries --


@given(payload=st.binary(min_size=0, max_size=2048))
@settings(max_examples=100, deadline=None)
def test_property_log_entry_roundtrip(payload):
    blob = LogEntry(payload).encoded()
    entry, end = LogEntry.decode(blob, 0)
    assert entry.payload == payload
    assert end == len(blob)


@given(payloads=st.lists(st.binary(min_size=0, max_size=64), min_size=1,
                         max_size=8))
@settings(max_examples=60, deadline=None)
def test_property_log_entries_concatenate(payloads):
    blob = b"".join(LogEntry(p).encoded() for p in payloads)
    cursor = 0
    decoded = []
    for _ in payloads:
        entry, cursor = LogEntry.decode(blob, cursor)
        decoded.append(entry.payload)
    assert decoded == payloads
    assert cursor == len(blob)


# -------------------------------------------- split_evenly invariants --


@given(
    size=st.integers(min_value=1, max_value=1 << 20),
    parts=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=100, deadline=None)
def test_property_split_evenly(size, parts):
    shares = LiteContext._split_evenly(size, parts)
    assert sum(shares) == size
    assert len(shares) == parts
    assert max(shares) - min(shares) <= 1


# ------------------------------------- end-to-end write/read algebra --


@pytest.fixture(scope="module")
def prop_env():
    from repro.hw import SimParams

    cluster = Cluster(3, params=SimParams(lite_chunk_bytes=1 << 12))
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], "prop")
    holder = {}

    def setup():
        # 12 KB LMR spread across nodes 2 and 3, chunked at 4 KB.
        holder["lh"] = yield from ctx.lt_malloc(12 * 1024, nodes=[2, 3])

    cluster.run_process(setup())
    return cluster, ctx, holder["lh"]


@given(data=st.data())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_property_write_read_roundtrip_any_range(prop_env, data):
    """Any write followed by a read of the same range returns the bytes,
    across chunk and node boundaries."""
    cluster, ctx, lh = prop_env
    offset = data.draw(st.integers(min_value=0, max_value=lh.size - 1))
    nbytes = data.draw(st.integers(min_value=1, max_value=lh.size - offset))
    payload = data.draw(st.binary(min_size=nbytes, max_size=nbytes))

    def proc():
        yield from ctx.lt_write(lh, offset, payload)
        got = yield from ctx.lt_read(lh, offset, nbytes)
        return got

    assert cluster.run_process(proc()) == payload


# ------------------------------------------------- permission lattice --


@given(
    held=st.sampled_from([
        Permission.NONE, Permission.READ, Permission.WRITE,
        Permission.READ | Permission.WRITE, Permission.full(),
    ]),
    wanted=st.sampled_from([
        Permission.READ, Permission.WRITE, Permission.MASTER,
        Permission.READ | Permission.WRITE,
    ]),
)
@settings(max_examples=60, deadline=None)
def test_property_acl_check_is_subset_test(held, wanted):
    from repro.core.lmr import MasterRecord

    record = MasterRecord("x", 8, [], creator="owner")
    record.acl["user"] = held
    assert record.check("user", wanted) == ((held & wanted) == wanted)
    # The creator always passes.
    assert record.check("owner", wanted)
