"""Integration tests for the Verbs substrate (RC/UC/UD datapath)."""

import struct

import pytest

from repro.cluster import Cluster
from repro.verbs import (
    Access,
    Opcode,
    RecvWR,
    SendWR,
    Sge,
    WcStatus,
)


@pytest.fixture
def pair():
    """Two connected RC QPs across two nodes, with 4 KB MRs."""
    cluster = Cluster(2)
    state = {}

    def setup():
        a, b = cluster[0], cluster[1]
        pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
        state["mr_a"] = yield from a.device.reg_mr(pd_a, 4096)
        state["mr_b"] = yield from b.device.reg_mr(pd_b, 4096)
        state["qa"] = a.device.create_qp(pd_a, "RC")
        state["qb"] = b.device.create_qp(pd_b, "RC")
        a.device.connect(state["qa"], state["qb"])

    cluster.run_process(setup())
    state["cluster"] = cluster
    return state


def run(cluster, gen):
    return cluster.sim.run_process(gen)


def test_rc_write_moves_real_bytes(pair):
    cluster, mr_a, mr_b, qa = pair["cluster"], pair["mr_a"], pair["mr_b"], pair["qa"]
    mr_a.write(0, b"payload-123")

    def proc():
        wr = SendWR(
            Opcode.WRITE,
            sgl=[Sge(mr_a, 0, 11)],
            remote_addr=mr_b.base_addr + 64,
            rkey=mr_b.rkey,
        )
        status = yield qa.post_send(wr)
        assert status is WcStatus.SUCCESS

    run(cluster, proc())
    assert mr_b.read(64, 11) == b"payload-123"
    completions = qa.send_cq.poll()
    assert len(completions) == 1 and completions[0].ok


def test_rc_read_fetches_remote_bytes(pair):
    cluster, mr_a, mr_b, qa = pair["cluster"], pair["mr_a"], pair["mr_b"], pair["qa"]
    mr_b.write(200, b"remote-data")

    def proc():
        wr = SendWR(
            Opcode.READ,
            sgl=[Sge(mr_a, 0, 11)],
            remote_addr=mr_b.base_addr + 200,
            rkey=mr_b.rkey,
        )
        yield qa.post_send(wr)

    run(cluster, proc())
    assert mr_a.read(0, 11) == b"remote-data"


def test_write_latency_reasonable_when_warm(pair):
    cluster, mr_a, mr_b, qa = pair["cluster"], pair["mr_a"], pair["mr_b"], pair["qa"]
    sim = cluster.sim
    latencies = []

    def proc():
        for _ in range(5):
            start = sim.now
            wr = SendWR(
                Opcode.WRITE,
                sgl=[Sge(mr_a, 0, 64)],
                remote_addr=mr_b.base_addr,
                rkey=mr_b.rkey,
            )
            yield qa.post_send(wr)
            latencies.append(sim.now - start)

    run(cluster, proc())
    # Cold first op (cache misses) must be slower than warm ops.
    assert latencies[0] > latencies[-1]
    # Warm one-sided 64 B write on ConnectX-3-class hardware: ~1-3 us.
    assert 0.5 < latencies[-1] < 4.0


def test_send_recv_delivers_to_posted_buffer(pair):
    cluster = pair["cluster"]
    mr_a, mr_b, qa, qb = pair["mr_a"], pair["mr_b"], pair["qa"], pair["qb"]
    mr_a.write(0, b"msg")

    def proc():
        qb.post_recv(RecvWR(mr=mr_b, offset=512, length=256, wr_id=77))
        wr = SendWR(Opcode.SEND, sgl=[Sge(mr_a, 0, 3)])
        yield qa.post_send(wr)
        wc = yield qb.recv_cq.wait_wc()
        assert wc.wr_id == 77
        assert wc.opcode is Opcode.RECV
        assert wc.byte_len == 3
        assert wc.src_node == 0

    run(cluster, proc())
    assert mr_b.read(512, 3) == b"msg"


def test_write_imm_consumes_recv_and_carries_imm(pair):
    cluster = pair["cluster"]
    mr_a, mr_b, qa, qb = pair["mr_a"], pair["mr_b"], pair["qa"], pair["qb"]
    mr_a.write(0, b"abcd")

    def proc():
        qb.post_recv(RecvWR(wr_id=5))
        wr = SendWR(
            Opcode.WRITE_IMM,
            sgl=[Sge(mr_a, 0, 4)],
            remote_addr=mr_b.base_addr,
            rkey=mr_b.rkey,
            imm=0xDEAD,
        )
        yield qa.post_send(wr)
        wc = yield qb.recv_cq.wait_wc()
        assert wc.imm == 0xDEAD
        assert wc.opcode is Opcode.RECV_IMM
        assert wc.byte_len == 4

    run(cluster, proc())
    assert mr_b.read(0, 4) == b"abcd"


def test_fetch_add_is_atomic_and_returns_old(pair):
    cluster = pair["cluster"]
    mr_a, mr_b, qa = pair["mr_a"], pair["mr_b"], pair["qa"]
    mr_b.write(0, struct.pack("<Q", 41))

    def proc():
        wr = SendWR(
            Opcode.FETCH_ADD,
            sgl=[Sge(mr_a, 0, 8)],
            remote_addr=mr_b.base_addr,
            rkey=mr_b.rkey,
            compare_add=1,
        )
        yield qa.post_send(wr)

    run(cluster, proc())
    assert struct.unpack("<Q", mr_a.read(0, 8))[0] == 41
    assert struct.unpack("<Q", mr_b.read(0, 8))[0] == 42


def test_concurrent_fetch_adds_never_lose_updates(pair):
    cluster = pair["cluster"]
    mr_a, mr_b, qa = pair["mr_a"], pair["mr_b"], pair["qa"]
    mr_b.write(0, struct.pack("<Q", 0))

    def adder():
        wr = SendWR(
            Opcode.FETCH_ADD,
            sgl=[Sge(mr_a, 0, 8)],
            remote_addr=mr_b.base_addr,
            rkey=mr_b.rkey,
            compare_add=1,
        )
        yield qa.post_send(wr)

    def driver():
        procs = [cluster.sim.process(adder()) for _ in range(32)]
        yield cluster.sim.all_of(procs)

    run(cluster, driver())
    assert struct.unpack("<Q", mr_b.read(0, 8))[0] == 32


def test_cmp_swap(pair):
    cluster = pair["cluster"]
    mr_a, mr_b, qa = pair["mr_a"], pair["mr_b"], pair["qa"]
    mr_b.write(0, struct.pack("<Q", 7))

    def proc():
        # Successful swap 7 -> 100.
        wr = SendWR(
            Opcode.CMP_SWAP,
            sgl=[Sge(mr_a, 0, 8)],
            remote_addr=mr_b.base_addr,
            rkey=mr_b.rkey,
            compare_add=7,
            swap=100,
        )
        yield qa.post_send(wr)
        assert struct.unpack("<Q", mr_b.read(0, 8))[0] == 100
        # Failed swap (compare mismatch) leaves the value alone.
        wr = SendWR(
            Opcode.CMP_SWAP,
            sgl=[Sge(mr_a, 8, 8)],
            remote_addr=mr_b.base_addr,
            rkey=mr_b.rkey,
            compare_add=7,
            swap=999,
        )
        yield qa.post_send(wr)
        assert struct.unpack("<Q", mr_b.read(0, 8))[0] == 100
        assert struct.unpack("<Q", mr_a.read(8, 8))[0] == 100  # old value

    run(cluster, proc())


def test_remote_write_out_of_bounds_fails(pair):
    cluster = pair["cluster"]
    mr_a, mr_b, qa = pair["mr_a"], pair["mr_b"], pair["qa"]

    def proc():
        wr = SendWR(
            Opcode.WRITE,
            sgl=[Sge(mr_a, 0, 64)],
            remote_addr=mr_b.base_addr + 4090,  # spills past 4096
            rkey=mr_b.rkey,
        )
        status = yield qa.post_send(wr)
        assert status is WcStatus.REM_ACCESS_ERR

    run(cluster, proc())
    completions = qa.send_cq.poll()
    assert completions[0].status is WcStatus.REM_ACCESS_ERR


def test_remote_write_bad_rkey_fails(pair):
    cluster = pair["cluster"]
    mr_a, qa = pair["mr_a"], pair["qa"]

    def proc():
        wr = SendWR(
            Opcode.WRITE,
            sgl=[Sge(mr_a, 0, 8)],
            remote_addr=0,
            rkey=999999,
        )
        status = yield qa.post_send(wr)
        assert status is WcStatus.REM_INV_REQ_ERR

    run(cluster, proc())


def test_write_to_read_only_mr_denied():
    cluster = Cluster(2)

    def proc():
        a, b = cluster[0], cluster[1]
        pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
        mr_a = yield from a.device.reg_mr(pd_a, 4096)
        mr_b = yield from b.device.reg_mr(
            pd_b, 4096, access=Access.REMOTE_READ | Access.LOCAL_WRITE
        )
        qa = a.device.create_qp(pd_a, "RC")
        qb = b.device.create_qp(pd_b, "RC")
        a.device.connect(qa, qb)
        wr = SendWR(
            Opcode.WRITE,
            sgl=[Sge(mr_a, 0, 8)],
            remote_addr=mr_b.base_addr,
            rkey=mr_b.rkey,
        )
        status = yield qa.post_send(wr)
        assert status is WcStatus.REM_ACCESS_ERR

    cluster.run_process(proc())


def test_ud_send_and_mtu_limit():
    cluster = Cluster(2)

    def proc():
        a, b = cluster[0], cluster[1]
        pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
        mr_a = yield from a.device.reg_mr(pd_a, 8192)
        mr_b = yield from b.device.reg_mr(pd_b, 8192)
        qa = a.device.create_qp(pd_a, "UD")
        qb = b.device.create_qp(pd_b, "UD")
        qb.post_recv(RecvWR(mr=mr_b, offset=0, length=4096))
        mr_a.write(0, b"ud-hello")
        wr = SendWR(Opcode.SEND, sgl=[Sge(mr_a, 0, 8)])
        yield qa.post_send(wr, dst=(1, qb.qpn))
        wc = yield qb.recv_cq.wait_wc()
        assert wc.byte_len == 8
        assert mr_b.read(0, 8) == b"ud-hello"
        # Over-MTU UD send is rejected at post time.
        big = SendWR(Opcode.SEND, sgl=[Sge(mr_a, 0, 8192)])
        try:
            qa.post_send(big, dst=(1, qb.qpn))
            assert False, "expected MTU rejection"
        except ValueError:
            pass

    cluster.run_process(proc())


def test_ud_requires_destination(pair):
    cluster = Cluster(1)

    def proc():
        node = cluster[0]
        pd = node.device.alloc_pd()
        mr = yield from node.device.reg_mr(pd, 64)
        qp = node.device.create_qp(pd, "UD")
        try:
            qp.post_send(SendWR(Opcode.SEND, sgl=[Sge(mr, 0, 8)]))
            assert False
        except ValueError:
            pass

    cluster.run_process(proc())


def test_uc_rejects_read():
    cluster = Cluster(2)

    def proc():
        a, b = cluster[0], cluster[1]
        pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
        mr_a = yield from a.device.reg_mr(pd_a, 64)
        _mr_b = yield from b.device.reg_mr(pd_b, 64)
        qa = a.device.create_qp(pd_a, "UC")
        qb = b.device.create_qp(pd_b, "UC")
        a.device.connect(qa, qb)
        try:
            qa.post_send(SendWR(Opcode.READ, sgl=[Sge(mr_a, 0, 8)], rkey=1))
            assert False
        except ValueError:
            pass

    cluster.run_process(proc())


def test_cross_pd_sge_rejected(pair):
    cluster = Cluster(1)

    def proc():
        node = cluster[0]
        pd1, pd2 = node.device.alloc_pd(), node.device.alloc_pd()
        mr = yield from node.device.reg_mr(pd1, 64)
        qp = node.device.create_qp(pd2, "RC")
        qp.connect(0, qp.qpn)
        try:
            qp.post_send(SendWR(Opcode.WRITE, sgl=[Sge(mr, 0, 8)], rkey=mr.rkey))
            assert False
        except ValueError:
            pass

    cluster.run_process(proc())


def test_deregistered_mr_unusable(pair):
    cluster = pair["cluster"]
    mr_a, qa = pair["mr_a"], pair["qa"]

    def proc():
        yield from cluster[0].device.dereg_mr(mr_a)
        try:
            qa.post_send(SendWR(Opcode.WRITE, sgl=[Sge(mr_a, 0, 8)], rkey=1))
            assert False
        except ValueError:
            pass

    run(cluster, proc())


def test_registration_cost_scales_with_pages():
    cluster = Cluster(1)
    sim = cluster.sim
    durations = []

    def proc():
        node = cluster[0]
        pd = node.device.alloc_pd()
        for size in (4096, 64 * 4096):
            start = sim.now
            yield from node.device.reg_mr(pd, size)
            durations.append(sim.now - start)

    cluster.run_process(proc())
    # 64 pages vs 1 page: cost dominated by per-page pinning.
    assert durations[1] > durations[0] * 10


def test_phys_mr_registration_flat_and_pte_free():
    cluster = Cluster(1)
    sim = cluster.sim

    def proc():
        node = cluster[0]
        pd = node.device.alloc_pd()
        start = sim.now
        mr = yield from node.device.reg_phys_mr(pd)
        elapsed = sim.now - start
        assert elapsed < 5.0
        assert mr.physical
        assert mr.page_ids(0, 1 << 20) == []

    cluster.run_process(proc())


def test_phys_mr_reads_live_allocations():
    cluster = Cluster(1)

    def proc():
        node = cluster[0]
        pd = node.device.alloc_pd()
        mr = yield from node.device.reg_phys_mr(pd)
        region = node.memory.alloc(4096)
        region.write(5, b"via-phys")
        assert mr.read(region.addr + 5, 8) == b"via-phys"
        mr.write(region.addr + 100, b"back")
        assert region.read(100, 4) == b"back"

    cluster.run_process(proc())


def test_sgl_gather_multiple_segments(pair):
    cluster = pair["cluster"]
    mr_a, mr_b, qa = pair["mr_a"], pair["mr_b"], pair["qa"]
    mr_a.write(0, b"AAAA")
    mr_a.write(1000, b"BBBB")

    def proc():
        wr = SendWR(
            Opcode.WRITE,
            sgl=[Sge(mr_a, 0, 4), Sge(mr_a, 1000, 4)],
            remote_addr=mr_b.base_addr,
            rkey=mr_b.rkey,
        )
        yield qa.post_send(wr)

    run(cluster, proc())
    assert mr_b.read(0, 8) == b"AAAABBBB"


def test_unsignaled_write_generates_no_cqe(pair):
    cluster = pair["cluster"]
    mr_a, mr_b, qa = pair["mr_a"], pair["mr_b"], pair["qa"]

    def proc():
        wr = SendWR(
            Opcode.WRITE,
            sgl=[Sge(mr_a, 0, 8)],
            remote_addr=mr_b.base_addr,
            rkey=mr_b.rkey,
            signaled=False,
        )
        yield qa.post_send(wr)

    run(cluster, proc())
    assert qa.send_cq.poll() == []


def test_mr_count_tracking(pair):
    cluster = Cluster(1)

    def proc():
        node = cluster[0]
        pd = node.device.alloc_pd()
        mrs = []
        for _ in range(5):
            mr = yield from node.device.reg_mr(pd, 4096)
            mrs.append(mr)
        assert node.device.mr_count == 5
        yield from node.device.dereg_mr(mrs[0])
        assert node.device.mr_count == 4

    cluster.run_process(proc())
