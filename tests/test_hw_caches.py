"""Unit + property tests for the RNIC SRAM cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import LruCache


def test_miss_then_hit():
    cache = LruCache(4)
    assert cache.access("a") is False
    assert cache.access("a") is True
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_lru_eviction_order():
    cache = LruCache(2)
    cache.access("a")
    cache.access("b")
    cache.access("a")  # refresh a; b is now LRU
    cache.access("c")  # evicts b
    assert cache.contains("a")
    assert not cache.contains("b")
    assert cache.contains("c")
    assert cache.stats.evictions == 1


def test_capacity_never_exceeded():
    cache = LruCache(3)
    for key in range(100):
        cache.access(key)
    assert len(cache) == 3


def test_invalidate():
    cache = LruCache(4)
    cache.access("a")
    assert cache.invalidate("a") is True
    assert cache.invalidate("a") is False
    assert not cache.contains("a")


def test_invalidate_where():
    cache = LruCache(8)
    for key in range(6):
        cache.access(key)
    removed = cache.invalidate_where(lambda k: k % 2 == 0)
    assert removed == 3
    assert len(cache) == 3


def test_hit_rate_on_working_set_within_capacity():
    cache = LruCache(16)
    for _round in range(10):
        for key in range(16):
            cache.access(key)
    # First round misses, everything after hits.
    assert cache.stats.hits == 16 * 9
    assert cache.stats.misses == 16


def test_thrashing_working_set_beyond_capacity():
    """Sequential scan over 2x capacity with LRU: zero hits (classic)."""
    cache = LruCache(8)
    for _round in range(5):
        for key in range(16):
            cache.access(key)
    assert cache.stats.hits == 0


def test_invalid_capacity():
    with pytest.raises(ValueError):
        LruCache(0)


def test_contains_does_not_touch_stats():
    cache = LruCache(2)
    cache.access("a")
    hits, misses = cache.stats.hits, cache.stats.misses
    cache.contains("a")
    cache.contains("zzz")
    assert (cache.stats.hits, cache.stats.misses) == (hits, misses)


def test_stats_reset():
    cache = LruCache(2)
    cache.access("a")
    cache.access("a")
    cache.stats.reset()
    assert cache.stats.accesses == 0
    assert cache.stats.hit_rate == 1.0


@given(
    capacity=st.integers(min_value=1, max_value=32),
    keys=st.lists(st.integers(min_value=0, max_value=64), max_size=300),
)
@settings(max_examples=60, deadline=None)
def test_property_size_bounded_and_counters_consistent(capacity, keys):
    cache = LruCache(capacity)
    for key in keys:
        cache.access(key)
    assert len(cache) <= capacity
    assert cache.stats.hits + cache.stats.misses == len(keys)
    assert cache.stats.installs == cache.stats.misses
    assert cache.stats.evictions == max(0, cache.stats.installs - len(cache))


@given(keys=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_property_recently_accessed_key_is_resident(keys):
    cache = LruCache(4)
    for key in keys:
        cache.access(key)
    assert cache.contains(keys[-1])
