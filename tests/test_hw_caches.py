"""Unit + property tests for the RNIC SRAM cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import LruCache
from repro.hw.caches import LruDict


def test_miss_then_hit():
    cache = LruCache(4)
    assert cache.access("a") is False
    assert cache.access("a") is True
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_lru_eviction_order():
    cache = LruCache(2)
    cache.access("a")
    cache.access("b")
    cache.access("a")  # refresh a; b is now LRU
    cache.access("c")  # evicts b
    assert cache.contains("a")
    assert not cache.contains("b")
    assert cache.contains("c")
    assert cache.stats.evictions == 1


def test_capacity_never_exceeded():
    cache = LruCache(3)
    for key in range(100):
        cache.access(key)
    assert len(cache) == 3


def test_invalidate():
    cache = LruCache(4)
    cache.access("a")
    assert cache.invalidate("a") is True
    assert cache.invalidate("a") is False
    assert not cache.contains("a")


def test_invalidate_where():
    cache = LruCache(8)
    for key in range(6):
        cache.access(key)
    removed = cache.invalidate_where(lambda k: k % 2 == 0)
    assert removed == 3
    assert len(cache) == 3


def test_hit_rate_on_working_set_within_capacity():
    cache = LruCache(16)
    for _round in range(10):
        for key in range(16):
            cache.access(key)
    # First round misses, everything after hits.
    assert cache.stats.hits == 16 * 9
    assert cache.stats.misses == 16


def test_thrashing_working_set_beyond_capacity():
    """Sequential scan over 2x capacity with LRU: zero hits (classic)."""
    cache = LruCache(8)
    for _round in range(5):
        for key in range(16):
            cache.access(key)
    assert cache.stats.hits == 0


def test_invalid_capacity():
    with pytest.raises(ValueError):
        LruCache(0)


def test_contains_does_not_touch_stats():
    cache = LruCache(2)
    cache.access("a")
    hits, misses = cache.stats.hits, cache.stats.misses
    cache.contains("a")
    cache.contains("zzz")
    assert (cache.stats.hits, cache.stats.misses) == (hits, misses)


def test_stats_reset():
    cache = LruCache(2)
    cache.access("a")
    cache.access("a")
    cache.stats.reset()
    assert cache.stats.accesses == 0
    assert cache.stats.hit_rate == 1.0


@given(
    capacity=st.integers(min_value=1, max_value=32),
    keys=st.lists(st.integers(min_value=0, max_value=64), max_size=300),
)
@settings(max_examples=60, deadline=None)
def test_property_size_bounded_and_counters_consistent(capacity, keys):
    cache = LruCache(capacity)
    for key in keys:
        cache.access(key)
    assert len(cache) <= capacity
    assert cache.stats.hits + cache.stats.misses == len(keys)
    assert cache.stats.installs == cache.stats.misses
    assert cache.stats.evictions == max(0, cache.stats.installs - len(cache))


@given(keys=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_property_recently_accessed_key_is_resident(keys):
    cache = LruCache(4)
    for key in keys:
        cache.access(key)
    assert cache.contains(keys[-1])


# ---------------------------------------------------------------------------
# LruDict: the value-carrying sibling (duplicate-suppression caches,
# QP-pool expiry memo)
# ---------------------------------------------------------------------------
def test_lrudict_insertion_order_eviction():
    cache = LruDict(3)
    for key in ("a", "b", "c"):
        cache.put(key, key.upper())
    # Lookups do NOT bump recency: touching "a" must not save it.
    assert cache.get("a") == "A"
    cache.put("d", "D")  # evicts "a", the oldest insertion
    assert "a" not in cache
    assert [key for key in ("b", "c", "d") if key in cache] == ["b", "c", "d"]
    cache.put("e", "E")  # evicts "b"
    assert "b" not in cache and len(cache) == 3


def test_lrudict_overwrite_keeps_position_and_value():
    cache = LruDict(2)
    cache.put("x", 1)
    cache.put("y", 2)
    cache.put("x", 3)  # overwrite: keeps x's ORIGINAL (oldest) position
    assert cache.get("x") == 3
    cache.put("z", 4)  # evicts x (still oldest), not y
    assert "x" not in cache
    assert cache.get("y") == 2 and cache.get("z") == 4


def test_lrudict_invalidate_many():
    cache = LruDict(8)
    for key in range(6):
        cache.put(key, key * 10)
    assert cache.invalidate_many([1, 3, 99]) == 2  # 99 absent
    assert 1 not in cache and 3 not in cache
    assert len(cache) == 4
    assert cache.invalidate_many([]) == 0
    # Survivors keep their relative insertion order: filling back up
    # evicts 0 first, then 2.
    for key in ("a", "b", "c", "d"):
        cache.put(key, key)
    assert len(cache) == 8
    cache.put("e", "e")
    assert 0 not in cache
    cache.put("f", "f")
    assert 2 not in cache and 4 in cache and 5 in cache


def test_lrudict_stats_and_capacity_validation():
    with pytest.raises(ValueError):
        LruDict(0)
    cache = LruDict(2, name="memo")
    assert cache.get("missing") is None
    assert cache.get("missing", default=7) == 7
    cache.put("k", "v")
    assert cache.get("k") == "v"
    assert cache.stats.misses == 2 and cache.stats.hits == 1
    assert cache.stats.installs == 1
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.installs == 1  # stats survive clear()
    assert "memo" in repr(cache)


@given(
    capacity=st.integers(min_value=1, max_value=6),
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=9),
                  st.integers(min_value=0, max_value=99)),
        min_size=1, max_size=200,
    ),
)
@settings(max_examples=40, deadline=None)
def test_lrudict_parity_with_handrolled_eviction(capacity, ops):
    """put() reproduces the legacy ``while len >= MAX: del oldest`` loop
    bit for bit — same survivors, same values, same iteration order."""
    cache = LruDict(capacity)
    legacy: dict = {}
    for key, value in ops:
        if key not in legacy:
            while len(legacy) >= capacity:
                del legacy[next(iter(legacy))]
        legacy[key] = value
        cache.put(key, value)
    assert list(cache._entries.items()) == list(legacy.items())
