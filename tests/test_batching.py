"""Batching semantics: doorbell chains, completion coalescing, vector ops.

The acceptance bar for the batched fast path is twofold: with the knobs
at their defaults (``doorbell_batch=1``, ``cq_poll_batch=1``) everything
must be timing-identical to the unbatched path, and with batching on the
data must stay byte-identical while the amortized costs (doorbell MMIOs,
per-CQE discovery) shrink.
"""

import pytest

from repro.cluster import Cluster
from repro.core import LiteContext, lite_boot, rpc_server_loop
from repro.hw.params import DEFAULT_PARAMS, SimParams
from repro.verbs import Opcode, SendWR, WcStatus
from repro.verbs.cq import CompletionQueue
from repro.verbs.wr import WorkCompletion


def make_pair(params=None):
    """Two connected RC QPs across two nodes, with 4 KB MRs."""
    cluster = Cluster(2, params=params)
    state = {"cluster": cluster}

    def setup():
        a, b = cluster[0], cluster[1]
        pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
        state["mr_a"] = yield from a.device.reg_mr(pd_a, 4096)
        state["mr_b"] = yield from b.device.reg_mr(pd_b, 4096)
        state["qa"] = a.device.create_qp(pd_a, "RC")
        state["qb"] = b.device.create_qp(pd_b, "RC")
        a.device.connect(state["qa"], state["qb"])

    cluster.run_process(setup())
    return state


def _write_wr(mr_b, offset, payload):
    return SendWR(
        Opcode.WRITE,
        inline_data=payload,
        remote_addr=mr_b.base_addr + offset,
        rkey=mr_b.rkey,
    )


def test_default_knobs_are_unbatched():
    # The "identical to seed" guarantee rests on these defaults.
    assert DEFAULT_PARAMS.doorbell_batch == 1
    assert DEFAULT_PARAMS.cq_poll_batch == 1


def test_batch_of_one_matches_sequential_post_send():
    """post_send_batch with doorbell_batch=1 is the seed posting path."""
    times = {}
    for mode in ("loop", "batch"):
        state = make_pair(SimParams(doorbell_batch=1))
        cluster, qa, mr_b = state["cluster"], state["qa"], state["mr_b"]

        def proc():
            wrs = [_write_wr(mr_b, 64 * i, b"x%02d" % i) for i in range(8)]
            if mode == "loop":
                procs = [qa.post_send(wr) for wr in wrs]
            else:
                procs = qa.post_send_batch(wrs)
            results = yield cluster.sim.all_of(procs)
            assert all(
                status is WcStatus.SUCCESS for status in results.values()
            )

        cluster.run_process(proc())
        times[mode] = cluster.sim.now
    assert times["loop"] == times["batch"]


def test_batched_post_preserves_intra_batch_order():
    """RC remote execution order holds across a doorbell chain."""
    state = make_pair(SimParams(doorbell_batch=4))
    cluster, qa, mr_b = state["cluster"], state["qa"], state["mr_b"]

    def proc():
        # Ten writes to the SAME remote address: the final contents must
        # be the last posted value, for every chunk boundary position.
        wrs = [_write_wr(mr_b, 128, b"val-%03d" % i) for i in range(10)]
        results = yield cluster.sim.all_of(qa.post_send_batch(wrs))
        assert all(status is WcStatus.SUCCESS for status in results.values())

    cluster.run_process(proc())
    assert state["mr_b"].read(128, 7) == b"val-009"


def test_batched_post_is_never_slower_and_charges_fewer_doorbells():
    elapsed = {}
    for batch in (1, 8):
        state = make_pair(SimParams(doorbell_batch=batch))
        cluster, qa, mr_b = state["cluster"], state["qa"], state["mr_b"]

        def proc():
            wrs = [_write_wr(mr_b, 64 * i, b"y%02d" % i) for i in range(8)]
            yield cluster.sim.all_of(qa.post_send_batch(wrs))

        cluster.run_process(proc())
        elapsed[batch] = cluster.sim.now
    assert elapsed[8] <= elapsed[1]


def test_coalesced_poll_returns_same_cqes_as_one_at_a_time():
    cluster = Cluster(1)
    sim = cluster.sim

    def fill(cq):
        for index in range(7):
            cq.push(
                WorkCompletion(
                    wr_id=index,
                    status=WcStatus.SUCCESS,
                    opcode=Opcode.WRITE,
                )
            )

    one_at_a_time = CompletionQueue(sim)
    fill(one_at_a_time)
    singles = []
    while True:
        got = one_at_a_time.poll(1)
        if not got:
            break
        singles.extend(got)

    coalesced = CompletionQueue(sim)
    fill(coalesced)
    drained = coalesced.poll_cq(64)

    assert [wc.wr_id for wc in drained] == [wc.wr_id for wc in singles]
    assert coalesced.polled == one_at_a_time.polled == 7


def test_adaptive_poll_drains_backlog_in_one_wakeup():
    cluster = Cluster(1)
    node = cluster[0]
    cq = CompletionQueue(cluster.sim)
    for index in range(5):
        cq.push(
            WorkCompletion(
                wr_id=index, status=WcStatus.SUCCESS, opcode=Opcode.WRITE
            )
        )
    out = {}

    def proc():
        out["wcs"] = yield from node.cpu.adaptive_poll(cq, max_entries=16)

    cluster.run_process(proc())
    assert [wc.wr_id for wc in out["wcs"]] == [0, 1, 2, 3, 4]
    # One discovery (half a poll loop) for the whole batch, not five.
    assert cluster.sim.now == pytest.approx(DEFAULT_PARAMS.poll_loop_us / 2)


MB = 1024 * 1024


def _vec_run(params):
    cluster = Cluster(2, params=params)
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], "vec", kernel_level=True)
    holder = {}

    def setup():
        holder["lh"] = yield from ctx.lt_malloc(1 * MB, nodes=2)

    cluster.run_process(setup())
    lh = holder["lh"]
    kernels[0].node.cpu.reset_accounting()
    writes = [(lh, 4096 * i, b"%04d" % i * 256) for i in range(12)]
    reads = [(lh, off, len(data)) for _lh, off, data in writes]
    start = cluster.sim.now
    results = {}

    def driver():
        yield from ctx.lt_write_vec(writes)
        results["data"] = yield from ctx.lt_read_vec(reads)

    cluster.run_process(driver())
    post_cpu = kernels[0].node.cpu.busy_time["lite-post"]
    return results["data"], cluster.sim.now - start, post_cpu


def test_vector_ops_data_identical_across_batch_settings():
    expected = [b"%04d" % i * 256 for i in range(12)]
    data_1, t_1, cpu_1 = _vec_run(SimParams(doorbell_batch=1))
    data_16, t_16, cpu_16 = _vec_run(
        SimParams(doorbell_batch=16, cq_poll_batch=16)
    )
    assert data_1 == expected
    assert data_16 == expected
    # Latency stays in the same place (sub-ns scheduling jitter aside)...
    assert t_16 <= t_1 * 1.01
    # ...while the doorbell CPU cost is amortized: 24 per-WR MMIO charges
    # collapse onto a handful of per-chunk ones (§5.2).
    assert cpu_16 < cpu_1 / 2


def test_vector_ops_amortize_syscall_and_metadata():
    """A vector call beats the equivalent loop of scalar ops in sim time."""
    params = SimParams(doorbell_batch=16)
    cluster = Cluster(2, params=params)
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], "vec")
    holder = {}

    def setup():
        holder["lh"] = yield from ctx.lt_malloc(256 * 1024, nodes=2)

    cluster.run_process(setup())
    lh = holder["lh"]
    ops = [(lh, 1024 * i, b"z" * 512) for i in range(8)]

    start = cluster.sim.now

    def scalar():
        for off_lh, off, data in ops:
            yield from ctx.lt_write(off_lh, off, data)

    cluster.run_process(scalar())
    scalar_time = cluster.sim.now - start

    start = cluster.sim.now

    def vector():
        yield from ctx.lt_write_vec(ops)

    cluster.run_process(vector())
    vector_time = cluster.sim.now - start
    assert vector_time < scalar_time


def test_rpc_works_with_batching_enabled():
    """Reply+head piggybacking keeps the ring protocol correct."""
    params = SimParams(doorbell_batch=16, cq_poll_batch=16)
    cluster = Cluster(2, params=params)
    kernels = lite_boot(cluster)
    client = LiteContext(kernels[0], "cli")
    server = LiteContext(kernels[1], "srv")
    cluster.sim.process(rpc_server_loop(server, 7, lambda data: data[::-1]))
    replies = []

    def driver():
        yield cluster.sim.timeout(5)
        for index in range(20):
            payload = b"msg-%03d" % index
            reply = yield from client.lt_rpc(2, 7, payload, max_reply=64)
            replies.append((payload, reply))

    cluster.run_process(driver())
    assert len(replies) == 20
    assert all(reply == payload[::-1] for payload, reply in replies)
    # The deferred head-pointer updates were flushed with the replies:
    # the client's view of the ring caught up with the server's head.
    ring = kernels[0].rpc.client_rings[2]
    server_ring = kernels[1].rpc.server_rings[1]
    assert not server_ring.head_dirty
    assert ring.head_virtual() == server_ring.head_virtual
