"""Tests for the generalized vertex-program engine (SSSP, CC, PageRank
convergence) on LITE-Graph."""

import pytest

from repro.apps.graph import LiteGraph, PartitionedGraph, pagerank_reference
from repro.apps.graph.algorithms import (
    INFINITY,
    ComponentsProgram,
    PageRankProgram,
    SsspProgram,
    components_reference,
    sssp_reference,
)
from repro.cluster import Cluster
from repro.core import lite_boot
from repro.workloads import powerlaw_graph


@pytest.fixture(scope="module")
def graphs():
    edges = powerlaw_graph(240, 4, seed=21)
    directed = PartitionedGraph(240, edges, 4)
    symmetric = PartitionedGraph(
        240, sorted(set(edges) | {(b, a) for a, b in edges}), 4
    )
    return directed, symmetric


def _run(graph, program, until_converged=True, iterations=10):
    cluster = Cluster(graph.n_partitions)
    kernels = lite_boot(cluster)
    engine = LiteGraph(kernels, graph, program=program)
    if until_converged:
        values, iters = cluster.run_process(engine.run_until_converged())
        return values, iters, engine
    values = cluster.run_process(engine.run(iterations))
    return values, iterations, engine


def test_sssp_matches_bfs_reference(graphs):
    directed, _sym = graphs
    source = 239  # a late vertex: its out-edges reach the old core
    values, iters, _engine = _run(directed, SsspProgram(source))
    reference = sssp_reference(directed, source)
    assert values == reference
    reachable = sum(1 for d in reference if d < INFINITY)
    assert reachable > 3  # non-trivial reachability
    # Needs at least eccentricity(source) rounds.
    longest = max(d for d in reference if d < INFINITY)
    assert iters >= longest


def test_sssp_source_distance_zero(graphs):
    directed, _sym = graphs
    values, _iters, _engine = _run(directed, SsspProgram(100))
    assert values[100] == 0.0


def test_sssp_unreachable_stay_infinite(graphs):
    directed, _sym = graphs
    # Vertex 0 has no out-edges in preferential attachment: from it,
    # almost everything is unreachable.
    values, _iters, _engine = _run(directed, SsspProgram(0))
    reference = sssp_reference(directed, 0)
    assert values == reference
    assert values.count(INFINITY) == reference.count(INFINITY) > 0


def test_components_single_component_on_symmetrized_graph(graphs):
    _directed, symmetric = graphs
    values, _iters, _engine = _run(symmetric, ComponentsProgram())
    assert values == components_reference(symmetric)
    # Preferential attachment is connected once symmetrized.
    assert set(values) == {0.0}


def test_components_finds_separate_islands():
    # Two disjoint cliques: {0..4} and {5..9}.
    edges = []
    for base in (0, 5):
        for a in range(base, base + 5):
            for b in range(base, base + 5):
                if a != b:
                    edges.append((a, b))
    graph = PartitionedGraph(10, edges, 2)
    values, iters, _engine = _run(graph, ComponentsProgram())
    assert values[:5] == [0.0] * 5
    assert values[5:] == [5.0] * 5


def test_pagerank_program_equals_legacy_run(graphs):
    directed, _sym = graphs
    values, _iters, _engine = _run(
        directed, PageRankProgram(), until_converged=False, iterations=5
    )
    assert values == pagerank_reference(directed, 5)


def test_pagerank_converges_with_epsilon():
    edges = powerlaw_graph(120, 4, seed=22)
    graph = PartitionedGraph(120, edges, 3)
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    engine = LiteGraph(kernels, graph, program=PageRankProgram())
    values, iters = cluster.run_process(
        engine.run_until_converged(epsilon=1e-10, max_iterations=200)
    )
    assert iters < 200  # actually converged
    # One more reference iteration changes nothing beyond epsilon.
    reference = pagerank_reference(graph, iters)
    assert max(abs(a - b) for a, b in zip(values, reference)) < 1e-9


def test_convergence_respects_max_iterations():
    edges = powerlaw_graph(100, 4, seed=23)
    graph = PartitionedGraph(100, edges, 2)
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    engine = LiteGraph(kernels, graph, program=PageRankProgram())
    _values, iters = cluster.run_process(
        engine.run_until_converged(epsilon=0.0, max_iterations=3)
    )
    assert iters == 3
