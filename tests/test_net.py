"""Tests for the TCP/IPoIB stack and the RDMA-CM wrapper."""

import pytest

from repro.cluster import Cluster
from repro.net import rdma_cm_connect


@pytest.fixture
def cluster():
    return Cluster(3)


def test_tcp_connect_and_framed_messages(cluster):
    sim = cluster.sim
    listener = cluster[1].tcp.listen(5000)
    got = []

    def server():
        conn = yield from listener.accept()
        msg = yield from conn.recv_msg()
        got.append(msg)
        yield from conn.send_msg(b"ack:" + msg)

    def client():
        conn = yield from cluster[0].tcp.connect(1, 5000)
        yield from conn.send_msg(b"payload")
        reply = yield from conn.recv_msg()
        return reply

    def main():
        sim.process(server())
        yield sim.timeout(1)
        reply = yield from client()
        return reply

    assert cluster.run_process(main()) == b"ack:payload"
    assert got == [b"payload"]


def test_tcp_byte_stream_preserves_order(cluster):
    sim = cluster.sim
    listener = cluster[1].tcp.listen(5001)

    def server(out):
        conn = yield from listener.accept()
        data = yield from conn.recv_exact(300)
        out.append(data)

    def main():
        out = []
        sproc = sim.process(server(out))
        yield sim.timeout(1)
        conn = yield from cluster[0].tcp.connect(1, 5001)
        for index in range(3):
            yield from conn.send(bytes([index]) * 100)
        yield sproc
        return out[0]

    data = cluster.run_process(main())
    assert data == b"\x00" * 100 + b"\x01" * 100 + b"\x02" * 100


def test_tcp_latency_far_above_rdma(cluster):
    sim = cluster.sim
    listener = cluster[1].tcp.listen(5002)

    def server():
        conn = yield from listener.accept()
        while True:
            msg = yield from conn.recv_msg()
            yield from conn.send_msg(msg)

    def main():
        sim.process(server())
        yield sim.timeout(1)
        conn = yield from cluster[0].tcp.connect(1, 5002)
        yield from conn.send_msg(b"warm")
        yield from conn.recv_msg()
        start = sim.now
        yield from conn.send_msg(b"x" * 64)
        yield from conn.recv_msg()
        return sim.now - start

    rtt = cluster.run_process(main())
    # One-way TCP latency ~15-25 us (paper Fig 6); RTT 2x that.
    assert 25 < rtt < 70


def test_tcp_large_transfer_bandwidth(cluster):
    sim = cluster.sim
    listener = cluster[1].tcp.listen(5003)
    nbytes = 2_000_000

    def server(done):
        conn = yield from listener.accept()
        data = yield from conn.recv_exact(nbytes)
        done.append(len(data))

    def main():
        done = []
        sproc = sim.process(server(done))
        yield sim.timeout(1)
        conn = yield from cluster[0].tcp.connect(1, 5003)
        start = sim.now
        yield from conn.send(b"z" * nbytes)
        yield sproc
        elapsed = sim.now - start
        return done[0], nbytes / elapsed  # bytes/us = MB/s / 1e... GB/s*1e-3

    received, rate = cluster.run_process(main())
    assert received == nbytes
    # IPoIB single-stream: ~1-2.6 GB/s (1000-2600 bytes/us), below link.
    assert 800 < rate < 3000


def test_tcp_connect_refused(cluster):
    def main():
        with pytest.raises(ConnectionRefusedError):
            yield from cluster[0].tcp.connect(1, 9999)

    cluster.run_process(main())


def test_tcp_duplicate_listen_rejected(cluster):
    cluster[0].tcp.listen(7000)
    with pytest.raises(ValueError):
        cluster[0].tcp.listen(7000)


def test_rdma_cm_channel_write_read(cluster):
    def main():
        chan_a, chan_b = yield from rdma_cm_connect(cluster[0], cluster[1])
        chan_a.local_mr.write(0, b"cm-data")
        status = yield from chan_a.write(0, 100, 7)
        assert status.value == "success"
        assert chan_b.local_mr.read(100, 7) == b"cm-data"
        status = yield from chan_b.read(500, 0, 7)
        assert chan_b.local_mr.read(500, 7) == b"cm-data"
        return True

    assert cluster.run_process(main()) is True


def test_rdma_cm_slower_than_raw_verbs_but_close(cluster):
    sim = cluster.sim

    def main():
        chan_a, _chan_b = yield from rdma_cm_connect(cluster[0], cluster[1])
        yield from chan_a.write(0, 0, 64)  # warm
        start = sim.now
        for _ in range(10):
            yield from chan_a.write(0, 0, 64)
        return (sim.now - start) / 10

    latency = cluster.run_process(main())
    overhead = cluster.params.rdma_cm_overhead_us
    assert latency > overhead
    assert latency < 5.0
