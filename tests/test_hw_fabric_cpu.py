"""Tests for the fabric (bandwidth/latency) and CPU accounting models."""

import pytest

from repro.hw import DEFAULT_PARAMS, CpuSet, Fabric, SimParams
from repro.sim import Simulator


def make_fabric(n=2, params=None):
    sim = Simulator()
    params = params or DEFAULT_PARAMS
    fabric = Fabric(sim, params)
    for node_id in range(n):
        fabric.attach(node_id)
    return sim, fabric, params


def test_transfer_latency_small_message():
    sim, fabric, params = make_fabric()

    def proc():
        yield from fabric.transfer(0, 1, 64)

    sim.run_process(proc())
    expected = params.wire_time(64) + params.one_way_fabric_us()
    assert sim.now == pytest.approx(expected)


def test_transfer_latency_scales_with_size():
    sim, fabric, params = make_fabric()
    times = []

    def proc(nbytes):
        start = sim.now
        yield from fabric.transfer(0, 1, nbytes)
        times.append(sim.now - start)

    sim.run_process(proc(1024))
    sim.run_process(proc(65536))
    assert times[1] > times[0]
    assert times[1] - times[0] == pytest.approx(params.wire_time(65536 - 1024))


def test_link_bandwidth_is_a_ceiling():
    """Two senders to one receiver share the ingress link (incast)."""
    sim, fabric, params = make_fabric(n=3)
    done = []

    def sender(src):
        yield from fabric.transfer(src, 2, 1_000_000)
        done.append(sim.now)

    sim.process(sender(0))
    sim.process(sender(1))
    sim.run()
    serialization = params.wire_time(1_000_000)
    # Second transfer must wait for the first to clear the ingress link.
    assert done[1] >= 2 * serialization


def test_parallel_disjoint_transfers_do_not_interfere():
    sim, fabric, params = make_fabric(n=4)
    done = []

    def sender(src, dst):
        yield from fabric.transfer(src, dst, 1_000_000)
        done.append(sim.now)

    sim.process(sender(0, 1))
    sim.process(sender(2, 3))
    sim.run()
    expected = params.wire_time(1_000_000) + params.one_way_fabric_us()
    assert done[0] == pytest.approx(expected)
    assert done[1] == pytest.approx(expected)


def test_loopback_transfer_short_circuits_switch():
    sim, fabric, params = make_fabric()

    def proc():
        yield from fabric.transfer(0, 0, 4096)

    sim.run_process(proc())
    assert sim.now < params.wire_time(4096) + params.one_way_fabric_us()


def test_transfer_to_unattached_node_raises():
    sim, fabric, _params = make_fabric()

    def proc():
        yield from fabric.transfer(0, 99, 10)

    with pytest.raises(ValueError):
        sim.run_process(proc())


def test_byte_accounting():
    sim, fabric, _params = make_fabric()

    def proc():
        yield from fabric.transfer(0, 1, 500)

    sim.run_process(proc())
    assert fabric.total_bytes == 500
    assert fabric.ports[0].tx_bytes == 500
    assert fabric.ports[1].rx_bytes == 500


# ---------------------------------------------------------------- CPU --


def test_cpu_execute_accounts_busy_time():
    sim = Simulator()
    cpu = CpuSet(sim, DEFAULT_PARAMS, cores=2)

    def proc():
        yield from cpu.execute(5.0, tag="map")
        yield from cpu.execute(3.0, tag="map")

    sim.run_process(proc())
    assert cpu.busy_time["map"] == pytest.approx(8.0)
    assert cpu.total_busy() == pytest.approx(8.0)


def test_cpu_core_contention_queues():
    sim = Simulator()
    cpu = CpuSet(sim, DEFAULT_PARAMS, cores=1)
    finish = []

    def proc(label):
        yield from cpu.execute(10.0, tag=label)
        finish.append((label, sim.now))

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert finish == [("a", 10.0), ("b", 20.0)]


def test_busy_wait_charges_full_wait():
    sim = Simulator()
    params = DEFAULT_PARAMS
    cpu = CpuSet(sim, params)
    gate = sim.event()

    def firer():
        yield sim.timeout(50)
        gate.succeed("done")

    def waiter():
        value = yield from cpu.busy_wait(gate, tag="poller")
        return value

    sim.process(firer())
    proc = sim.process(waiter())
    assert sim.run(stop=proc) == "done"
    assert cpu.busy_time["poller"] == pytest.approx(50 + params.poll_loop_us / 2)


def test_adaptive_wait_sleeps_after_window():
    params = SimParams(adaptive_busy_window_us=10.0, thread_wakeup_us=2.0)
    sim = Simulator()
    cpu = CpuSet(sim, params)
    gate = sim.event()

    def firer():
        yield sim.timeout(100)
        gate.succeed()

    def waiter():
        yield from cpu.adaptive_wait(gate, tag="adaptive")

    sim.process(firer())
    proc = sim.process(waiter())
    sim.run(stop=proc)
    # Charged only the busy window + wakeup, far less than 100 us.
    assert cpu.busy_time["adaptive"] == pytest.approx(10.0 + 2.0)
    # But the wakeup added latency.
    assert sim.now == pytest.approx(102.0)


def test_adaptive_wait_fast_path_has_no_wakeup_latency():
    params = SimParams(adaptive_busy_window_us=10.0, thread_wakeup_us=2.0)
    sim = Simulator()
    cpu = CpuSet(sim, params)
    gate = sim.event()

    def firer():
        yield sim.timeout(3)
        gate.succeed()

    def waiter():
        yield from cpu.adaptive_wait(gate, tag="adaptive")

    sim.process(firer())
    proc = sim.process(waiter())
    sim.run(stop=proc)
    assert sim.now < 4.0
    assert cpu.busy_time["adaptive"] == pytest.approx(3.0 + params.poll_loop_us / 2)


def test_charge_rejects_negative():
    sim = Simulator()
    cpu = CpuSet(sim, DEFAULT_PARAMS)
    with pytest.raises(ValueError):
        cpu.charge("x", -1.0)


def test_params_pages_touched():
    params = DEFAULT_PARAMS
    assert params.pages_touched(0, 1) == 1
    assert params.pages_touched(0, 4096) == 1
    assert params.pages_touched(0, 4097) == 2
    assert params.pages_touched(4095, 2) == 2
    assert params.pages_touched(0, 0) == 0


def test_params_copy_overrides():
    params = DEFAULT_PARAMS.copy(mr_key_cache_entries=7)
    assert params.mr_key_cache_entries == 7
    assert DEFAULT_PARAMS.mr_key_cache_entries != 7
