"""Vectorized multi-chunk fast path: A/B equivalence and crash fencing.

Satellite coverage for the ISSUE 10 tentpole (docs/INTERNALS.md §13):
``try_fast_post_vec`` commits an entire ``MappedLmr.plan()`` fan-out as
one arithmetic pass, so every multi-chunk shape must stay *bit-identical*
to the generator path — local+remote chunk straddles, replica fan-out
(``replicas=k``), sparse scattered sub-ranges whose plans land on
different memo keys, active fault plans, and a primary crash mid-transfer
(failover promotion retargets the mapping and must orphan every memoised
plan before a stale layout can commit).

As in test_fastpath.py, comparison happens only at quiescence: the
vectorized commit accounts counters at commit time, so mid-flight
snapshots may legally differ — end states may not.
"""

import dataclasses
import os
import random

import pytest

from repro.cluster import Cluster
from repro.core import LiteContext, LiteError, lite_boot
from repro.determinism import reset_global_counters
from repro.fault import FaultInjector, FaultPlan
from repro.hw.params import SimParams
from repro.recovery import RecoveryManager
from repro.stats import snapshot
from repro.verbs.fastpath import fp_stats


# 64 KB chunks: a 256 KB LMR split across two hosts yields four chunks,
# so modest offsets straddle chunk and host boundaries.
CHUNK = 64 * 1024


def _with_fastpath(enabled):
    if enabled:
        os.environ.pop("REPRO_NO_FASTPATH", None)
    else:
        os.environ["REPRO_NO_FASTPATH"] = "1"


def _run_vec_workload(seed: int, fastpath: bool, faults: bool):
    """Randomized multi-chunk ops over three LMR shapes; end observables."""
    saved = os.environ.get("REPRO_NO_FASTPATH")
    _with_fastpath(fastpath)
    reset_global_counters()
    try:
        params = SimParams(lite_chunk_bytes=CHUNK)
        cluster = Cluster(3, params=params)
        kernels = lite_boot(cluster)
        sim = cluster.sim
        if faults:
            plan = FaultPlan.random(
                seed, [node.node_id for node in cluster.nodes], 60000.0,
                crashes=0, flaps=1, loss_rate=0.02,
            )
            FaultInjector(cluster, plan).install()
        ctx = LiteContext(kernels[0], "vec", kernel_level=True)
        holder = {}

        def setup():
            # Remote-remote straddle: 2 chunks on LITE 2 + 2 on LITE 3.
            holder["ab"] = yield from ctx.lt_malloc(
                4 * CHUNK, name="vec-ab", nodes=[2, 3]
            )
            # Local+remote straddle: first half loops back through the
            # caller's own port, second half crosses the wire.
            holder["loc"] = yield from ctx.lt_malloc(
                2 * CHUNK, name="vec-loc", nodes=[1, 3]
            )
            # Replica fan-out: primary on LITE 2, one full backup.
            holder["rep"] = yield from ctx.lt_malloc(
                2 * CHUNK, name="vec-rep", nodes=2, replicas=1
            )

        cluster.run_process(setup())
        rng = random.Random(seed)
        errors = []
        # Sparse scattered sub-ranges: ops hop between disjoint windows
        # (holes between them), so plans land on distinct memo keys and
        # the memo grows past a single hot entry.
        windows = [0, CHUNK // 2, CHUNK, 2 * CHUNK - 4096, 3 * CHUNK // 2]

        def driver():
            yield sim.timeout(5)
            for index in range(70):
                which = rng.randrange(3)
                lh = holder[("ab", "loc", "rep")[which]]
                span = (4 if which == 0 else 2) * CHUNK
                base = windows[rng.randrange(len(windows))] % span
                size = rng.choice((256, 4096, 32768, CHUNK, CHUNK + 8192))
                size = min(size, span - base)
                try:
                    if rng.randrange(3) == 0:
                        data = yield from ctx.lt_read(lh, base, size)
                        errors.append(len(data))
                    else:
                        yield from ctx.lt_write(
                            lh, base, bytes([index & 0xFF]) * size
                        )
                except LiteError as exc:
                    errors.append((type(exc).__name__, exc.errno))

        cluster.run_process(driver())
        sim.run()  # drain in-flight tails before comparing
        snap = dataclasses.asdict(snapshot(cluster))
        return sim.now, sim._seq, snap, errors
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_FASTPATH", None)
        else:
            os.environ["REPRO_NO_FASTPATH"] = saved


@pytest.mark.parametrize("seed", [3, 41])
@pytest.mark.parametrize("faults", [False, True])
def test_vec_equivalence_randomized(seed, faults):
    vec_before = fp_stats.vec_commits
    mismodels_before = fp_stats.mismodels
    fast = _run_vec_workload(seed, fastpath=True, faults=faults)
    if not faults:
        assert fp_stats.vec_commits > vec_before, \
            "the workload must actually exercise vectorized commits"
        assert fp_stats.mismodels == mismodels_before, \
            "clean vectorized runs must not widen any hold"
    slow = _run_vec_workload(seed, fastpath=False, faults=faults)
    assert fast[0] == slow[0], "final sim time diverged"
    assert fast[1] == slow[1], "event sequence counter diverged"
    assert fast[2] == slow[2], "cluster snapshot diverged"
    assert fast[3] == slow[3], "op outcomes diverged"


def test_plan_memo_reused_across_repeats():
    """Repeating one shape must hit the plan memo, not rebuild it."""
    saved = os.environ.get("REPRO_NO_FASTPATH")
    _with_fastpath(True)
    reset_global_counters()
    try:
        params = SimParams(lite_chunk_bytes=CHUNK)
        cluster = Cluster(3, params=params)
        kernels = lite_boot(cluster)
        ctx = LiteContext(kernels[0], "memo", kernel_level=True)
        holder = {}

        def setup():
            holder["lh"] = yield from ctx.lt_malloc(
                4 * CHUNK, name="memo", nodes=[2, 3]
            )

        cluster.run_process(setup())
        builds_before = fp_stats.plan_builds
        hits_before = fp_stats.plan_hits

        def driver():
            for index in range(8):
                yield from ctx.lt_write(
                    holder["lh"], CHUNK // 2, bytes([index]) * (2 * CHUNK)
                )

        cluster.run_process(driver())
        cluster.sim.run()
        assert fp_stats.plan_builds - builds_before <= 2, \
            "one shape repeated must not rebuild its plan every op"
        assert fp_stats.plan_hits - hits_before >= 6, \
            "repeats of one shape must hit the plan memo"
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_FASTPATH", None)
        else:
            os.environ["REPRO_NO_FASTPATH"] = saved


# ---------------------------------------------------------------------------
# Mid-transfer crash: promotion must orphan memoised plans (ISSUE 10 fix)
# ---------------------------------------------------------------------------
def _run_vec_crash_burst(fastpath: bool):
    """Multi-chunk write burst whose primary crashes mid-burst.

    The LMR is replicated, so the lease sweeper promotes the backup and
    ``MappedLmr.retarget`` repoints the mapping — any plan memoised
    against the dead layout must never commit again.  Returns end-state
    observables plus the recovery lifecycle counts.
    """
    saved = os.environ.get("REPRO_NO_FASTPATH")
    _with_fastpath(fastpath)
    reset_global_counters()
    try:
        params = SimParams(lite_chunk_bytes=CHUNK)
        cluster = Cluster(3, params=params)
        kernels = lite_boot(cluster)
        sim = cluster.sim
        # Fabric node 1 is LITE 2: the primary's host.
        plan = FaultPlan().crash(1, 2500.0, restart_at_us=8000.0)
        injector = FaultInjector(cluster, plan).install()
        injector.arm_lite(kernels, keepalive_interval_us=500.0, miss_limit=2)
        recovery = RecoveryManager(
            cluster, kernels, lease_ttl_us=1500.0,
            renew_interval_us=400.0, sweep_interval_us=300.0,
        ).arm()
        ctx = LiteContext(kernels[0], "vcrash", kernel_level=True)
        holder = {}

        def setup():
            holder["lh"] = yield from ctx.lt_malloc(
                3 * CHUNK, name="vcrash", nodes=2, replicas=1
            )

        cluster.run_process(setup())
        lh = holder["lh"]
        outcomes = []

        def driver():
            for index in range(40):
                # Every op straddles at least two chunks, so the burst
                # rides the vectorized path right up to the crash.
                offset = (index * 8192) % CHUNK
                size = CHUNK + 16384
                try:
                    yield from ctx.lt_write(
                        lh, offset, bytes([index & 0xFF]) * size
                    )
                    outcomes.append(index)
                except LiteError as exc:
                    outcomes.append((type(exc).__name__, exc.errno))
                    yield sim.timeout(200.0)
                yield sim.timeout(60.0)
            if sim.now < 12000.0:
                yield sim.timeout(12000.0 - sim.now)
            recovery.stop()

        cluster.run_process(driver())
        snap = dataclasses.asdict(snapshot(cluster))
        return (sim.now, sim._seq, snap, outcomes,
                recovery.promotions, recovery.rejoins)
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_FASTPATH", None)
        else:
            os.environ["REPRO_NO_FASTPATH"] = saved


def test_mid_transfer_crash_vec_ab_identity():
    """A primary crash mid multi-chunk burst must stay bit-identical A/B.

    Guards the ISSUE 10 satellite fix: failover promotion remaps
    ``lh -> (node, addr)`` via ``MappedLmr.retarget`` (plan_version bump
    + memo clear) and ``node.fastpath_fence`` drops plan memos cluster-
    wide — a stale vectorized plan committing against the promoted-away
    layout would diverge time, seq, snapshot, and outcomes."""
    vec_before = fp_stats.vec_commits
    fast = _run_vec_crash_burst(fastpath=True)
    assert fp_stats.vec_commits > vec_before, \
        "the burst must actually exercise vectorized commits"
    slow = _run_vec_crash_burst(fastpath=False)
    assert fast[0] == slow[0], "final sim time diverged"
    assert fast[1] == slow[1], "event sequence counter diverged"
    assert fast[2] == slow[2], "cluster snapshot diverged"
    assert fast[3] == slow[3], "op outcomes diverged"
    assert fast[4:] == slow[4:], "recovery lifecycle diverged"
    assert fast[4] >= 1, "the crash must trigger a promotion"
    assert fast[5] >= 1, "the restart must trigger a rejoin"
