"""Backpressure limits and storage-boundary edge cases."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core import LiteContext, lite_boot, rpc_server_loop
from repro.hw.memory import HostMemory, PhysRegion
from repro.verbs import Access, Opcode, SendWR, Sge


def test_send_queue_depth_limits_outstanding_ops():
    """max_send_wr bounds in-flight WRs: extra posts queue at the SQ."""
    cluster = Cluster(2)
    sim = cluster.sim

    def proc():
        a, b = cluster[0], cluster[1]
        pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
        mr_a = yield from a.device.reg_mr(pd_a, 1 << 16, Access.ALL)
        mr_b = yield from b.device.reg_mr(pd_b, 1 << 16, Access.ALL)
        qa = a.device.create_qp(pd_a, "RC", max_send_wr=4)
        qb = b.device.create_qp(pd_b, "RC")
        a.device.connect(qa, qb)
        procs = [
            qa.post_send(SendWR(
                Opcode.WRITE, sgl=[Sge(mr_a, 0, 4096)],
                remote_addr=mr_b.base_addr, rkey=mr_b.rkey,
                signaled=False,
            ))
            for _ in range(12)
        ]
        # Only 4 slots: in-flight never exceeds the queue depth.
        assert qa._sq_slots.in_use <= 4
        yield sim.all_of(procs)
        assert qa.posted_sends == 12
        return True

    assert cluster.run_process(proc()) is True


def test_rpc_ring_sustains_sustained_overload():
    """Offered load far above the tiny ring's capacity: flow control
    keeps every call correct, none lost, none duplicated."""
    from repro.hw import SimParams

    params = SimParams(lite_rpc_ring_bytes=1 << 11)  # 2 KB ring
    cluster = Cluster(2, params=params)
    kernels = lite_boot(cluster)
    sim = cluster.sim
    served = []

    def handler(data):
        yield sim.timeout(5)
        served.append(data)
        return data

    server = LiteContext(kernels[1], "s")
    sim.process(rpc_server_loop(server, 1, handler))
    client_ctxs = [LiteContext(kernels[0], f"c{i}") for i in range(6)]
    replies = []

    def worker(index):
        ctx = client_ctxs[index]
        for call in range(8):
            payload = f"{index}-{call}".encode() + b"x" * 300
            reply = yield from ctx.lt_rpc(2, 1, payload, max_reply=512)
            replies.append(reply)

    def proc():
        yield sim.timeout(1)
        procs = [sim.process(worker(i)) for i in range(6)]
        yield sim.all_of(procs)

    cluster.run_process(proc())
    assert len(replies) == 48
    assert sorted(replies) == sorted(served)
    assert len(set(replies)) == 48


# ----------------------------------------------- sparse-block storage --


@pytest.mark.slow
@given(data=st.data())
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.data_too_large])
def test_property_sparse_region_rw_across_block_boundaries(data):
    """Reads/writes straddling the 64 KiB sparse-block boundary behave
    exactly like a flat buffer."""
    size = 3 * PhysRegion._BLOCK
    region = PhysRegion(0, 0, size)
    shadow = bytearray(size)
    for _ in range(data.draw(st.integers(min_value=1, max_value=12))):
        offset = data.draw(st.integers(min_value=0, max_value=size - 1))
        length = data.draw(st.integers(min_value=0, max_value=min(
            size - offset, 100_000)))
        if data.draw(st.booleans()):
            payload = data.draw(st.binary(min_size=length, max_size=length))
            region.write(offset, payload)
            shadow[offset : offset + length] = payload
        else:
            assert region.read(offset, length) == bytes(
                shadow[offset : offset + length]
            )
    # Full sweep at the end.
    assert region.read(0, size) == bytes(shadow)


def test_sparse_region_untouched_blocks_cost_nothing():
    region = PhysRegion(0, 0, 1 << 30)  # 1 GB
    region.write(123_456_789, b"island")
    assert len(region._blocks) == 1
    assert region.read(123_456_789, 6) == b"island"
    assert region.read(0, 16) == b"\x00" * 16


def test_host_memory_resolve_at_exact_region_end():
    memory = HostMemory(0, capacity=1 << 16)
    region = memory.alloc(4096)
    found, offset = memory.resolve(region.addr + 4095, 1)
    assert found is region and offset == 4095
    with pytest.raises(ValueError):
        memory.resolve(region.addr + 4095, 2)  # spills past the end


def test_kv_store_contention_many_clients():
    """Several clients hammer overlapping keys; every GET returns some
    committed value for that key, and the final state is exact."""
    import random

    from repro.apps.kvstore import LiteKVClient, LiteKVServer

    rng = random.Random(17)
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    sim = cluster.sim
    servers = [LiteKVServer(kernels[2], 0)]

    def setup():
        yield from servers[0].start(n_server_threads=4)
        yield sim.timeout(1)

    cluster.run_process(setup())
    clients = [
        LiteKVClient(kernels[index % 2], servers, principal=f"cl{index}")
        for index in range(4)
    ]
    keys = [b"shared-a", b"shared-b"]
    committed = {key: set() for key in keys}
    final = {}

    def worker(index):
        client = clients[index]
        for op in range(12):
            key = keys[rng.randrange(2)]
            if rng.random() < 0.5:
                value = f"{index}:{op}".encode()
                committed[key].add(value)
                yield from client.put(key, value)
                final[key] = (sim.now, value)
            else:
                got = yield from client.get(key)
                if got is not None:
                    assert got in committed[key], got

    def proc():
        procs = [sim.process(worker(i)) for i in range(4)]
        yield sim.all_of(procs)
        # Quiesced: a fresh client must read the last-written values.
        fresh = LiteKVClient(kernels[0], servers, principal="fresh")
        out = {}
        for key in keys:
            if key in final:
                out[key] = (yield from fresh.get(key))
        return out

    out = cluster.run_process(proc())
    for key, value in out.items():
        assert value == final[key][1]
