"""Tests for internal components: RPC rings, control plane, cluster
manager, CPU sleep waits, TCP backpressure."""

import struct

import pytest

from repro.cluster import Cluster, ClusterManager
from repro.core import LiteContext, lite_boot
from repro.core.rpc import _ClientRing, _ServerRing
from repro.hw import DEFAULT_PARAMS, CpuSet
from repro.hw.memory import HostMemory
from repro.sim import Simulator


# ----------------------------------------------------------- rings --


def _head_region():
    return HostMemory(0, capacity=1 << 16).alloc(8)


def test_client_ring_free_space_tracks_head():
    head = _head_region()
    ring = _ClientRing(server_id=2, ring_addr=0x1000, size=4096,
                       head_region=head)
    assert ring.free_space() == 4096
    ring.tail_virtual = 1000
    assert ring.free_space() == 3096
    # Server advances the head by writing the 8-byte slot.
    head.write(0, struct.pack("<Q", 600))
    assert ring.free_space() == 3696


def test_server_ring_read_wrapped():
    memory = HostMemory(0, capacity=1 << 16)
    region = memory.alloc(64)
    state = _ServerRing(client_id=1, region=region, client_head_slot_addr=0)
    region.write(60, b"abcd")
    region.write(0, b"efgh")
    assert state.read_wrapped(60, 8) == b"abcdefgh"
    assert state.read_wrapped(60 + 64, 4) == b"abcd"  # virtual wrap


# ---------------------------------------------------- cluster manager --


def test_manager_assigns_stable_ids():
    cluster = Cluster(3)
    manager = cluster.manager
    node = cluster[0]
    lite_id = manager.join(node)
    assert manager.join(node) == lite_id  # idempotent
    assert manager.lookup(lite_id) is node


def test_manager_lookup_unknown_raises():
    manager = ClusterManager()
    with pytest.raises(KeyError):
        manager.lookup(42)


def test_manager_name_directory():
    manager = ClusterManager()
    manager.register_name("x", 1)
    assert manager.lookup_name("x") == 1
    with pytest.raises(KeyError):
        manager.register_name("x", 2)
    manager.drop_name("x")
    with pytest.raises(KeyError):
        manager.lookup_name("x")
    manager.drop_name("x")  # idempotent


def test_cluster_requires_a_node():
    with pytest.raises(ValueError):
        Cluster(0)


# ------------------------------------------------------ CPU sleep wait --


def test_sleep_wait_charges_only_wakeup():
    sim = Simulator()
    cpu = CpuSet(sim, DEFAULT_PARAMS)
    gate = sim.event()

    def firer():
        yield sim.timeout(500)
        gate.succeed("v")

    def waiter():
        value = yield from cpu.sleep_wait(gate, tag="sleeper")
        return value

    sim.process(firer())
    proc = sim.process(waiter())
    assert sim.run(stop=proc) == "v"
    assert cpu.busy_time["sleeper"] == pytest.approx(
        DEFAULT_PARAMS.thread_wakeup_us
    )


def test_execute_rejects_negative_duration():
    sim = Simulator()
    cpu = CpuSet(sim, DEFAULT_PARAMS)
    with pytest.raises(ValueError):
        next(iter(cpu.execute(-1.0)))


# ------------------------------------------------------ TCP backpressure --


def test_tcp_send_blocks_on_full_socket_buffer():
    cluster = Cluster(2)
    sim = cluster.sim
    listener = cluster[1].tcp.listen(8800)
    accepted = {}

    def server():
        conn = yield from listener.accept()
        accepted["conn"] = conn
        yield sim.timeout(10_000)  # never reads; peer keeps delivering

    def main():
        sim.process(server())
        yield sim.timeout(1)
        conn = yield from cluster[0].tcp.connect(1, 8800)
        start = sim.now
        # 4 MB into a 256 KB socket buffer: send(2) must block until
        # enough bytes are acked, far longer than the syscall cost.
        yield from conn.send(b"z" * (4 << 20))
        return sim.now - start

    elapsed = cluster.run_process(main())
    wire_floor = (4 << 20) / cluster.params.tcp_bandwidth_bytes_per_us * 0.8
    assert elapsed > wire_floor


def test_tcp_empty_send_is_harmless():
    cluster = Cluster(2)
    sim = cluster.sim
    listener = cluster[1].tcp.listen(8801)

    def server():
        conn = yield from listener.accept()
        data = yield from conn.recv_msg()
        return data

    def main():
        sproc = sim.process(server())
        yield sim.timeout(1)
        conn = yield from cluster[0].tcp.connect(1, 8801)
        yield from conn.send(b"")
        yield from conn.send_msg(b"real")
        got = yield sproc
        return got

    assert cluster.run_process(main()) == b"real"


# --------------------------------------------- LITE control internals --


def test_ctrl_request_error_propagates_as_lite_error():
    from repro.core import LiteError

    cluster = Cluster(2)
    kernels = lite_boot(cluster)

    def proc():
        with pytest.raises(LiteError, match="unknown control type"):
            yield from kernels[0].ctrl_request(2, {"type": "bogus"})

    cluster.run_process(proc())


def test_user_messages_queue_in_order():
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    sender = LiteContext(kernels[0], "s")
    receiver = LiteContext(kernels[1], "r")
    sim = cluster.sim
    got = []

    def recv_loop():
        for _ in range(3):
            _src, data = yield from receiver.lt_recv_msg()
            got.append(data)

    def proc():
        sim.process(recv_loop())
        yield sim.timeout(1)
        for index in range(3):
            yield from sender.lt_send(2, f"m{index}".encode())
        yield sim.timeout(50)

    cluster.run_process(proc())
    assert got == [b"m0", b"m1", b"m2"]


def test_poller_charges_cpu_for_busy_polling():
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], "c")
    sim = cluster.sim
    kernels[1].node.cpu.reset_accounting()

    def proc():
        yield sim.timeout(200)  # idle period: poller spins
        lh = yield from ctx.lt_malloc(64, nodes=2)  # wakes the peer's poller
        yield from ctx.lt_write(lh, 0, b"x")

    cluster.run_process(proc())
    # The remote poller burned roughly the whole idle window.
    assert kernels[1].node.cpu.busy_time["lite-poll"] > 150


def test_onesided_op_counters():
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], "c")

    def proc():
        lh = yield from ctx.lt_malloc(4096, nodes=2)
        yield from ctx.lt_write(lh, 0, b"a")
        yield from ctx.lt_read(lh, 0, 1)
        yield from ctx.lt_fetch_add(lh, 8, 1)

    cluster.run_process(proc())
    engine = kernels[0].onesided
    assert engine.writes >= 1
    assert engine.reads >= 1
    assert engine.atomics >= 1
