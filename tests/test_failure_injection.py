"""Failure-injection and edge-condition tests across the LITE stack."""

import pytest

from repro.cluster import Cluster
from repro.core import (
    LiteContext,
    LiteError,
    Permission,
    RpcTimeoutError,
    lite_boot,
)
from repro.hw import SimParams
from repro.hw.memory import OutOfMemoryError


def test_rpc_timeout_when_server_thread_dies():
    """A registered function whose only server thread died: the client's
    timeout is the failure signal (§5.1 — no send-state polling)."""
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    client = LiteContext(kernels[0], "c")
    server = LiteContext(kernels[1], "s")
    sim = cluster.sim

    def short_lived_server():
        server.lt_reg_rpc(1)
        call = yield from server.lt_recv_rpc(1)
        yield from server.lt_reply_rpc(call, b"only-once")
        # The thread exits; nobody serves func 1 anymore.

    def proc():
        sim.process(short_lived_server())
        yield sim.timeout(1)
        first = yield from client.lt_rpc(2, 1, b"a", max_reply=64)
        assert first == b"only-once"
        with pytest.raises(RpcTimeoutError):
            yield from client.lt_rpc(2, 1, b"b", max_reply=64, timeout=300.0)
        return True

    assert cluster.run_process(proc()) is True


def test_timeout_does_not_leak_reply_memory():
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    client = LiteContext(kernels[0], "c")
    server = LiteContext(kernels[1], "s")
    server.lt_reg_rpc(9)  # registered, never served
    memory = kernels[0].node.memory
    sim = cluster.sim

    def proc():
        yield sim.timeout(1)
        # First call binds the ring (persistent 8 B head slot): let that
        # state exist before measuring.
        with pytest.raises(RpcTimeoutError):
            yield from client.lt_rpc(2, 9, b"x", max_reply=4096, timeout=200.0)
        before = memory.allocated_bytes
        for _ in range(5):
            with pytest.raises(RpcTimeoutError):
                yield from client.lt_rpc(2, 9, b"x", max_reply=4096,
                                         timeout=200.0)
        return before, memory.allocated_bytes

    before, after = cluster.run_process(proc())
    assert after == before


def test_remote_alloc_out_of_memory_propagates():
    """An lt_malloc targeting a node without space raises at the caller."""
    cluster = Cluster(2)
    # Tiny remote node.
    small = 8 * 1024 * 1024
    cluster.nodes[1].memory.capacity = small
    cluster.nodes[1].memory._free = [(0, small)]
    cluster.nodes[1].memory._live.clear()
    cluster.nodes[1].memory._live_addrs.clear()
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], "c")

    def proc():
        with pytest.raises(LiteError, match="contiguous|free"):
            yield from ctx.lt_malloc(1 << 30, nodes=2)

    cluster.run_process(proc())


def test_local_alloc_out_of_memory_raises():
    cluster = Cluster(1)
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], "c")

    def proc():
        with pytest.raises(OutOfMemoryError):
            yield from ctx.lt_malloc(1 << 60)

    cluster.run_process(proc())


def test_write_to_freed_lmr_fails_fast():
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    alice = LiteContext(kernels[0], "alice")
    bob = LiteContext(kernels[1], "bob")
    sim = cluster.sim

    def proc():
        lh = yield from alice.lt_malloc(
            4096, name="vanishing", nodes=3,
            default_perm=Permission.READ | Permission.WRITE,
        )
        bob_lh = yield from bob.lt_map("vanishing")
        yield from bob.lt_write(bob_lh, 0, b"fine")
        yield from alice.lt_free(lh)
        yield sim.timeout(50)  # FREE_NOTIFY propagation
        with pytest.raises(PermissionError, match="freed"):
            yield from bob.lt_write(bob_lh, 0, b"too late")

    cluster.run_process(proc())


def test_double_free_rejected():
    cluster = Cluster(1)
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], "c")

    def proc():
        lh = yield from ctx.lt_malloc(64, name="once")
        yield from ctx.lt_free(lh)
        with pytest.raises(PermissionError):
            yield from ctx.lt_free(lh)

    cluster.run_process(proc())


def test_unconnected_peer_rejected():
    """Operations toward a node LITE never meshed with fail loudly."""
    cluster = Cluster(2)
    kernels = [
        __import__("repro.core", fromlist=["LiteKernel"]).LiteKernel(
            node, cluster.manager
        )
        for node in cluster.nodes
    ]

    def proc():
        yield from kernels[0].boot()
        yield from kernels[1].boot()
        # No connect() — the mesh is missing.
        with pytest.raises(LiteError, match="not connected"):
            kernels[0].ctrl_send(2, {"type": "x"})
        return True

    assert cluster.run_process(proc()) is True


def test_double_boot_rejected():
    cluster = Cluster(1)
    kernels = lite_boot(cluster)

    def proc():
        with pytest.raises(LiteError, match="already booted"):
            yield from kernels[0].boot()

    cluster.run_process(proc())


def test_control_plane_fragmentation_of_huge_chunk_lists():
    """A multi-GB spread LMR produces a chunk list far beyond one
    control slot; fragmentation + reassembly must keep it exact."""
    params = SimParams(lite_chunk_bytes=1 << 20)  # 1 MB chunks
    cluster = Cluster(3, params=params)
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], "c")

    def proc():
        # 600 chunks -> several control-slot fragments for the reply.
        lh = yield from ctx.lt_malloc(600 << 20, nodes=[2, 3])
        assert len(lh.mapping.chunks) == 600
        yield from ctx.lt_write(lh, (299 << 20) + 12345, b"spanning")
        data = yield from ctx.lt_read(lh, (299 << 20) + 12345, 8)
        return data

    assert cluster.run_process(proc()) == b"spanning"


def test_cq_overflow_is_counted_not_fatal():
    from repro.verbs import WorkCompletion, WcStatus, Opcode

    cluster = Cluster(1)
    cq = cluster[0].device.create_cq(depth=2)
    for index in range(5):
        cq.push(WorkCompletion(index, WcStatus.SUCCESS, Opcode.WRITE))
    assert len(cq) == 2
    assert cq.overflows == 3


def test_rnr_stall_recovers_when_recv_posted_late():
    """A SEND arriving before any recv buffer waits (RNR) and completes
    once the application posts one."""
    from repro.verbs import Opcode, RecvWR, SendWR, Sge, Access

    cluster = Cluster(2)
    sim = cluster.sim

    def proc():
        a, b = cluster[0], cluster[1]
        pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
        mr_a = yield from a.device.reg_mr(pd_a, 4096, Access.ALL)
        mr_b = yield from b.device.reg_mr(pd_b, 4096, Access.ALL)
        qa = a.device.create_qp(pd_a, "RC")
        qb = b.device.create_qp(pd_b, "RC")
        a.device.connect(qa, qb)
        mr_a.write(0, b"patience")
        send_proc = qa.post_send(SendWR(Opcode.SEND, sgl=[Sge(mr_a, 0, 8)]))
        yield sim.timeout(100)
        assert send_proc.is_alive          # stalled on the empty RQ
        assert qb.rnr_stalls == 1
        qb.post_recv(RecvWR(mr=mr_b, offset=0, length=64))
        yield send_proc
        return mr_b.read(0, 8)

    assert cluster.run_process(proc()) == b"patience"


def test_lock_owner_can_be_remote_and_survive_contention_burst():
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    sim = cluster.sim
    acquisitions = []

    def worker(kernel, index):
        ctx = LiteContext(kernel, f"w{index}")
        lock = yield from ctx.lt_open_lock("burst")
        for _ in range(4):
            yield from ctx.lt_lock(lock)
            acquisitions.append(index)
            yield from ctx.lt_unlock(lock)

    def proc():
        creator = LiteContext(kernels[0], "creator")
        yield from creator.lt_create_lock("burst", owner_id=3)
        procs = [
            sim.process(worker(kernels[i % 3], i)) for i in range(9)
        ]
        yield sim.all_of(procs)

    cluster.run_process(proc())
    assert len(acquisitions) == 36


def test_barrier_with_n_one_is_immediate():
    cluster = Cluster(1)
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], "solo")
    sim = cluster.sim

    def proc():
        start = sim.now
        yield from ctx.lt_barrier("solo-sync", 1)
        return sim.now - start

    assert cluster.run_process(proc()) < 5.0
