"""Golden-trace regression tests: span trees are locked down byte-wise.

Each canonical scenario's JSONL export is compared against a committed
golden file under ``tests/golden/``.  Any change to op decomposition,
span naming, timing parameters, or exporter formatting shows up as a
unified diff here.  To bless intentional changes::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_trace_golden.py

then review and commit the rewritten golden files.
"""

import difflib
import os
from pathlib import Path

import pytest

from repro.obs import to_jsonl

from tests.obs_helpers import run_scenario

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"


def _check_golden(name: str) -> None:
    _cluster, tracer = run_scenario(name)
    assert tracer is not None, "tracing kill switch must be on for goldens"
    actual = to_jsonl(tracer)
    path = GOLDEN_DIR / f"{name}.jsonl"
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(actual)
        pytest.skip(f"regenerated {path}")
    if not path.exists():
        pytest.fail(
            f"missing golden file {path}; run with REPRO_REGEN_GOLDEN=1 "
            f"to create it"
        )
    expected = path.read_text()
    if actual != expected:
        diff = "\n".join(difflib.unified_diff(
            expected.splitlines(), actual.splitlines(),
            fromfile=f"golden/{name}.jsonl", tofile="actual",
            lineterm="", n=2,
        ))
        pytest.fail(
            f"trace for scenario {name!r} diverged from golden file "
            f"(REPRO_REGEN_GOLDEN=1 to bless):\n{diff}"
        )


def test_golden_write64():
    _check_golden("write64")


def test_golden_read64_cold():
    _check_golden("read64_cold")


def test_golden_read64_warm():
    _check_golden("read64_warm")


def test_golden_write_4chunk():
    """A 64KB write over four 16KB chunks: the per-chunk striping
    schedule the vectorized fast path replays arithmetically."""
    _check_golden("write_4chunk")


def test_golden_rpc_roundtrip():
    _check_golden("rpc_roundtrip")


def test_golden_recovery_failover():
    """The whole recovery protocol — lease expiry, promotion broadcast,
    rejoin, resync copy — decomposes into a deterministic span tree."""
    _check_golden("recovery_failover")


def test_cold_read_misses_warm_read_hits():
    """The cold/warm pair differ exactly where they should: the cold
    trace carries RNIC cache-miss markers, the warm trace none."""
    _c, cold = run_scenario("read64_cold")
    _w, warm = run_scenario("read64_warm")
    cold_misses = [s for s in cold.spans if s.name == "rnic.cache.miss"]
    warm_misses = [s for s in warm.spans if s.name == "rnic.cache.miss"]
    assert cold_misses, "cold read should miss the RNIC SRAM caches"
    assert not warm_misses, "warm read should be all hits"
    # Misses make the cold op strictly slower end-to-end.
    cold_op = next(s for s in cold.op_roots() if s.name == "op.lt_read")
    warm_op = next(s for s in warm.op_roots() if s.name == "op.lt_read")
    assert cold_op.duration > warm_op.duration
