"""Additional Verbs-layer coverage: framing, atomics variants, CQs."""

import struct

import pytest

from repro.cluster import Cluster
from repro.verbs import (
    ACK_BYTES,
    Access,
    Opcode,
    RecvWR,
    SendWR,
    Sge,
    UD_MTU,
    WIRE_HEADER_BYTES,
    WcStatus,
    WorkCompletion,
    wire_bytes,
)


# ----------------------------------------------------------- framing --


def test_wire_bytes_zero_payload_is_one_header():
    assert wire_bytes(0) == WIRE_HEADER_BYTES


def test_wire_bytes_one_packet():
    assert wire_bytes(4096) == 4096 + WIRE_HEADER_BYTES


def test_wire_bytes_multi_packet():
    assert wire_bytes(4097) == 4097 + 2 * WIRE_HEADER_BYTES
    assert wire_bytes(3 * 4096) == 3 * 4096 + 3 * WIRE_HEADER_BYTES


def test_ud_send_pays_grh_per_datagram():
    """UD messages carry the 40 B GRH on the wire; RC does not."""
    def bytes_for(qp_type):
        cluster = Cluster(2)

        def proc():
            a, b = cluster[0], cluster[1]
            pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
            mr_a = yield from a.device.reg_mr(pd_a, 4096, Access.ALL)
            mr_b = yield from b.device.reg_mr(pd_b, 4096, Access.ALL)
            qa = a.device.create_qp(pd_a, qp_type)
            qb = b.device.create_qp(pd_b, qp_type)
            dst = None
            if qp_type == "UD":
                dst = (1, qb.qpn)
            else:
                a.device.connect(qa, qb)
            qb.post_recv(RecvWR(mr=mr_b, offset=0, length=256))
            baseline = cluster.fabric.total_bytes
            yield qa.post_send(
                SendWR(Opcode.SEND, sgl=[Sge(mr_a, 0, 64)]), dst=dst
            )
            return cluster.fabric.total_bytes - baseline

        return cluster.run_process(proc())

    ud = bytes_for("UD")
    rc = bytes_for("RC")
    # RC adds an ACK; UD adds the GRH.  Compare payload-path bytes.
    assert ud == 64 + WIRE_HEADER_BYTES + 40
    assert rc == 64 + WIRE_HEADER_BYTES + ACK_BYTES


# ----------------------------------------------------------- atomics --


def test_sglless_atomic_returns_old_value_inline():
    cluster = Cluster(2)

    def proc():
        a, b = cluster[0], cluster[1]
        pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
        mr_b = yield from b.device.reg_mr(pd_b, 4096, Access.ALL)
        qa = a.device.create_qp(pd_a, "RC")
        qb = b.device.create_qp(pd_b, "RC")
        a.device.connect(qa, qb)
        mr_b.write(16, struct.pack("<Q", 1000))
        wr = SendWR(Opcode.FETCH_ADD, remote_addr=mr_b.base_addr + 16,
                    rkey=mr_b.rkey, compare_add=24)
        yield qa.post_send(wr)
        return struct.unpack("<Q", wr.return_data)[0], mr_b.read(16, 8)

    old, raw = cluster.run_process(proc())
    assert old == 1000
    assert struct.unpack("<Q", raw)[0] == 1024


def test_atomic_with_wrong_sized_sgl_rejected():
    cluster = Cluster(1)

    def proc():
        node = cluster[0]
        pd = node.device.alloc_pd()
        mr = yield from node.device.reg_mr(pd, 64, Access.ALL)
        with pytest.raises(ValueError, match="8 bytes"):
            SendWR(Opcode.FETCH_ADD, sgl=[Sge(mr, 0, 4)], rkey=1)

    cluster.run_process(proc())


def test_fetch_add_wraps_at_64_bits():
    cluster = Cluster(2)

    def proc():
        a, b = cluster[0], cluster[1]
        pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
        mr_b = yield from b.device.reg_mr(pd_b, 64, Access.ALL)
        qa = a.device.create_qp(pd_a, "RC")
        qb = b.device.create_qp(pd_b, "RC")
        a.device.connect(qa, qb)
        mr_b.write(0, struct.pack("<Q", (1 << 64) - 1))
        wr = SendWR(Opcode.FETCH_ADD, remote_addr=mr_b.base_addr,
                    rkey=mr_b.rkey, compare_add=2)
        yield qa.post_send(wr)
        return struct.unpack("<Q", mr_b.read(0, 8))[0]

    assert cluster.run_process(proc()) == 1


# ------------------------------------------------------------ sgl-less read --


def test_read_without_sgl_uses_read_length():
    cluster = Cluster(2)

    def proc():
        a, b = cluster[0], cluster[1]
        pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
        mr_b = yield from b.device.reg_mr(pd_b, 4096, Access.ALL)
        qa = a.device.create_qp(pd_a, "RC")
        qb = b.device.create_qp(pd_b, "RC")
        a.device.connect(qa, qb)
        mr_b.write(32, b"inline-read-target")
        wr = SendWR(Opcode.READ, remote_addr=mr_b.base_addr + 32,
                    rkey=mr_b.rkey, read_length=18)
        yield qa.post_send(wr)
        return wr.return_data

    assert cluster.run_process(proc()) == b"inline-read-target"


# ------------------------------------------------------------------ CQ --


def test_cq_wait_wc_counts_polled():
    cluster = Cluster(1)
    cq = cluster[0].device.create_cq()
    sim = cluster.sim

    def proc():
        event = cq.wait_wc()
        cq.push(WorkCompletion(1, WcStatus.SUCCESS, Opcode.WRITE))
        wc = yield event
        return wc.wr_id

    assert cluster.run_process(proc()) == 1
    assert cq.polled == 1
    assert cq.pushed == 1


def test_cq_poll_respects_max_entries():
    cluster = Cluster(1)
    cq = cluster[0].device.create_cq()
    for index in range(10):
        cq.push(WorkCompletion(index, WcStatus.SUCCESS, Opcode.WRITE))
    first = cq.poll(max_entries=3)
    assert [wc.wr_id for wc in first] == [0, 1, 2]
    rest = cq.poll(max_entries=100)
    assert len(rest) == 7


def test_wc_completed_at_records_push_time():
    cluster = Cluster(1)
    sim = cluster.sim
    cq = cluster[0].device.create_cq()

    def proc():
        yield sim.timeout(42.5)
        cq.push(WorkCompletion(9, WcStatus.SUCCESS, Opcode.SEND))

    cluster.run_process(proc())
    wc = cq.poll()[0]
    assert wc.completed_at == 42.5


def test_write_imm_requires_imm_value():
    with pytest.raises(ValueError, match="immediate"):
        SendWR(Opcode.WRITE_IMM, inline_data=b"x", rkey=1)


def test_imm_must_fit_32_bits():
    with pytest.raises(ValueError, match="32 bits"):
        SendWR(Opcode.WRITE_IMM, inline_data=b"x", rkey=1, imm=1 << 32)


def test_sge_bounds_validated():
    cluster = Cluster(1)

    def proc():
        node = cluster[0]
        pd = node.device.alloc_pd()
        mr = yield from node.device.reg_mr(pd, 100, Access.ALL)
        with pytest.raises(ValueError):
            Sge(mr, 90, 20)
        with pytest.raises(ValueError):
            Sge(mr, -1, 4)

    cluster.run_process(proc())
