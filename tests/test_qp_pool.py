"""Churn test battery for the QP pool (INTERNALS §15).

Locks down the microsecond control plane:

* Pool invariants under seeded churn with an active fault plan — the
  parked count never exceeds the cap, a fenced or errored conn is never
  handed to a session, and every lease expiry returns exactly one conn
  (a late ``release()`` after the sweeper reaped the lease is a
  remembered no-op, never a double park).
* Determinism — the same seed produces bit-identical ``(time, seq)``
  fingerprints and cluster snapshots across repeat runs, across the
  fast-path A/B toggle (``REPRO_NO_FASTPATH=1``), and across the
  serial/parallel sweep runner.
* Fencing — a mid-churn peer crash (FaultPlan + armed RecoveryManager)
  fences the pooled conns; later acquires discard them cold instead of
  ever granting a dead conn.
"""

import dataclasses
import json
import os

import pytest

from repro.cluster import Cluster
from repro.core import LiteContext, LiteError, lite_boot
from repro.core.api import ClientSession
from repro.determinism import reset_global_counters
from repro.fault import FaultInjector, FaultPlan
from repro.hw.fabric import FabricError, TransferDropped
from repro.recovery import RecoveryManager
from repro.stats import snapshot
from repro.sweep import run_sweep
from repro.verbs.fastpath import fp_stats
from repro.workloads.churn import churn_point, run_churn


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------
def _with_fastpath(enabled):
    """Env toggle (the Simulator reads it at __init__)."""
    if enabled:
        os.environ.pop("REPRO_NO_FASTPATH", None)
    else:
        os.environ["REPRO_NO_FASTPATH"] = "1"


def _instrument(pool):
    """Wrap the pool's entry points to record invariant-relevant events.

    Instance attributes shadow the bound methods, so the sweeper's
    ``self._park(conn)`` and ``ClientSession``'s ``pool.acquire(...)``
    both route through the wrappers.
    """
    log = {"grants": [], "parks": 0, "max_parked": 0}
    orig_acquire = pool.acquire
    orig_park = pool._park

    def acquire(session_id, ttl_us=None):
        conn, source = yield from orig_acquire(session_id, ttl_us)
        log["grants"].append(
            (session_id, conn.conn_id, source, conn.usable())
        )
        return conn, source

    def park(conn):
        orig_park(conn)
        log["max_parked"] = max(log["max_parked"], pool.parked)
        log["parks"] += 1

    pool.acquire = acquire
    pool._park = park
    return log


# ---------------------------------------------------------------------------
# Satellite 1: randomized pool invariants under seeded churn + faults
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [7, 21, 1009])
def test_pool_invariants_under_seeded_churn(seed):
    reset_global_counters()
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    # Active fault plan: a bystander link outage keeps the injector (and
    # its fast-path disablement) live for the whole drive without making
    # the churn path itself raise.
    plan = FaultPlan().link_down(
        cluster.nodes[2].node_id, 500.0, up_at_us=4000.0
    )
    FaultInjector(cluster, plan).install()
    pool = kernels[0].qp_pool(
        kernels[1].lite_id, reserve=2, cap=3, lease_ttl_us=600.0
    )
    log = _instrument(pool)
    stats = run_churn(
        cluster, kernels, n_clients=18, seed=seed, abandon_every=3,
        mean_gap_us=40.0, lease_ttl_us=600.0,
    )
    # Every client attached exactly once, one way or the other.
    assert stats.hits + stats.misses == 18
    assert stats.ops_ok == 18 * 4 and stats.ops_failed == 0
    # Cap is never exceeded, not even transiently at park time.
    assert log["max_parked"] <= pool.cap
    assert pool.parked <= pool.cap
    # No fenced/errored conn was ever handed out.
    assert all(usable for (_, _, _, usable) in log["grants"])
    # Exactly one park per finished lease: detaches plus sweeper reaps.
    assert stats.abandoned == 6 and stats.detached == 12
    assert pool.expiries == stats.abandoned
    assert log["parks"] == stats.released + pool.expiries
    # Quiescent end state: nothing leased, lease table empty.
    assert pool.leased == 0
    assert cluster.manager.qp_leases == {}


def test_release_after_expiry_is_noop_and_sid_reuse_regrants():
    reset_global_counters()
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    pool = kernels[0].qp_pool(
        kernels[1].lite_id, reserve=1, lease_ttl_us=100.0
    )
    out = {}

    def driver():
        yield from pool.prebuild()
        _conn, source = yield from pool.acquire(9)
        out["source"] = source
        yield cluster.sim.timeout(250.0)  # sail past the TTL
        out["reaped"] = pool.sweep()
        # The sweeper parked the conn already: the client's late detach
        # must be a no-op, not a second park.
        out["late_release"] = pool.release(9)
        out["parked_after"] = pool.parked
        # Re-attach under the reaped id: the stale expiry marker is
        # cleared so this lease's release works normally again.
        _conn2, source2 = yield from pool.acquire(9)
        out["source2"] = source2
        out["release2"] = pool.release(9)

    cluster.run_process(driver())
    cluster.sim.run()
    assert out["source"] == "hit"
    assert out["reaped"] == 1
    assert out["late_release"] is False
    assert out["parked_after"] == 1
    assert out["source2"] == "hit"
    assert out["release2"] is True
    assert pool.expiries == 1 and pool.parked == 1 and pool.leased == 0


def test_double_lease_same_session_rejected():
    reset_global_counters()
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    pool = kernels[0].qp_pool(kernels[1].lite_id, reserve=1)
    failures = []

    def driver():
        yield from pool.prebuild()
        yield from pool.acquire(1)
        try:
            yield from pool.acquire(1)
        except ValueError as exc:
            failures.append(str(exc))
        pool.release(1)

    cluster.run_process(driver())
    cluster.sim.run()
    assert failures and "already holds" in failures[0]


# ---------------------------------------------------------------------------
# Determinism: repeat runs, A/B fast-path toggle, serial/parallel sweeps
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [3, 11])
def test_churn_repeat_runs_bit_identical(seed):
    def once():
        reset_global_counters()
        cluster = Cluster(2)
        kernels = lite_boot(cluster)
        stats = run_churn(
            cluster, kernels, n_clients=12, seed=seed, abandon_every=4
        )
        return (
            stats.fingerprint, stats.hits, stats.misses, stats.ops_ok,
            dataclasses.asdict(snapshot(cluster)),
        )

    assert once() == once()


def test_churn_fastpath_ab_identical():
    """Churn + background one-sided traffic: fast == slow, bit for bit.

    Session ops take the generator path by construction; the background
    ``lt_write`` stream is what the fast path actually accelerates, so
    the fast run must show commits while observables stay identical.
    """

    def once(fastpath):
        saved = os.environ.get("REPRO_NO_FASTPATH")
        _with_fastpath(fastpath)
        reset_global_counters()
        try:
            cluster = Cluster(2)
            kernels = lite_boot(cluster)
            ctx = LiteContext(kernels[0], "bg", kernel_level=True)
            holder = {}

            def setup():
                holder["lh"] = yield from ctx.lt_malloc(
                    128 * 1024, nodes=2
                )

            cluster.run_process(setup())

            def background():
                for index in range(40):
                    yield from ctx.lt_write(
                        holder["lh"], (index % 16) * 1024,
                        bytes([index & 0xFF]) * 512,
                    )
                    yield cluster.sim.timeout(7.0)

            cluster.sim.process(background(), name="bg-writer")
            commits_before = fp_stats.commits + fp_stats.vec_commits
            stats = run_churn(
                cluster, kernels, n_clients=10, seed=5,
                abandon_every=4, mean_gap_us=25.0,
            )
            commits = (fp_stats.commits + fp_stats.vec_commits
                       - commits_before)
            snap = dataclasses.asdict(snapshot(cluster))
            return (
                (stats.fingerprint, stats.hits, stats.misses,
                 stats.ops_ok, stats.expiries, snap),
                commits,
            )
        finally:
            if saved is None:
                os.environ.pop("REPRO_NO_FASTPATH", None)
            else:
                os.environ["REPRO_NO_FASTPATH"] = saved

    fast, fast_commits = once(True)
    slow, slow_commits = once(False)
    assert fast == slow
    assert fast_commits > 0
    assert slow_commits == 0


def test_churn_sweep_serial_parallel_identical():
    points = [(8, True, 1), (8, False, 1), (12, True, 2)]
    serial = run_sweep(churn_point, points, jobs=1)
    parallel = run_sweep(churn_point, points, jobs=2)
    assert json.dumps(serial, sort_keys=True) == \
        json.dumps(parallel, sort_keys=True)


# ---------------------------------------------------------------------------
# Fencing: mid-churn peer crash under an armed RecoveryManager
# ---------------------------------------------------------------------------
def _crash_churn(fastpath):
    """Serial churn across a peer crash+restart; returns observables."""
    saved = os.environ.get("REPRO_NO_FASTPATH")
    _with_fastpath(fastpath)
    reset_global_counters()
    try:
        cluster = Cluster(3)
        kernels = lite_boot(cluster)
        sim = cluster.sim
        plan = FaultPlan().crash(
            cluster.nodes[1].node_id, 2500.0, restart_at_us=9000.0
        )
        FaultInjector(cluster, plan).install()
        recovery = RecoveryManager(
            cluster, kernels, lease_ttl_us=1500.0,
            renew_interval_us=400.0, sweep_interval_us=300.0,
        ).arm()
        pool = kernels[0].qp_pool(
            kernels[1].lite_id, reserve=2, lease_ttl_us=1200.0
        )
        log = _instrument(pool)
        outcomes = []

        def client(index):
            ctx = LiteContext(
                kernels[0], f"crash{index}", kernel_level=True
            )
            session = ClientSession(
                ctx, kernels[1].lite_id, session_id=index + 1,
                buffer_bytes=256,
            )
            try:
                yield from session.attach()
                for _ in range(2):
                    status = yield from session.write(b"y" * 256)
                    outcomes.append(
                        (index, getattr(status, "name", str(status)))
                    )
                yield from session.detach()
            except (LiteError, TransferDropped, FabricError) as exc:
                # Cold bring-up toward the dead peer: a deterministic
                # failure, recorded as this client's outcome.
                outcomes.append((index, type(exc).__name__))

        def driver():
            pool.arm()
            yield from pool.prebuild()
            for index in range(10):
                yield from client(index)
                yield sim.timeout(900.0)
            recovery.stop()
            pool.stop()
            yield sim.timeout(600.0)

        cluster.run_process(driver())
        sim.run()
        snap = dataclasses.asdict(snapshot(cluster))
        return (
            sim.now, sim._seq, snap, log["grants"], outcomes,
            pool.hits, pool.misses, pool.fenced_discards,
            recovery.promotions,
        )
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_FASTPATH", None)
        else:
            os.environ["REPRO_NO_FASTPATH"] = saved


def test_crash_fences_pool_and_never_regrants_dead_conns():
    result = _crash_churn(fastpath=True)
    grants, outcomes = result[3], result[4]
    fenced_discards = result[7]
    # Every granted conn was usable at grant time, crash or not.
    assert all(usable for (_, _, _, usable) in grants)
    # The failover fenced the parked reserve; later acquires discarded
    # those conns instead of handing them out.
    assert fenced_discards > 0
    # The crash was actually felt (failed ops or failed bring-ups)...
    assert any(name != "SUCCESS" for (_, name) in outcomes)
    # ...and after the restart the control plane recovered: the last
    # client's ops completed cleanly.
    last_index = max(index for (index, _) in outcomes)
    assert [name for (index, name) in outcomes
            if index == last_index] == ["SUCCESS", "SUCCESS"]


def test_crash_churn_fastpath_ab_identical():
    """Mid-churn crash: fast vs REPRO_NO_FASTPATH=1 runs are identical."""
    assert _crash_churn(fastpath=True) == _crash_churn(fastpath=False)


# ---------------------------------------------------------------------------
# The headline claim, cheaply guarded in tier 1 (the full figure lives
# in benchmarks/test_sec24_churn.py)
# ---------------------------------------------------------------------------
def test_pooled_ttfo_beats_cold_bringup():
    def ttfo(pooled):
        reset_global_counters()
        cluster = Cluster(2)
        kernels = lite_boot(cluster)
        stats = run_churn(
            cluster, kernels, n_clients=10, seed=0, pooled=pooled
        )
        source = "hit" if pooled else "cold"
        med = stats.median_ttfo(source)
        assert med is not None
        return med

    pooled_med = ttfo(True)
    cold_med = ttfo(False)
    assert pooled_med * 5 <= cold_med
