"""Chaos tests: the fault-injection subsystem end to end.

Covers the layered failure semantics: fabric link state and drops, RC
QP timeout/retry/error-state behavior, LITE timeout/retry with
idempotent resends, keep-alive failure detection, and full applications
(KV store, MapReduce) surviving randomized fault plans — plus the
zero-cost-when-disabled guarantee for empty plans.
"""

from collections import Counter

import pytest

from repro.apps.kvstore import LiteKVClient, LiteKVServer
from repro.apps.mapreduce import LiteMR
from repro.apps.mapreduce.common import wordcount_map
from repro.cluster import Cluster
from repro.core import (
    ENODEV,
    ETIMEDOUT,
    LiteContext,
    LiteError,
    RpcTimeoutError,
    lite_boot,
    rpc_server_loop,
)
from repro.fault import FaultInjector, FaultPlan, PacketLoss
from repro.hw import FabricError, SimParams
from repro.verbs import Opcode, SendWR, Sge, WcStatus
from repro.workloads import generate_corpus


# ---------------------------------------------------------------------------
# FaultPlan construction and validation
# ---------------------------------------------------------------------------
def test_plan_rejects_bad_arguments():
    plan = FaultPlan()
    with pytest.raises(ValueError):
        plan.crash(0, -1.0)
    with pytest.raises(ValueError):
        plan.crash(0, 100.0, restart_at_us=50.0)
    with pytest.raises(ValueError):
        plan.link_flap(0, 100.0, 50.0, 10.0, 10.0)
    with pytest.raises(ValueError):
        plan.packet_loss(0.0)
    with pytest.raises(ValueError):
        plan.packet_loss(1.5)
    assert plan.empty  # nothing was added by the failed calls


def test_plan_validate_rejects_unknown_nodes():
    cluster = Cluster(2)
    plan = FaultPlan().crash(7, 100.0)
    with pytest.raises(ValueError, match="unknown node"):
        FaultInjector(cluster, plan).install()


def test_install_twice_raises():
    cluster = Cluster(2)
    injector = FaultInjector(cluster, FaultPlan())
    injector.install()
    with pytest.raises(RuntimeError):
        injector.install()


def test_random_plan_is_reproducible():
    nodes = [0, 1, 2, 3]
    plan_a = FaultPlan.random(42, nodes, 10000.0, crashes=2, flaps=1,
                              loss_rate=0.02)
    plan_b = FaultPlan.random(42, nodes, 10000.0, crashes=2, flaps=1,
                              loss_rate=0.02)
    assert plan_a.describe() == plan_b.describe()
    plan_c = FaultPlan.random(43, nodes, 10000.0, crashes=2, flaps=1,
                              loss_rate=0.02)
    assert plan_a.describe() != plan_c.describe()


def test_random_plan_spares_the_spared_node():
    for seed in range(10):
        plan = FaultPlan.random(seed, [0, 1, 2], 1000.0, crashes=2, spare=0)
        assert len(plan.crashes) == 2
        assert all(crash.node_id != 0 for crash in plan.crashes)


def test_loss_rule_window_and_flow_matching():
    rule = PacketLoss(0.5, start_us=100.0, end_us=200.0, src=1)
    assert not rule.matches(50.0, 1, 2)
    assert rule.matches(100.0, 1, 2)
    assert rule.matches(199.0, 1, 0)
    assert not rule.matches(200.0, 1, 2)
    assert not rule.matches(150.0, 2, 1)


# ---------------------------------------------------------------------------
# Fabric satellites: link state, detach, loopback accounting
# ---------------------------------------------------------------------------
def test_fabric_link_state_and_detach_validation():
    cluster = Cluster(2)
    fabric = cluster.fabric
    assert fabric.link_up(0) and fabric.link_up(1)
    fabric.set_link_state(1, False)
    assert not fabric.link_up(1)
    fabric.set_link_state(1, True)
    with pytest.raises(FabricError):
        fabric.set_link_state(9, False)
    with pytest.raises(FabricError):
        fabric.detach(9)
    fabric.detach(1)
    assert not fabric.link_up(1)
    with pytest.raises(FabricError):
        cluster.sim.run_process(fabric.transfer(0, 1, 64))


def test_loopback_transfer_updates_port_counters():
    cluster = Cluster(1)
    port = cluster.nodes[0].port
    cluster.sim.run_process(cluster.fabric.transfer(0, 0, 1500))
    assert port.tx_bytes == 1500
    assert port.rx_bytes == 1500


def test_transfer_into_down_link_pays_wire_time_then_drops():
    cluster = Cluster(2)
    fabric = cluster.fabric
    fabric.set_link_state(1, False)
    proc = cluster.sim.process(fabric.transfer(0, 1, 4096))
    from repro.hw import LinkDownError

    with pytest.raises(LinkDownError):
        cluster.run(stop=proc)
    # The frame serialized out of the sender before dying in the fabric.
    assert cluster.sim.now > 0.0
    assert fabric.dropped_transfers == 1
    assert cluster.nodes[0].port.tx_bytes == 4096
    assert cluster.nodes[1].port.rx_bytes == 0


# ---------------------------------------------------------------------------
# Verbs: RC retry blowout, error state, flush, reset; UC silent loss
# ---------------------------------------------------------------------------
@pytest.fixture
def rc_pair():
    """Two connected RC QPs with a short retry budget for fast tests."""
    params = SimParams(qp_timeout_us=50.0, qp_retry_cnt=2)
    cluster = Cluster(2, params=params)
    state = {"cluster": cluster}

    def setup():
        a, b = cluster[0], cluster[1]
        pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
        state["mr_a"] = yield from a.device.reg_mr(pd_a, 4096)
        state["mr_b"] = yield from b.device.reg_mr(pd_b, 4096)
        state["qa"] = a.device.create_qp(pd_a, "RC")
        state["qb"] = b.device.create_qp(pd_b, "RC")
        a.device.connect(state["qa"], state["qb"])

    cluster.run_process(setup())
    return state


def _write_wr(state, data=b"x" * 64):
    state["mr_a"].write(0, data)
    return SendWR(
        Opcode.WRITE,
        sgl=[Sge(state["mr_a"], 0, len(data))],
        remote_addr=state["mr_b"].base_addr,
        rkey=state["mr_b"].rkey,
    )


def test_rc_write_to_down_link_retries_then_errors(rc_pair):
    cluster, qa = rc_pair["cluster"], rc_pair["qa"]
    cluster.fabric.set_link_state(1, False)
    statuses = []

    def proc():
        status = yield qa.post_send(_write_wr(rc_pair))
        statuses.append(status)

    start = cluster.sim.now
    cluster.run_process(proc())
    assert statuses == [WcStatus.RETRY_EXC_ERR]
    assert qa.state == "ERROR"
    assert qa.retries == 2  # qp_retry_cnt exhausted
    # 3 attempts with 2 local-ACK-timeout waits in between.
    assert cluster.sim.now - start >= 2 * 50.0


def test_errored_qp_flushes_until_reset(rc_pair):
    cluster, qa = rc_pair["cluster"], rc_pair["qa"]
    cluster.fabric.set_link_state(1, False)
    statuses = []

    def proc():
        statuses.append((yield qa.post_send(_write_wr(rc_pair))))
        # QP is now in ERROR: later posts flush without touching the wire.
        wire_before = cluster.fabric.transfer_count
        statuses.append((yield qa.post_send(_write_wr(rc_pair))))
        assert cluster.fabric.transfer_count == wire_before
        # Link heals + QP reset -> traffic flows again.
        cluster.fabric.set_link_state(1, True)
        qa.reset()
        statuses.append((yield qa.post_send(_write_wr(rc_pair, b"recovered!"))))

    cluster.run_process(proc())
    assert statuses == [
        WcStatus.RETRY_EXC_ERR,
        WcStatus.WR_FLUSH_ERR,
        WcStatus.SUCCESS,
    ]
    assert qa.state == "RTS"
    assert rc_pair["mr_b"].read(0, 10) == b"recovered!"


def test_uc_loss_is_silent(rc_pair):
    """UC has no ACK protocol: a dropped frame is simply gone."""
    cluster = rc_pair["cluster"]
    a, b = cluster[0], cluster[1]
    pd_a, pd_b = a.device.alloc_pd(), b.device.alloc_pd()
    state = {}

    def setup():
        state["mr_a"] = yield from a.device.reg_mr(pd_a, 1024)
        state["mr_b"] = yield from b.device.reg_mr(pd_b, 1024)
        qa = a.device.create_qp(pd_a, "UC")
        qb = b.device.create_qp(pd_b, "UC")
        a.device.connect(qa, qb)
        state["qa"] = qa

    cluster.run_process(setup())
    cluster.fabric.set_link_state(1, False)
    state["mr_a"].write(0, b"vanishes")

    def proc():
        wr = SendWR(
            Opcode.WRITE,
            sgl=[Sge(state["mr_a"], 0, 8)],
            remote_addr=state["mr_b"].base_addr,
            rkey=state["mr_b"].rkey,
        )
        status = yield state["qa"].post_send(wr)
        assert status is WcStatus.SUCCESS  # sender never learns
        assert state["qa"].retries == 0

    cluster.run_process(proc())
    assert state["mr_b"].read(0, 8) == b"\x00" * 8


def test_brief_link_flap_is_masked_by_rc_retry(rc_pair):
    """An outage shorter than the retry budget is invisible to the app."""
    cluster, qa = rc_pair["cluster"], rc_pair["qa"]
    cluster.fabric.set_link_state(1, False)

    def heal():
        yield cluster.sim.timeout(60.0)  # between attempt 1 and 2
        cluster.fabric.set_link_state(1, True)

    statuses = []

    def proc():
        statuses.append((yield qa.post_send(_write_wr(rc_pair, b"survived"))))

    cluster.sim.process(heal())
    cluster.run_process(proc())
    assert statuses == [WcStatus.SUCCESS]
    assert qa.retries >= 1
    assert rc_pair["mr_b"].read(0, 8) == b"survived"


# ---------------------------------------------------------------------------
# LITE: fail-fast semantics, keep-alive, RPC retry
# ---------------------------------------------------------------------------
def _fast_fail_params():
    """Short transport budgets so failure tests run in simulated ms."""
    return SimParams(
        qp_timeout_us=50.0, qp_retry_cnt=1,
        lite_retry_cnt=1, lite_retry_backoff_us=50.0,
        lite_ctrl_timeout_us=500.0, lite_ctrl_retries=1,
    )


def test_rpc_to_crashed_peer_times_out_with_etimedout():
    """A dead server yields LiteError(ETIMEDOUT) in bounded time, no hang."""
    cluster = Cluster(3, params=_fast_fail_params())
    kernels = lite_boot(cluster)
    client = LiteContext(kernels[0], "c")
    server = LiteContext(kernels[1], "s")
    cluster.sim.process(rpc_server_loop(server, 1, lambda d: d))
    FaultInjector(
        cluster, FaultPlan().crash(cluster.nodes[1].node_id, 200.0)
    ).install()

    def proc():
        yield cluster.sim.timeout(10.0)
        reply = yield from client.lt_rpc(2, 1, b"warm", max_reply=64,
                                         timeout=300.0)
        assert reply == b"warm"
        yield cluster.sim.timeout(400.0)  # crash happens here
        yield from client.lt_rpc(2, 1, b"lost", max_reply=64,
                                 timeout=300.0, retries=2)

    proc_event = cluster.sim.process(proc())
    with pytest.raises(RpcTimeoutError) as excinfo:
        cluster.run(stop=proc_event)
    assert excinfo.value.errno == ETIMEDOUT
    assert isinstance(excinfo.value, LiteError)
    # 3 attempts with doubling windows: well under 10 ms of simulated time.
    assert cluster.sim.now < 10000.0


def test_keepalive_marks_dead_peer_and_onesided_fails_enodev():
    cluster = Cluster(3, params=_fast_fail_params())
    kernels = lite_boot(cluster)
    client = LiteContext(kernels[0], "c")
    injector = FaultInjector(
        cluster, FaultPlan().crash(cluster.nodes[2].node_id, 500.0)
    ).install()
    injector.arm_lite([kernels[0]], keepalive_interval_us=200.0, miss_limit=2)

    def proc():
        lh = yield from client.lt_malloc(1024, nodes=3)  # lives on node 2
        yield from client.lt_write(lh, 0, b"before-crash")
        # Wait for the crash plus enough keep-alive rounds to detect it.
        yield cluster.sim.timeout(3000.0)
        assert not kernels[0].peer(3, check_alive=False).alive
        try:
            yield from client.lt_write(lh, 0, b"after-crash")
        except LiteError as exc:
            return exc.errno
        return None

    errno_seen = cluster.run_process(proc())
    assert errno_seen == ENODEV
    assert injector.crashes == 1


def test_keepalive_resurrects_restarted_peer():
    cluster = Cluster(2, params=_fast_fail_params())
    kernels = lite_boot(cluster)
    injector = FaultInjector(
        cluster,
        FaultPlan().crash(cluster.nodes[1].node_id, 500.0, restart_at_us=2500.0),
    ).install()
    injector.arm_lite([kernels[0]], keepalive_interval_us=200.0, miss_limit=2)

    def probe():
        yield cluster.sim.timeout(2000.0)
        dead = kernels[0].peer(2, check_alive=False).alive
        yield cluster.sim.timeout(3000.0)
        alive = kernels[0].peer(2, check_alive=False).alive
        return dead, alive

    dead_during, alive_after = cluster.run_process(probe())
    assert dead_during is False
    assert alive_after is True
    assert injector.restarts == 1


def test_rpc_retry_with_duplicate_suppression():
    """Same-token resends are answered once; the handler runs once."""
    params = _fast_fail_params().copy(qp_retry_cnt=0)
    cluster = Cluster(2, params=params)
    kernels = lite_boot(cluster)
    client = LiteContext(kernels[0], "c")
    server = LiteContext(kernels[1], "s")
    calls = []

    def handler(data):
        calls.append(data)
        return b"ok:" + data

    cluster.sim.process(rpc_server_loop(server, 1, handler))
    # Drop everything client->server for a short window: the first
    # attempt dies, the retry lands after the window closes.
    FaultInjector(
        cluster,
        FaultPlan().packet_loss(1.0, start_us=90.0, end_us=400.0,
                                src=cluster.nodes[0].node_id),
        seed=5,
    ).install()

    def proc():
        yield cluster.sim.timeout(10.0)
        # Warm up ring binding while the fabric is clean.
        reply = yield from client.lt_rpc(2, 1, b"warm", max_reply=64,
                                         timeout=500.0, retries=3)
        assert reply == b"ok:warm"
        yield cluster.sim.timeout(80.0)  # -> ~100us, inside the loss window
        reply = yield from client.lt_rpc(2, 1, b"retry-me", max_reply=64,
                                         timeout=300.0, retries=4)
        return reply

    assert cluster.run_process(proc()) == b"ok:retry-me"
    assert calls.count(b"retry-me") == 1  # duplicates never reach the handler
    assert kernels[0].rpc.calls_retried >= 1


# ---------------------------------------------------------------------------
# Zero-cost-when-disabled: empty plan is byte-identical
# ---------------------------------------------------------------------------
def _kv_trace(install_empty_injector: bool):
    # Byte-identity needs identical id streams in both runs: global
    # counters drift between back-to-back clusters, and crossing an id
    # digit boundary changes control-message lengths and thus timing.
    from repro.determinism import reset_global_counters

    reset_global_counters()
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    if install_empty_injector:
        FaultInjector(cluster, FaultPlan(), seed=1).install()
    servers = [LiteKVServer(kernels[1], 0), LiteKVServer(kernels[2], 1)]

    def setup():
        for server in servers:
            yield from server.start()
        yield cluster.sim.timeout(1)

    cluster.run_process(setup())
    client = LiteKVClient(kernels[0], servers)
    trace = []

    def proc():
        for index in range(20):
            key = b"k%d" % (index % 7)
            yield from client.put(key, b"v%d" % index)
            value = yield from client.get(key)
            trace.append((cluster.sim.now, value))

    cluster.run_process(proc())
    return trace, cluster


def test_empty_plan_is_byte_identical():
    trace_plain, cluster_plain = _kv_trace(False)
    trace_injected, cluster_injected = _kv_trace(True)
    assert trace_plain == trace_injected  # timestamps exactly equal
    assert cluster_injected.fabric.fault is None
    assert cluster_plain.sim.now == cluster_injected.sim.now


# ---------------------------------------------------------------------------
# Applications under chaos
# ---------------------------------------------------------------------------
def test_kv_store_survives_one_percent_loss():
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    FaultInjector(
        cluster, FaultPlan().packet_loss(0.01), seed=11
    ).install()
    servers = [LiteKVServer(kernels[1], 0), LiteKVServer(kernels[2], 1)]

    def setup():
        for server in servers:
            yield from server.start()
        yield cluster.sim.timeout(1)

    cluster.run_process(setup())
    client = LiteKVClient(kernels[0], servers,
                          rpc_timeout_us=20000.0, rpc_retries=4)
    expected = {}

    def proc():
        for index in range(40):
            key = b"key-%d" % (index % 11)
            value = b"value-%d" % index
            yield from client.put(key, value)
            expected[key] = value
        for key, value in expected.items():
            got = yield from client.get(key)
            assert got == value, (key, got, value)

    cluster.run_process(proc())


def test_kv_store_survives_server_crash_with_restart():
    cluster = Cluster(2, params=_fast_fail_params())
    kernels = lite_boot(cluster)
    server_node = cluster.nodes[1].node_id
    injector = FaultInjector(
        cluster, FaultPlan().crash(server_node, 800.0, restart_at_us=3000.0),
        seed=3,
    ).install()
    servers = [LiteKVServer(kernels[1], 0)]

    def setup():
        yield from servers[0].start()
        yield cluster.sim.timeout(1)

    cluster.run_process(setup())
    client = LiteKVClient(kernels[0], servers,
                          rpc_timeout_us=2000.0, rpc_retries=6)

    def proc():
        for index in range(30):
            yield from client.put(b"k%d" % index, b"v%d" % index)
            yield cluster.sim.timeout(100.0)  # spread across the outage
        for index in range(30):
            got = yield from client.get(b"k%d" % index)
            assert got == b"v%d" % index

    cluster.run_process(proc())
    assert injector.crashes == 1 and injector.restarts == 1


def test_mapreduce_completes_under_random_loss_plan():
    corpus = generate_corpus(12, 120, vocab_size=200, seed=4)
    truth = Counter()
    for document in corpus:
        truth.update(wordcount_map(document))

    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    plan = FaultPlan.random(21, [node.node_id for node in cluster.nodes],
                            duration_us=0.0, crashes=0, loss_rate=0.005)
    FaultInjector(cluster, plan, seed=21).install()
    engine = LiteMR(kernels, total_threads=4,
                    rpc_timeout_us=50000.0, rpc_retries=4)
    result = cluster.run_process(engine.run(corpus))
    assert result == truth
