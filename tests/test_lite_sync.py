"""Tests for LITE synchronization: locks, barriers, atomics (§7.2)."""

import pytest

from repro.cluster import Cluster
from repro.core import LiteContext, LiteError, lite_boot


@pytest.fixture
def env():
    cluster = Cluster(3)
    kernels = lite_boot(cluster)
    return cluster, kernels


def run(cluster, gen):
    return cluster.sim.run_process(gen)


def test_uncontended_lock_is_fast(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u")
    sim = cluster.sim

    def proc():
        lock = yield from ctx.lt_create_lock("L", owner_id=2)
        yield from ctx.lt_lock(lock)  # warm caches
        yield from ctx.lt_unlock(lock)
        start = sim.now
        yield from ctx.lt_lock(lock)
        elapsed = sim.now - start
        yield from ctx.lt_unlock(lock)
        return elapsed

    elapsed = run(cluster, proc())
    # Paper: ~2.2 us for an uncontended acquire (one fetch-add RTT).
    assert 1.0 < elapsed < 4.5


def test_lock_mutual_exclusion(env):
    cluster, kernels = env
    sim = cluster.sim
    contexts = [LiteContext(kernels[i], f"u{i}") for i in range(3)]
    in_section = [0]
    max_seen = [0]
    order = []

    def worker(ctx, label, lock_name):
        lock = yield from ctx.lt_open_lock(lock_name)
        for _round in range(3):
            yield from ctx.lt_lock(lock)
            in_section[0] += 1
            max_seen[0] = max(max_seen[0], in_section[0])
            order.append(label)
            yield sim.timeout(5)
            in_section[0] -= 1
            yield from ctx.lt_unlock(lock)

    def proc():
        owner = LiteContext(kernels[0], "owner")
        yield from owner.lt_create_lock("mx", owner_id=1)
        procs = [
            sim.process(worker(ctx, index, "mx"))
            for index, ctx in enumerate(contexts)
        ]
        yield sim.all_of(procs)

    run(cluster, proc())
    assert max_seen[0] == 1
    assert len(order) == 9


def test_lock_fifo_wakeup(env):
    cluster, kernels = env
    sim = cluster.sim
    ctx = LiteContext(kernels[0], "u")
    acquired = []

    def worker(lock, label, delay):
        yield sim.timeout(delay)
        yield from ctx.lt_lock(lock)
        acquired.append(label)
        yield sim.timeout(20)
        yield from ctx.lt_unlock(lock)

    def proc():
        lock = yield from ctx.lt_create_lock("fifo", owner_id=2)
        procs = [
            sim.process(worker(lock, "a", 0)),
            sim.process(worker(lock, "b", 5)),
            sim.process(worker(lock, "c", 10)),
        ]
        yield sim.all_of(procs)

    run(cluster, proc())
    assert acquired == ["a", "b", "c"]


def test_unlock_unheld_raises(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u")

    def proc():
        lock = yield from ctx.lt_create_lock("x", owner_id=1)
        with pytest.raises(LiteError, match="unheld"):
            yield from ctx.lt_unlock(lock)

    run(cluster, proc())


def test_barrier_releases_all_at_once(env):
    cluster, kernels = env
    sim = cluster.sim
    release_times = []

    def worker(ctx, delay):
        yield sim.timeout(delay)
        yield from ctx.lt_barrier("phase1", 3)
        release_times.append(sim.now)

    def proc():
        procs = [
            sim.process(worker(LiteContext(kernels[i], f"u{i}"), delay))
            for i, delay in enumerate((0, 40, 80))
        ]
        yield sim.all_of(procs)

    run(cluster, proc())
    assert len(release_times) == 3
    # Nobody is released before the last arrival at t=80.
    assert min(release_times) >= 80
    assert max(release_times) - min(release_times) < 20


def test_barrier_reusable(env):
    cluster, kernels = env
    sim = cluster.sim
    phases = []

    def worker(ctx, label):
        for phase in range(3):
            yield from ctx.lt_barrier(f"p{phase}", 2)
            phases.append((phase, label))

    def proc():
        procs = [
            sim.process(worker(LiteContext(kernels[i], f"u{i}"), i))
            for i in range(2)
        ]
        yield sim.all_of(procs)

    run(cluster, proc())
    assert len(phases) == 6
    assert [p for p, _l in sorted(phases)] == [0, 0, 1, 1, 2, 2]


def test_fetch_add_accumulates(env):
    cluster, kernels = env
    sim = cluster.sim
    ctx0 = LiteContext(kernels[0], "a")
    ctx1 = LiteContext(kernels[1], "b")

    def proc():
        lh = yield from ctx0.lt_malloc(8, name="ctr", nodes=3)
        from repro.core import Permission

        yield from ctx0.lt_grant("ctr", "b", Permission.READ | Permission.WRITE)
        lh1 = yield from ctx1.lt_map("ctr")

        def bump(ctx, handle, times):
            for _ in range(times):
                yield from ctx.lt_fetch_add(handle, 0, 1)

        procs = [
            sim.process(bump(ctx0, lh, 10)),
            sim.process(bump(ctx1, lh1, 10)),
        ]
        yield sim.all_of(procs)
        data = yield from ctx0.lt_read(lh, 0, 8)
        return int.from_bytes(data, "little")

    assert run(cluster, proc()) == 20


def test_test_set(env):
    cluster, kernels = env
    ctx = LiteContext(kernels[0], "u")

    def proc():
        lh = yield from ctx.lt_malloc(8, nodes=2)
        old = yield from ctx.lt_test_set(lh, 0, 0, 99)
        assert old == 0
        old = yield from ctx.lt_test_set(lh, 0, 0, 123)  # fails: now 99
        assert old == 99
        data = yield from ctx.lt_read(lh, 0, 8)
        return int.from_bytes(data, "little")

    assert run(cluster, proc()) == 99


def test_lock_across_nodes_under_contention(env):
    cluster, kernels = env
    sim = cluster.sim
    counter = {"v": 0}

    def worker(node_index):
        ctx = LiteContext(kernels[node_index], f"w{node_index}")
        lock = yield from ctx.lt_open_lock("global")
        for _ in range(5):
            yield from ctx.lt_lock(lock)
            # Non-atomic read-modify-write made safe only by the lock.
            value = counter["v"]
            yield sim.timeout(1)
            counter["v"] = value + 1
            yield from ctx.lt_unlock(lock)

    def proc():
        owner = LiteContext(kernels[0], "owner")
        yield from owner.lt_create_lock("global", owner_id=1)
        procs = [sim.process(worker(i)) for i in range(3)]
        yield sim.all_of(procs)

    run(cluster, proc())
    assert counter["v"] == 15
