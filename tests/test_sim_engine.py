"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(3.5)
        return sim.now

    assert sim.run_process(proc()) == 3.5
    assert sim.now == 3.5


def test_timeout_value_passthrough():
    sim = Simulator()

    def proc():
        value = yield sim.timeout(1, "payload")
        return value

    assert sim.run_process(proc()) == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def waiter(delay, label):
        yield sim.timeout(delay)
        order.append(label)

    sim.process(waiter(5, "b"))
    sim.process(waiter(2, "a"))
    sim.process(waiter(9, "c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_fifo_order_for_simultaneous_events():
    sim = Simulator()
    order = []

    def waiter(label):
        yield sim.timeout(1)
        order.append(label)

    for label in "abcd":
        sim.process(waiter(label))
    sim.run()
    assert order == list("abcd")


def test_process_return_value_and_join():
    sim = Simulator()

    def child():
        yield sim.timeout(2)
        return 99

    def parent():
        value = yield sim.process(child())
        return value + 1

    assert sim.run_process(parent()) == 100


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append((sim.now, value))

    def firer():
        yield sim.timeout(4)
        gate.succeed("go")

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert seen == [(4.0, "go")]


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_failed_event_raises_in_process():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def firer():
        yield sim.timeout(1)
        gate.fail(RuntimeError("boom"))

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_propagates_via_stop():
    sim = Simulator()

    def exploder():
        yield sim.timeout(1)
        raise ValueError("bad")

    with pytest.raises(ValueError, match="bad"):
        sim.run_process(exploder())


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def proc():
        timeouts = [sim.timeout(d, d) for d in (3, 1, 2)]
        results = yield sim.all_of(timeouts)
        return (sim.now, sorted(results.values()))

    now, values = sim.run_process(proc())
    assert now == 3.0
    assert values == [1, 2, 3]


def test_any_of_returns_on_first():
    sim = Simulator()

    def proc():
        results = yield sim.any_of([sim.timeout(5, "slow"), sim.timeout(1, "fast")])
        return (sim.now, list(results.values()))

    now, values = sim.run_process(proc())
    assert now == 1.0
    assert values == ["fast"]


def test_all_of_with_pretriggered_events():
    sim = Simulator()

    def proc():
        done = sim.event()
        done.succeed("x")
        yield sim.timeout(1)
        results = yield sim.all_of([done])
        return results[0]

    assert sim.run_process(proc()) == "x"


def test_interrupt_raises_in_target():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt as exc:
            log.append((sim.now, exc.cause))

    def interrupter(target):
        yield sim.timeout(7)
        target.interrupt("wakeup")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert log == [(7.0, "wakeup")]


def test_cannot_interrupt_finished_process():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_run_until_stops_clock():
    sim = Simulator()
    ticks = []

    def ticker():
        while True:
            yield sim.timeout(10)
            ticks.append(sim.now)

    sim.process(ticker())
    sim.run(until=35)
    assert ticks == [10, 20, 30]
    assert sim.now == 35


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 42

    with pytest.raises(SimulationError):
        sim.run_process(bad())


def test_run_out_of_events_with_pending_stop_raises():
    sim = Simulator()
    never = sim.event()

    def idle():
        yield sim.timeout(1)

    sim.process(idle())
    with pytest.raises(SimulationError):
        sim.run(stop=never)


def test_nested_processes_three_deep():
    sim = Simulator()

    def leaf():
        yield sim.timeout(1)
        return 1

    def middle():
        value = yield sim.process(leaf())
        yield sim.timeout(1)
        return value + 1

    def root():
        value = yield sim.process(middle())
        return value + 1

    assert sim.run_process(root()) == 3
    assert sim.now == 2.0


# ---------------------------------------------------------------------------
# Cancellable timers and heap pruning
# ---------------------------------------------------------------------------
def test_cancelled_timeout_never_fires_or_advances_time():
    sim = Simulator()
    timer = sim.timeout(50)
    timer.cancel()
    assert timer.cancelled
    sim.run()
    assert sim.now == 0.0  # the heap was pruned, time never advanced


def test_cancel_after_processed_is_a_noop():
    sim = Simulator()
    timer = sim.timeout(5)
    sim.run()
    timer.cancel()
    assert not timer.cancelled
    assert timer.processed


def test_cancelling_race_loser_releases_the_heap():
    """The canonical timeout-vs-reply race: cancelling the losing timer
    means the simulation does not idle until the timer's deadline."""
    sim = Simulator()

    def proc():
        reply = sim.timeout(1, value="reply")
        timer = sim.timeout(1000)
        results = yield sim.any_of([reply, timer])
        timer.cancel()
        return results

    results = sim.run_process(proc())
    assert results == {0: "reply"}
    sim.run()
    assert sim.now == 1.0  # never crawled to the timer's t=1000


def test_peek_skips_cancelled_events():
    sim = Simulator()
    early = sim.timeout(3)
    sim.timeout(7)
    early.cancel()
    assert sim.peek() == 7.0


def test_any_of_both_branches_at_same_timestamp():
    """Two events at the same instant: FIFO order decides the winner and
    the loser still completes without corrupting the condition."""
    sim = Simulator()
    first = sim.timeout(5, value="first")
    second = sim.timeout(5, value="second")

    def proc():
        results = yield sim.any_of([first, second])
        return results

    results = sim.run_process(proc())
    assert results == {0: "first"}
    sim.run()  # drain the loser
    assert second.processed
    assert sim.now == 5.0


def test_process_termination_leaves_pending_events_harmless():
    """A stop-condition exit with events still queued must not wedge:
    the leftovers drain on the next run()."""
    sim = Simulator()
    sim.timeout(100)

    def quick():
        yield sim.timeout(1)
        return "done"

    proc = sim.process(quick())
    assert sim.run(stop=proc) == "done"
    assert sim.now == 1.0
    sim.run()
    assert sim.now == 100.0


def test_any_of_concurrent_failures_do_not_crash():
    """A second failing event after the condition resolved is defused."""
    sim = Simulator()

    def boom(delay):
        yield sim.timeout(delay)
        raise RuntimeError("boom")

    p1 = sim.process(boom(1))
    p2 = sim.process(boom(1))

    def waiter():
        try:
            yield sim.any_of([p1, p2])
        except RuntimeError:
            return "caught"

    assert sim.run_process(waiter()) == "caught"


def test_interrupt_detaches_from_old_target_without_scan():
    """After an interrupt, the old wait target firing is ignored (the
    callback is marked stale instead of removed, satellite fix)."""
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100, value="slept")
        except Interrupt as exc:
            log.append(("interrupted", exc.cause))
        value = yield sim.timeout(50, value="second-nap")
        log.append(("woke", value))
        return "done"

    proc = sim.process(sleeper())

    def poker():
        yield sim.timeout(10)
        proc.interrupt("poke")

    sim.process(poker())
    sim.run()  # drains the original timeout(100) too
    assert log == [("interrupted", "poke"), ("woke", "second-nap")]
    assert proc.value == "done"
    assert sim.now == 100.0  # the stale timeout still fired harmlessly


def test_interrupt_heavy_run_stays_consistent():
    """Many interrupts against the same process: every one lands, every
    detached event drains without resuming the process twice."""
    sim = Simulator()
    hits = []

    def stubborn():
        while len(hits) < 50:
            try:
                yield sim.timeout(1000)
                return "timed-out"
            except Interrupt:
                hits.append(sim.now)
        return "riddled"

    proc = sim.process(stubborn())

    def needler():
        for _ in range(50):
            yield sim.timeout(1)
            proc.interrupt()

    sim.process(needler())
    sim.run()
    assert proc.value == "riddled"
    assert len(hits) == 50


def test_timeout_pool_recycles_without_changing_values():
    """Recycled Timeout objects must deliver their new value/delay."""
    sim = Simulator()
    seen = []

    def chain():
        for index in range(200):
            value = yield sim.timeout(0.5, value=index)
            seen.append(value)

    sim.run_process(chain())
    assert seen == list(range(200))
    assert sim.now == 100.0
    assert len(sim._timeout_pool) > 0  # the free list is actually in use


def test_timeout_pool_never_recycles_held_references():
    """A Timeout someone still holds is not reused underneath them."""
    sim = Simulator()
    held = []

    def holder():
        first = sim.timeout(1, value="keep-me")
        held.append(first)
        yield first
        # Allocate more timeouts; none may be the held object.
        for _ in range(10):
            yield sim.timeout(1)
        return first.value

    assert sim.run_process(holder()) == "keep-me"
    assert held[0] not in sim._timeout_pool
    assert held[0].value == "keep-me"
