"""Unit tests for the QoS manager and the fair per-flow arbiter."""

import pytest

from repro.core import PRIORITY_HIGH, PRIORITY_LOW, lite_boot
from repro.core.qos import QosManager
from repro.cluster import Cluster
from repro.hw import SimParams
from repro.sim import FairResource, SimulationError, Simulator


# ----------------------------------------------------- FairResource --


def test_fair_resource_grants_immediately_when_free():
    sim = Simulator()
    res = FairResource(sim)
    event = res.request("a")
    assert event.triggered


def test_fair_resource_round_robins_across_flows():
    sim = Simulator()
    res = FairResource(sim)
    order = []

    def holder():
        yield res.request("boot")
        yield sim.timeout(10)
        res.release()

    def user(flow, label):
        yield res.request(flow)
        order.append(label)
        yield sim.timeout(1)
        res.release()

    sim.process(holder())

    def spawn():
        yield sim.timeout(1)
        # Flow A backlogs three requests; flows B and C one each.
        sim.process(user("A", "a1"))
        sim.process(user("A", "a2"))
        sim.process(user("A", "a3"))
        sim.process(user("B", "b1"))
        sim.process(user("C", "c1"))

    sim.process(spawn())
    sim.run()
    # Round-robin: every flow is served before A gets its second grant.
    assert order.index("b1") < order.index("a2")
    assert order.index("c1") < order.index("a2")
    assert order.count("a1") == 1 and len(order) == 5


def test_fair_resource_single_flow_is_fifo():
    sim = Simulator()
    res = FairResource(sim)
    order = []

    def user(label):
        yield res.request(None)
        order.append(label)
        yield sim.timeout(1)
        res.release()

    for label in "abcd":
        sim.process(user(label))
    sim.run()
    assert order == list("abcd")


def test_fair_resource_release_without_request():
    sim = Simulator()
    res = FairResource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_fair_resource_bandwidth_share_proportional_to_flows():
    """3 backlogged flows vs 1: the 3-flow class gets ~3/4 of grants."""
    sim = Simulator()
    res = FairResource(sim)
    counts = {"high": 0, "low": 0}

    def pump(flow, cls):
        while sim.now < 1000:
            yield res.request(flow)
            yield sim.timeout(1)
            res.release()
            counts[cls] += 1

    for flow in ("h1", "h2", "h3"):
        sim.process(pump(flow, "high"))
    sim.process(pump("l1", "low"))
    sim.run(until=1000)
    share = counts["high"] / (counts["high"] + counts["low"])
    assert 0.70 < share < 0.80


# ----------------------------------------------------------- QosManager --


@pytest.fixture
def qos_env():
    cluster = Cluster(2, params=SimParams(lite_qp_factor_k=4))
    kernels = lite_boot(cluster)
    return cluster, kernels


def test_qos_rejects_unknown_mode(qos_env):
    _cluster, kernels = qos_env
    with pytest.raises(ValueError):
        QosManager(kernels[0], mode="nonsense")


def test_hw_sep_partitions_qps(qos_env):
    _cluster, kernels = qos_env
    qos = kernels[0].qos
    qos.mode = "hw-sep"
    peer = kernels[0].peer(2)
    high = qos.eligible_qps(peer, PRIORITY_HIGH)
    low = qos.eligible_qps(peer, PRIORITY_LOW)
    assert len(high) == 3 and len(low) == 1
    high_qps = {qp.qpn for qp, _w in high}
    low_qps = {qp.qpn for qp, _w in low}
    assert not high_qps & low_qps


def test_no_qos_shares_all_qps(qos_env):
    _cluster, kernels = qos_env
    qos = kernels[0].qos
    peer = kernels[0].peer(2)
    assert len(qos.eligible_qps(peer, PRIORITY_HIGH)) == 4
    assert len(qos.eligible_qps(peer, PRIORITY_LOW)) == 4


def test_sw_pri_gate_unlimited_without_high_traffic(qos_env):
    cluster, kernels = qos_env
    qos = kernels[0].qos
    qos.mode = "sw-pri"
    sim = cluster.sim

    def proc():
        start = sim.now
        for _ in range(20):
            yield from qos.gate(PRIORITY_LOW)
        return sim.now - start

    # Policy 2: no high-priority load -> no delay at all.
    assert cluster.run_process(proc()) == 0.0


def test_sw_pri_gate_throttles_low_under_high_load(qos_env):
    cluster, kernels = qos_env
    qos = kernels[0].qos
    qos.mode = "sw-pri"
    sim = cluster.sim

    def proc():
        # Simulate heavy high-priority traffic.
        for _ in range(150):
            qos.observe(PRIORITY_HIGH, rtt=2.0)
        start = sim.now
        for _ in range(10):
            yield from qos.gate(PRIORITY_LOW)
        return sim.now - start

    elapsed = cluster.run_process(proc())
    # Policy 1: clamped to the minimum rate: 10 ops take >= 9/0.02 us.
    assert elapsed > 400.0
    assert qos.low_delayed_ops > 0


def test_sw_pri_gate_throttles_on_rtt_inflation(qos_env):
    cluster, kernels = qos_env
    qos = kernels[0].qos
    qos.mode = "sw-pri"
    sim = cluster.sim

    def proc():
        # Light high-priority load, but with badly inflated RTTs.
        qos.observe(PRIORITY_HIGH, rtt=2.0)   # floor
        for _ in range(5):
            qos.observe(PRIORITY_HIGH, rtt=50.0)
        start = sim.now
        for _ in range(5):
            yield from qos.gate(PRIORITY_LOW)
        return sim.now - start

    # Policy 3 kicks in despite the low op count.
    assert cluster.run_process(proc()) > 100.0


def test_high_priority_never_gated(qos_env):
    cluster, kernels = qos_env
    qos = kernels[0].qos
    qos.mode = "sw-pri"
    sim = cluster.sim

    def proc():
        for _ in range(100):
            qos.observe(PRIORITY_HIGH, rtt=2.0)
        start = sim.now
        for _ in range(20):
            yield from qos.gate(PRIORITY_HIGH)
        return sim.now - start

    assert cluster.run_process(proc()) == 0.0


def test_observe_window_trims_old_samples(qos_env):
    cluster, kernels = qos_env
    qos = kernels[0].qos
    sim = cluster.sim

    def proc():
        for _ in range(30):
            qos.observe(PRIORITY_HIGH, rtt=2.0)
        assert qos.high_load() == 30
        yield sim.timeout(1000)  # past the 500 us window
        return qos.high_load()

    assert cluster.run_process(proc()) == 0
