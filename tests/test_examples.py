"""Smoke tests: every shipped example runs clean and prints its story."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"

CASES = [
    ("quickstart.py", ["LT_RPC", "simulated time elapsed"]),
    ("distributed_log.py", ["transactions committed", "verified"]),
    ("pagerank.py", ["identical ranks", "LITE-Graph"]),
    ("wordcount.py", ["beats Hadoop", "most common words"]),
    ("shared_memory.py", ["coherent batches", "release consistency"]),
    ("kv_store.py", ["one-sided GETs", "never touched a server CPU"]),
    ("qos_isolation.py", ["sw-pri", "p99"]),
]


@pytest.mark.parametrize("script,expected", CASES,
                         ids=[case[0] for case in CASES])
def test_example_runs_clean(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in expected:
        assert needle in result.stdout, (
            f"{script}: expected {needle!r} in output:\n{result.stdout}"
        )


def test_module_entrypoint_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro"], capture_output=True, text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "LT_write" in result.stdout
    assert "pong" in result.stdout
