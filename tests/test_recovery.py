"""End-to-end crash recovery (docs/INTERNALS.md §14).

Covers the full lifecycle the recovery layer promises: replicated
writes fan out to every backup, lease expiry promotes a backup with
zero committed-write loss through the *unchanged* handle, a restarted
node rejoins and is resynced back into the replica set, the last
replica dying degrades to fail-fast ENODEV (and drops KV shards to
read-only), and the whole protocol is deterministic — same seed, same
fault plan, byte-identical end state.
"""

import dataclasses
import json

import pytest

from repro.apps.kvstore import LiteKVClient, LiteKVServer
from repro.cluster import Cluster, ClusterManager
from repro.core import LiteContext, LiteError, Permission, lite_boot
from repro.core.errors import ENODEV
from repro.core.lmr import ChunkInfo, MappedLmr
from repro.determinism import reset_global_counters
from repro.fault import FaultInjector, FaultPlan
from repro.recovery import RecoveryManager
from repro.stats import snapshot

# Tight lease timings keep the tests fast; the ratios mirror the
# defaults (TTL covers ~3 renew intervals).
TTL = 1500.0
RENEW = 400.0
SWEEP = 300.0


def _armed(n_nodes=3, plan=None, seed=0):
    """Fresh cluster with keep-alive + recovery armed (plan optional)."""
    reset_global_counters()
    cluster = Cluster(n_nodes)
    kernels = lite_boot(cluster)
    injector = FaultInjector(cluster, plan or FaultPlan(), seed=seed)
    injector.install()
    injector.arm_lite(kernels, keepalive_interval_us=500.0, miss_limit=2)
    recovery = RecoveryManager(
        cluster, kernels, lease_ttl_us=TTL,
        renew_interval_us=RENEW, sweep_interval_us=SWEEP,
    ).arm()
    return cluster, kernels, recovery


def _backup_copy(kernel, entry, backup_id, offset, nbytes):
    """Read ``nbytes`` straight out of a backup's chunks (generator)."""
    backup_map = MappedLmr(
        0, "", entry["size"],
        [ChunkInfo.from_wire(w) for w in entry["backups"][backup_id]], 0,
    )
    data = yield from kernel.onesided.read(backup_map, offset, nbytes)
    return data


# ---------------------------------------------------------------------------
# Replication: acked writes exist on every backup
# ---------------------------------------------------------------------------
def test_replicated_write_reaches_every_backup():
    cluster, kernels, recovery = _armed()
    ctx = LiteContext(kernels[0], "rep", kernel_level=True)
    out = {}

    def proc():
        lh = yield from ctx.lt_malloc(8192, name="r", nodes=2, replicas=2)
        yield from ctx.lt_write(lh, 100, b"fanout" * 10)
        yield from ctx.lt_write(lh, 4000, b"z" * 64)
        entry = cluster.manager.replicas[lh.mapping.lmr_id]
        # Primary on LITE 2; backups on the two nodes outside it.
        assert sorted(entry["backups"]) == [1, 3]
        for backup_id in sorted(entry["backups"]):
            for offset, expect in ((100, b"fanout" * 10), (4000, b"z" * 64)):
                got = yield from _backup_copy(
                    kernels[0], entry, backup_id, offset, len(expect)
                )
                assert got == expect, f"backup {backup_id} diverged"
        out["version"] = entry["version"]
        recovery.stop()

    cluster.run_process(proc())
    # Each acked replicated write bumps the write-ordering counter once.
    assert out["version"] == 2


def test_reads_are_served_by_the_primary_only():
    cluster, kernels, recovery = _armed()
    ctx = LiteContext(kernels[0], "ro", kernel_level=True)

    def proc():
        lh = yield from ctx.lt_malloc(4096, nodes=2, replicas=1)
        yield from ctx.lt_write(lh, 0, b"q" * 32)
        entry = cluster.manager.replicas[lh.mapping.lmr_id]
        # Scribble directly on the backup copy: a read must not see it.
        backup_id = next(iter(entry["backups"]))
        backup_map = MappedLmr(
            0, "", entry["size"],
            [ChunkInfo.from_wire(w) for w in entry["backups"][backup_id]], 0,
        )
        yield from kernels[0].onesided.write(backup_map, 0, b"X" * 32)
        got = yield from ctx.lt_read(lh, 0, 32)
        assert got == b"q" * 32
        recovery.stop()

    cluster.run_process(proc())


# ---------------------------------------------------------------------------
# Failover: promotion, zero loss, handle transparency
# ---------------------------------------------------------------------------
def test_failover_promotes_backup_and_loses_nothing():
    plan = FaultPlan().crash(1, 3000.0)  # LITE 2 dies for good
    cluster, kernels, recovery = _armed(plan=plan)
    sim = cluster.sim
    out = {}

    def proc():
        ctx = LiteContext(kernels[0], "fo", kernel_level=True)
        lh = yield from ctx.lt_malloc(8192, name="fo", nodes=2, replicas=2)
        lmr_id = lh.mapping.lmr_id
        yield from ctx.lt_write(lh, 0, b"committed-before-crash")
        # Ride through crash + lease expiry + promotion.
        yield sim.timeout(3000.0 + TTL + RENEW + SWEEP + 500.0 - sim.now)
        entry = cluster.manager.replicas[lmr_id]
        assert entry["master"] != 2, "primary should have moved off LITE 2"
        assert not entry["failed"]
        # Same handle, no remap call, data intact on the new primary.
        got = yield from ctx.lt_read(lh, 0, 22)
        assert got == b"committed-before-crash"
        # New writes land on the promoted primary and still replicate.
        yield from ctx.lt_write(lh, 64, b"after-failover")
        got = yield from ctx.lt_read(lh, 64, 14)
        assert got == b"after-failover"
        out["entry"] = entry
        recovery.stop()

    cluster.run_process(proc())
    assert recovery.promotions == 1
    assert recovery.unavailability_samples, "failover must be timed"
    # Unavailability is bounded by expiry + detection + promotion slack.
    assert max(recovery.unavailability_samples) <= TTL + RENEW + SWEEP + 1000.0
    # The dead node's copy is parked for resync, not forgotten.
    assert 2 in out["entry"]["lost"]


def test_named_lmr_remaps_through_the_directory():
    plan = FaultPlan().crash(1, 2500.0)
    cluster, kernels, recovery = _armed(plan=plan)
    sim = cluster.sim

    def proc():
        ctx = LiteContext(kernels[0], "dir", kernel_level=True)
        # World-mappable: the promoted master must preserve the default
        # permission (explicit ACL grants die with the old master).
        yield from ctx.lt_malloc(
            4096, name="relocate", nodes=2, replicas=2,
            default_perm=Permission.READ | Permission.WRITE,
        )
        yield sim.timeout(2500.0 + TTL + RENEW + SWEEP + 500.0 - sim.now)
        # A post-failover lt_map resolves the name to the new master.
        other = LiteContext(kernels[2], "late")
        lh = yield from other.lt_map("relocate")
        assert lh.mapping.master_id == cluster.manager.replicas[
            lh.mapping.lmr_id]["master"]
        assert lh.mapping.master_id != 2
        recovery.stop()

    cluster.run_process(proc())
    assert cluster.manager.lookup_name("relocate") != 2


# ---------------------------------------------------------------------------
# Rejoin + resync
# ---------------------------------------------------------------------------
def test_rejoin_resyncs_the_returning_node():
    plan = FaultPlan().crash(1, 3000.0, restart_at_us=8000.0)
    cluster, kernels, recovery = _armed(plan=plan)
    sim = cluster.sim

    def proc():
        ctx = LiteContext(kernels[0], "rj", kernel_level=True)
        lh = yield from ctx.lt_malloc(8192, name="rj", nodes=2, replicas=2)
        lmr_id = lh.mapping.lmr_id
        yield from ctx.lt_write(lh, 0, b"v1" * 32)
        yield sim.timeout(6000.0 - sim.now)  # promoted by now
        yield from ctx.lt_write(lh, 0, b"v2" * 32)  # moves the version
        yield sim.timeout(12000.0 - sim.now)  # restart + rejoin + resync
        entry = cluster.manager.replicas[lmr_id]
        assert not entry["lost"], "rejoined copy should be resynced"
        assert len(entry["backups"]) == 2, "replica set should be healed"
        # The resynced copy carries the *latest* bytes.
        got = yield from _backup_copy(kernels[0], entry, 2, 0, 64)
        assert got == b"v2" * 32
        recovery.stop()

    cluster.run_process(proc())
    assert recovery.promotions == 1
    assert recovery.rejoins == 1
    assert recovery.resyncs >= 1


# ---------------------------------------------------------------------------
# Degradation: last replica gone -> fail-fast ENODEV
# ---------------------------------------------------------------------------
def test_last_replica_death_fails_fast_with_enodev():
    # Primary on LITE 2 (node 1), single backup lands on LITE 1
    # (node 0); the surviving client runs on LITE 3.
    plan = (FaultPlan()
            .crash(1, 2000.0)
            .crash(0, 8000.0))
    cluster, kernels, recovery = _armed(plan=plan)
    sim = cluster.sim

    def proc():
        ctx = LiteContext(kernels[2], "last", kernel_level=True)
        lh = yield from ctx.lt_malloc(4096, name="doomed", nodes=2,
                                      replicas=1)
        yield from ctx.lt_write(lh, 0, b"soon-gone")
        # First crash: promotion onto the lone backup keeps us going.
        yield sim.timeout(6000.0 - sim.now)
        got = yield from ctx.lt_read(lh, 0, 9)
        assert got == b"soon-gone"
        # Second crash kills the promoted copy too: no candidates left.
        yield sim.timeout(12000.0 - sim.now)
        assert cluster.manager.replicas[lh.mapping.lmr_id]["failed"]
        with pytest.raises(LiteError) as excinfo:
            yield from ctx.lt_write(lh, 0, b"nope")
        assert excinfo.value.errno == ENODEV
        with pytest.raises(LiteError) as excinfo:
            yield from ctx.lt_read(lh, 0, 4)
        assert excinfo.value.errno == ENODEV
        recovery.stop()

    cluster.run_process(proc())
    assert recovery.failed_lmrs == 1


def test_kv_shard_degrades_to_read_only():
    """A shard whose value log loses its last replica flips to
    read-only instead of wedging: the server refuses PUTs with ENODEV
    (and the client caches the verdict, failing fast without an RPC),
    while index lookups keep answering."""
    # Server + client live on LITE 1 (spared).  The log spreads its
    # primary over LITE 1+2 with its single backup forced onto LITE 3;
    # the two crashes take out LITE 2 (promotes the backup) then LITE 3
    # (kills the promoted copy: log failed).
    plan = (FaultPlan()
            .crash(1, 3000.0)
            .crash(2, 9000.0))
    cluster, kernels, recovery = _armed(plan=plan)
    sim = cluster.sim
    server = LiteKVServer(kernels[0], 0, log_bytes=64 * 1024,
                          replicas=1, log_nodes=[1, 2])
    client = LiteKVClient(kernels[0], [server],
                          rpc_timeout_us=2000.0, rpc_retries=2)

    def proc():
        yield from server.start()
        yield from client.put(b"alpha", b"v1")
        # Ride through the first crash: promotion keeps the shard live.
        yield sim.timeout(7000.0 - sim.now)
        yield from client.put(b"beta", b"v2")
        # Second crash kills the promoted copy: the log is gone.
        yield sim.timeout(14000.0 - sim.now)
        with pytest.raises(LiteError) as excinfo:
            yield from client.put(b"gamma", b"v3")
        assert excinfo.value.errno == ENODEV
        assert server.read_only, "server must flip read-only, not wedge"
        assert 0 in client.read_only_shards
        # Fail-fast locally now: no RPC burned on a known-dead shard.
        lookups_before = server.lookups
        with pytest.raises(LiteError) as excinfo:
            yield from client.put(b"delta", b"v4")
        assert excinfo.value.errno == ENODEV
        # Index lookups still answer on the degraded shard.
        reply = yield from client._rpc(
            server, {"op": "lookup", "key": "alpha"}
        )
        assert not reply.get("miss")
        assert server.lookups == lookups_before + 1
        recovery.stop()

    cluster.run_process(proc())
    assert recovery.failed_lmrs == 1


def test_rpc_to_declared_dead_peer_fails_fast():
    """Once keep-alive declares a peer dead, a timed RPC raises ENODEV
    immediately instead of burning its whole timeout budget."""
    plan = FaultPlan().crash(1, 1000.0)
    cluster, kernels, recovery = _armed(n_nodes=2, plan=plan)
    sim = cluster.sim

    def proc():
        ctx = LiteContext(kernels[0], "rpc")
        yield sim.timeout(4000.0 - sim.now)  # keep-alive misses expire
        assert not kernels[0].peers[2].alive
        before = sim.now
        with pytest.raises(LiteError) as excinfo:
            yield from ctx.lt_rpc(2, 9, b"ping", timeout=50000.0)
        assert excinfo.value.errno == ENODEV
        assert sim.now - before < 1000.0, "must not wait out the timeout"
        recovery.stop()

    cluster.run_process(proc())


# ---------------------------------------------------------------------------
# Determinism: same seed + same plan => byte-identical end state
# ---------------------------------------------------------------------------
def _storm_fingerprint(seed: int):
    plan = (FaultPlan()
            .crash(1, 2500.0 + (seed % 3) * 300.0, restart_at_us=8000.0))
    cluster, kernels, recovery = _armed(plan=plan, seed=seed)
    sim = cluster.sim
    acked = []

    def proc():
        ctx = LiteContext(kernels[0], "det", kernel_level=True)
        lh = yield from ctx.lt_malloc(16384, name="det", nodes=2, replicas=2)
        for index in range(30):
            for attempt in range(8):
                try:
                    yield from ctx.lt_write(
                        lh, (index * 64) % 16384, bytes([index]) * 64
                    )
                    acked.append(index)
                    break
                except LiteError:
                    yield sim.timeout(250.0 * (attempt + 1))
            yield sim.timeout(150.0)
        if sim.now < 13000.0:
            yield sim.timeout(13000.0 - sim.now)
        recovery.stop()

    cluster.run_process(proc())
    return (
        sim.now,
        sim._seq,
        acked,
        json.dumps(dataclasses.asdict(snapshot(cluster)), sort_keys=True),
        json.dumps(cluster.manager.snapshot(), sort_keys=True),
        recovery.promotions,
        recovery.rejoins,
        recovery.resyncs,
        list(recovery.unavailability_samples),
    )


@pytest.mark.parametrize("seed", [0, 4])
def test_recovery_is_deterministic_under_faults(seed):
    first = _storm_fingerprint(seed)
    second = _storm_fingerprint(seed)
    assert first == second, "same seed + same plan must replay identically"
    assert first[5] >= 1, "the storm must actually exercise failover"


# ---------------------------------------------------------------------------
# Guard rails
# ---------------------------------------------------------------------------
def test_recovery_manager_rejects_bad_config_and_rearm():
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    with pytest.raises(ValueError):
        RecoveryManager(cluster, kernels, lease_ttl_us=100.0,
                        renew_interval_us=100.0)
    recovery = RecoveryManager(cluster, kernels).arm()
    with pytest.raises(RuntimeError):
        recovery.arm()


def test_replicas_need_nodes_outside_the_primary_placement():
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    ctx = LiteContext(kernels[0], "np", kernel_level=True)

    def proc():
        with pytest.raises(LiteError):
            # Both nodes host primary chunks: nowhere to put 1 backup.
            yield from ctx.lt_malloc(4096, nodes=[1, 2], replicas=1)

    cluster.run_process(proc())


def test_unarmed_recovery_is_a_no_op():
    """Constructing (but not arming) the manager adds no lease state,
    no processes, and no event-count drift."""
    reset_global_counters()
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    baseline_seq = cluster.sim._seq
    RecoveryManager(cluster, kernels)
    assert cluster.manager.leases == {}
    assert cluster.sim._seq == baseline_seq
