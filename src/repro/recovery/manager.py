"""Lease-based crash recovery for replicated LMRs (INTERNALS §14).

The :class:`RecoveryManager` closes the loop that PR 1 opened: faults
are no longer terminal.  It layers three deterministic mechanisms on
top of the existing keep-alive / replica machinery:

* **Leases** — every LITE instance holds a lease in the cluster
  manager's table, renewed on a fixed simulated-time cadence whenever
  the node is up and its link is connected (renewal piggybacks on the
  keep-alive heartbeat conceptually, so it costs no extra wire
  traffic).  A crashed or partitioned node simply stops renewing.
* **Failover** — a sweeper declares a node dead when its lease
  expires, fences the fast path against it, and walks the replica
  directory: every LMR whose primary lived there gets the smallest
  live, lease-holding backup *promoted* in place — the global
  ``lh -> (node, addr)`` binding is remapped atomically through a
  CHUNKS_UPDATE broadcast, so existing handles keep working without
  any application involvement (the paper's indirection argument,
  §4.1, doing real work).  When the last copy is gone the LMR is
  marked **failed** and every subsequent op fails fast with ENODEV.
* **Rejoin + resync** — when an expired node renews again (it was
  restarted by the fault plan), its peers are resurrected and the
  sweeper schedules a resync for every copy it lost: the current
  primary is stride-copied back over the stale chunks, retrying while
  the per-LMR version counter moves underneath the copy (write
  ordering), after which the node rejoins the replica set.

Everything runs in simulated time off the one shared event loop, so a
given (fault plan, seed) recovers identically on every run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.errors import LiteError
from ..core.lmr import ChunkInfo, MappedLmr, MasterRecord, Permission
from ..core.protocol import MsgType
from ..obs.metrics import MetricsRegistry

__all__ = ["RecoveryManager"]

# Defaults chosen against the keep-alive defaults: a lease outlives a
# couple of missed renewals but expires well before a typical chaos
# plan's restart, keeping unavailability windows tight.
DEFAULT_LEASE_TTL_US = 2000.0
DEFAULT_RENEW_INTERVAL_US = 500.0
DEFAULT_SWEEP_INTERVAL_US = 500.0


class RecoveryManager:
    """Crash-to-rejoin coordinator for one cluster (opt-in via arm())."""

    def __init__(
        self,
        cluster,
        kernels,
        lease_ttl_us: float = DEFAULT_LEASE_TTL_US,
        renew_interval_us: float = DEFAULT_RENEW_INTERVAL_US,
        sweep_interval_us: float = DEFAULT_SWEEP_INTERVAL_US,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if lease_ttl_us <= renew_interval_us:
            raise ValueError("lease TTL must exceed the renew interval")
        self.cluster = cluster
        self.sim = cluster.sim
        self.manager = cluster.manager
        self.kernels = list(kernels)
        self._by_id = {kernel.lite_id: kernel for kernel in self.kernels}
        self.lease_ttl_us = lease_ttl_us
        self.renew_interval_us = renew_interval_us
        self.sweep_interval_us = sweep_interval_us
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Lifecycle state.
        self.dead: Set[int] = set()
        self._rejoining: Set[int] = set()
        self._resync_inflight: Set[Tuple[int, int]] = set()
        self._last_renew: Dict[int, float] = {}
        self._armed = False
        self._stopped = False
        # Stats (exact samples kept alongside the histograms: the
        # histogram buckets are lossy, assertions want the real values).
        self.promotions = 0
        self.rejoins = 0
        self.resyncs = 0
        self.failed_lmrs = 0
        self.promotion_samples: List[float] = []
        self.unavailability_samples: List[float] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def arm(self) -> "RecoveryManager":
        """Grant initial leases and start the renew/sweep loops.

        Until this is called the recovery layer is an exact no-op (no
        processes, no lease table entries) — unarmed runs stay
        byte-identical to pre-recovery builds.
        """
        if self._armed:
            raise RuntimeError("recovery manager already armed")
        self._armed = True
        now = self.sim.now
        for kernel in self.kernels:
            self.manager.grant_lease(kernel.lite_id, now + self.lease_ttl_us)
            self._last_renew[kernel.lite_id] = now
            self.sim.process(
                self._renew_loop(kernel), name=f"lease-renew-{kernel.lite_id}"
            )
        self.sim.process(self._sweep_loop(), name="lease-sweep")
        return self

    def stop(self) -> None:
        """Stop renewing and sweeping (loops exit at their next tick)."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Lease loops
    # ------------------------------------------------------------------
    def _renew_loop(self, kernel):
        node = kernel.node
        fabric = node.fabric
        while True:
            yield self.sim.timeout(self.renew_interval_us)
            if self._stopped:
                return
            if node.crashed or not fabric.link_up(node.node_id):
                continue
            self.manager.grant_lease(
                kernel.lite_id, self.sim.now + self.lease_ttl_us
            )
            self._last_renew[kernel.lite_id] = self.sim.now
            if (kernel.lite_id in self.dead
                    and kernel.lite_id not in self._rejoining):
                self._rejoining.add(kernel.lite_id)
                self.sim.process(
                    self._rejoin(kernel), name=f"rejoin-{kernel.lite_id}"
                )

    def _sweep_loop(self):
        while True:
            yield self.sim.timeout(self.sweep_interval_us)
            if self._stopped:
                return
            now = self.sim.now
            for lite_id in sorted(self._by_id):
                if lite_id in self.dead:
                    continue
                if not self.manager.lease_valid(lite_id, now):
                    self.dead.add(lite_id)
                    self.sim.process(
                        self._failover(lite_id), name=f"failover-{lite_id}"
                    )
            # Lost-but-alive copies (a fan-out write failed during a
            # link blip, or a node finished rejoining): resync them
            # back into the replica set.
            for lmr_id in sorted(self.manager.replicas):
                entry = self.manager.replicas[lmr_id]
                if entry["failed"]:
                    continue
                for holder in sorted(entry["lost"]):
                    key = (lmr_id, holder)
                    if (holder in self.dead or holder in self._rejoining
                            or key in self._resync_inflight):
                        continue
                    if not self.manager.lease_valid(holder, now):
                        continue
                    self._resync_inflight.add(key)
                    self.sim.process(
                        self._resync_task(lmr_id, holder),
                        name=f"resync-{lmr_id}-{holder}",
                    )

    # ------------------------------------------------------------------
    # Failover: fencing, promotion, degradation
    # ------------------------------------------------------------------
    def _failover(self, dead_id: int):
        t0 = self.sim.now
        self.metrics.count("recovery.failovers")
        for kernel in self.kernels:
            if kernel.lite_id == dead_id:
                continue
            info = kernel.peers.get(dead_id)
            if info is not None:
                info.alive = False
        node = self.manager.members.get(dead_id)
        if node is not None:
            # Same invalidation the injector applies at crash time —
            # lease expiry can also fire on a live-but-partitioned node
            # the injector never touched.  The fencing matrix for
            # primed run-to-completion chains (one-sided writes AND the
            # fused RPC request/reply chain):
            #   crash / restart      -> injector._set_link fence
            #   link down / flap     -> injector._set_link fence
            #   lease expiry         -> here
            #   rejoin (QP reset)    -> QueuePair.reset -> rnic.fence
            #   QP ERROR             -> QueuePair._enter_error
            #   MR dereg / resize    -> RNIC.invalidate_mr/resize_caches
            #   ring wrap / remap    -> fp_rpc_gate geometry check
            # Each path bumps an RNIC cost_version, so any chain primed
            # before the event can never commit after it.
            node.fastpath_fence()
        # Pooled control-plane conns (cluster/qp_pool.py): the RNIC
        # fence above killed their primed tables; mark the pool entries
        # too, so no lease can ever hand one out again — the pooled-QP
        # row of the matrix.  The dead node's own pools fence as well:
        # every conn they park points at a peer that just fenced *it*,
        # and its sessions' leases die with the node.
        for kernel in self.kernels:
            pool = kernel.qp_pools.get(dead_id)
            if pool is not None:
                pool.fence_peer()
        dead_kernel = self._by_id.get(dead_id)
        if dead_kernel is not None:
            for pool in dead_kernel.qp_pools.values():
                pool.fence_peer()
        for lmr_id in sorted(self.manager.replicas):
            entry = self.manager.replicas[lmr_id]
            if entry["failed"]:
                continue
            yield from self._repair_entry(lmr_id, entry, dead_id)
        promotion = self.sim.now - t0
        self.promotions += 1
        self.promotion_samples.append(promotion)
        self.metrics.observe("recovery.promotion_us", promotion)
        unavailability = self.sim.now - self._last_renew.get(dead_id, t0)
        self.unavailability_samples.append(unavailability)
        self.metrics.observe("recovery.unavailability_us", unavailability)

    def _repair_entry(self, lmr_id: int, entry: dict, dead_id: int):
        # A backup copy on the dead node is lost (kept for resync).
        self.manager.mark_replica_stale(lmr_id, dead_id)
        primary_dead = (entry["master"] == dead_id
                        or any(wire[0] == dead_id for wire in entry["primary"]))
        if not primary_dead:
            # Replica set shrank but the primary is intact: push the
            # new (smaller) fan-out set to every live mapper.
            yield from self._broadcast_update(lmr_id, entry)
            return
        now = self.sim.now
        candidates = [
            backup for backup in sorted(entry["backups"])
            if backup not in self.dead and self.manager.lease_valid(backup, now)
        ]
        if not candidates:
            entry["failed"] = True
            self.failed_lmrs += 1
            self.metrics.count("recovery.lmr_failed")
            yield from self._broadcast_update(lmr_id, entry)
            return
        new_master = candidates[0]
        old_primary = entry["primary"]
        entry["primary"] = entry["backups"].pop(new_master)
        # The old primary's chunks become the dead node's resync target
        # when they all lived there (the common single-node placement);
        # multi-node placements just drop them.
        if old_primary and all(wire[0] == dead_id for wire in old_primary):
            entry["lost"][dead_id] = old_primary
        entry["master"] = new_master
        name = entry["name"]
        if name in self.manager.names:
            self.manager.names[name] = new_master
        self._rehome_record(lmr_id, entry, new_master)
        self.metrics.count("recovery.promoted_lmrs")
        yield from self._broadcast_update(lmr_id, entry)

    def _rehome_record(self, lmr_id: int, entry: dict, new_master: int) -> None:
        """Reconstruct the MasterRecord on the promoted backup.

        Built with ``__new__`` so the process-global lmr id counter is
        untouched (determinism: recovery must not perturb id streams).
        Explicit ACL grants die with the old master; the creator's full
        rights and the recorded default permission survive.
        """
        kernel = self._by_id[new_master]
        record = MasterRecord.__new__(MasterRecord)
        record.lmr_id = lmr_id
        record.name = entry["name"]
        record.size = entry["size"]
        record.chunks = [ChunkInfo.from_wire(w) for w in entry["primary"]]
        record.acl = {entry["creator"]: Permission.full()}
        record.default_perm = Permission(entry.get("dperm", 0))
        record.mapped_by = {
            lite_id for lite_id in sorted(self._by_id)
            if lite_id not in self.dead
        }
        record.freed = False
        record.replicas = {
            backup: [ChunkInfo.from_wire(w) for w in wires]
            for backup, wires in entry["backups"].items()
        }
        record.version = entry["version"]
        kernel.registry[record.name] = record
        kernel._records_by_id[lmr_id] = record

    def _broadcast_update(self, lmr_id: int, entry: dict):
        """Atomically retarget every live mapping of ``lmr_id``.

        The source kernel's own mappings flip synchronously (that is
        the atomic remap — the directory entry and the master-side view
        change in one event); remote mappers learn through concurrent
        CHUNKS_UPDATE requests.  Unreachable mappers are skipped — they
        are either dead (their mappings die with them) or will be
        repaired by a later sweep.
        """
        live = [lite_id for lite_id in sorted(self._by_id)
                if lite_id not in self.dead]
        if not live:
            return
        src_id = entry["master"] if entry["master"] in live else live[0]
        src = self._by_id[src_id]
        chunks = [ChunkInfo.from_wire(w) for w in entry["primary"]]
        replicas = {
            backup: [ChunkInfo.from_wire(w) for w in wires]
            for backup, wires in entry["backups"].items()
        }
        for mapping in src.mappings_by_lmr.get(lmr_id, []):
            # retarget() (not bare assignment) so the remap also bumps
            # plan_version and drops the plan memo: an in-flight
            # multi-chunk op's memoised plan must not survive failover
            # promotion (the old chunks point at the dead node).
            mapping.retarget(chunks)
            mapping.master_id = entry["master"]
            mapping.replica_chunks = {b: list(c)
                                      for b, c in replicas.items()}
            mapping.failed = entry["failed"]
        message = {
            "type": MsgType.CHUNKS_UPDATE,
            "lmr_id": lmr_id,
            "chunks": list(entry["primary"]),
            "master": entry["master"],
            "replicas": {backup: list(wires)
                         for backup, wires in entry["backups"].items()},
            "failed": entry["failed"],
        }
        procs = [
            self.sim.process(self._push_update(src, dst, dict(message)))
            for dst in live
            if dst != src_id
        ]
        if procs:
            yield self.sim.all_of(procs)

    def _push_update(self, src, dst: int, message: dict):
        try:
            yield from src.ctrl_request(dst, message)
        except LiteError:
            # Mapper unreachable: its mappings are repaired on a later
            # sweep (or are gone with the node).
            self.metrics.count("recovery.update_dropped")

    # ------------------------------------------------------------------
    # Rejoin + resync
    # ------------------------------------------------------------------
    def _rejoin(self, kernel):
        rejoin_id = kernel.lite_id
        try:
            for other in self.kernels:
                if other.lite_id == rejoin_id:
                    continue
                theirs = other.peers.get(rejoin_id)
                if theirs is not None:
                    theirs.alive = True
                    for qp in theirs.qps:
                        if qp.state == "ERROR":
                            qp.reset()
                mine = kernel.peers.get(other.lite_id)
                if mine is not None:
                    mine.alive = True
                    for qp in mine.qps:
                        if qp.state == "ERROR":
                            qp.reset()
            self.dead.discard(rejoin_id)
            self.rejoins += 1
            self.metrics.count("recovery.rejoins")
            # Give the re-registration a metadata tick so rejoin is an
            # observable simulated-time event, then let the sweeper
            # schedule resyncs for every copy this node lost.
            yield self.sim.timeout(kernel.params.lite_metadata_us)
        finally:
            self._rejoining.discard(rejoin_id)

    def _resync_task(self, lmr_id: int, holder: int):
        try:
            yield from self._resync(lmr_id, holder)
        finally:
            self._resync_inflight.discard((lmr_id, holder))

    def _resync(self, lmr_id: int, holder: int):
        """Copy the current primary back over a stale copy, then rejoin
        it to the replica set.  Retries while the version counter moves
        under the copy (a concurrent write would otherwise leave a torn
        mix of old and new bytes on the backup)."""
        entry = self.manager.replicas.get(lmr_id)
        if entry is None or entry["failed"]:
            return
        lost = entry["lost"].get(holder)
        if lost is None:
            return
        master_id = entry["master"]
        master = self._by_id.get(master_id)
        if master is None or master_id in self.dead:
            return
        src_map = MappedLmr(
            0, "", entry["size"],
            [ChunkInfo.from_wire(w) for w in entry["primary"]], 0,
        )
        dst_map = MappedLmr(
            0, "", entry["size"],
            [ChunkInfo.from_wire(w) for w in lost], 0,
        )
        stride = max(1, int(master.params.lite_chunk_bytes))
        try:
            for _attempt in range(4):
                version_before = entry["version"]
                offset = 0
                while offset < entry["size"]:
                    nbytes = min(stride, entry["size"] - offset)
                    data = yield from master.onesided.read(
                        src_map, offset, nbytes
                    )
                    yield from master.onesided.write(dst_map, offset, data)
                    offset += nbytes
                if entry["version"] == version_before:
                    break
            else:
                # Still racing writes after the retry budget: leave the
                # copy out of the set; a later sweep tries again.
                self.metrics.count("recovery.resync_retry_exhausted")
                return
        except LiteError:
            # Source or target became unreachable mid-copy.
            self.metrics.count("recovery.resync_failed")
            return
        entry["backups"][holder] = entry["lost"].pop(holder)
        record = master._records_by_id.get(lmr_id)
        if record is not None:
            record.replicas[holder] = list(dst_map.chunks)
        self.resyncs += 1
        self.metrics.count("recovery.resyncs")
        yield from self._broadcast_update(lmr_id, entry)

    def __repr__(self) -> str:
        return (f"RecoveryManager(ttl={self.lease_ttl_us}, "
                f"dead={sorted(self.dead)}, promotions={self.promotions}, "
                f"rejoins={self.rejoins}, resyncs={self.resyncs})")
