"""Crash-to-rejoin lifecycle: leases, promotion, resync (INTERNALS §14).

The recovery layer is strictly opt-in: nothing here runs until a
:class:`RecoveryManager` is armed, so runs without one are byte-
identical to pre-recovery builds.
"""

from .manager import RecoveryManager

__all__ = ["RecoveryManager"]
