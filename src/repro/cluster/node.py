"""A cluster node: CPUs + DRAM + RNIC + fabric port (+ lazy stacks).

Mirrors the paper's testbed machine: two Xeon E5-2620 (12 cores),
128 GB DRAM, one 40 Gbps ConnectX-3.
"""

from __future__ import annotations

from typing import Optional

from ..hw import CpuSet, Fabric, HostMemory, Rnic, SimParams
from ..sim import Simulator

__all__ = ["Node"]


class Node:
    """One simulated machine attached to the fabric."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: SimParams,
        fabric: Fabric,
        dram_bytes: int = 128 * 1024 * 1024 * 1024,
    ):
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.fabric = fabric
        self.memory = HostMemory(node_id, capacity=dram_bytes)
        self.cpu = CpuSet(sim, params, node_id=node_id)
        self.rnic = Rnic(sim, node_id, params)
        self.port = fabric.attach(node_id)
        fabric.nodes[node_id] = self
        # Set by the fault injector while the node is failed (fail-stop:
        # its link is down and peers cannot reach it).
        self.crashed = False
        # Lazily-created protocol stacks, one each per node.
        self._verbs_device = None
        self._tcp_stack = None
        self._lite = None

    @property
    def device(self):
        """The node's Verbs device (created on first use)."""
        if self._verbs_device is None:
            from ..verbs.device import Device

            self._verbs_device = Device(self)
        return self._verbs_device

    @property
    def tcp(self):
        """The node's kernel TCP/IP (IPoIB) stack."""
        if self._tcp_stack is None:
            from ..net.tcpip import TcpStack

            self._tcp_stack = TcpStack(self)
        return self._tcp_stack

    @property
    def lite(self):
        """The node's LITE kernel instance, or None before LT_join."""
        return self._lite

    def install_lite(self, lite) -> None:
        """Attach the node's LITE kernel instance (once)."""
        if self._lite is not None:
            raise RuntimeError(f"node {self.node_id} already runs LITE")
        self._lite = lite

    def fastpath_fence(self) -> None:
        """Kill primed run-to-completion state touching this node.

        Called when the node crashes, rejoins, or loses its lease: the
        RNIC's ``cost_version`` bump invalidates every cost table whose
        stamp folds this RNIC in, and the eager ``_fp_table`` drops
        cover tables primed on this node's QPs and on any peer QP
        pointed at it — ``try_fast_post`` can then never commit an op
        against a dead or remapped peer.  Skips nodes whose verbs
        device was never created (nothing was ever primed).
        """
        self.rnic.fence()
        if self._verbs_device is not None:
            for qp in self._verbs_device.qps.values():
                qp._fp_table = None
        for other in self.fabric.nodes.values():
            if other is self or other._verbs_device is None:
                continue
            for qp in other._verbs_device.qps.values():
                if qp.remote is not None and qp.remote[0] == self.node_id:
                    qp._fp_table = None
        # Drop every memoised multi-chunk plan cluster-wide: the table
        # stamps above already make stale plans unusable (each use
        # revalidates its CostTables), but an explicit clear keeps a
        # fence from leaving tombstone entries behind and makes the
        # failover contract direct — after a fence, no plan memo primed
        # before it can ever commit.
        for other in self.fabric.nodes.values():
            lite = other.lite
            if lite is None:
                continue
            for mappings in lite.mappings_by_lmr.values():
                for mapping in mappings:
                    mapping._fp_plans.clear()

    def __repr__(self) -> str:
        return f"Node({self.node_id})"
