"""Cluster construction: N nodes on one switch, plus the manager node.

The LITE cluster manager (§3.3) maintains membership; all of its state
can be reconstructed on restart, so it is modelled as plain metadata.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..hw import DEFAULT_PARAMS, Fabric, SimParams
from ..sim import Simulator
from .node import Node

__all__ = ["Cluster", "ClusterManager"]


class ClusterManager:
    """Membership service for a LITE cluster (one logical instance)."""

    def __init__(self):
        self.members: Dict[int, Node] = {}
        self._next_lite_id = 1
        # Global LMR name directory: name -> master's LITE id.  All of
        # this state is reconstructible metadata (§3.3).
        self.names: Dict[str, int] = {}
        # Replicated-LMR directory: lmr_id -> entry describing the
        # primary chunk placement, the live backup copies, copies lost
        # to crashes (kept so a rejoining node can resync in place), a
        # write-ordering version counter, and the failed flag set when
        # the last replica dies.  Chunk lists are stored in wire form
        # (``ChunkInfo.to_wire``) so the whole entry is JSON-clean and
        # round-trips through :meth:`snapshot`/:meth:`restore`.
        self.replicas: Dict[int, dict] = {}
        # Lease table: LITE id -> absolute expiry in simulated us.
        # Populated only when a RecoveryManager is armed; empty tables
        # snapshot/restore as empty dicts, so unarmed runs are
        # byte-identical to pre-recovery builds.
        self.leases: Dict[int, float] = {}
        # QP-lease table (cluster/qp_pool.py): session id -> wire-form
        # lease entry {holder, peer, conn, expires}.  Authoritative for
        # pooled-connection leases so a manager restart mid-churn
        # resumes with every session's expiry intact.  JSON-clean like
        # the tables above; empty when no pool is in use.
        self.qp_leases: Dict[int, dict] = {}

    def join(self, node: Node) -> int:
        """Register a node; returns its LITE node id (stable, 1-based)."""
        for lite_id, member in self.members.items():
            if member is node:
                return lite_id
        lite_id = self._next_lite_id
        self._next_lite_id += 1
        self.members[lite_id] = node
        return lite_id

    def leave(self, lite_id: int) -> None:
        """Remove a member (idempotent)."""
        self.members.pop(lite_id, None)

    def lookup(self, lite_id: int) -> Node:
        """The Node behind a LITE id (KeyError if unknown)."""
        if lite_id not in self.members:
            raise KeyError(f"no cluster member with LITE id {lite_id}")
        return self.members[lite_id]

    # -- LMR name directory -------------------------------------------
    def register_name(self, name: str, master_lite_id: int) -> None:
        """Record which LITE instance masters LMR ``name``."""
        if name in self.names:
            raise KeyError(f"LMR name {name!r} is already registered")
        self.names[name] = master_lite_id

    def lookup_name(self, name: str) -> int:
        """The master LITE id for LMR ``name`` (KeyError if unknown)."""
        if name not in self.names:
            raise KeyError(f"no LMR named {name!r}")
        return self.names[name]

    def drop_name(self, name: str) -> None:
        """Remove a name from the directory (idempotent)."""
        self.names.pop(name, None)

    # -- replicated-LMR directory --------------------------------------
    def register_replicated(self, lmr_id: int, name, size: int, master: int,
                            primary: list, backups: Dict[int, list],
                            creator: str, default_perm: int = 0) -> None:
        """Record a ``replicas=k`` LMR's placement (chunks in wire form)."""
        self.replicas[lmr_id] = {
            "name": name,
            "size": size,
            "master": master,
            "primary": primary,
            "backups": backups,
            "lost": {},
            "version": 0,
            "failed": False,
            "creator": creator,
            "dperm": default_perm,
        }

    def bump_version(self, lmr_id: int) -> None:
        """Advance the write-ordering counter after an acked write."""
        entry = self.replicas.get(lmr_id)
        if entry is not None:
            entry["version"] += 1

    def mark_replica_stale(self, lmr_id: int, backup_id: int) -> None:
        """Demote a backup whose fan-out write failed: it can no longer
        be promoted, but its chunks are kept under ``lost`` so a
        rejoining node can resync in place."""
        entry = self.replicas.get(lmr_id)
        if entry is None:
            return
        chunks = entry["backups"].pop(backup_id, None)
        if chunks is not None:
            entry["lost"][backup_id] = chunks

    def drop_replicated(self, lmr_id: int) -> None:
        """Forget a replicated LMR (idempotent; used by lt_free)."""
        self.replicas.pop(lmr_id, None)

    # -- lease table ----------------------------------------------------
    def grant_lease(self, lite_id: int, expires_at_us: float) -> None:
        """Grant or renew a membership lease (absolute expiry)."""
        self.leases[lite_id] = expires_at_us

    def lease_valid(self, lite_id: int, now_us: float) -> bool:
        """True when ``lite_id`` holds an unexpired lease."""
        return self.leases.get(lite_id, float("-inf")) > now_us

    # -- failure restart (§3.3: "all the states it maintains can be
    # easily reconstructed upon failure restart") -----------------------
    def snapshot(self) -> dict:
        """Serializable manager state (membership, names, replicas, leases)."""
        return {
            "members": {lite_id: node.node_id
                        for lite_id, node in self.members.items()},
            "next_id": self._next_lite_id,
            "names": dict(self.names),
            "replicas": {
                lmr_id: {
                    "name": entry["name"],
                    "size": entry["size"],
                    "master": entry["master"],
                    "primary": [list(c) for c in entry["primary"]],
                    "backups": {b: [list(c) for c in chunks]
                                for b, chunks in entry["backups"].items()},
                    "lost": {b: [list(c) for c in chunks]
                             for b, chunks in entry["lost"].items()},
                    "version": entry["version"],
                    "failed": entry["failed"],
                    "creator": entry["creator"],
                    "dperm": entry.get("dperm", 0),
                }
                for lmr_id, entry in self.replicas.items()
            },
            "leases": dict(self.leases),
            "qp_leases": {sid: dict(entry)
                          for sid, entry in self.qp_leases.items()},
        }

    @classmethod
    def restore(cls, snapshot: dict, nodes) -> "ClusterManager":
        """Rebuild a manager after a restart from its snapshot.

        ``nodes`` maps the surviving Node objects by node_id; LITE ids
        and the LMR name directory come back exactly as they were, so
        in-flight lhs and name lookups keep resolving.
        """
        manager = cls()
        by_node_id = {node.node_id: node for node in nodes}
        for lite_id, node_id in snapshot["members"].items():
            manager.members[int(lite_id)] = by_node_id[node_id]
        manager._next_lite_id = snapshot["next_id"]
        manager.names = dict(snapshot["names"])
        # Replica/lease state survives a manager restart too.  A JSON
        # round trip stringifies the int dict keys, so coerce them back.
        for lmr_id, entry in snapshot.get("replicas", {}).items():
            manager.replicas[int(lmr_id)] = {
                "name": entry["name"],
                "size": entry["size"],
                "master": entry["master"],
                "primary": [list(c) for c in entry["primary"]],
                "backups": {int(b): [list(c) for c in chunks]
                            for b, chunks in entry["backups"].items()},
                "lost": {int(b): [list(c) for c in chunks]
                         for b, chunks in entry["lost"].items()},
                "version": entry["version"],
                "failed": entry["failed"],
                "creator": entry["creator"],
                "dperm": entry.get("dperm", 0),
            }
        for lite_id, expiry in snapshot.get("leases", {}).items():
            manager.leases[int(lite_id)] = expiry
        for sid, entry in snapshot.get("qp_leases", {}).items():
            manager.qp_leases[int(sid)] = {
                "holder": int(entry["holder"]),
                "peer": int(entry["peer"]),
                "conn": int(entry["conn"]),
                "expires": entry["expires"],
            }
        return manager

    def __len__(self) -> int:
        return len(self.members)


class Cluster:
    """A simulated testbed: simulator + fabric + ``n`` identical nodes."""

    def __init__(
        self,
        n_nodes: int,
        params: Optional[SimParams] = None,
        sim: Optional[Simulator] = None,
    ):
        if n_nodes < 1:
            raise ValueError(f"cluster needs at least one node, got {n_nodes}")
        self.params = params if params is not None else DEFAULT_PARAMS
        self.sim = sim if sim is not None else Simulator()
        self.fabric = Fabric(self.sim, self.params)
        self.nodes: List[Node] = [
            Node(self.sim, node_id, self.params, self.fabric)
            for node_id in range(n_nodes)
        ]
        self.manager = ClusterManager()

    def __getitem__(self, index: int) -> Node:
        return self.nodes[index]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def run(self, until=None, stop=None):
        """Drive the simulator (see :meth:`Simulator.run`)."""
        return self.sim.run(until=until, stop=stop)

    def run_process(self, generator, until=None):
        """Spawn ``generator`` and run the simulator to its completion."""
        return self.sim.run_process(generator, until=until)
