"""QP pooling & leasing: the microsecond control plane (INTERNALS §15).

LITE's shared-QP mesh makes the *data* plane cheap, but until now every
workload got its connections for free: ``LiteKernel.connect()`` charged
one fabric round trip per QP pair and nothing else, and no scenario
ever set a connection up mid-run.  Elastic workloads (serverless
bursts, autoscale-up) churn through short-lived clients whose *first*
op is dominated by control-plane work: ibv_create_qp plus the
RESET->INIT->RTR->RTS ladder on both endpoints, the librdmacm
handshake, and MR registration (paper §2.4 and Fig 8; KRCORE measures
the same path at millisecond scale on stock verbs).

:class:`QPPool` amortizes that path LITE-style.  Each (kernel, peer)
pair owns a pool of pre-built reserved RC connections, leased to
logical client sessions (:class:`repro.core.api.ClientSession`) and
returned to the pool on detach:

* **Acquire** — a pool *hit* pops the oldest usable reserved conn for
  a metadata-only grant; a *miss* pays the full cold bring-up (QP
  create + state ladder on both ends + CM handshake via
  ``net/rdma_cm.cm_handshake``) in the acquiring client's timeline.
  Either way the conn's fast-path cost table is (re)primed so the
  session's first op finds it hot — the leased-then-reassigned case
  ``verbs.fastpath.prime_qp`` documents.
* **Leases** — grant/renew/expire reuse the ``repro.recovery``
  cadence.  The authoritative lease table is the cluster manager's
  ``qp_leases`` dict (JSON-clean, snapshot/restore-able like every
  other manager table, read through ``kernel.manager`` so a manager
  restart mid-churn is transparent).  An armed sweeper reaps expired
  sessions on a fixed simulated-time interval; every expiry returns
  exactly one conn — a client detaching *after* the sweeper got there
  is a remembered no-op (``LruDict`` expiry memo), never a double
  park.
* **Fencing** — a crashed or lease-expired peer fences every pooled
  conn: ``RecoveryManager._failover`` already bumps the RNIC
  ``cost_version`` and drops primed tables via ``Node.fastpath_fence``
  (the ``RNIC.fence()`` row of the fencing matrix); it additionally
  calls :meth:`fence_peer` here so acquire discards the conns and
  release destroys them instead of ever handing them out again.

Determinism: the free list is FIFO, conn ids come from a per-pool
counter, the sweeper reaps in sorted session order, and nothing here
consults wall clock or global RNG — two runs with the same seed are
bit-identical, with or without the fast path (priming is host-side
only and happens identically in both modes).
"""

from __future__ import annotations

from typing import Dict, List

from ..hw.caches import LruDict
from ..net.rdma_cm import cm_handshake
from ..verbs.fastpath import prime_qp

__all__ = ["PooledConn", "QPPool"]

# Reaped-session ids remembered for duplicate-release suppression (a
# client detaching after the sweeper expired its lease must be a no-op,
# not a second park of the same conn).
_EXPIRED_MEMO = 256

# Per-peer scratch window sessions write into on the remote node
# (covered by the peer's global physical MR, LITE-style: no per-client
# remote registration).
_SCRATCH_BYTES = 64 * 1024


class PooledConn:
    """One reserved RC connection owned by a :class:`QPPool`."""

    __slots__ = ("conn_id", "qp", "peer_qp", "fenced", "leases")

    def __init__(self, conn_id: int, qp, peer_qp):
        self.conn_id = conn_id
        self.qp = qp              # local end: the leasing side posts here
        self.peer_qp = peer_qp    # remote end
        self.fenced = False       # peer crashed / was declared dead
        self.leases = 0           # sessions that have held this conn

    def usable(self) -> bool:
        """True while the conn may be handed to a session."""
        return (not self.fenced and self.qp.state == "RTS"
                and self.peer_qp.state == "RTS")

    def __repr__(self) -> str:
        return (f"PooledConn({self.conn_id}, qp={self.qp.qpn}, "
                f"peer_qp={self.peer_qp.qpn}, fenced={self.fenced})")


class QPPool:
    """Pre-built reserved RC connections toward one peer, leased out.

    Created lazily by ``LiteKernel.qp_pool(peer_lite_id)``; pre-built at
    ``connect()`` time when ``SimParams.lite_qp_pool_reserve > 0`` (the
    default 0 keeps the seed's connect timing byte-identical).
    """

    def __init__(self, kernel, peer_kernel, reserve=None, cap=None,
                 lease_ttl_us=None, sweep_interval_us=None):
        params = kernel.params
        self.kernel = kernel
        self.peer_kernel = peer_kernel
        self.sim = kernel.sim
        self.params = params
        self.reserve = (params.lite_qp_pool_reserve
                        if reserve is None else reserve)
        self.cap = (max(params.lite_qp_pool_cap, self.reserve)
                    if cap is None else cap)
        if sweep_interval_us is None:
            # Reuse the recovery cadence (lazy import: repro.recovery
            # pulls in repro.core, which this module must not at import
            # time).
            from ..recovery.manager import DEFAULT_SWEEP_INTERVAL_US
            sweep_interval_us = DEFAULT_SWEEP_INTERVAL_US
        self.lease_ttl_us = (params.lite_qp_lease_ttl_us
                             if lease_ttl_us is None else lease_ttl_us)
        self.sweep_interval_us = sweep_interval_us
        # Remote scratch window for session ops (global-MR covered).
        self.scratch = peer_kernel.node.memory.alloc(_SCRATCH_BYTES)
        self.peer_rkey = peer_kernel.global_mr.rkey
        self._free: List[PooledConn] = []          # FIFO reserve
        self._leased: Dict[int, PooledConn] = {}   # session id -> conn
        self._conn_counter = 0
        self._expired = LruDict(_EXPIRED_MEMO, name="qp-lease-expired")
        self._armed = False
        self._stopped = False
        # Stats (plain counters; asserted on by the churn test battery).
        self.hits = 0
        self.misses = 0
        self.expiries = 0
        self.fenced_discards = 0
        self.destroyed = 0
        self.built = 0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def manager(self):
        """The cluster manager holding the lease table.

        Read through the kernel on every use: a manager restart swaps
        ``kernel.manager`` for a restored replica and the pool must
        follow it mid-churn.
        """
        return self.kernel.manager

    @property
    def parked(self) -> int:
        """Reserved conns currently parked in the pool."""
        return len(self._free)

    @property
    def leased(self) -> int:
        """Conns currently out on lease."""
        return len(self._leased)

    # ------------------------------------------------------------------
    # Sweeper lifecycle (the repro.recovery cadence pattern)
    # ------------------------------------------------------------------
    def arm(self) -> "QPPool":
        """Start the lease-expiry sweeper (idempotent)."""
        if self._armed:
            return self
        self._armed = True
        self._stopped = False
        self.sim.process(
            self._sweep_loop(),
            name=(f"qp-pool-sweep-{self.kernel.lite_id}"
                  f"-{self.peer_kernel.lite_id}"),
        )
        return self

    def stop(self) -> None:
        """Stop sweeping (the loop exits at its next tick)."""
        self._stopped = True

    def _sweep_loop(self):
        while True:
            yield self.sim.timeout(self.sweep_interval_us)
            if self._stopped:
                self._armed = False
                return
            self.sweep()

    def sweep(self) -> int:
        """Reap every expired lease; each expiry returns exactly one conn."""
        now = self.sim.now
        leases = self.manager.qp_leases
        reaped = 0
        for sid in sorted(self._leased):
            entry = leases.get(sid)
            if entry is not None and entry["expires"] > now:
                continue
            conn = self._leased.pop(sid)
            leases.pop(sid, None)
            self._expired.put(sid, now)
            self.expiries += 1
            self._park(conn)
            reaped += 1
        return reaped

    # ------------------------------------------------------------------
    # Bring-up
    # ------------------------------------------------------------------
    def prebuild(self, n=None):
        """Build up to ``n`` (default: the reserve) conns; generator.

        Called from ``LiteKernel.connect()`` so the reserve's bring-up
        cost lands where it belongs: at connection-setup time, not on
        the first unlucky client.
        """
        count = self.reserve if n is None else n
        for _ in range(count):
            if len(self._free) >= self.cap:
                break
            conn = yield from self._build_conn()
            self._free.append(conn)

    def _build_conn(self):
        """The cold path: full two-endpoint bring-up (generator)."""
        kernel = self.kernel
        peer = self.peer_kernel
        qp = kernel.device.create_qp(
            kernel.pd, "RC", send_cq=None, recv_cq=None
        )
        peer_qp = peer.device.create_qp(
            peer.pd, "RC", send_cq=None, recv_cq=None
        )
        # Both endpoints' create+transition ladders are driven (and
        # paid) by the initiating side, like librdmacm's blocking
        # connect; then the CM handshake's three round trips.
        yield from qp.bringup()
        yield from peer_qp.bringup()
        yield from cm_handshake(kernel.node, peer.node)
        kernel.device.connect(qp, peer_qp)
        self._conn_counter += 1
        self.built += 1
        return PooledConn(self._conn_counter, qp, peer_qp)

    # ------------------------------------------------------------------
    # Lease operations
    # ------------------------------------------------------------------
    def acquire(self, session_id: int, ttl_us=None):
        """Lease a conn to ``session_id``; returns ``(conn, source)``.

        ``source`` is ``"hit"`` (reserved conn, metadata-only grant) or
        ``"cold"`` (full bring-up paid here).  Fenced or errored conns
        found at the head of the free list are discarded, never handed
        out.  The conn's cost table is (re)primed on every grant.
        """
        if session_id in self._leased:
            raise ValueError(
                f"session {session_id} already holds a QP lease"
            )
        # Lease-grant bookkeeping against the manager table.
        grant_cost = self.params.lite_metadata_us
        yield self.sim.timeout(grant_cost)
        self.kernel.node.cpu.charge("qp-pool", grant_cost)
        conn = None
        while self._free:
            cand = self._free.pop(0)
            if not cand.usable():
                self._destroy(cand, fenced=True)
                continue
            conn = cand
            break
        if conn is not None:
            source = "hit"
            self.hits += 1
        else:
            source = "cold"
            self.misses += 1
            conn = yield from self._build_conn()
        self._grant(session_id, conn, ttl_us)
        prime_qp(conn.qp)
        return conn, source

    def _grant(self, session_id: int, conn: PooledConn, ttl_us=None) -> None:
        ttl = self.lease_ttl_us if ttl_us is None else ttl_us
        self._leased[session_id] = conn
        conn.leases += 1
        # Re-attach under a previously reaped id: clear the stale expiry
        # marker so this grant's eventual release isn't eaten by it.
        self._expired.invalidate_many((session_id,))
        self.manager.qp_leases[session_id] = {
            "holder": self.kernel.lite_id,
            "peer": self.peer_kernel.lite_id,
            "conn": conn.conn_id,
            "expires": self.sim.now + ttl,
        }

    def renew(self, session_id: int) -> bool:
        """Extend a live lease (zero-cost: piggybacks on the op's post)."""
        if session_id not in self._leased:
            return False
        entry = self.manager.qp_leases.get(session_id)
        if entry is None:
            return False
        entry["expires"] = self.sim.now + self.lease_ttl_us
        return True

    def release(self, session_id: int) -> bool:
        """Return a leased conn to the pool.

        False when the lease already expired — the sweeper parked the
        conn then, so this release is a recorded no-op (exactly one
        park per lease, ever).
        """
        conn = self._leased.pop(session_id, None)
        if conn is None:
            return False
        self.manager.qp_leases.pop(session_id, None)
        self._park(conn)
        return True

    def _park(self, conn: PooledConn) -> None:
        if not conn.usable() or len(self._free) >= self.cap:
            self._destroy(conn, fenced=not conn.usable())
            return
        self._free.append(conn)

    def _destroy(self, conn: PooledConn, fenced: bool = False) -> None:
        if fenced:
            self.fenced_discards += 1
        self.destroyed += 1
        self.kernel.device.destroy_qp(conn.qp)
        self.peer_kernel.device.destroy_qp(conn.peer_qp)

    # ------------------------------------------------------------------
    # Fencing (the pooled-QP row of the fencing matrix)
    # ------------------------------------------------------------------
    def fence_peer(self) -> int:
        """Fence every conn: the peer crashed or its lease expired.

        RNIC-level fencing (``cost_version`` bump + primed-table drop)
        is the caller's job via ``Node.fastpath_fence``; the pool marks
        its conns so acquire discards them and release destroys them.
        Returns how many conns were newly fenced.
        """
        count = 0
        for conn in self._free:
            if not conn.fenced:
                conn.fenced = True
                count += 1
        for sid in sorted(self._leased):
            conn = self._leased[sid]
            if not conn.fenced:
                conn.fenced = True
                count += 1
        return count

    def __repr__(self) -> str:
        return (f"QPPool({self.kernel.lite_id}->{self.peer_kernel.lite_id}, "
                f"parked={self.parked}/{self.cap}, leased={self.leased}, "
                f"hits={self.hits}, misses={self.misses}, "
                f"expiries={self.expiries})")
