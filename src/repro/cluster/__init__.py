"""Cluster composition: nodes, fabric wiring, membership, QP pooling."""

from .cluster import Cluster, ClusterManager
from .node import Node
from .qp_pool import PooledConn, QPPool

__all__ = ["Cluster", "ClusterManager", "Node", "PooledConn", "QPPool"]
