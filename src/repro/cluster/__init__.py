"""Cluster composition: nodes, fabric wiring, membership."""

from .cluster import Cluster, ClusterManager
from .node import Node

__all__ = ["Cluster", "ClusterManager", "Node"]
