"""Phoenix: single-node multi-threaded MapReduce (Ranger et al., HPCA '07).

The paper ports LITE-MR from this system.  All threads run on one node
and communicate through shared memory; the distinguishing cost is the
single *global tree-structured index* that map threads update under
contention (the LITE paper's §8.2 analysis of why distributed LITE-MR
can beat it in the map/reduce phases).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence

from ...sim import Store
from .common import (
    MrCosts,
    encode_counts,
    merge_counts,
    partition_counts,
    split_tasks,
    wordcount_map,
)

__all__ = ["PhoenixMR"]


class PhoenixMR:
    """Single-node WordCount with map / reduce / merge phases."""

    def __init__(self, node, n_threads: int = 8, n_partitions: int = 8,
                 costs: MrCosts = None):
        self.node = node
        self.sim = node.sim
        self.n_threads = n_threads
        self.n_partitions = n_partitions
        self.costs = costs if costs is not None else MrCosts()
        self.phase_times: Dict[str, float] = {}
        self.result: Counter = Counter()

    def run(self, documents: Sequence[bytes]):
        """Execute the full job (generator; returns final Counter)."""
        sim, cpu, costs = self.sim, self.node.cpu, self.costs

        # ---- map phase -----------------------------------------------
        start = sim.now
        tasks = Store(sim)
        for span in split_tasks(len(documents), self.n_threads * 4):
            tasks.put(span)
        partitions: List[List[Counter]] = [[] for _ in range(self.n_partitions)]

        def map_thread():
            while len(tasks) > 0:
                lo, hi = yield tasks.get()
                local = Counter()
                nbytes = 0
                for doc in documents[lo:hi]:
                    local.update(wordcount_map(doc))
                    nbytes += len(doc)
                # Tokenizing + global-tree-index inserts: the shared
                # index is on the path of every token (§8.2).
                yield from cpu.execute(
                    nbytes * costs.map_us_per_byte * costs.phoenix_index_factor,
                    tag="phoenix-map",
                )
                yield from cpu.execute(
                    len(local) * costs.combine_us_per_pair
                    * costs.phoenix_index_factor,
                    tag="phoenix-map",
                )
                for index, part in enumerate(
                    partition_counts(local, self.n_partitions)
                ):
                    partitions[index].append(part)

        mappers = [self.sim.process(map_thread()) for _ in range(self.n_threads)]
        yield sim.all_of(mappers)
        self.phase_times["map"] = sim.now - start

        # ---- reduce phase ---------------------------------------------
        start = sim.now
        reduced: List[Counter] = [None] * self.n_partitions
        part_queue = Store(sim)
        for index in range(self.n_partitions):
            part_queue.put(index)

        def reduce_thread():
            while len(part_queue) > 0:
                index = yield part_queue.get()
                merged = merge_counts(partitions[index])
                yield from cpu.execute(
                    len(merged) * costs.reduce_us_per_pair, tag="phoenix-reduce"
                )
                reduced[index] = merged

        reducers = [self.sim.process(reduce_thread()) for _ in range(self.n_threads)]
        yield sim.all_of(reducers)
        self.phase_times["reduce"] = sim.now - start

        # ---- merge phase (rounds of 2-way merges over sorted runs) ----
        start = sim.now
        runs = [counts for counts in reduced if counts]
        while len(runs) > 1:
            next_runs = []
            merge_jobs = Store(sim)
            for index in range(0, len(runs) - 1, 2):
                merge_jobs.put((runs[index], runs[index + 1]))
            if len(runs) % 2:
                next_runs.append(runs[-1])

            def merge_thread():
                while len(merge_jobs) > 0:
                    left, right = yield merge_jobs.get()
                    merged = merge_counts([left, right])
                    yield from cpu.execute(
                        (len(left) + len(right)) * costs.merge_us_per_pair,
                        tag="phoenix-merge",
                    )
                    next_runs.append(merged)

            workers = [
                self.sim.process(merge_thread())
                for _ in range(min(self.n_threads, max(1, len(runs) // 2)))
            ]
            yield sim.all_of(workers)
            runs = next_runs
        self.phase_times["merge"] = sim.now - start

        self.result = runs[0] if runs else Counter()
        self.phase_times["total"] = sum(
            self.phase_times[p] for p in ("map", "reduce", "merge")
        )
        return self.result
