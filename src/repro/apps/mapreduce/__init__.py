"""MapReduce: Phoenix (single node), LITE-MR, and Hadoop-over-IPoIB."""

from .common import MrCosts, decode_counts, encode_counts, merge_counts
from .hadoopsim import HadoopMR
from .lite_mr import LiteMR
from .phoenix import PhoenixMR

__all__ = [
    "MrCosts",
    "PhoenixMR",
    "LiteMR",
    "HadoopMR",
    "encode_counts",
    "decode_counts",
    "merge_counts",
]
