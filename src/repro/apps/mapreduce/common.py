"""Shared MapReduce machinery: WordCount kernels, costs, serialization.

All three systems (Phoenix, LITE-MR, Hadoop-sim) run the *same* real
computation — Python Counters over the same corpus — and the same
per-byte/per-pair compute-cost model, so their run-time differences come
only from where threads run and which network stack moves the data.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["MrCosts", "wordcount_map", "partition_counts",
           "encode_counts", "decode_counts", "merge_counts",
           "split_tasks"]


@dataclass
class MrCosts:
    """Compute-cost model (µs), identical across systems."""

    map_us_per_byte: float = 0.012        # tokenize + hash: ~80 MB/s/core
    combine_us_per_pair: float = 0.05
    reduce_us_per_pair: float = 0.08
    merge_us_per_pair: float = 0.04
    serialize_us_per_byte: float = 0.002  # counter <-> bytes
    # Phoenix's single shared tree-structured index is touched on every
    # token insert, contended across threads (§8.2): the whole map-side
    # path (tokenize + insert + combine) pays this factor.
    phoenix_index_factor: float = 1.45
    # Hadoop framework: per-task scheduling/JVM overhead + spill-to-disk.
    hadoop_task_overhead_us: float = 1800.0
    hadoop_spill_us_per_byte: float = 0.010   # ~100 MB/s effective disk


def wordcount_map(document: bytes) -> Counter:
    """The real map function: tokenize and count."""
    return Counter(document.split())


def partition_counts(counts: Counter, n_partitions: int) -> List[Counter]:
    """Split a counter into reduce partitions by word hash."""
    parts = [Counter() for _ in range(n_partitions)]
    for word, count in counts.items():
        parts[hash(word) % n_partitions][word] = count
    return parts


def encode_counts(counts: Counter) -> bytes:
    """Serialize word counts (word<TAB>count per line)."""
    lines = [b"%s\t%d" % (word, count) for word, count in sorted(counts.items())]
    return b"\n".join(lines)


def decode_counts(blob: bytes) -> Counter:
    """Inverse of :func:`encode_counts`."""
    counts: Counter = Counter()
    if not blob:
        return counts
    for line in blob.split(b"\n"):
        word, _tab, count = line.rpartition(b"\t")
        counts[word] = int(count)
    return counts


def merge_counts(parts: Sequence[Counter]) -> Counter:
    """Sum a sequence of word-count counters."""
    total: Counter = Counter()
    for part in parts:
        total.update(part)
    return total


def split_tasks(n_items: int, n_tasks: int) -> List[Tuple[int, int]]:
    """Split [0, n_items) into up to n_tasks contiguous (start, end) spans."""
    if n_items <= 0:
        return []
    n_tasks = min(n_tasks, n_items)
    base, extra = divmod(n_items, n_tasks)
    spans = []
    start = 0
    for index in range(n_tasks):
        size = base + (1 if index < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans
