"""Hadoop-over-IPoIB baseline for Figure 18.

Same WordCount computation, but with Hadoop's structure and costs:
per-task framework overhead (scheduling, JVM reuse), intermediate
results spilled to and re-read from disk, and the shuffle moving every
intermediate byte over kernel TCP on IPoIB — the configuration the
paper benchmarks against ("We run Hadoop on IPoIB, which performs much
worse than LITE's RDMA stack").
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Dict, List, Sequence

from ...sim import Store
from .common import (
    MrCosts,
    decode_counts,
    encode_counts,
    merge_counts,
    partition_counts,
    split_tasks,
    wordcount_map,
)

__all__ = ["HadoopMR"]

_port_counter = itertools.count(start=20000)


class HadoopMR:
    """WordCount with Hadoop-style phases over the TCP substrate."""

    def __init__(self, nodes, total_threads: int = 8, n_partitions: int = 8,
                 costs: MrCosts = None):
        if len(nodes) < 2:
            raise ValueError("need a master plus at least one worker node")
        self.master_node = nodes[0]
        self.worker_nodes = list(nodes[1:])
        self.sim = self.master_node.sim
        self.total_threads = total_threads
        self.n_partitions = n_partitions
        self.costs = costs if costs is not None else MrCosts()
        self.phase_times: Dict[str, float] = {}
        self.result: Counter = Counter()

    def _spill(self, node, nbytes: int, tag: str):
        """Write-then-read intermediate data through the disk model."""
        cost = 2 * nbytes * self.costs.hadoop_spill_us_per_byte
        yield from node.cpu.execute(cost, tag=tag)

    def run(self, documents: Sequence[bytes]):
        """Execute the job (generator; returns the final Counter)."""
        sim, costs = self.sim, self.costs
        n_workers = len(self.worker_nodes)
        threads_each = max(1, self.total_threads // n_workers)
        shards: List[List[bytes]] = [[] for _ in range(n_workers)]
        for index, document in enumerate(documents):
            shards[index % n_workers].append(document)

        # ---- map phase (+ combine + spill) ------------------------------
        start = sim.now
        map_outputs: List[List[bytes]] = [
            [b""] * self.n_partitions for _ in range(n_workers)
        ]

        def map_worker(worker_index: int):
            node = self.worker_nodes[worker_index]
            docs = shards[worker_index]
            tasks = Store(sim)
            for span in split_tasks(len(docs), threads_each * 4):
                tasks.put(span)
            finalized = [Counter() for _ in range(self.n_partitions)]

            def map_thread():
                while len(tasks) > 0:
                    lo, hi = yield tasks.get()
                    yield from node.cpu.execute(
                        costs.hadoop_task_overhead_us, tag="hadoop-framework"
                    )
                    local = Counter()
                    nbytes = 0
                    for doc in docs[lo:hi]:
                        local.update(wordcount_map(doc))
                        nbytes += len(doc)
                    yield from node.cpu.execute(
                        nbytes * costs.map_us_per_byte, tag="hadoop-map"
                    )
                    yield from node.cpu.execute(
                        len(local) * costs.combine_us_per_pair, tag="hadoop-map"
                    )
                    for part_index, part in enumerate(
                        partition_counts(local, self.n_partitions)
                    ):
                        finalized[part_index].update(part)

            threads = [sim.process(map_thread()) for _ in range(threads_each)]
            yield sim.all_of(threads)
            for part_index, counts in enumerate(finalized):
                blob = encode_counts(counts)
                yield from node.cpu.execute(
                    len(blob) * costs.serialize_us_per_byte, tag="hadoop-ser"
                )
                yield from self._spill(node, len(blob), "hadoop-spill")
                map_outputs[worker_index][part_index] = blob

        procs = [sim.process(map_worker(index)) for index in range(n_workers)]
        yield sim.all_of(procs)
        self.phase_times["map"] = sim.now - start

        # ---- shuffle + reduce over TCP ---------------------------------
        start = sim.now
        reduced: List[bytes] = [b""] * self.n_partitions

        def reduce_worker(part_index: int):
            node = self.worker_nodes[part_index % n_workers]
            port = next(_port_counter)
            listener = node.tcp.listen(port)
            received: List[bytes] = []

            def fetch_server():
                for _ in range(n_workers):
                    conn = yield from listener.accept()
                    blob = yield from conn.recv_msg()
                    received.append(blob)

            server_proc = sim.process(fetch_server())

            def pusher(src_index: int):
                src_node = self.worker_nodes[src_index]
                blob = map_outputs[src_index][part_index]
                yield from self._spill(src_node, len(blob), "hadoop-spill")
                conn = yield from src_node.tcp.connect(node.node_id, port)
                yield from conn.send_msg(blob)

            pushers = [sim.process(pusher(index)) for index in range(n_workers)]
            yield sim.all_of(pushers)
            yield server_proc
            yield from node.cpu.execute(
                costs.hadoop_task_overhead_us, tag="hadoop-framework"
            )
            parts = [decode_counts(blob) for blob in received]
            merged = merge_counts(parts)
            yield from node.cpu.execute(
                len(merged) * costs.reduce_us_per_pair, tag="hadoop-reduce"
            )
            blob = encode_counts(merged)
            yield from self._spill(node, len(blob), "hadoop-spill")
            reduced[part_index] = blob

        procs = [
            sim.process(reduce_worker(index)) for index in range(self.n_partitions)
        ]
        yield sim.all_of(procs)
        self.phase_times["reduce"] = sim.now - start

        # ---- final merge at the master over TCP --------------------------
        start = sim.now
        collected: List[Counter] = []
        port = next(_port_counter)
        listener = self.master_node.tcp.listen(port)

        def collector():
            for _ in range(self.n_partitions):
                conn = yield from listener.accept()
                blob = yield from conn.recv_msg()
                collected.append(decode_counts(blob))

        collector_proc = sim.process(collector())

        def sender(part_index: int):
            node = self.worker_nodes[part_index % n_workers]
            conn = yield from node.tcp.connect(self.master_node.node_id, port)
            yield from conn.send_msg(reduced[part_index])

        senders = [sim.process(sender(index)) for index in range(self.n_partitions)]
        yield sim.all_of(senders)
        yield collector_proc
        total_pairs = sum(len(part) for part in collected)
        yield from self.master_node.cpu.execute(
            total_pairs * costs.merge_us_per_pair, tag="hadoop-merge"
        )
        self.result = merge_counts(collected)
        self.phase_times["merge"] = sim.now - start
        self.phase_times["total"] = sum(
            self.phase_times[phase] for phase in ("map", "reduce", "merge")
        )
        return self.result
