"""LITE-MR: distributed MapReduce on LITE (paper §8.2).

Ported from Phoenix: mapper/reducer threads are spread over worker
nodes, a master node enforces the Phoenix job-splitting policy, and all
network communication is LT_read + LT_RPC:

- map outputs become named LMRs, one per finalized buffer, and only
  their *identifiers* travel through the master;
- reducers (and mergers) pull the actual bytes straight from the
  mapper nodes with one-sided LT_read — no data ever routes through
  the master;
- each worker keeps a per-node index (the split-index change from
  Phoenix that §8.2 credits for beating shared-memory Phoenix in the
  map and reduce phases).
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from ...core import LiteContext, Permission, rpc_server_loop
from ...sim import Store
from .common import (
    MrCosts,
    decode_counts,
    encode_counts,
    merge_counts,
    partition_counts,
    split_tasks,
    wordcount_map,
)

__all__ = ["LiteMR"]

_FUNC_WORKER = 10
_OPEN_PERM = Permission.READ | Permission.WRITE


class _Worker:
    """One worker node: maps, reduces and merges on command."""

    def __init__(self, kernel, worker_index: int, n_threads: int,
                 n_partitions: int, costs: MrCosts, job: str):
        self.ctx = LiteContext(kernel, f"litemr-w{worker_index}")
        self.sim = kernel.sim
        self.index = worker_index
        self.n_threads = max(1, n_threads)
        self.n_partitions = n_partitions
        self.costs = costs
        self.job = job
        self.documents: List[bytes] = []
        self._out_counter = 0

    def start(self) -> None:
        """Spawn this worker's RPC service loop."""
        self.sim.process(
            rpc_server_loop(self.ctx, _FUNC_WORKER, self._dispatch),
            name=f"litemr-worker{self.index}",
        )

    def _dispatch(self, request: bytes):
        command = json.loads(request.decode())
        kind = command["cmd"]
        if kind == "map":
            reply = yield from self._do_map(command)
        elif kind == "reduce":
            reply = yield from self._do_reduce(command)
        elif kind == "merge":
            reply = yield from self._do_merge(command)
        else:
            raise ValueError(f"unknown LITE-MR command {kind!r}")
        return json.dumps(reply).encode()

    # -- buffer helpers ------------------------------------------------
    def _publish(self, counts: Counter, label: str):
        """Serialize a counter into a fresh named LMR (generator)."""
        blob = encode_counts(counts)
        self._out_counter += 1
        name = f"{self.job}:{label}:{self.index}:{self._out_counter}"
        yield from self.ctx.kernel.node.cpu.execute(
            len(blob) * self.costs.serialize_us_per_byte, tag="litemr-ser"
        )
        lh = yield from self.ctx.lt_malloc(
            max(len(blob), 1), name=name, default_perm=_OPEN_PERM
        )
        if blob:
            yield from self.ctx.lt_write(lh, 0, blob)
        return {"name": name, "size": len(blob)}

    def _fetch(self, identifier: Dict):
        """Map + one-sided read of a published buffer (generator)."""
        lh = yield from self.ctx.lt_map(identifier["name"], _OPEN_PERM)
        blob = b""
        if identifier["size"]:
            blob = yield from self.ctx.lt_read(lh, 0, identifier["size"])
        yield from self.ctx.kernel.node.cpu.execute(
            len(blob) * self.costs.serialize_us_per_byte, tag="litemr-ser"
        )
        yield from self.ctx.lt_unmap(lh)
        return decode_counts(blob)

    # -- phases -----------------------------------------------------------
    def _do_map(self, command: Dict):
        cpu = self.ctx.kernel.node.cpu
        costs = self.costs
        tasks = Store(self.sim)
        for span in split_tasks(len(self.documents), self.n_threads * 4):
            tasks.put(span)
        finalized = [Counter() for _ in range(self.n_partitions)]

        def map_thread():
            while len(tasks) > 0:
                lo, hi = yield tasks.get()
                local = Counter()
                nbytes = 0
                for doc in self.documents[lo:hi]:
                    local.update(wordcount_map(doc))
                    nbytes += len(doc)
                yield from cpu.execute(
                    nbytes * costs.map_us_per_byte, tag="litemr-map"
                )
                # Per-node index: no cross-node contention factor.
                yield from cpu.execute(
                    len(local) * costs.combine_us_per_pair, tag="litemr-map"
                )
                for part_index, part in enumerate(
                    partition_counts(local, self.n_partitions)
                ):
                    finalized[part_index].update(part)

        threads = [self.sim.process(map_thread()) for _ in range(self.n_threads)]
        yield self.sim.all_of(threads)
        outputs = []
        for part_index, counts in enumerate(finalized):
            identifier = yield from self._publish(counts, f"map-p{part_index}")
            identifier["partition"] = part_index
            outputs.append(identifier)
        return {"outputs": outputs}

    def _do_reduce(self, command: Dict):
        cpu = self.ctx.kernel.node.cpu
        parts = []
        for identifier in command["inputs"]:
            counts = yield from self._fetch(identifier)
            parts.append(counts)
        merged = merge_counts(parts)
        yield from cpu.execute(
            len(merged) * self.costs.reduce_us_per_pair, tag="litemr-reduce"
        )
        identifier = yield from self._publish(merged, f"red-p{command['partition']}")
        return {"output": identifier}

    def _do_merge(self, command: Dict):
        cpu = self.ctx.kernel.node.cpu
        left = yield from self._fetch(command["left"])
        right = yield from self._fetch(command["right"])
        merged = merge_counts([left, right])
        yield from cpu.execute(
            (len(left) + len(right)) * self.costs.merge_us_per_pair,
            tag="litemr-merge",
        )
        identifier = yield from self._publish(merged, "merge")
        return {"output": identifier}


class LiteMR:
    """The distributed job driver (runs at the master node)."""

    _job_counter = 0

    def __init__(self, kernels, n_workers: int = None, total_threads: int = 8,
                 n_partitions: int = 8, costs: MrCosts = None,
                 rpc_timeout_us: float = None, rpc_retries: int = 0):
        if len(kernels) < 2:
            raise ValueError("LITE-MR needs a master plus at least one worker")
        LiteMR._job_counter += 1
        self.job = f"mrjob{LiteMR._job_counter}"
        self.costs = costs if costs is not None else MrCosts()
        self.master_kernel = kernels[0]
        worker_kernels = kernels[1:]
        if n_workers is not None:
            worker_kernels = worker_kernels[:n_workers]
        self.master = LiteContext(self.master_kernel, "litemr-master")
        threads_each = max(1, total_threads // len(worker_kernels))
        self.workers = [
            _Worker(kernel, index, threads_each, n_partitions, self.costs, self.job)
            for index, kernel in enumerate(worker_kernels)
        ]
        self.n_partitions = n_partitions
        self.phase_times: Dict[str, float] = {}
        self.result: Counter = Counter()
        # Failure policy for master->worker RPCs (None = wait forever).
        self.rpc_timeout_us = rpc_timeout_us
        self.rpc_retries = rpc_retries

    def _worker_id(self, worker: _Worker) -> int:
        return worker.ctx.lite_id

    def _rpc(self, worker: _Worker, command: Dict):
        reply = yield from self.master.lt_rpc(
            self._worker_id(worker), _FUNC_WORKER,
            json.dumps(command).encode(), max_reply=256 * 1024,
            timeout=self.rpc_timeout_us, retries=self.rpc_retries,
        )
        return json.loads(reply.decode())

    def run(self, documents: Sequence[bytes]):
        """Execute WordCount end to end (generator; returns Counter)."""
        sim = self.master.sim
        # Input is pre-distributed across workers (HDFS-style locality).
        for index, document in enumerate(documents):
            self.workers[index % len(self.workers)].documents.append(document)
        for worker in self.workers:
            worker.start()
        yield sim.timeout(1.0)  # let server loops register

        # ---- map ------------------------------------------------------
        start = sim.now
        procs = [
            sim.process(self._rpc(worker, {"cmd": "map"}))
            for worker in self.workers
        ]
        replies = yield sim.all_of(procs)
        by_partition: Dict[int, List[Dict]] = {
            index: [] for index in range(self.n_partitions)
        }
        for reply in replies.values():
            for identifier in reply["outputs"]:
                by_partition[identifier["partition"]].append(identifier)
        self.phase_times["map"] = sim.now - start

        # ---- reduce ----------------------------------------------------
        start = sim.now
        procs = []
        for part_index in range(self.n_partitions):
            worker = self.workers[part_index % len(self.workers)]
            procs.append(
                sim.process(
                    self._rpc(
                        worker,
                        {"cmd": "reduce", "partition": part_index,
                         "inputs": by_partition[part_index]},
                    )
                )
            )
        replies = yield sim.all_of(procs)
        runs = [replies[index]["output"] for index in range(len(procs))]
        self.phase_times["reduce"] = sim.now - start

        # ---- merge (2-way rounds across workers) -----------------------
        start = sim.now
        round_robin = 0
        while len(runs) > 1:
            procs = []
            leftover = runs[-1] if len(runs) % 2 else None
            for index in range(0, len(runs) - 1, 2):
                worker = self.workers[round_robin % len(self.workers)]
                round_robin += 1
                procs.append(
                    sim.process(
                        self._rpc(
                            worker,
                            {"cmd": "merge", "left": runs[index],
                             "right": runs[index + 1]},
                        )
                    )
                )
            replies = yield sim.all_of(procs)
            runs = [replies[index]["output"] for index in range(len(procs))]
            if leftover is not None:
                runs.append(leftover)
        self.phase_times["merge"] = sim.now - start

        # Master pulls the final result.
        final = runs[0]
        lh = yield from self.master.lt_map(final["name"], _OPEN_PERM)
        blob = yield from self.master.lt_read(lh, 0, final["size"])
        self.result = decode_counts(blob)
        self.phase_times["total"] = sum(
            self.phase_times[phase] for phase in ("map", "reduce", "merge")
        )
        return self.result
