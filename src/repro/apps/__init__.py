"""The four datacenter applications built on LITE (paper §8)."""

from .kvstore import LiteKVClient, LiteKVServer, kv_shard_of
from .litelog import LiteLog, LogCleaner, LogEntry, LogWriter

__all__ = [
    "LiteLog",
    "LogWriter",
    "LogCleaner",
    "LogEntry",
    "LiteKVServer",
    "LiteKVClient",
    "kv_shard_of",
]
