"""A sharded key-value store on LITE (the paper's motivating workload).

Combines the two classic RDMA-KV designs on top of LITE's abstraction
(cf. Pilaf's one-sided GETs and HERD's RPC path, both cited in §2.2):

- **PUT** is an LT_RPC to the key's shard server, which appends the
  value record to its value-log LMR and updates its index.
- **GET** is (after a one-time location lookup, cached client-side) a
  single **one-sided LT_read** of the value record — the server CPU is
  not involved.  Records are self-verifying (length + version + key
  tag), so a reader that races an overwrite detects the torn record and
  falls back to a fresh lookup RPC.

Because LITE virtualizes the value log as one LMR regardless of size,
the store needs none of the MR-count workarounds of §2.4.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Optional, Tuple

from ..core import LiteContext, Permission, rpc_server_loop
from ..core.errors import ENODEV, LiteError

__all__ = ["LiteKVServer", "LiteKVClient", "kv_shard_of"]

_FUNC_KV = 30
_RECORD_HDR = struct.Struct("<IIQ")  # length(4) version(4) keytag(8)
_OPEN = Permission.READ | Permission.WRITE


def kv_shard_of(key: bytes, n_shards: int) -> int:
    """Stable shard index for a key."""
    return hash(key) % n_shards


def _key_tag(key: bytes) -> int:
    tag = 1469598103934665603
    for byte in key:
        tag = ((tag ^ byte) * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return tag


class LiteKVServer:
    """One shard: a value-log LMR plus an in-memory index."""

    def __init__(self, kernel, shard_index: int, log_bytes: int = 4 << 20,
                 store_name: str = "kv", replicas: int = 0, log_nodes=None):
        self.ctx = LiteContext(kernel, f"kv-server{shard_index}")
        self.shard_index = shard_index
        self.log_bytes = log_bytes
        self.store_name = store_name
        # Value-log durability: backup copies of the log LMR.  With the
        # recovery layer armed, a crashed shard server's log fails over
        # to a backup node and cached one-sided GETs keep validating
        # (the backup is byte-identical, offsets and versions included).
        self.replicas = replicas
        # Where the value log lives (lt_malloc ``nodes=``; None = the
        # server's own node).  Disaggregated placement lets the server
        # outlive its log — the degraded read-only mode below is only
        # reachable when the log can die while the server survives.
        self.log_nodes = log_nodes
        self.log_lh = None
        self._tail = 0
        # key -> (offset, record_len, version)
        self.index: Dict[bytes, Tuple[int, int, int]] = {}
        # Per-key write mutex: concurrent PUTs from different server
        # threads must not interleave version/offset updates.
        self._key_busy: Dict[bytes, list] = {}
        self.puts = 0
        self.lookups = 0
        # Graceful degradation: flips when the value log fails with
        # ENODEV (last replica gone).  PUTs are refused, GETs continue.
        self.read_only = False

    @property
    def lite_id(self) -> int:
        """The shard server's LITE node id."""
        return self.ctx.lite_id

    def start(self, n_server_threads: int = 2):
        """Create the log LMR and serve PUT/LOOKUP RPCs (generator)."""
        self.log_lh = yield from self.ctx.lt_malloc(
            self.log_bytes,
            name=f"{self.store_name}:log:{self.shard_index}",
            nodes=self.log_nodes,
            default_perm=_OPEN,
            replicas=self.replicas,
        )
        for _ in range(n_server_threads):
            self.ctx.sim.process(
                rpc_server_loop(self.ctx, _FUNC_KV, self._handle),
                name=f"kv-srv{self.shard_index}",
            )

    def _handle(self, request: bytes):
        command = json.loads(request[: request.index(b"\x00")].decode())
        payload = request[request.index(b"\x00") + 1:]
        if command["op"] == "put":
            if self.read_only:
                reply = {"err": "shard is read-only (log lost its last "
                                "replica)", "errno": ENODEV}
            else:
                try:
                    reply = yield from self._do_put(
                        command["key"].encode(), payload
                    )
                except LiteError as exc:
                    if exc.errno == ENODEV:
                        # The value log lost its last replica: degrade
                        # to read-only instead of wedging — GETs keep
                        # serving whatever the index still points at.
                        self.read_only = True
                        reply = {"err": str(exc), "errno": ENODEV}
                    else:
                        raise
        elif command["op"] == "lookup":
            reply = self._do_lookup(command["key"].encode())
        elif command["op"] == "delete":
            reply = self._do_delete(command["key"].encode())
        else:
            reply = {"err": f"unknown op {command['op']!r}"}
        return json.dumps(reply).encode()

    def _lock_key(self, key: bytes):
        """Acquire the per-key write mutex (generator)."""
        while key in self._key_busy:
            gate = self.ctx.sim.event()
            self._key_busy[key].append(gate)
            yield gate
        self._key_busy[key] = []

    def _unlock_key(self, key: bytes) -> None:
        waiters = self._key_busy.pop(key, [])
        for gate in waiters:
            if not gate.triggered:
                gate.succeed()

    def _do_put(self, key: bytes, value: bytes):
        yield from self._lock_key(key)
        try:
            reply = yield from self._do_put_locked(key, value)
        finally:
            self._unlock_key(key)
        return reply

    def _do_put_locked(self, key: bytes, value: bytes):
        previous = self.index.get(key)
        version = (previous[2] + 1) if previous else 1
        record = _RECORD_HDR.pack(len(value), version, _key_tag(key)) + value
        if previous is not None and len(record) <= previous[1]:
            # In-place update: cached readers see the bumped version at
            # the same offset and stay coherent.
            offset = previous[0]
            yield from self.ctx.lt_write(self.log_lh, offset, record)
            self.index[key] = (offset, previous[1], version)
            self.puts += 1
            return {"offset": offset, "len": previous[1], "version": version}
        if self._tail + len(record) > self.log_bytes:
            self._tail = 0  # simplistic wrap; old records are garbage
        offset = self._tail
        self._tail += len(record)
        yield from self.ctx.lt_write(self.log_lh, offset, record)
        if previous is not None:
            # Tombstone the old header so stale cached locations fail
            # validation and re-lookup.
            yield from self.ctx.lt_write(
                self.log_lh, previous[0], _RECORD_HDR.pack(0, 0, 0)
            )
        self.index[key] = (offset, len(record), version)
        self.puts += 1
        return {"offset": offset, "len": len(record), "version": version}

    def _do_lookup(self, key: bytes):
        self.lookups += 1
        entry = self.index.get(key)
        if entry is None:
            return {"miss": True}
        offset, record_len, version = entry
        return {"offset": offset, "len": record_len, "version": version}

    def _do_delete(self, key: bytes):
        return {"ok": self.index.pop(key, None) is not None}


class LiteKVClient:
    """Client with a location cache: GETs are one-sided after warmup."""

    def __init__(self, kernel, servers: List[LiteKVServer], principal: str = "",
                 rpc_timeout_us: Optional[float] = None, rpc_retries: int = 0):
        self.ctx = LiteContext(kernel, principal or "kv-client")
        self.servers = servers
        # Failure policy for the RPC path (None = wait forever, the
        # fault-free default); chaos runs set a timeout + retries.
        self.rpc_timeout_us = rpc_timeout_us
        self.rpc_retries = rpc_retries
        self._log_handles: Dict[int, object] = {}
        self._location_cache: Dict[bytes, Tuple[int, int, int, int]] = {}
        self.onesided_gets = 0
        self.rpc_lookups = 0
        self.validation_retries = 0
        # Shards whose server reported ENODEV: PUTs fail fast locally
        # instead of burning an RPC round trip per attempt.
        self.read_only_shards: set = set()

    def _shard(self, key: bytes) -> LiteKVServer:
        return self.servers[kv_shard_of(key, len(self.servers))]

    def _log_handle(self, server: LiteKVServer):
        handle = self._log_handles.get(server.shard_index)
        if handle is None:
            handle = yield from self.ctx.lt_map(
                f"{server.store_name}:log:{server.shard_index}", _OPEN
            )
            self._log_handles[server.shard_index] = handle
        return handle

    def _rpc(self, server: LiteKVServer, command: dict, payload: bytes = b"",
             max_reply: int = 256):
        request = json.dumps(command).encode() + b"\x00" + payload
        reply = yield from self.ctx.lt_rpc(
            server.lite_id, _FUNC_KV, request, max_reply=max_reply,
            timeout=self.rpc_timeout_us, retries=self.rpc_retries,
        )
        decoded = json.loads(reply.decode())
        if "err" in decoded:
            if "errno" in decoded:
                raise LiteError(decoded["err"], errno=decoded["errno"])
            raise RuntimeError(decoded["err"])
        return decoded

    # -- public API -------------------------------------------------------
    def put(self, key: bytes, value: bytes):
        """Store (generator).  Updates the local location cache.

        Raises ``LiteError(ENODEV)`` without touching the wire once the
        key's shard is known read-only (its value log lost its last
        replica); transient failures surface as retryable ETIMEDOUT.
        """
        server = self._shard(key)
        if server.shard_index in self.read_only_shards:
            raise LiteError(
                f"kv shard {server.shard_index} is read-only", errno=ENODEV
            )
        try:
            reply = yield from self._rpc(
                server, {"op": "put", "key": key.decode()}, payload=value
            )
        except LiteError as exc:
            if exc.errno == ENODEV:
                self.read_only_shards.add(server.shard_index)
            raise
        self._location_cache[key] = (
            server.shard_index, reply["offset"], reply["len"], reply["version"]
        )

    def get(self, key: bytes):
        """Fetch (generator; returns bytes or None).

        Cached location -> one one-sided LT_read, validated against the
        record header; stale/torn records trigger one lookup + retry.
        """
        server = self._shard(key)
        cached = self._location_cache.get(key)
        for _attempt in range(2):
            if cached is None:
                self.rpc_lookups += 1
                reply = yield from self._rpc(server, {"op": "lookup",
                                                      "key": key.decode()})
                if reply.get("miss"):
                    return None
                cached = (server.shard_index, reply["offset"], reply["len"],
                          reply["version"])
            _shard, offset, record_len, version = cached
            handle = yield from self._log_handle(server)
            record = yield from self.ctx.lt_read(handle, offset, record_len)
            value_len, got_version, tag = _RECORD_HDR.unpack_from(record)
            if (tag == _key_tag(key)
                    and got_version >= version
                    and value_len <= record_len - _RECORD_HDR.size):
                self.onesided_gets += 1
                self._location_cache[key] = (_shard, offset, record_len,
                                             got_version)
                return record[_RECORD_HDR.size : _RECORD_HDR.size + value_len]
            # Torn or overwritten record: invalidate and re-lookup.
            self.validation_retries += 1
            cached = None
            self._location_cache.pop(key, None)
        return None

    def delete(self, key: bytes):
        """Remove a key (generator; returns whether it existed)."""
        server = self._shard(key)
        reply = yield from self._rpc(server, {"op": "delete",
                                              "key": key.decode()})
        self._location_cache.pop(key, None)
        return reply["ok"]
