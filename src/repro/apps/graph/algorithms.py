"""Vertex programs for the LITE-Graph engine (§8.3 extensions).

The paper's engine is PowerGraph-style GAS: any computation expressible
as "combine my in-neighbors' values into my next value" runs on the
same gather/apply/scatter machinery.  Three programs:

- :class:`PageRankProgram` — the paper's benchmark.
- :class:`SsspProgram` — single-source shortest paths (unit weights):
  dist'(v) = min(dist(v), 1 + min over in-neighbors u of dist(u)).
- :class:`ComponentsProgram` — connected components by min-label
  propagation (symmetrize the edge list for weak connectivity).

Each also comes with a single-machine reference for correctness checks.
"""

from __future__ import annotations

from typing import Callable, List

from .common import PartitionedGraph

__all__ = [
    "VertexProgram",
    "PageRankProgram",
    "SsspProgram",
    "ComponentsProgram",
    "sssp_reference",
    "components_reference",
]

INFINITY = float("inf")


class VertexProgram:
    """One vertex-centric computation: initial values + pull-update."""

    def initial(self, vertex: int, graph: PartitionedGraph) -> float:
        """The vertex's value before the first superstep."""
        raise NotImplementedError

    def compute(self, vertex: int, graph: PartitionedGraph,
                value_of: Callable[[int], float]) -> float:
        """Next value of ``vertex`` from its in-neighbors' values."""
        raise NotImplementedError


class PageRankProgram(VertexProgram):
    """The paper's PageRank benchmark as a vertex program."""

    def __init__(self, damping: float = 0.85):
        self.damping = damping

    def initial(self, vertex: int, graph: PartitionedGraph) -> float:
        return 1.0 / graph.n_vertices

    def compute(self, vertex, graph, value_of):
        acc = 0.0
        for src in graph.in_neighbors.get(vertex, ()):
            acc += value_of(src) / max(1, graph.out_degree[src])
        return (1.0 - self.damping) / graph.n_vertices + self.damping * acc


class SsspProgram(VertexProgram):
    """Unit-weight shortest paths from ``source`` (Bellman-Ford style)."""

    def __init__(self, source: int):
        self.source = source

    def initial(self, vertex: int, graph: PartitionedGraph) -> float:
        return 0.0 if vertex == self.source else INFINITY

    def compute(self, vertex, graph, value_of):
        best = 0.0 if vertex == self.source else INFINITY
        for src in graph.in_neighbors.get(vertex, ()):
            upstream = value_of(src)
            if upstream + 1.0 < best:
                best = upstream + 1.0
        return best


class ComponentsProgram(VertexProgram):
    """Min-label propagation; converges to per-component minima."""

    def initial(self, vertex: int, graph: PartitionedGraph) -> float:
        return float(vertex)

    def compute(self, vertex, graph, value_of):
        best = float(vertex)
        for src in graph.in_neighbors.get(vertex, ()):
            label = value_of(src)
            if label < best:
                best = label
        return best


# ------------------------------------------------------- references --


def sssp_reference(graph: PartitionedGraph, source: int) -> List[float]:
    """BFS distances (unit weights) over the directed edges."""
    from collections import deque

    out_edges: List[List[int]] = [[] for _ in range(graph.n_vertices)]
    for src, dst in graph.edges:
        out_edges[src].append(dst)
    dist = [INFINITY] * graph.n_vertices
    dist[source] = 0.0
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbor in out_edges[vertex]:
            if dist[neighbor] == INFINITY:
                dist[neighbor] = dist[vertex] + 1.0
                queue.append(neighbor)
    return dist


def components_reference(graph: PartitionedGraph) -> List[float]:
    """Min label per (directed-reachability) component via fixpoint."""
    labels = [float(v) for v in range(graph.n_vertices)]
    changed = True
    while changed:
        changed = False
        for vertex in range(graph.n_vertices):
            best = labels[vertex]
            for src in graph.in_neighbors.get(vertex, ()):
                if labels[src] < best:
                    best = labels[src]
            if best < labels[vertex]:
                labels[vertex] = best
                changed = True
    return labels
