"""Grappa baseline: latency-tolerant DSM with message aggregation.

Grappa (ATC '15) runs on its own InfiniBand stack and masks small-
message cost by *aggregating* many tiny delegate operations into large
network buffers before flushing.  Per value it is cheaper than
PowerGraph's RPC layer, but every aggregation buffer pays a flush
latency, and the transport is two-sided messaging (here: Verbs RC
sends), not one-sided reads — which is why Figure 19 puts it between
PowerGraph and LITE-Graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...sim import Store
from ...verbs import Access, Opcode, RecvWR, SendWR, WcStatus
from .common import GraphCosts, PartitionedGraph, decode_ranks, encode_ranks

__all__ = ["GrappaSim"]


class GrappaSim:
    """GAS PageRank over an aggregating message substrate."""

    def __init__(self, nodes, graph: PartitionedGraph,
                 threads_per_node: int = 4, costs: Optional[GraphCosts] = None):
        if len(nodes) < graph.n_partitions:
            raise ValueError("need one node per partition")
        self.nodes = nodes[: graph.n_partitions]
        self.sim = self.nodes[0].sim
        self.graph = graph
        self.threads_per_node = threads_per_node
        self.costs = costs if costs is not None else GraphCosts()
        self.ranks: List[Dict[int, float]] = [
            {v: 1.0 / graph.n_vertices for v in graph.owned[p]}
            for p in range(graph.n_partitions)
        ]
        self._qps: Dict[tuple, object] = {}
        self._mrs: Dict[int, object] = {}
        self._inbox: List[Store] = [Store(self.sim) for _ in range(graph.n_partitions)]
        # wr_id -> landing offset for every posted recv buffer.
        self._posted: Dict[int, int] = {}
        self.elapsed_us = 0.0

    def _build_mesh(self):
        """RC QP mesh with pre-posted bounce buffers (generator)."""
        graph = self.graph
        pds = {}
        for part in range(graph.n_partitions):
            node = self.nodes[part]
            pds[part] = node.device.alloc_pd()
            self._mrs[part] = yield from node.device.reg_mr(
                pds[part], 8 * 1024 * 1024, Access.ALL
            )
        for a in range(graph.n_partitions):
            for b in range(a + 1, graph.n_partitions):
                qa = self.nodes[a].device.create_qp(pds[a], "RC")
                qb = self.nodes[b].device.create_qp(pds[b], "RC")
                self.nodes[a].device.connect(qa, qb)
                self._qps[(a, b)] = qa
                self._qps[(b, a)] = qb
        for part in range(graph.n_partitions):
            self.sim.process(self._receiver_loop(part), name=f"grappa-rx{part}")

    def _receiver_loop(self, part: int):
        """Drain every recv CQ of this partition's QPs into the inbox."""
        graph = self.graph
        node = self.nodes[part]
        offset_cursor = [0]
        qps = [self._qps[(part, other)] for other in range(graph.n_partitions)
               if other != part]
        mr = self._mrs[part]
        slot = 0
        for qp in qps:
            for _ in range(32):
                wr = RecvWR(mr=mr, offset=(slot % 512) * 16 * 1024,
                            length=16 * 1024)
                self._posted[wr.wr_id] = wr.offset
                qp.post_recv(wr)
                slot += 1
        events = Store(self.sim)

        def pump(qp):
            while True:
                wc = yield qp.recv_cq.wait_wc()
                events.put((qp, wc))

        for qp in qps:
            self.sim.process(pump(qp), name="grappa-pump")
        while True:
            qp, wc = yield from node.cpu.busy_wait(events.get(), tag="grappa-poll")
            # Locate the landing buffer; hand the bytes to the app.
            self._inbox[part].put(wc)
            wr = RecvWR(mr=mr, offset=(slot % 512) * 16 * 1024,
                        length=16 * 1024)
            self._posted[wr.wr_id] = wr.offset
            qp.post_recv(wr)
            slot += 1

    def _send_aggregated(self, src: int, dst: int, blob: bytes, n_values: int):
        """Ship values in aggregation-buffer-sized flushes (generator)."""
        costs = self.costs
        node = self.nodes[src]
        buffer_bytes = costs.grappa_buffer_values * 8
        offset = 0
        while offset < len(blob) or (offset == 0 and not blob):
            piece = blob[offset : offset + buffer_bytes]
            values = len(piece) // 8
            yield from node.cpu.execute(
                values * costs.grappa_us_per_value, tag="grappa-comm"
            )
            # The aggregator waits to fill a buffer before flushing.
            yield self.sim.timeout(costs.grappa_flush_us)
            qp = self._qps[(src, dst)]
            header = src.to_bytes(4, "little") + len(piece).to_bytes(4, "little")
            wr = SendWR(Opcode.SEND, inline_data=header + piece, signaled=False)
            qp.post_send(wr)
            offset += buffer_bytes
            if not blob:
                break

    def _superstep(self, part: int, damping: float):
        graph, costs = self.graph, self.costs
        node = self.nodes[part]
        received: Dict[int, float] = {}
        producers = list(graph.pull_sets[part].keys())

        def pusher(consumer: int):
            needed = graph.pull_sets[consumer][part]
            blob = encode_ranks([self.ranks[part][v] for v in needed])
            yield from self._send_aggregated(part, consumer, blob, len(needed))

        def receiver():
            pending = {p: graph.pull_sets[part][p] for p in producers}
            progress = {p: 0 for p in producers}
            chunks: Dict[int, List[bytes]] = {p: [] for p in producers}
            outstanding = sum(
                (len(v) * 8 + costs.grappa_buffer_values * 8 - 1)
                // (costs.grappa_buffer_values * 8)
                for v in pending.values()
            )
            mr = self._mrs[part]
            for _ in range(outstanding):
                wc = yield self._inbox[part].get()
                # Read header from the recv slot the payload landed in.
                yield from node.cpu.execute(
                    (wc.byte_len // 8) * costs.grappa_us_per_value,
                    tag="grappa-comm",
                )
                src, length, payload = self._parse(mr, wc)

                chunks[src].append(payload)
                progress[src] += length
            for producer in producers:
                blob = b"".join(chunks[producer])
                for vertex, value in zip(pending[producer], decode_ranks(blob)):
                    received[vertex] = value

        procs = []
        for consumer in range(graph.n_partitions):
            if consumer != part and part in graph.pull_sets[consumer]:
                procs.append(self.sim.process(pusher(consumer)))
        recv_proc = self.sim.process(receiver())
        yield self.sim.all_of(procs + [recv_proc])

        edges = 0
        new_ranks: Dict[int, float] = {}
        for vertex in graph.owned[part]:
            acc = 0.0
            for src in graph.in_neighbors.get(vertex, ()):
                value = self.ranks[part].get(src)
                if value is None:
                    value = received[src]
                acc += value / max(1, graph.out_degree[src])
                edges += 1
            new_ranks[vertex] = (1.0 - damping) / graph.n_vertices + damping * acc
        compute = edges * costs.gather_us_per_edge
        compute += len(new_ranks) * costs.apply_us_per_vertex
        workers = [
            self.sim.process(
                node.cpu.execute(compute / self.threads_per_node, tag="grappa-compute")
            )
            for _ in range(self.threads_per_node)
        ]
        yield self.sim.all_of(workers)
        self.ranks[part] = new_ranks

    def _parse(self, mr, wc):
        """Extract (src, length, payload) from a landed aggregate."""
        offset = self._posted.pop(wc.wr_id)
        header = mr.read(offset, 8)
        src = int.from_bytes(header[:4], "little")
        length = int.from_bytes(header[4:8], "little")
        payload = mr.read(offset + 8, length)
        return src, length, payload

    def run(self, iterations: int, damping: float = 0.85):
        """Run PageRank (generator; returns the global rank list)."""
        yield from self._build_mesh()
        # Setup (registration, connection handshakes) is excluded from
        # the reported run time, as in the paper's measurements.
        start = self.sim.now
        for _iteration in range(iterations):
            steps = [
                self.sim.process(self._superstep(part, damping))
                for part in range(self.graph.n_partitions)
            ]
            yield self.sim.all_of(steps)
        self.elapsed_us = self.sim.now - start
        ranks = [0.0] * self.graph.n_vertices
        for part in range(self.graph.n_partitions):
            for vertex, value in self.ranks[part].items():
                ranks[vertex] = value
        return ranks
