"""Graph engines: LITE-Graph and the PowerGraph/Grappa baselines."""

from .common import (
    GraphCosts,
    PartitionedGraph,
    decode_ranks,
    encode_ranks,
    pagerank_reference,
)
from .algorithms import (
    ComponentsProgram,
    PageRankProgram,
    SsspProgram,
    VertexProgram,
    components_reference,
    sssp_reference,
)
from .grappa import GrappaSim
from .litegraph import LiteGraph
from .powergraph import PowerGraphSim

__all__ = [
    "GraphCosts",
    "PartitionedGraph",
    "pagerank_reference",
    "encode_ranks",
    "decode_ranks",
    "LiteGraph",
    "PowerGraphSim",
    "GrappaSim",
    "VertexProgram",
    "PageRankProgram",
    "SsspProgram",
    "ComponentsProgram",
    "sssp_reference",
    "components_reference",
]
