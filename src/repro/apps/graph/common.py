"""Shared graph-engine machinery: partitioning, GAS costs, PageRank math.

All engines (LITE-Graph, LITE-Graph-DSM, PowerGraph-sim, Grappa-sim)
run the same vertex-centric gather-apply-scatter computation on the
same partitioned graph with the same per-edge/per-vertex compute costs;
they differ only in how vertex data crosses the network.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["GraphCosts", "PartitionedGraph", "pagerank_reference",
           "encode_ranks", "decode_ranks", "RANK_BYTES"]

RANK_BYTES = 8  # one float64 per vertex


@dataclass
class GraphCosts:
    """Per-element compute costs (µs), identical across engines."""

    gather_us_per_edge: float = 0.030
    apply_us_per_vertex: float = 0.050
    scatter_us_per_edge: float = 0.010
    # PowerGraph's higher software overhead per exchanged vertex value
    # (GraphLab serialization + RPC dispatch + scheduler), paid on top
    # of TCP.  Calibrated so PowerGraph lands 3.5-5.6x behind
    # LITE-Graph, the paper's measured envelope.
    powergraph_us_per_value: float = 0.25
    # Grappa aggregates messages; cheap per element but adds a flush
    # latency per aggregation buffer.
    grappa_us_per_value: float = 0.035
    grappa_flush_us: float = 25.0
    grappa_buffer_values: int = 1024


class PartitionedGraph:
    """A directed graph hash-partitioned over P machines.

    Vertex ``v`` is owned by partition ``v % P``.  For PageRank each
    partition needs, per superstep, the ranks of every *remote* vertex
    with an edge into one of its owned vertices — precomputed here as
    the partition's *pull set*.
    """

    def __init__(self, n_vertices: int, edges: Sequence[Tuple[int, int]],
                 n_partitions: int):
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.n_vertices = n_vertices
        self.n_partitions = n_partitions
        self.edges = list(edges)
        # in_neighbors[v] = vertices with an edge into v.
        self.in_neighbors: Dict[int, List[int]] = {}
        self.out_degree = [0] * n_vertices
        for src, dst in self.edges:
            self.in_neighbors.setdefault(dst, []).append(src)
            self.out_degree[src] += 1
        self.owned: List[List[int]] = [[] for _ in range(n_partitions)]
        for vertex in range(n_vertices):
            self.owned[vertex % n_partitions].append(vertex)
        # pull_sets[p][q] = sorted vertices owned by q that p must read.
        self.pull_sets: List[Dict[int, List[int]]] = []
        for part in range(n_partitions):
            needed: Dict[int, set] = {}
            for vertex in self.owned[part]:
                for src in self.in_neighbors.get(vertex, ()):
                    owner = src % n_partitions
                    if owner != part:
                        needed.setdefault(owner, set()).add(src)
            self.pull_sets.append(
                {owner: sorted(vertices) for owner, vertices in needed.items()}
            )

    def owner_of(self, vertex: int) -> int:
        """Partition owning ``vertex``."""
        return vertex % self.n_partitions

    def local_index(self, vertex: int) -> int:
        """Position of ``vertex`` in its owner's dense array."""
        return vertex // self.n_partitions

    def edges_in_partition(self, part: int) -> int:
        """In-edges terminating at vertices owned by ``part``."""
        return sum(
            len(self.in_neighbors.get(v, ())) for v in self.owned[part]
        )


def pagerank_reference(graph: PartitionedGraph, iterations: int,
                       damping: float = 0.85) -> List[float]:
    """Ground-truth PageRank for correctness checks."""
    n = graph.n_vertices
    ranks = [1.0 / n] * n
    for _ in range(iterations):
        new_ranks = [(1.0 - damping) / n] * n
        for vertex in range(n):
            acc = 0.0
            for src in graph.in_neighbors.get(vertex, ()):
                acc += ranks[src] / max(1, graph.out_degree[src])
            new_ranks[vertex] += damping * acc
        ranks = new_ranks
    return ranks


def encode_ranks(values: Sequence[float]) -> bytes:
    """Pack vertex values as little-endian float64s."""
    return struct.pack(f"<{len(values)}d", *values)


def decode_ranks(blob: bytes) -> List[float]:
    """Inverse of :func:`encode_ranks`."""
    count = len(blob) // RANK_BYTES
    return list(struct.unpack(f"<{count}d", blob))
