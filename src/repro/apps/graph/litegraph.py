"""LITE-Graph: PowerGraph's design on LITE (paper §8.3).

Vertex-centric gather-apply-scatter with delta-style packed exchange:

- every partition owns its vertices' ranks in local LMRs;
- during *scatter*, a partition packs, for each consumer partition, the
  rank values that consumer's gather will need into a named export LMR
  (updates protected by LT_lock, the paper's consistency mechanism —
  splitting global data into more LMRs raises parallelism);
- during *gather*, consumers pull those packed exports with one
  one-sided LT_read per producer — no producer CPU involved;
- an LT_barrier separates the steps (§8.3).

The PageRank arithmetic is real; compute time is charged per edge and
per vertex from the shared :class:`GraphCosts` model.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...core import LiteContext, Permission, lite_boot
from .algorithms import PageRankProgram, VertexProgram
from .common import (
    GraphCosts,
    PartitionedGraph,
    decode_ranks,
    encode_ranks,
    RANK_BYTES,
)

__all__ = ["LiteGraph"]

_OPEN = Permission.READ | Permission.WRITE


class _Partition:
    """Engine state for one partition (one LITE node)."""

    def __init__(self, engine: "LiteGraph", part: int, kernel):
        self.engine = engine
        self.part = part
        self.ctx = LiteContext(kernel, f"litegraph-p{part}")
        self.ranks: Dict[int, float] = {}
        self.export_handles: Dict[int, object] = {}   # consumer -> lh
        self.import_handles: Dict[int, object] = {}   # producer -> lh
        self.export_locks: Dict[int, object] = {}
        self.last_delta = 0.0

    # -- setup ------------------------------------------------------------
    def build(self):
        graph, job = self.engine.graph, self.engine.job
        program = self.engine.program
        for vertex in graph.owned[self.part]:
            self.ranks[vertex] = program.initial(vertex, graph)
        # Export LMRs: one per consumer that pulls from this partition.
        for consumer in range(graph.n_partitions):
            if consumer == self.part:
                continue
            needed = graph.pull_sets[consumer].get(self.part)
            if not needed:
                continue
            name = f"{job}:exp:{self.part}:{consumer}"
            handle = yield from self.ctx.lt_malloc(
                len(needed) * RANK_BYTES, name=name, default_perm=_OPEN
            )
            self.export_handles[consumer] = handle
            lock = yield from self.ctx.lt_create_lock(
                f"{name}:lock", owner_id=self.ctx.lite_id
            )
            self.export_locks[consumer] = lock
        yield from self.ctx.lt_barrier(f"{job}:built", graph.n_partitions)
        # Import handles: map every producer's export for this partition.
        for producer, needed in graph.pull_sets[self.part].items():
            if not needed:
                continue
            name = f"{job}:exp:{producer}:{self.part}"
            self.import_handles[producer] = yield from self.ctx.lt_map(name, _OPEN)
        # Publish the initial exports so iteration 0 gathers real values.
        yield from self._scatter()
        yield from self.ctx.lt_barrier(f"{job}:init", graph.n_partitions)

    # -- GAS steps ----------------------------------------------------------
    def _scatter(self):
        """Pack and publish this partition's values for each consumer."""
        graph, costs = self.engine.graph, self.engine.costs
        cpu = self.ctx.kernel.node.cpu
        for consumer, handle in self.export_handles.items():
            needed = graph.pull_sets[consumer][self.part]
            blob = encode_ranks([self.ranks[v] for v in needed])
            yield from cpu.execute(
                len(needed) * costs.scatter_us_per_edge, tag="litegraph-scatter"
            )
            lock = self.export_locks[consumer]
            yield from self.ctx.lt_lock(lock)
            yield from self.ctx.lt_write(handle, 0, blob)
            yield from self.ctx.lt_unlock(lock)

    def _gather(self) -> Dict[int, float]:
        """Pull remote values; returns vertex -> rank for the pull set."""
        graph = self.engine.graph
        remote: Dict[int, float] = {}
        for producer, handle in self.import_handles.items():
            needed = graph.pull_sets[self.part][producer]
            blob = yield from self.ctx.lt_read(handle, 0, len(needed) * RANK_BYTES)
            for vertex, value in zip(needed, decode_ranks(blob)):
                remote[vertex] = value
        return remote

    def superstep(self):
        """One vertex-program iteration for this partition (generator)."""
        graph, costs = self.engine.graph, self.engine.costs
        cpu = self.ctx.kernel.node.cpu
        job = self.engine.job
        program = self.engine.program
        remote = yield from self._gather()

        def value_of(u):
            value = self.ranks.get(u)
            return value if value is not None else remote[u]

        # Apply: the real computation, charged per edge/vertex.
        edges = 0
        max_delta = 0.0
        new_ranks: Dict[int, float] = {}
        for vertex in graph.owned[self.part]:
            edges += len(graph.in_neighbors.get(vertex, ()))
            new_value = program.compute(vertex, graph, value_of)
            old_value = self.ranks[vertex]
            if new_value != old_value:
                delta = abs(new_value - old_value)
                if delta > max_delta:
                    max_delta = delta
            new_ranks[vertex] = new_value
        self.last_delta = max_delta
        n_threads = self.engine.threads_per_node
        compute = edges * costs.gather_us_per_edge
        compute += len(new_ranks) * costs.apply_us_per_vertex
        if n_threads > 1:
            # Owned vertices are split over local worker threads.
            shares = [compute / n_threads] * n_threads
            procs = [
                self.ctx.sim.process(cpu.execute(share, tag="litegraph-compute"))
                for share in shares
            ]
            yield self.ctx.sim.all_of(procs)
        else:
            yield from cpu.execute(compute, tag="litegraph-compute")
        self.ranks = new_ranks
        yield from self._scatter()
        self.engine.step_counter += 1
        yield from self.ctx.lt_barrier(
            f"{job}:step{self.engine.iteration}", graph.n_partitions
        )


class LiteGraph:
    """The distributed engine: one partition per LITE node."""

    _job_counter = 0

    def __init__(self, kernels, graph: PartitionedGraph,
                 threads_per_node: int = 4, costs: Optional[GraphCosts] = None,
                 program: Optional[VertexProgram] = None):
        if len(kernels) < graph.n_partitions:
            raise ValueError("need one LITE node per partition")
        LiteGraph._job_counter += 1
        self.job = f"lg{LiteGraph._job_counter}"
        self.graph = graph
        self.program = program if program is not None else PageRankProgram()
        self.iterations_run = 0
        self.costs = costs if costs is not None else GraphCosts()
        self.threads_per_node = threads_per_node
        self.partitions = [
            _Partition(self, part, kernels[part])
            for part in range(graph.n_partitions)
        ]
        self.iteration = 0
        self.step_counter = 0
        self.elapsed_us = 0.0

    def run(self, iterations: int, damping: Optional[float] = None):
        """Run the vertex program for ``iterations`` supersteps.

        Generator; returns the global value list.  ``damping`` (legacy
        convenience) re-parameterizes a default PageRank program.
        """
        if damping is not None and isinstance(self.program, PageRankProgram):
            self.program.damping = damping
        sim = self.partitions[0].ctx.sim
        builders = [sim.process(p.build()) for p in self.partitions]
        yield sim.all_of(builders)
        # Setup (LMR creation, locks, barriers) is excluded from the
        # reported run time, as in the paper's measurements.
        start = sim.now
        for self.iteration in range(iterations):
            steps = [sim.process(p.superstep()) for p in self.partitions]
            yield sim.all_of(steps)
            self.iterations_run += 1
        self.elapsed_us = sim.now - start
        ranks = [0.0] * self.graph.n_vertices
        for partition in self.partitions:
            for vertex, value in partition.ranks.items():
                ranks[vertex] = value
        return ranks

    def run_until_converged(self, epsilon: float = 0.0,
                            max_iterations: int = 1000):
        """Iterate until no vertex moves by more than ``epsilon``.

        Convergence is detected distributedly: each partition posts its
        superstep's max delta into a shared LMR slot; everyone reads
        the slots after the barrier and stops identically.  Generator;
        returns (values, iterations_run).
        """
        import struct as _struct

        sim = self.partitions[0].ctx.sim
        n_parts = self.graph.n_partitions
        ctx0 = self.partitions[0].ctx
        delta_lh = {}

        def setup():
            from ...core import Permission

            delta_lh[0] = yield from ctx0.lt_malloc(
                8 * n_parts, name=f"{self.job}:deltas",
                default_perm=Permission.READ | Permission.WRITE,
            )

        yield from setup()
        handles = [delta_lh[0]]
        for partition in self.partitions[1:]:
            handle = yield from partition.ctx.lt_map(f"{self.job}:deltas")
            handles.append(handle)
        builders = [sim.process(p.build()) for p in self.partitions]
        yield sim.all_of(builders)
        start = sim.now
        converged = [False]

        def step(partition, handle, iteration):
            yield from partition.superstep()
            delta = partition.last_delta
            if delta == float("inf"):
                delta = 1e308
            yield from partition.ctx.lt_write(
                handle, 8 * partition.part, _struct.pack("<d", delta)
            )
            yield from partition.ctx.lt_barrier(
                f"{self.job}:conv{iteration}", n_parts
            )
            blob = yield from partition.ctx.lt_read(handle, 0, 8 * n_parts)
            deltas = _struct.unpack(f"<{n_parts}d", blob)
            if partition.part == 0 and max(deltas) <= epsilon:
                converged[0] = True

        iteration = 0
        while iteration < max_iterations:
            steps = [
                sim.process(step(p, h, iteration))
                for p, h in zip(self.partitions, handles)
            ]
            yield sim.all_of(steps)
            iteration += 1
            self.iterations_run = iteration
            if converged[0]:
                break
        self.elapsed_us = sim.now - start
        values = [0.0] * self.graph.n_vertices
        for partition in self.partitions:
            for vertex, value in partition.ranks.items():
                values[vertex] = value
        return values, iteration
