"""PowerGraph baseline: the same GAS computation over IPoIB TCP.

PowerGraph (OSDI '12) as deployed in the paper's evaluation runs its
RPC/serialization layer over kernel TCP on IPoIB.  Each superstep every
partition ships the packed values its consumers need through a TCP
connection, paying the GraphLab per-value software overhead on top of
the kernel network stack — the combination Figure 19 shows losing to
LITE-Graph by 3.5-5.6x.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from .common import GraphCosts, PartitionedGraph, decode_ranks, encode_ranks

__all__ = ["PowerGraphSim"]

_port_counter = itertools.count(start=30000)


class PowerGraphSim:
    """GAS PageRank with TCP value exchange."""

    def __init__(self, nodes, graph: PartitionedGraph,
                 threads_per_node: int = 4, costs: Optional[GraphCosts] = None):
        if len(nodes) < graph.n_partitions:
            raise ValueError("need one node per partition")
        self.nodes = nodes[: graph.n_partitions]
        self.sim = self.nodes[0].sim
        self.graph = graph
        self.threads_per_node = threads_per_node
        self.costs = costs if costs is not None else GraphCosts()
        self.ranks: List[Dict[int, float]] = [
            {v: 1.0 / graph.n_vertices for v in graph.owned[p]}
            for p in range(graph.n_partitions)
        ]
        self._conns: Dict[tuple, object] = {}
        self.elapsed_us = 0.0

    # -- connection mesh ----------------------------------------------------
    def _build_mesh(self):
        graph = self.graph
        listeners = {}
        ports = {}
        for part in range(graph.n_partitions):
            port = next(_port_counter)
            ports[part] = port
            listeners[part] = self.nodes[part].tcp.listen(port)

        accepted = {}

        def acceptor(part, expected):
            for _ in range(expected):
                conn = yield from listeners[part].accept()
                tag = yield from conn.recv_msg()
                accepted[(int(tag.decode()), part)] = conn

        expect = [0] * graph.n_partitions
        pairs = []
        for consumer in range(graph.n_partitions):
            for producer in graph.pull_sets[consumer]:
                # producer pushes to consumer each superstep.
                pairs.append((producer, consumer))
                expect[consumer] += 1
        procs = [
            self.sim.process(acceptor(part, expect[part]))
            for part in range(graph.n_partitions)
        ]

        def dialer(producer, consumer):
            conn = yield from self.nodes[producer].tcp.connect(
                self.nodes[consumer].node_id, ports[consumer]
            )
            yield from conn.send_msg(str(producer).encode())
            self._conns[(producer, consumer)] = conn

        dial_procs = [self.sim.process(dialer(p, c)) for p, c in pairs]
        yield self.sim.all_of(procs + dial_procs)
        for key, conn in accepted.items():
            self._conns[key + ("rx",)] = conn

    # -- one superstep of one partition ---------------------------------------
    def _superstep(self, part: int, damping: float, barrier_done: List[int]):
        graph, costs = self.graph, self.costs
        node = self.nodes[part]
        received: Dict[int, float] = {}

        def pusher(consumer: int):
            needed = graph.pull_sets[consumer][part]
            values = [self.ranks[part][v] for v in needed]
            blob = encode_ranks(values)
            # GraphLab per-value software overhead + serialization.
            yield from node.cpu.execute(
                len(values) * costs.powergraph_us_per_value, tag="pg-comm"
            )
            conn = self._conns[(part, consumer)]
            yield from conn.send_msg(blob)

        def receiver(producer: int):
            needed = graph.pull_sets[part][producer]
            conn = self._conns[(producer, part, "rx")]
            blob = yield from conn.recv_msg()
            yield from node.cpu.execute(
                len(needed) * costs.powergraph_us_per_value, tag="pg-comm"
            )
            for vertex, value in zip(needed, decode_ranks(blob)):
                received[vertex] = value

        consumers = [
            c for c in range(graph.n_partitions)
            if part in graph.pull_sets[c] and c != part
        ]
        producers = list(graph.pull_sets[part].keys())
        procs = [self.sim.process(pusher(c)) for c in consumers]
        procs += [self.sim.process(receiver(p)) for p in producers]
        if procs:
            yield self.sim.all_of(procs)

        # Apply (same arithmetic and compute model as LITE-Graph).
        edges = 0
        new_ranks: Dict[int, float] = {}
        for vertex in graph.owned[part]:
            acc = 0.0
            for src in graph.in_neighbors.get(vertex, ()):
                value = self.ranks[part].get(src)
                if value is None:
                    value = received[src]
                acc += value / max(1, graph.out_degree[src])
                edges += 1
            new_ranks[vertex] = (1.0 - damping) / graph.n_vertices + damping * acc
        compute = edges * costs.gather_us_per_edge
        compute += len(new_ranks) * costs.apply_us_per_vertex
        if self.threads_per_node > 1:
            procs = [
                self.sim.process(
                    node.cpu.execute(compute / self.threads_per_node, tag="pg-compute")
                )
                for _ in range(self.threads_per_node)
            ]
            yield self.sim.all_of(procs)
        else:
            yield from node.cpu.execute(compute, tag="pg-compute")
        self.ranks[part] = new_ranks
        barrier_done.append(part)

    def run(self, iterations: int, damping: float = 0.85):
        """Run PageRank (generator; returns the global rank list)."""
        yield from self._build_mesh()
        # Setup (registration, connection handshakes) is excluded from
        # the reported run time, as in the paper's measurements.
        start = self.sim.now
        for _iteration in range(iterations):
            done: List[int] = []
            steps = [
                self.sim.process(self._superstep(part, damping, done))
                for part in range(self.graph.n_partitions)
            ]
            yield self.sim.all_of(steps)
        self.elapsed_us = self.sim.now - start
        ranks = [0.0] * self.graph.n_vertices
        for part in range(self.graph.n_partitions):
            for vertex, value in self.ranks[part].items():
                ranks[vertex] = value
        return ranks
