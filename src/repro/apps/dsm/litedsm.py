"""LITE-DSM: kernel-level distributed shared memory on LITE (§8.4).

MRSW (multiple readers, single writer) with release consistency, in the
HLRC style: every 4 KB page has a *home node* (round-robin).  The
protocol maps onto LITE exactly as the paper describes:

- **reads** never involve the home node's CPU: a page fault is served
  with a one-sided ``LT_read`` from the home's page store, and the
  reader registers as a sharer with an async notification;
- **acquire** is an ``LT_RPC`` to each page's home, which serializes
  writers (single-writer invariant) per page;
- **release** pushes dirty pages home with ``LT_write``, then one
  ``LT_RPC`` per home bumps versions and *invalidates every sharer's
  cached copy* (multicast RPC, the extension of §8.4).

Because Python cannot hook the MMU, "page faults" are explicit
``read``/``write`` calls; the fault-handler cost is charged explicitly.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Set

from ...core import LiteContext, Permission
from ...sim import Event

__all__ = ["LiteDsm", "DsmNode", "PAGE_SIZE"]

PAGE_SIZE = 4096
_FUNC_DSM = 20
_OPEN = Permission.READ | Permission.WRITE

# DSM-layer costs (µs): kernel fault trap + vma/protocol handling.
FAULT_US = 6.0
PROTOCOL_US = 1.0
# HLRC-style twin/diff computation per dirty page at release time.
DIFF_US_PER_PAGE = 2.2


class _HomePage:
    """Home-node state for one page."""

    __slots__ = ("version", "writer", "sharers", "wait_queue")

    def __init__(self):
        self.version = 0
        self.writer: Optional[int] = None
        self.sharers: Set[int] = set()
        self.wait_queue: List[Event] = []


class DsmNode:
    """One node's view of a shared DSM space."""

    def __init__(self, dsm: "LiteDsm", index: int, kernel):
        self.dsm = dsm
        self.index = index
        # Kernel-level context: LITE-DSM lives in the kernel (§8.4).
        self.ctx = LiteContext(kernel, f"dsm{dsm.name}-n{index}", kernel_level=True)
        self.sim = kernel.sim
        # page -> (bytes, version); None bytes = invalidated.
        self.cache: Dict[int, tuple] = {}
        self.dirty: Dict[int, bytearray] = {}
        self.acquired: Set[int] = set()
        self.home_pages: Dict[int, _HomePage] = {}
        self.home_handle = None
        self.remote_handles: Dict[int, object] = {}
        self.faults = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _home_of(self, page: int) -> int:
        return page % self.dsm.n_nodes

    def _home_offset(self, page: int) -> int:
        return (page // self.dsm.n_nodes) * PAGE_SIZE

    def build(self):
        """Allocate this node's home store; start the protocol service."""
        dsm = self.dsm
        pages_here = (dsm.n_pages + dsm.n_nodes - 1 - self.index) // dsm.n_nodes
        pages_here = max(pages_here, 1)
        self.home_handle = yield from self.ctx.lt_malloc(
            pages_here * PAGE_SIZE,
            name=f"{dsm.name}:home:{self.index}",
            default_perm=_OPEN,
        )
        for page in range(self.index, dsm.n_pages, dsm.n_nodes):
            self.home_pages[page] = _HomePage()
        self.ctx.lt_reg_rpc(_FUNC_DSM)
        self.sim.process(self._service_loop(), name=f"dsm-svc{self.index}")
        yield from self.ctx.lt_barrier(f"{dsm.name}:homes", dsm.n_nodes)
        for other in range(dsm.n_nodes):
            if other != self.index:
                self.remote_handles[other] = yield from self.ctx.lt_map(
                    f"{dsm.name}:home:{other}", _OPEN
                )
        yield from self.ctx.lt_barrier(f"{dsm.name}:ready", dsm.n_nodes)

    def _store_handle(self, page: int):
        home = self._home_of(page)
        if home == self.index:
            return self.home_handle
        return self.remote_handles[home]

    # ------------------------------------------------------------------
    # Protocol service (runs at every node; serves its home pages)
    # ------------------------------------------------------------------
    def _service_loop(self):
        while True:
            call = yield from self.ctx.lt_recv_rpc(_FUNC_DSM)
            # Handle each request in its own process so a blocked
            # acquire never starves releases/invalidations.
            self.sim.process(self._serve(call), name="dsm-serve")

    def _serve(self, call):
        msg = json.loads(call.input.decode())
        kind = msg["op"]
        yield self.sim.timeout(PROTOCOL_US)
        if kind == "acquire":
            reply = yield from self._serve_acquire(msg)
        elif kind == "release":
            reply = yield from self._serve_release(msg)
        elif kind == "inv":
            reply = self._apply_invalidation(msg)
        elif kind == "share":
            reply = self._register_sharer(msg)
        else:
            raise ValueError(f"unknown DSM op {kind!r}")
        yield from self.ctx.lt_reply_rpc(call, json.dumps(reply).encode())

    def _serve_acquire(self, msg):
        requester = msg["node"]
        versions = {}
        for page in msg["pages"]:
            state = self.home_pages[page]
            while state.writer is not None and state.writer != requester:
                gate = self.sim.event()
                state.wait_queue.append(gate)
                yield gate
            state.writer = requester
            versions[str(page)] = state.version
        return {"versions": versions}

    def _serve_release(self, msg):
        writer = msg["node"]
        to_invalidate: Dict[int, List[int]] = {}
        for page in msg["pages"]:
            state = self.home_pages[page]
            if state.writer != writer:
                return {"err": f"release of page {page} not held by {writer}"}
            state.version += 1
            for sharer in state.sharers:
                if sharer != writer:
                    to_invalidate.setdefault(sharer, []).append(page)
            state.sharers = {writer}
        # Multicast invalidations to every caching node (§8.4).
        if to_invalidate:
            procs = []
            for sharer, pages in to_invalidate.items():
                payload = json.dumps({"op": "inv", "pages": pages}).encode()
                procs.append(
                    self.sim.process(
                        self.ctx.kernel.rpc.call(
                            self.dsm.nodes[sharer].ctx.lite_id, _FUNC_DSM,
                            payload, max_reply=64,
                        )
                    )
                )
            yield self.sim.all_of(procs)
        for page in msg["pages"]:
            state = self.home_pages[page]
            state.writer = None
            if state.wait_queue:
                state.wait_queue.pop(0).succeed()
        return {"ok": True}

    def _apply_invalidation(self, msg):
        for page in msg["pages"]:
            if page in self.cache:
                del self.cache[page]
                self.invalidations += 1
        return {"ok": True}

    def _register_sharer(self, msg):
        for page in msg["pages"]:
            self.home_pages[page].sharers.add(msg["node"])
        return {"ok": True}

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _fetch_page(self, page: int):
        """Page fault: one-sided read from home, async sharer reg."""
        self.faults += 1
        yield self.sim.timeout(FAULT_US)
        home = self._home_of(page)
        if home == self.index:
            state = self.home_pages[page]
            data = yield from self.ctx.lt_read(
                self.home_handle, self._home_offset(page), PAGE_SIZE
            )
            state.sharers.add(self.index)
            self.cache[page] = (bytearray(data), state.version)
            return
        data = yield from self.ctx.lt_read(
            self.remote_handles[home], self._home_offset(page), PAGE_SIZE
        )
        # Register as a sharer before exposing the page, so a concurrent
        # writer's release is guaranteed to invalidate this copy.
        payload = json.dumps(
            {"op": "share", "pages": [page], "node": self.index}
        ).encode()
        yield from self.ctx.kernel.rpc.call(
            self.dsm.nodes[home].ctx.lite_id, _FUNC_DSM, payload, max_reply=64
        )
        self.cache[page] = (bytearray(data), 0)

    def _fetch_batch(self, pages: List[int]):
        """Fault-around: trap once per page, but overlap the reads and
        batch sharer registration per home node."""
        self.faults += len(pages)
        yield self.sim.timeout(FAULT_US * len(pages))
        by_home: Dict[int, List[int]] = {}
        for page in pages:
            by_home.setdefault(self._home_of(page), []).append(page)
        reads = []
        read_meta = []
        for home, home_pages in by_home.items():
            handle = (
                self.home_handle if home == self.index
                else self.remote_handles[home]
            )
            for page in home_pages:
                gen = self.ctx.lt_read(handle, self._home_offset(page), PAGE_SIZE)
                reads.append(self.sim.process(gen))
                read_meta.append(page)
        results = yield self.sim.all_of(reads)
        for index, page in enumerate(read_meta):
            self.cache[page] = (bytearray(results[index]), 0)
        # Register as a sharer, one batched RPC per remote home.
        regs = []
        for home, home_pages in by_home.items():
            if home == self.index:
                for page in home_pages:
                    self.home_pages[page].sharers.add(self.index)
                continue
            payload = json.dumps(
                {"op": "share", "pages": home_pages, "node": self.index}
            ).encode()
            regs.append(
                self.sim.process(
                    self.ctx.kernel.rpc.call(
                        self.dsm.nodes[home].ctx.lite_id, _FUNC_DSM,
                        payload, max_reply=64,
                    )
                )
            )
        if regs:
            yield self.sim.all_of(regs)

    def read(self, addr: int, nbytes: int):
        """DSM load (generator; returns bytes)."""
        if addr < 0 or addr + nbytes > self.dsm.size:
            raise ValueError("DSM read outside the shared space")
        first = addr // PAGE_SIZE
        last = (addr + nbytes - 1) // PAGE_SIZE
        missing = [
            page for page in range(first, last + 1)
            if page not in self.cache and page not in self.dirty
        ]
        if missing:
            yield from self._fetch_batch(missing)
        out = bytearray()
        cursor = addr
        remaining = nbytes
        while remaining > 0:
            page = cursor // PAGE_SIZE
            offset = cursor % PAGE_SIZE
            take = min(PAGE_SIZE - offset, remaining)
            if page in self.dirty:
                out += self.dirty[page][offset : offset + take]
            else:
                out += self.cache[page][0][offset : offset + take]
            cursor += take
            remaining -= take
        return bytes(out)

    def acquire(self, addr: int, nbytes: int):
        """Gain write access to the page range (generator)."""
        pages = sorted(
            set(range(addr // PAGE_SIZE, (addr + nbytes - 1) // PAGE_SIZE + 1))
        )
        yield self.sim.timeout(PROTOCOL_US)
        by_home: Dict[int, List[int]] = {}
        for page in pages:
            by_home.setdefault(self._home_of(page), []).append(page)
        procs = []
        for home, home_pages in by_home.items():
            payload = json.dumps(
                {"op": "acquire", "pages": home_pages, "node": self.index}
            ).encode()
            if home == self.index:
                gen = self._serve_acquire(
                    {"pages": home_pages, "node": self.index}
                )
                procs.append(self.sim.process(gen))
            else:
                procs.append(
                    self.sim.process(
                        self.ctx.kernel.rpc.call(
                            self.dsm.nodes[home].ctx.lite_id, _FUNC_DSM,
                            payload, max_reply=4096,
                        )
                    )
                )
        yield self.sim.all_of(procs)
        self.acquired.update(pages)

    def write(self, addr: int, data: bytes):
        """DSM store into acquired pages (generator; local until release)."""
        pages = set(
            range(addr // PAGE_SIZE, (addr + len(data) - 1) // PAGE_SIZE + 1)
        )
        if not pages <= self.acquired:
            raise PermissionError(
                "DSM write without acquire (release consistency violation)"
            )
        cursor = addr
        remaining = data
        while remaining:
            page = cursor // PAGE_SIZE
            offset = cursor % PAGE_SIZE
            take = min(PAGE_SIZE - offset, len(remaining))
            if page not in self.dirty:
                if page not in self.cache:
                    yield from self._fetch_page(page)
                self.dirty[page] = bytearray(self.cache[page][0])
            self.dirty[page][offset : offset + take] = remaining[:take]
            cursor += take
            remaining = remaining[take:]

    def release(self):
        """Push dirty pages home, invalidate sharers (generator)."""
        if not self.acquired:
            return
        yield self.sim.timeout(PROTOCOL_US)
        # 1. Write back every dirty page to its home store: compute the
        # twin diff, then one-sided write — sequentially, as the HLRC
        # release path does (this is why the paper's 10-dirty-page
        # commit costs 74.3 us against a 9.2 us acquire).
        for page, data in sorted(self.dirty.items()):
            handle = self._store_handle(page)
            yield from self.ctx.kernel.node.cpu.execute(
                DIFF_US_PER_PAGE, tag="dsm-diff"
            )
            yield from self.ctx.kernel.onesided.write(
                handle.mapping, self._home_offset(page), bytes(data)
            )
            self.cache[page] = (bytearray(data), -1)
        # 2. Tell each home to bump versions + invalidate sharers.
        by_home: Dict[int, List[int]] = {}
        for page in sorted(self.acquired):
            by_home.setdefault(self._home_of(page), []).append(page)
        procs = []
        for home, pages in by_home.items():
            msg = {"op": "release", "pages": pages, "node": self.index}
            if home == self.index:
                procs.append(self.sim.process(self._serve_release(msg)))
            else:
                procs.append(
                    self.sim.process(
                        self.ctx.kernel.rpc.call(
                            self.dsm.nodes[home].ctx.lite_id, _FUNC_DSM,
                            json.dumps(msg).encode(), max_reply=256,
                        )
                    )
                )
        yield self.sim.all_of(procs)
        self.dirty.clear()
        self.acquired.clear()

    def barrier(self, name: str):
        """Space-wide named barrier across all DSM nodes (generator)."""
        yield from self.ctx.lt_barrier(
            f"{self.dsm.name}:{name}", self.dsm.n_nodes
        )


class LiteDsm:
    """A shared space spanning a set of LITE nodes."""

    def __init__(self, kernels, name: str, size: int):
        if size <= 0:
            raise ValueError("DSM size must be positive")
        self.name = name
        self.size = size
        self.n_pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        self.n_nodes = len(kernels)
        self.nodes = [DsmNode(self, index, kernel)
                      for index, kernel in enumerate(kernels)]

    def build(self):
        """Bring the space up on every node (generator)."""
        sim = self.nodes[0].sim
        procs = [sim.process(node.build()) for node in self.nodes]
        yield sim.all_of(procs)
