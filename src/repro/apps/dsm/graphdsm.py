"""LITE-Graph-DSM: the user-space graph engine over LITE-DSM (§8.4).

Same GAS structure as LITE-Graph, but vertex data lives in the shared
DSM space and moves via native-looking loads/stores: gathers read
neighbour ranks through the DSM page cache, scatters acquire/write/
release the partition's own rank region.  The extra DSM layer (page
granularity, fault handling, invalidations) is exactly why Figure 19
shows it trailing LITE-Graph while still beating PowerGraph.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from ..graph.common import GraphCosts, PartitionedGraph, RANK_BYTES
from .litedsm import LiteDsm

__all__ = ["LiteGraphDsm"]


class LiteGraphDsm:
    """PageRank with vertex data in distributed shared memory."""

    _job_counter = 0

    def __init__(self, kernels, graph: PartitionedGraph,
                 threads_per_node: int = 4, costs: Optional[GraphCosts] = None):
        if len(kernels) < graph.n_partitions:
            raise ValueError("need one LITE node per partition")
        LiteGraphDsm._job_counter += 1
        self.graph = graph
        self.costs = costs if costs is not None else GraphCosts()
        self.threads_per_node = threads_per_node
        # Contiguous per-partition regions: partition p's vertex k lives
        # at (region_base[p] + k) * 8.
        self.region_base: List[int] = []
        base = 0
        for part in range(graph.n_partitions):
            self.region_base.append(base)
            base += len(graph.owned[part])
        self.dsm = LiteDsm(
            kernels[: graph.n_partitions],
            f"gdsm{LiteGraphDsm._job_counter}",
            base * RANK_BYTES,
        )
        self.elapsed_us = 0.0

    def _addr_of(self, vertex: int) -> int:
        part = self.graph.owner_of(vertex)
        return (self.region_base[part] + self.graph.local_index(vertex)) * RANK_BYTES

    def _write_own(self, part: int, values: List[float]):
        """Acquire + store + release this partition's region (generator)."""
        node = self.dsm.nodes[part]
        addr = self.region_base[part] * RANK_BYTES
        blob = struct.pack(f"<{len(values)}d", *values)
        yield from node.acquire(addr, len(blob))
        yield from node.write(addr, blob)
        yield from node.release()

    def _superstep(self, part: int, damping: float, iteration: int):
        graph, costs = self.graph, self.costs
        node = self.dsm.nodes[part]
        cpu = node.ctx.kernel.node.cpu
        # Gather: DSM loads; remote values arrive page-by-page through
        # the cache, refreshed by the producers' release invalidations.
        remote: Dict[int, float] = {}
        for producer, needed in graph.pull_sets[part].items():
            base = self.region_base[producer] * RANK_BYTES
            span = len(graph.owned[producer]) * RANK_BYTES
            blob = yield from node.read(base, span)
            values = struct.unpack(f"<{span // 8}d", blob)
            for vertex in needed:
                remote[vertex] = values[graph.local_index(vertex)]
        own_values = {}
        own_addr = self.region_base[part] * RANK_BYTES
        own_span = len(graph.owned[part]) * RANK_BYTES
        blob = yield from node.read(own_addr, own_span)
        unpacked = struct.unpack(f"<{own_span // 8}d", blob)
        for vertex in graph.owned[part]:
            own_values[vertex] = unpacked[graph.local_index(vertex)]

        edges = 0
        new_values: List[float] = []
        for vertex in graph.owned[part]:
            acc = 0.0
            for src in graph.in_neighbors.get(vertex, ()):
                value = own_values.get(src)
                if value is None:
                    value = remote[src]
                acc += value / max(1, graph.out_degree[src])
                edges += 1
            new_values.append(
                (1.0 - damping) / graph.n_vertices + damping * acc
            )
        compute = edges * costs.gather_us_per_edge
        compute += len(new_values) * costs.apply_us_per_vertex
        procs = [
            node.sim.process(
                cpu.execute(compute / self.threads_per_node, tag="gdsm-compute")
            )
            for _ in range(self.threads_per_node)
        ]
        yield node.sim.all_of(procs)
        yield from self._write_own(part, new_values)
        yield from node.barrier(f"step{iteration}")

    def run(self, iterations: int, damping: float = 0.85):
        """Run PageRank (generator; returns the global rank list)."""
        graph = self.graph
        sim = self.dsm.nodes[0].sim
        yield from self.dsm.build()
        # Initialize every partition's region.
        init = [
            sim.process(
                self._write_own(
                    part,
                    [1.0 / graph.n_vertices] * len(graph.owned[part]),
                )
            )
            for part in range(graph.n_partitions)
        ]
        yield sim.all_of(init)
        barriers = [
            sim.process(self.dsm.nodes[part].barrier("init"))
            for part in range(graph.n_partitions)
        ]
        yield sim.all_of(barriers)
        start = sim.now
        for iteration in range(iterations):
            steps = [
                sim.process(self._superstep(part, damping, iteration))
                for part in range(graph.n_partitions)
            ]
            yield sim.all_of(steps)
        self.elapsed_us = sim.now - start
        # Collect the final ranks through the DSM itself.
        collector = self.dsm.nodes[0]
        ranks = [0.0] * graph.n_vertices
        for part in range(graph.n_partitions):
            base = self.region_base[part] * RANK_BYTES
            span = len(graph.owned[part]) * RANK_BYTES
            blob = yield from collector.read(base, span)
            values = struct.unpack(f"<{span // 8}d", blob)
            for vertex in graph.owned[part]:
                ranks[vertex] = values[graph.local_index(vertex)]
        return ranks
