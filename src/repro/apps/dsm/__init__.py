"""LITE-DSM and the DSM-backed graph engine."""

from .graphdsm import LiteGraphDsm
from .litedsm import DsmNode, LiteDsm, PAGE_SIZE

__all__ = ["LiteDsm", "DsmNode", "PAGE_SIZE", "LiteGraphDsm"]
