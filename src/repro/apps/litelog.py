"""LITE-Log: a distributed atomic logging system (paper §8.1).

The "one-sided concept pushed to an extreme": the global log and its
metadata live in LMRs, and *every* operation — creating, appending,
cleaning — is performed from remote with one-sided LITE ops.  The node
hosting the log runs no log code at all.

Commit protocol:
  1. the writer buffers entries locally until commit time;
  2. commit reserves contiguous log space with one LT_fetch-add on the
     tail counter;
  3. the transaction bytes (entries + commit record) go in with one
     LT_write.

A background cleaner advances the head with LT_read + LT_fetch-add +
LT_test-set, reclaiming committed space.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from ..core import LiteContext, Permission

__all__ = ["LiteLog", "LogWriter", "LogCleaner", "LogEntry"]

_ENTRY_HDR = 8   # length(4) + crc-ish tag(4)
_COMMIT_REC = 12  # txid(8) + magic(4)
_COMMIT_MAGIC = 0xC0FFEE01

# Metadata LMR layout: tail(8) head(8) committed_txs(8) clean_lock(8).
_META_TAIL = 0
_META_HEAD = 8
_META_COMMITTED = 16
_META_CLEAN_LOCK = 24
_META_BYTES = 32


class LogEntry:
    """One logged payload with a self-checking header."""

    __slots__ = ("payload",)

    def __init__(self, payload: bytes):
        self.payload = payload

    def encoded(self) -> bytes:
        """Wire form: length + tag header, then the payload."""
        tag = (len(self.payload) * 2654435761) & 0xFFFFFFFF
        return struct.pack("<II", len(self.payload), tag) + self.payload

    @classmethod
    def decode(cls, blob: bytes, offset: int) -> "tuple[LogEntry, int]":
        """Parse one entry at ``offset``; returns (entry, next offset)."""
        length, tag = struct.unpack_from("<II", blob, offset)
        expect = (length * 2654435761) & 0xFFFFFFFF
        if tag != expect:
            raise ValueError("corrupt log entry header")
        start = offset + _ENTRY_HDR
        return cls(blob[start : start + length]), start + length


class LiteLog:
    """Handle to a global log; create once, open from anywhere."""

    def __init__(self, ctx: LiteContext, name: str, log_lh, meta_lh, size: int):
        self.ctx = ctx
        self.name = name
        self.log_lh = log_lh
        self.meta_lh = meta_lh
        self.size = size

    @classmethod
    def create(cls, ctx: LiteContext, name: str, size: int,
               home_node: Optional[int] = None):
        """Allocate the log + metadata LMRs (generator; run anywhere)."""
        home = home_node if home_node is not None else ctx.lite_id
        log_lh = yield from ctx.lt_malloc(
            size, name=f"__log:{name}", nodes=home,
            default_perm=Permission.READ | Permission.WRITE,
        )
        meta_lh = yield from ctx.lt_malloc(
            _META_BYTES, name=f"__logmeta:{name}", nodes=home,
            default_perm=Permission.READ | Permission.WRITE,
        )
        yield from ctx.lt_memset(meta_lh, 0, 0, _META_BYTES)
        return cls(ctx, name, log_lh, meta_lh, size)

    @classmethod
    def open(cls, ctx: LiteContext, name: str):
        """Map an existing log from any node (generator)."""
        log_lh = yield from ctx.lt_map(f"__log:{name}")
        meta_lh = yield from ctx.lt_map(f"__logmeta:{name}")
        return cls(ctx, name, log_lh, meta_lh, log_lh.size)

    # -- remote metadata accessors ------------------------------------------
    def read_tail(self):
        """Remote-read the tail counter (generator)."""
        data = yield from self.ctx.lt_read(self.meta_lh, _META_TAIL, 8)
        return struct.unpack("<Q", data)[0]

    def read_head(self):
        """Remote-read the head counter (generator)."""
        data = yield from self.ctx.lt_read(self.meta_lh, _META_HEAD, 8)
        return struct.unpack("<Q", data)[0]

    def committed_count(self):
        """Remote-read the committed-transaction counter (generator)."""
        data = yield from self.ctx.lt_read(self.meta_lh, _META_COMMITTED, 8)
        return struct.unpack("<Q", data)[0]

    def verify(self):
        """Walk the unreclaimed log and check every record (generator).

        Reads [head, tail) remotely, decodes entry-by-entry and checks
        each header tag and commit record.  Returns (transactions,
        entries) counted; raises ValueError on the first corruption.
        Only meaningful while the log has not wrapped past the head.
        """
        head = yield from self.read_head()
        tail = yield from self.read_tail()
        if tail - head > self.size:
            raise ValueError("log wrapped past its head; cannot verify")
        if tail == head:
            return 0, 0
        position = head % self.size
        span = tail - head
        if position + span <= self.size:
            blob = yield from self.ctx.lt_read(self.log_lh, position, span)
        else:
            first = yield from self.ctx.lt_read(
                self.log_lh, position, self.size - position
            )
            rest = yield from self.ctx.lt_read(
                self.log_lh, 0, span - (self.size - position)
            )
            blob = first + rest
        cursor = 0
        transactions = 0
        entries = 0
        while cursor < len(blob):
            # Entries until a commit record (txid + magic).
            while True:
                if cursor + _COMMIT_REC > len(blob):
                    raise ValueError("truncated transaction at log end")
                _txid, magic = struct.unpack_from("<QI", blob, cursor)
                if magic == _COMMIT_MAGIC:
                    cursor += _COMMIT_REC
                    transactions += 1
                    break
                _entry, cursor = LogEntry.decode(blob, cursor)
                entries += 1
        return transactions, entries


class LogWriter:
    """Buffers entries locally; commit() is fetch-add + write (§8.1)."""

    def __init__(self, log: LiteLog, writer_id: int = 0):
        self.log = log
        self.ctx = log.ctx
        self.writer_id = writer_id
        self._buffer: List[LogEntry] = []
        self._txid = writer_id << 32
        self.committed = 0

    def append(self, payload: bytes) -> None:
        """Buffer one entry locally until commit time."""
        self._buffer.append(LogEntry(payload))

    def commit(self):
        """Atomically commit buffered entries (generator; returns offset)."""
        if not self._buffer:
            raise ValueError("commit with no buffered entries")
        ctx, log = self.ctx, self.log
        self._txid += 1
        body = b"".join(entry.encoded() for entry in self._buffer)
        record = struct.pack("<QI", self._txid, _COMMIT_MAGIC)
        blob = body + record
        # 1. Reserve space: one fetch-add on the tail counter.
        offset = yield from ctx.lt_fetch_add(log.meta_lh, _META_TAIL, len(blob))
        position = offset % log.size
        if position + len(blob) > log.size:
            # Wrapped reservation: write in two pieces.
            first = log.size - position
            yield from ctx.lt_write(log.log_lh, position, blob[:first])
            yield from ctx.lt_write(log.log_lh, 0, blob[first:])
        else:
            # 2. One write for the whole transaction.
            yield from ctx.lt_write(log.log_lh, position, blob)
        # 3. Bump the committed-transaction counter (commit point).
        yield from ctx.lt_fetch_add(log.meta_lh, _META_COMMITTED, 1)
        self._buffer.clear()
        self.committed += 1
        return offset

    def read_transaction(self, offset: int, nbytes: int):
        """Fetch raw committed bytes back (generator; for verification)."""
        position = offset % self.log.size
        data = yield from self.ctx.lt_read(self.log.log_lh, position, nbytes)
        return data


class LogCleaner:
    """Background cleaner: advances head over fully-committed space."""

    def __init__(self, log: LiteLog, batch_bytes: int = 64 * 1024):
        self.log = log
        self.ctx = log.ctx
        self.batch_bytes = batch_bytes
        self.cleaned_bytes = 0

    def clean_once(self):
        """One cleaning pass (generator; returns bytes reclaimed)."""
        ctx, log = self.ctx, self.log
        # Take the cleaner lock with test-and-set.
        old = yield from ctx.lt_test_set(log.meta_lh, _META_CLEAN_LOCK, 0, 1)
        if old != 0:
            return 0  # another cleaner is active
        try:
            tail = yield from log.read_tail()
            head = yield from log.read_head()
            reclaim = min(tail - head, self.batch_bytes)
            if reclaim <= 0:
                return 0
            # Verify the space is committed data by scanning it.
            position = head % log.size
            span = min(reclaim, log.size - position)
            yield from ctx.lt_read(log.log_lh, position, span)
            old_head = yield from ctx.lt_fetch_add(log.meta_lh, _META_HEAD, reclaim)
            assert old_head == head
            self.cleaned_bytes += reclaim
            return reclaim
        finally:
            # Release the cleaner lock.
            yield from ctx.lt_test_set(log.meta_lh, _META_CLEAN_LOCK, 1, 0)

    def run(self, interval_us: float = 1000.0, rounds: int = 0):
        """Cleaner loop (generator); rounds=0 means run forever."""
        done = 0
        while rounds == 0 or done < rounds:
            yield self.ctx.sim.timeout(interval_us)
            yield from self.clean_once()
            done += 1
