"""HERD-style RPC (Kalia et al., SIGCOMM '14 / ATC '16 guidelines).

Request: the client RDMA-writes its request into a *per-client slot* in
the server's request region.  Server threads busy-poll the slots of the
clients assigned to them — the per-iteration scan touches every slot,
so dispatch latency and CPU grow with the number of clients per thread
(the drawback §5.3 calls out for datacenter use).  Reply: one UD send;
the client busy-polls its UD receive CQ.
"""

from __future__ import annotations

import itertools
import struct
from typing import Callable, Dict, List

from ..sim import Store
from ..verbs import Access, Opcode, RecvWR, SendWR, Sge, UD_MTU, WcStatus

__all__ = ["HerdServer", "HerdClient"]

_SLOT_BYTES = 4096
_SLOT_CHECK_US = 0.012  # one cache-line probe of a client slot


class HerdClient:
    """A client endpoint bound to one server thread's slot."""

    def __init__(self, server: "HerdServer", node, slot: int):
        self.server = server
        self.node = node
        self.sim = node.sim
        self.slot = slot
        self.pd = node.device.alloc_pd()
        self.write_qp = None      # RC toward the server region
        self.ud_qp = None         # UD for replies
        self.reply_mr = None
        self.calls = 0

    def build(self):
        """Register reply buffers and QPs (generator)."""
        device = self.node.device
        self.reply_mr = yield from device.reg_mr(self.pd, 64 * 1024, Access.ALL)
        self.write_qp = device.create_qp(self.pd, "RC")
        server_qp = self.server.node.device.create_qp(self.server.pd, "RC")
        device.connect(self.write_qp, server_qp)
        self.ud_qp = device.create_qp(self.pd, "UD")
        # One call outstanding per client endpoint (HERD's usage model);
        # replies land at the region head.
        for _ in range(4):
            self.ud_qp.post_recv(RecvWR(mr=self.reply_mr, offset=0, length=UD_MTU))

    def call(self, payload: bytes, handler_tag: str = "herd-client"):
        """One RPC (generator; returns reply bytes)."""
        if len(payload) + 8 > _SLOT_BYTES:
            raise ValueError("HERD request exceeds its slot")
        server = self.server
        message = struct.pack("<II", len(payload), self.slot) + payload
        wr = SendWR(
            Opcode.WRITE,
            inline_data=message,
            remote_addr=server.region_mr.base_addr + self.slot * _SLOT_BYTES,
            rkey=server.region_mr.rkey,
            signaled=False,
        )
        # The server memory-polls its region: data is visible on landing.
        wr.delivered = self.sim.event()
        self.write_qp.post_send(wr)
        status = yield wr.delivered
        if status is not WcStatus.SUCCESS:
            raise RuntimeError(f"HERD request write failed: {status.value}")
        self.calls += 1
        server._notify(self.slot)
        # Busy-poll the UD recv CQ for the reply (HERD clients spin).
        cpu = self.node.cpu
        wc = yield from cpu.busy_wait(self.ud_qp.recv_cq.wait_wc(), tag=handler_tag)
        reply = self.reply_mr.read(0, wc.byte_len)
        # Keep the UD RQ stocked.
        self.ud_qp.post_recv(RecvWR(mr=self.reply_mr, offset=0, length=UD_MTU))
        return reply


class HerdServer:
    """HERD server: a request region and N busy-polling worker threads."""

    def __init__(self, node, n_threads: int = 1, max_clients: int = 64):
        self.node = node
        self.sim = node.sim
        self.params = node.params
        self.n_threads = n_threads
        self.max_clients = max_clients
        self.pd = node.device.alloc_pd()
        self.region_mr = None
        self.ud_qp = None
        self._clients: Dict[int, HerdClient] = {}
        self._slot_counter = itertools.count()
        self._thread_queues: List[Store] = []
        self._threads = []
        self.requests_served = 0

    def build(self, handler: Callable[[bytes], bytes]):
        """Register the region, spawn worker threads (generator)."""
        device = self.node.device
        self.region_mr = yield from device.reg_mr(
            self.pd, self.max_clients * _SLOT_BYTES, Access.ALL
        )
        self.ud_qp = device.create_qp(self.pd, "UD")
        self._thread_queues = [Store(self.sim) for _ in range(self.n_threads)]
        for index in range(self.n_threads):
            self._threads.append(
                self.sim.process(
                    self._worker(index, handler), name=f"herd-worker{index}"
                )
            )

    def connect_client(self, client_node):
        """Admit a client (generator; returns a ready HerdClient)."""
        slot = next(self._slot_counter)
        if slot >= self.max_clients:
            raise RuntimeError("HERD server slot space exhausted")
        client = HerdClient(self, client_node, slot)
        yield from client.build()
        self._clients[slot] = client
        return client

    def _notify(self, slot: int) -> None:
        self._thread_queues[slot % self.n_threads].put(slot)

    def clients_per_thread(self) -> int:
        """Slots each worker thread must scan per poll iteration."""
        return max(1, (len(self._clients) + self.n_threads - 1) // self.n_threads)

    def _worker(self, index: int, handler: Callable[[bytes], bytes]):
        cpu = self.node.cpu
        queue = self._thread_queues[index]
        while True:
            slot = yield from cpu.busy_wait(queue.get(), tag="herd-server")
            # Scanning this thread's client slots to find the hot one.
            scan = _SLOT_CHECK_US * self.clients_per_thread()
            yield self.sim.timeout(scan)
            cpu.charge("herd-server", scan)
            header = self.region_mr.read(slot * _SLOT_BYTES, 8)
            length, _slot = struct.unpack("<II", header)
            payload = self.region_mr.read(slot * _SLOT_BYTES + 8, length)
            result = handler(payload)
            if hasattr(result, "send"):
                result = yield from result
            client = self._clients[slot]
            # UD send reply (fire, completion unpolled).
            reply_wr = SendWR(Opcode.SEND, inline_data=result, signaled=False)
            self.ud_qp.post_send(
                reply_wr, dst=(client.node.node_id, client.ud_qp.qpn)
            )
            self.requests_served += 1
