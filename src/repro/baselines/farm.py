"""FaRM-style message passing: RPC built from two RDMA writes.

FaRM (NSDI '14) passes messages by RDMA-writing into a ring buffer at
the receiver, whose CPU busy-polls the ring tail.  An RPC is therefore
one write (request) + one write (reply) — the paper uses the sum of two
native writes as the *lower bound* an RPC mechanism can aspire to
(Figure 10's "2 Verbs writes" line).

The receiver's ring-poll is modelled with the standard busy-wait
discipline: full CPU charge while waiting plus half a poll-loop of
discovery latency.  A simulation-side signal marks "bytes have landed";
the data itself truly travels through the MR.
"""

from __future__ import annotations

import itertools
import struct
from typing import Dict

from ..sim import Store
from ..verbs import Access, Opcode, SendWR, WcStatus

__all__ = ["FarmEndpoint", "connect_farm_pair"]

_ring_counter = itertools.count(start=1)

_HDR = 8  # length(4) + sender slot id(4)


class FarmEndpoint:
    """One side of a FaRM-style write-ring channel."""

    def __init__(self, node, ring_bytes: int = 4 * 1024 * 1024):
        self.node = node
        self.sim = node.sim
        self.params = node.params
        self.ring_bytes = ring_bytes
        self.pd = node.device.alloc_pd()
        self.mr = None
        self.qp = None
        self.peer: "FarmEndpoint" = None
        self._write_offset = 0
        self._incoming: Store = Store(self.sim)
        self.messages_sent = 0
        self.messages_received = 0

    def build(self):
        """Register the ring MR (generator)."""
        self.mr = yield from self.node.device.reg_mr(
            self.pd, self.ring_bytes, Access.ALL
        )

    def send(self, payload: bytes):
        """One RDMA write carrying a length-prefixed message (generator)."""
        peer = self.peer
        offset = self._write_offset
        message = struct.pack("<II", len(payload), 0) + payload
        if offset + len(message) > peer.ring_bytes:
            offset = 0
        self._write_offset = offset + len(message)
        wr = SendWR(
            Opcode.WRITE,
            inline_data=message,
            remote_addr=peer.mr.base_addr + offset,
            rkey=peer.mr.rkey,
            signaled=False,
        )
        # The receiver memory-polls: it sees the bytes when they *land*,
        # half an RTT before the sender's ACK-driven completion.
        wr.delivered = self.sim.event()
        self.qp.post_send(wr)
        status = yield wr.delivered
        if status is not WcStatus.SUCCESS:
            raise RuntimeError(f"FaRM write failed: {status.value}")
        self.messages_sent += 1
        peer._incoming.put(offset)

    def recv(self):
        """Busy-poll the ring for the next message (generator; returns bytes)."""
        cpu = self.node.cpu
        offset = yield from cpu.busy_wait(self._incoming.get(), tag="farm-poll")
        length, _slot = struct.unpack("<II", self.mr.read(offset, _HDR))
        payload = self.mr.read(offset + _HDR, length)
        self.messages_received += 1
        return payload

    def rpc(self, payload: bytes):
        """Request + reply, both as single writes (generator)."""
        yield from self.send(payload)
        reply = yield from self.recv()
        return reply


def connect_farm_pair(node_a, node_b, ring_bytes: int = 4 * 1024 * 1024):
    """Build a connected FaRM channel between two nodes (generator)."""
    a = FarmEndpoint(node_a, ring_bytes)
    b = FarmEndpoint(node_b, ring_bytes)
    yield from a.build()
    yield from b.build()
    qa = node_a.device.create_qp(a.pd, "RC")
    qb = node_b.device.create_qp(b.pd, "RC")
    node_a.device.connect(qa, qb)
    a.qp, b.qp = qa, qb
    a.peer, b.peer = b, a
    return a, b
