"""FaSST-style RPC (Kalia et al., OSDI '16): two UD sends per call.

Each endpoint owns one UD QP and a master polling loop ("coroutine
scheduler") that drains the receive CQ.  On the server, the master
executes the RPC handler *inline in the polling loop* — great for the
tiny handlers FaSST benchmarks, but a serialization point the LITE
paper criticizes (§5.3): a slow handler stalls all request dispatch.

UD is unreliable and MTU-bound: requests and replies must fit in 4 KB,
and there is no one-sided RDMA at all (§6.1's FaSST row).
"""

from __future__ import annotations

import itertools
import struct
from typing import Callable, Dict, Optional

from ..verbs import Access, Opcode, RecvWR, SendWR, UD_MTU, WcStatus

__all__ = ["FasstEndpoint"]

_HDR = 16  # kind(4) token(4) total_len(4) frag_off(4)
_FRAG_BYTES = UD_MTU - _HDR
_KIND_REQ = 1
_KIND_REP = 2

# UD is unreliable: FaSST implements loss detection, sequencing and
# credit management in software — a per-datagram cost at each end.
_SW_RELIABILITY_US = 0.20


class FasstEndpoint:
    """One FaSST process: UD QP + master poller, client and server roles."""

    def __init__(self, node, handler: Optional[Callable[[bytes], bytes]] = None):
        self.node = node
        self.sim = node.sim
        self.params = node.params
        self.handler = handler
        self.pd = node.device.alloc_pd()
        self.mr = None
        self.ud_qp = None
        self._pending: Dict[int, object] = {}
        self._tokens = itertools.count(start=1)
        self._master = None
        # wr_id -> landing offset for every posted recv buffer.
        self._posted_slots: Dict[int, int] = {}
        self._next_slot = 0
        self.requests_served = 0
        self.calls_sent = 0

    def build(self):
        """Register buffers, stock the RQ, start the master (generator)."""
        device = self.node.device
        self.mr = yield from device.reg_mr(self.pd, 1024 * 1024, Access.ALL)
        self.ud_qp = device.create_qp(self.pd, "UD")
        self._restock(64)
        self._master = self.sim.process(self._master_loop(), name="fasst-master")

    def _restock(self, count: int) -> None:
        slots_total = (1024 * 1024) // UD_MTU
        for _ in range(count):
            offset = (self._next_slot % slots_total) * UD_MTU
            self._next_slot += 1
            wr = RecvWR(mr=self.mr, offset=offset, length=UD_MTU)
            self._posted_slots[wr.wr_id] = offset
            self.ud_qp.post_recv(wr)

    def address(self):
        """This endpoint's UD address handle (node, qpn)."""
        return (self.node.node_id, self.ud_qp.qpn)

    def _send_message(self, dst_addr, kind: int, token: int,
                      payload: bytes):
        """Ship a message as one or more UD datagrams (generator).

        Pays the software-reliability bookkeeping per datagram sent.
        """
        total = len(payload)
        offset = 0
        while True:
            piece = payload[offset : offset + _FRAG_BYTES]
            yield self.sim.timeout(_SW_RELIABILITY_US)
            self.node.cpu.charge("fasst-sw", _SW_RELIABILITY_US)
            datagram = struct.pack("<IIII", kind, token, total, offset) + piece
            wr = SendWR(Opcode.SEND, inline_data=datagram, signaled=False)
            self.ud_qp.post_send(wr, dst=dst_addr)
            offset += len(piece)
            if offset >= total:
                break

    def call(self, dst: "FasstEndpoint", payload: bytes):
        """One RPC to ``dst`` (generator; returns the reply bytes)."""
        if len(payload) > 2 * _FRAG_BYTES:
            raise ValueError("FaSST requests must fit one UD MTU")
        token = next(self._tokens)
        event = self.sim.event()
        self._pending[token] = event
        yield from self._send_message(dst.address(), _KIND_REQ, token, payload)
        self.calls_sent += 1
        reply = yield event
        return reply

    def _master_loop(self):
        """The coroutine master: poll CQ, dispatch, run handlers inline."""
        cpu = self.node.cpu
        while True:
            wc = yield from cpu.busy_wait(self.ud_qp.recv_cq.wait_wc(), tag="fasst-master")
            # Each received datagram landed in some recv slot; find it by
            # wr_id bookkeeping (modelled as a fixed small cost).
            yield self.sim.timeout(0.05 + _SW_RELIABILITY_US)
            cpu.charge("fasst-master", 0.05 + _SW_RELIABILITY_US)
            slot_offset = self._slot_offset_of(wc)
            header = self.mr.read(slot_offset, _HDR)
            kind, token, total, frag_off = struct.unpack("<IIII", header)
            piece = self.mr.read(slot_offset + _HDR, wc.byte_len - _HDR)
            replacement = RecvWR(mr=self.mr, offset=slot_offset, length=UD_MTU)
            self._posted_slots[replacement.wr_id] = slot_offset
            self.ud_qp.post_recv(replacement)
            body = self._reassemble(kind, token, total, frag_off, piece)
            if body is None:
                continue  # waiting for more fragments
            if kind == _KIND_REQ:
                if self.handler is None:
                    continue
                result = self.handler(body)
                if hasattr(result, "send"):
                    # Handler with simulated compute: runs INLINE in the
                    # master loop — the FaSST serialization bottleneck.
                    result = yield from result
                if len(result) > 2 * _FRAG_BYTES:
                    raise ValueError("FaSST replies exceed two UD MTUs")
                yield from self._send_message(
                    (wc.src_node, self._peer_qpn(wc)), _KIND_REP, token, result
                )
                self.requests_served += 1
            else:
                pending = self._pending.pop(token, None)
                if pending is not None and not pending.triggered:
                    pending.succeed(body)

    def _reassemble(self, kind, token, total, frag_off, piece):
        """Collect fragments of one logical message; None until whole."""
        if total <= _FRAG_BYTES:
            return piece
        if not hasattr(self, "_frags"):
            self._frags = {}
        parts = self._frags.setdefault((kind, token), {})
        parts[frag_off] = piece
        if sum(len(p) for p in parts.values()) < total:
            return None
        del self._frags[(kind, token)]
        return b"".join(parts[off] for off in sorted(parts))

    # -- slot bookkeeping ---------------------------------------------------
    def _slot_offset_of(self, wc) -> int:
        offset = self._posted_slots.pop(wc.wr_id, None)
        if offset is None:
            raise RuntimeError("FaSST: completion for unknown recv WR")
        return offset

    def _peer_qpn(self, wc) -> int:
        return wc.src_qpn
