"""Send/recv-based RPC buffer provisioning (the Figure 12 comparison).

With two-sided sends, the receiver must pre-post buffers big enough for
the *largest possible* message; every arriving message consumes one
whole posted buffer regardless of its actual size.  The standard
mitigation (Shipman et al., PVM/MPI '07) posts several receive queues
with different buffer size classes and steers each message to the
smallest class that fits.

LITE's write-imm RPC consumes no receive buffers at all — payloads land
inside the ring LMR packed end-to-end — so its utilization is bounded
only by per-request header overhead (§5.3, Figure 12).
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["SizeClassedReceiver", "LiteRingReceiver", "memory_utilization"]


class SizeClassedReceiver:
    """Send/recv RPC receiver with N size-classed receive queues."""

    def __init__(self, size_classes: Sequence[int], max_message: int):
        if not size_classes:
            raise ValueError("need at least one receive-queue size class")
        classes = sorted(size_classes)
        if classes[-1] < max_message:
            raise ValueError(
                f"largest class {classes[-1]} cannot hold max message {max_message}"
            )
        self.size_classes = classes
        self.payload_bytes = 0
        self.buffer_bytes = 0
        self.messages = 0
        self.per_class_counts = {size: 0 for size in classes}

    def deliver(self, message_bytes: int) -> int:
        """Consume one posted buffer; returns the class size used."""
        if message_bytes < 0:
            raise ValueError("negative message size")
        for size in self.size_classes:
            if message_bytes <= size:
                self.payload_bytes += message_bytes
                self.buffer_bytes += size
                self.messages += 1
                self.per_class_counts[size] += 1
                return size
        raise ValueError(
            f"message of {message_bytes} B exceeds every receive class"
        )

    def utilization(self) -> float:
        """Payload bytes / posted-buffer bytes consumed."""
        if self.buffer_bytes == 0:
            return 1.0
        return self.payload_bytes / self.buffer_bytes


class LiteRingReceiver:
    """LITE write-imm ring: consumes payload + a fixed header per call."""

    def __init__(self, header_bytes: int = 20):
        self.header_bytes = header_bytes
        self.payload_bytes = 0
        self.ring_bytes = 0
        self.messages = 0

    def deliver(self, message_bytes: int) -> int:
        """Account one ring delivery; returns bytes consumed."""
        if message_bytes < 0:
            raise ValueError("negative message size")
        consumed = message_bytes + self.header_bytes
        self.payload_bytes += message_bytes
        self.ring_bytes += consumed
        self.messages += 1
        return consumed

    def utilization(self) -> float:
        """Payload bytes / ring bytes consumed."""
        if self.ring_bytes == 0:
            return 1.0
        return self.payload_bytes / self.ring_bytes


def geometric_classes(n_queues: int, max_message: int) -> List[int]:
    """The space-optimizing class layout: geometric sizes ending at max."""
    classes = []
    size = max_message
    for _ in range(n_queues):
        classes.append(size)
        size = max(64, size // 8)
    return sorted(classes)


def memory_utilization(message_sizes: Sequence[int], n_queues: int,
                       max_message: int) -> float:
    """Utilization of an n-queue send/recv receiver over a trace."""
    receiver = SizeClassedReceiver(geometric_classes(n_queues, max_message),
                                   max_message)
    for size in message_sizes:
        receiver.deliver(size)
    return receiver.utilization()
