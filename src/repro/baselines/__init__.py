"""Baseline RPC systems the paper compares against."""

from .farm import FarmEndpoint, connect_farm_pair
from .fasst import FasstEndpoint
from .herd import HerdClient, HerdServer
from .sendrecv import (
    LiteRingReceiver,
    SizeClassedReceiver,
    geometric_classes,
    memory_utilization,
)

__all__ = [
    "FarmEndpoint",
    "connect_farm_pair",
    "HerdServer",
    "HerdClient",
    "FasstEndpoint",
    "SizeClassedReceiver",
    "LiteRingReceiver",
    "geometric_classes",
    "memory_utilization",
]
