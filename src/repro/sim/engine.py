"""Discrete-event simulation engine.

A compact, from-scratch engine in the style of SimPy: a :class:`Simulator`
owns a time-ordered event heap, and :class:`Process` objects are Python
generators that ``yield`` :class:`Event` instances to wait on them.

All simulated time is in **microseconds** (float), matching the latency
scales reported in the LITE paper.

The engine is the wall-clock hot path of every benchmark, so its object
model is deliberately slotted and allocation-light: all event classes
carry ``__slots__``, and :class:`Timeout` instances — by far the most
frequently allocated event kind — are recycled through a free-list pool
once the engine can prove (via the reference count) that no simulation
code still holds them.
"""

from __future__ import annotations

import heapq
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for illegal uses of the simulation API."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()

# Cap on the recycled-Timeout free list (objects, not bytes).
_TIMEOUT_POOL_MAX = 4096


class Event:
    """A one-shot occurrence at a point in simulated time.

    Events start *pending*; they are later *triggered* (succeed or fail)
    and their callbacks run when the simulator pops them off the heap.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused", "_cancelled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks have run (value is final)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded (raises if pending)."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's result (raises if still pending)."""
        if self._value is PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(delay, self)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._ok = False
        self._value = exception
        self.sim._enqueue(delay, self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    @property
    def cancelled(self) -> bool:
        """True once cancel() was called before the callbacks ran."""
        return self._cancelled

    def cancel(self) -> None:
        """Cancel the event: its callbacks never run.

        The main use is retiring the loser of a timeout-vs-completion
        race (``AnyOf([reply, timeout])``): cancelling the pending timer
        keeps long retry deadlines from pinning the event heap.  A
        cancelled event stays lazily in the heap and is discarded when
        it reaches the front.  No-op on an already-processed event.
        Cancelling an event that a process is directly waiting on leaves
        that process parked forever — only cancel events nobody waits on.
        """
        if self.callbacks is None:
            return
        self._cancelled = True

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)
        if self._ok is False and not self._defused:
            raise self._value


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._ok = True
        self._value = value
        self.delay = delay
        sim._enqueue(delay, self)


class Process(Event):
    """Wraps a generator; it is itself an event that fires on return.

    The generator yields :class:`Event` objects.  When a yielded event
    succeeds, its value is sent back into the generator; when it fails,
    the exception is thrown into the generator.
    """

    __slots__ = ("_generator", "name", "_target", "_stale", "_ctx")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process target is not a generator: {generator!r}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Tracing context: a spawned process inherits the spawner's
        # current span, like task-local state in an async runtime.
        tracer = sim.tracer
        self._ctx = tracer.current if tracer is not None else None
        # Events this process stopped waiting on (interrupt detach); the
        # subscribed callback stays in their lists and is ignored when it
        # eventually fires, avoiding an O(n) list scan per interrupt.
        self._stale: Optional[set] = None
        # Bootstrap: resume once at the current time.
        start = Event(sim)
        start._ok = True
        start._value = None
        start.callbacks.append(self._resume)
        sim._enqueue(0.0, start)

    @property
    def is_alive(self) -> bool:
        """True while the process generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self is self.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        # Detach from whatever the process currently waits on: the old
        # target keeps its callback, but _resume will drop its firing on
        # the floor (it is marked stale).  This keeps interrupt O(1)
        # where the seed paid an O(n) callbacks.remove scan.
        target = self._target
        if target is not None and target.callbacks is not None:
            if self._stale is None:
                self._stale = set()
            self._stale.add(target)
            self._target = None
        self.sim._enqueue(0.0, interrupt_event)

    def _resume(self, event: Event) -> None:
        stale = self._stale
        if stale and event in stale:
            # A wakeup from an event this process was detached from by
            # interrupt(): ignore it.  Failure semantics match the
            # seed's callback removal — the event stays un-defused.
            stale.discard(event)
            return
        sim = self.sim
        generator = self._generator
        sim.active_process = self
        self._target = None
        tracer = sim.tracer
        if tracer is not None:
            tracer.current = self._ctx
        while True:
            try:
                if event._ok:
                    target = generator.send(event._value)
                else:
                    event._defused = True
                    target = generator.throw(event._value)
            except StopIteration as exc:
                sim.active_process = None
                if tracer is not None:
                    tracer.current = None
                self.succeed(exc.value)
                return
            except BaseException as exc:
                sim.active_process = None
                if tracer is not None:
                    tracer.current = None
                self.fail(exc)
                return

            if type(target) is not Timeout and not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}"
                )
                try:
                    generator.throw(exc)
                except StopIteration as stop:
                    sim.active_process = None
                    if tracer is not None:
                        tracer.current = None
                    self.succeed(stop.value)
                    return
                except BaseException as err:
                    sim.active_process = None
                    if tracer is not None:
                        tracer.current = None
                    self.fail(err)
                    return
                continue

            if target.callbacks is None:
                # Already processed; resume immediately with its value.
                event = target
                continue

            target.callbacks.append(self._resume)
            self._target = target
            sim.active_process = None
            if tracer is not None:
                # Park the span context with the process across the wait.
                self._ctx = tracer.current
                tracer.current = None
            return


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = 0
        already_processed = None
        for event in self.events:
            if not isinstance(event, Event):
                raise SimulationError(f"non-event in condition: {event!r}")
            if event.callbacks is None:
                if already_processed is None:
                    already_processed = []
                already_processed.append(event)
            else:
                self._pending += 1
                event.callbacks.append(self._observe)
        if already_processed:
            for event in already_processed:
                if self.triggered:
                    break
                self._pre_observe(event)
        self._check_start()

    def _observe(self, event: Event) -> None:
        raise NotImplementedError

    def _pre_observe(self, event: Event) -> None:
        """Handle an event that was already processed at condition birth."""
        raise NotImplementedError

    def _check_start(self) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        return {
            index: event._value
            for index, event in enumerate(self.events)
            if event.callbacks is None and event._ok
        }


class AllOf(_Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if event._ok is False:
            # Defuse even when the condition already fired: a second
            # concurrent failure must not crash the run.
            event._defused = True
        if self._value is not PENDING:
            return
        if event._ok is False:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending <= 0:
            self.succeed(self._results())

    def _pre_observe(self, event: Event) -> None:
        if event._ok is False:
            self.fail(event._value)

    def _check_start(self) -> None:
        if self._value is PENDING and self._pending <= 0:
            self.succeed(self._results())


class AnyOf(_Condition):
    """Fires when the first constituent event fires."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if event._ok is False:
            # Losers failing after the race resolved must not crash.
            event._defused = True
        if self._value is not PENDING:
            return
        if event._ok is False:
            self.fail(event._value)
            return
        self.succeed(self._results())

    def _pre_observe(self, event: Event) -> None:
        if event._ok is False:
            self.fail(event._value)
        else:
            self.succeed(self._results())

    def _check_start(self) -> None:
        return None


class Simulator:
    """The event loop: owns simulated time and the pending-event heap."""

    __slots__ = ("now", "_heap", "_seq", "active_process", "_timeout_pool",
                 "tracer")

    def __init__(self):
        self.now: float = 0.0
        self._heap: list = []
        self._seq = 0
        self.active_process: Optional[Process] = None
        # Recycled Timeout instances (see step()).
        self._timeout_pool: list = []
        # Observability hook (repro.obs.Tracer); None = tracing off.
        self.tracer = None

    # -- scheduling -----------------------------------------------------
    def _enqueue(self, delay: float, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` us from now."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            event = pool.pop()
            event.callbacks = []
            event._value = value
            event._ok = True
            event._defused = False
            event._cancelled = False
            event.delay = delay
            self._enqueue(delay, event)
            return event
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn ``generator`` as a concurrent process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when every given event has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first given event fires."""
        return AnyOf(self, events)

    # -- execution ------------------------------------------------------
    def _prune(self) -> None:
        """Discard cancelled events sitting at the front of the heap."""
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heapq.heappop(heap)

    def step(self) -> None:
        """Pop and execute the next scheduled event."""
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heapq.heappop(heap)
        if not heap:
            return
        when, _seq, event = heapq.heappop(heap)
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        event._run_callbacks()
        # Recycle plain Timeouts nobody references anymore: the heap
        # tuple is gone and the waiter resumed, so a refcount of 2
        # (local + getrefcount argument) proves the object is garbage.
        if type(event) is Timeout:
            pool = self._timeout_pool
            if len(pool) < _TIMEOUT_POOL_MAX and getrefcount(event) == 2:
                pool.append(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        self._prune()
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None, stop: Optional[Event] = None):
        """Run until the heap drains, ``until`` time passes, or ``stop`` fires.

        Returns the value of ``stop`` if given and it fired.
        """
        if stop is not None and not isinstance(stop, Event):
            raise SimulationError("stop must be an Event")
        step = self.step
        heap = self._heap
        if stop is None and until is None:
            while heap:
                step()
        else:
            while heap:
                if stop is not None and stop.callbacks is None:
                    break
                if until is not None and self.peek() > until:
                    self.now = until
                    break
                step()
        if stop is not None:
            if not stop.triggered:
                raise SimulationError(
                    "simulation ran out of events before stop condition fired"
                )
            if stop._ok:
                return stop._value
            stop._defused = True
            raise stop._value
        return None

    def run_process(self, generator: Generator, until: Optional[float] = None):
        """Convenience: spawn ``generator`` and run until it finishes."""
        proc = self.process(generator)
        return self.run(until=until, stop=proc)
