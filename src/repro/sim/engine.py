"""Discrete-event simulation engine.

A compact, from-scratch engine in the style of SimPy: a :class:`Simulator`
owns a time-ordered event queue, and :class:`Process` objects are Python
generators that ``yield`` :class:`Event` instances to wait on them.

All simulated time is in **microseconds** (float), matching the latency
scales reported in the LITE paper.

The engine is the wall-clock hot path of every benchmark, so its object
model is deliberately slotted and allocation-light: all event classes
carry ``__slots__``, and :class:`Timeout` instances — by far the most
frequently allocated event kind — are recycled through a free-list pool
once the engine can prove (via the reference count) that no simulation
code still holds them.

The scheduler itself is a three-tier hybrid (see docs/INTERNALS.md §12):

- a FIFO *now-queue* for events due at the current instant (process
  resumptions, ``succeed()``/``fail()``, zero timeouts) — the majority
  of all enqueues, served with no comparisons and no tuple allocation;
- a 256-slot, 1 µs-granularity *timer wheel* for near-future timeouts
  (wire/processing delays), each slot a tiny heap;
- the original binary *heap* for far-future or irregular deadlines
  (RPC timeouts, keep-alive timers).

The total order is identical to a single heap keyed ``(time, seq)``:
``seq`` increments on every enqueue, heap and wheel entries carry it
explicitly, and now-queue entries are provably newer (larger ``seq``)
than any same-timestamp entry elsewhere, so FIFO order *is* seq order.
Cancelled events are discarded lazily at the queue front and compacted
wholesale when they exceed half of all pending entries.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from sys import getrefcount
from types import GeneratorType
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for illegal uses of the simulation API."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()

# Cap on the recycled-Timeout free list (objects, not bytes).
_TIMEOUT_POOL_MAX = 4096
# Cap on the recycled plain-Event free list.
_EVENT_POOL_MAX = 4096

# Timer wheel geometry: 256 slots of 1 us each.  Delays that land within
# the 256 us horizon go to a per-slot mini-heap; everything farther (or
# irregular) stays in the overflow heap.
_WHEEL_SLOTS = 256
_WHEEL_MASK = _WHEEL_SLOTS - 1

# Lazy-cancellation compaction: rebuild the queues once cancelled
# entries outnumber live ones, but never bother below this many.
_COMPACT_MIN_CANCELLED = 64


class Event:
    """A one-shot occurrence at a point in simulated time.

    Events start *pending*; they are later *triggered* (succeed or fail)
    and their callbacks run when the simulator pops them off the heap.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused", "_cancelled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks have run (value is final)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded (raises if pending)."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's result (raises if still pending)."""
        if self._value is PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        if delay == 0.0:
            # Inlined delay-0 _enqueue: the dominant case (resource
            # grants, completions) goes straight to the now-queue.
            sim._seq += 1
            sim._nowq.append(self)
        else:
            sim._enqueue(delay, self)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._ok = False
        self._value = exception
        sim = self.sim
        if delay == 0.0:
            sim._seq += 1
            sim._nowq.append(self)
        else:
            sim._enqueue(delay, self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    @property
    def cancelled(self) -> bool:
        """True once cancel() was called before the callbacks ran."""
        return self._cancelled

    def cancel(self) -> None:
        """Cancel the event: its callbacks never run.

        The main use is retiring the loser of a timeout-vs-completion
        race (``AnyOf([reply, timeout])``): cancelling the pending timer
        keeps long retry deadlines from pinning the event heap.  A
        cancelled event stays lazily in the heap and is discarded when
        it reaches the front.  No-op on an already-processed event.
        Cancelling an event that a process is directly waiting on leaves
        that process parked forever — only cancel events nobody waits on.
        """
        if self.callbacks is None or self._cancelled:
            return
        self._cancelled = True
        sim = self.sim
        cancelled = sim._ncancelled + 1
        sim._ncancelled = cancelled
        if (cancelled >= _COMPACT_MIN_CANCELLED
                and cancelled * 2 > (len(sim._heap) + sim._wheel_count
                                     + len(sim._nowq))):
            sim._compact()

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)
        if self._ok is False and not self._defused:
            raise self._value


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._ok = True
        self._value = value
        self.delay = delay
        sim._enqueue(delay, self)


class Process(Event):
    """Wraps a generator; it is itself an event that fires on return.

    The generator yields :class:`Event` objects.  When a yielded event
    succeeds, its value is sent back into the generator; when it fails,
    the exception is thrown into the generator.
    """

    __slots__ = ("_generator", "name", "_target", "_stale", "_ctx", "_cb")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if type(generator) is not GeneratorType and (
                not hasattr(generator, "send")
                or not hasattr(generator, "throw")):
            raise SimulationError(f"process target is not a generator: {generator!r}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Tracing context: a spawned process inherits the spawner's
        # current span, like task-local state in an async runtime.
        tracer = sim.tracer
        self._ctx = tracer.current if tracer is not None else None
        # Events this process stopped waiting on (interrupt detach); the
        # subscribed callback stays in their lists and is ignored when it
        # eventually fires, avoiding an O(n) list scan per interrupt.
        self._stale: Optional[set] = None
        # The one bound-method object this process ever subscribes with
        # (a fresh `self._resume` per park would allocate every time).
        self._cb = self._resume
        # Bootstrap: resume once at the current time (inlined delay-0
        # enqueue — straight to the now-queue).
        start = sim.event()
        start._ok = True
        start._value = None
        start.callbacks.append(self._cb)
        sim._seq += 1
        sim._nowq.append(start)

    @property
    def is_alive(self) -> bool:
        """True while the process generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self is self.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._cb)
        # Detach from whatever the process currently waits on: the old
        # target keeps its callback, but _resume will drop its firing on
        # the floor (it is marked stale).  This keeps interrupt O(1)
        # where the seed paid an O(n) callbacks.remove scan.
        target = self._target
        if target is not None and target.callbacks is not None:
            if self._stale is None:
                self._stale = set()
            self._stale.add(target)
            self._target = None
        self.sim._enqueue(0.0, interrupt_event)

    def _resume(self, event: Event) -> None:
        stale = self._stale
        if stale and event in stale:
            # A wakeup from an event this process was detached from by
            # interrupt(): ignore it.  Failure semantics match the
            # seed's callback removal — the event stays un-defused.
            stale.discard(event)
            return
        sim = self.sim
        generator = self._generator
        send = generator.send
        sim.active_process = self
        self._target = None
        tracer = sim.tracer
        if tracer is not None:
            tracer.current = self._ctx
        while True:
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    event._defused = True
                    target = generator.throw(event._value)
            except StopIteration as exc:
                sim.active_process = None
                if tracer is not None:
                    tracer.current = None
                self.succeed(exc.value)
                return
            except BaseException as exc:
                sim.active_process = None
                if tracer is not None:
                    tracer.current = None
                self.fail(exc)
                return

            cls = type(target)
            if (cls is not Timeout and cls is not Event
                    and not isinstance(target, Event)):
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}"
                )
                try:
                    generator.throw(exc)
                except StopIteration as stop:
                    sim.active_process = None
                    if tracer is not None:
                        tracer.current = None
                    self.succeed(stop.value)
                    return
                except BaseException as err:
                    sim.active_process = None
                    if tracer is not None:
                        tracer.current = None
                    self.fail(err)
                    return
                continue

            if target.callbacks is None:
                # Already processed; resume immediately with its value.
                event = target
                continue

            target.callbacks.append(self._cb)
            self._target = target
            sim.active_process = None
            if tracer is not None:
                # Park the span context with the process across the wait.
                self._ctx = tracer.current
                tracer.current = None
            return


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = 0
        already_processed = None
        for event in self.events:
            if not isinstance(event, Event):
                raise SimulationError(f"non-event in condition: {event!r}")
            if event.callbacks is None:
                if already_processed is None:
                    already_processed = []
                already_processed.append(event)
            else:
                self._pending += 1
                event.callbacks.append(self._observe)
        if already_processed:
            for event in already_processed:
                if self.triggered:
                    break
                self._pre_observe(event)
        self._check_start()

    def _observe(self, event: Event) -> None:
        raise NotImplementedError

    def _pre_observe(self, event: Event) -> None:
        """Handle an event that was already processed at condition birth."""
        raise NotImplementedError

    def _check_start(self) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        return {
            index: event._value
            for index, event in enumerate(self.events)
            if event.callbacks is None and event._ok
        }


class AllOf(_Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if event._ok is False:
            # Defuse even when the condition already fired: a second
            # concurrent failure must not crash the run.
            event._defused = True
        if self._value is not PENDING:
            return
        if event._ok is False:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending <= 0:
            self.succeed(self._results())

    def _pre_observe(self, event: Event) -> None:
        if event._ok is False:
            self.fail(event._value)

    def _check_start(self) -> None:
        if self._value is PENDING and self._pending <= 0:
            self.succeed(self._results())


class AnyOf(_Condition):
    """Fires when the first constituent event fires."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if event._ok is False:
            # Losers failing after the race resolved must not crash.
            event._defused = True
        if self._value is not PENDING:
            return
        if event._ok is False:
            self.fail(event._value)
            return
        self.succeed(self._results())

    def _pre_observe(self, event: Event) -> None:
        if event._ok is False:
            self.fail(event._value)
        else:
            self.succeed(self._results())

    def _check_start(self) -> None:
        return None


class Simulator:
    """The event loop: owns simulated time and the pending-event queues.

    Pending events live in one of three structures sharing a single
    total order keyed ``(time, seq)``:

    - ``_nowq``: deque of events due exactly at ``now`` (FIFO = seq
      order; see module docstring for why that holds);
    - ``_wheel``: 256 × 1 µs timer-wheel slots, each a small heap of
      ``(time, seq, event)`` tuples, for deadlines within the horizon;
    - ``_heap``: overflow heap for everything beyond the wheel horizon.

    ``_seq`` still increments on *every* enqueue (it doubles as the
    engine's total-event counter for benchmarks), even though now-queue
    entries never materialize their tuple.
    """

    __slots__ = ("now", "_heap", "_seq", "active_process", "_timeout_pool",
                 "_event_pool", "tracer", "_nowq", "_wheel", "_wheel_count",
                 "_wheel_min", "_ncancelled", "_fpq", "fastpath_enabled")

    def __init__(self):
        self.now: float = 0.0
        self._heap: list = []
        self._seq = 0
        self.active_process: Optional[Process] = None
        # Recycled Timeout / plain-Event instances (see step()).  Bounded
        # deques: append on a full pool silently evicts the oldest, so
        # the hot recycle path needs no length check.
        self._timeout_pool: deque = deque(maxlen=_TIMEOUT_POOL_MAX)
        self._event_pool: deque = deque(maxlen=_EVENT_POOL_MAX)
        # Observability hook (repro.obs.Tracer); None = tracing off.
        self.tracer = None
        self._nowq: deque = deque()
        self._wheel: list = [[] for _ in range(_WHEEL_SLOTS)]
        self._wheel_count = 0
        # Lower bound on the absolute slot index of the earliest wheel
        # entry; advanced lazily by the slot scan in _earliest().
        self._wheel_min = 0
        # Cancelled events still sitting in a queue (compaction trigger).
        self._ncancelled = 0
        # Fast-path batch queue: ``(when, seq, fn)`` tuples scheduled by
        # run-to-completion op commits (see verbs/fastpath.py).  Each
        # entry is one *batch dispatch*: the callable applies every state
        # transition (resource releases, CQE pushes, completion wake-ups)
        # that lands at that instant, replacing one scheduled event per
        # transition.  Entries are never cancelled, and seqs are unique,
        # so the callable is never compared.
        self._fpq: list = []
        # Kill switch for run-to-completion op execution.  Read once at
        # construction; tests may also flip the attribute directly.
        self.fastpath_enabled = os.environ.get("REPRO_NO_FASTPATH", "") != "1"

    # -- scheduling -----------------------------------------------------
    def _enqueue(self, delay: float, event: Event) -> None:
        seq = self._seq + 1
        self._seq = seq
        now = self.now
        when = now + delay
        if when == now:
            # Due this instant: plain FIFO, no tuple, no comparisons.
            self._nowq.append(event)
        elif when - now < 255.0:
            # Within the wheel horizon.  255 (not 256) keeps the slot
            # offset strictly below _WHEEL_SLOTS without a second int().
            slot = int(when)
            count = self._wheel_count
            if count == 0 or slot < self._wheel_min:
                self._wheel_min = slot
            self._wheel_count = count + 1
            heapq.heappush(self._wheel[slot & _WHEEL_MASK],
                           (when, seq, event))
        else:
            heapq.heappush(self._heap, (when, seq, event))

    def _earliest(self):
        """The earliest pending wheel/heap entry and its container.

        Returns ``(entry, container)`` or ``(None, None)``; cancelled
        entries at either front are discarded on the way.  The now-queue
        is *not* considered: its entries sort after any same-timestamp
        wheel/heap entry (larger seq), so callers handle it separately.
        """
        best = None
        container = None
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2]._cancelled:
                heapq.heappop(heap)
                self._ncancelled -= 1
                continue
            best = entry
            container = heap
            break
        if self._wheel_count:
            wheel = self._wheel
            slot_index = self._wheel_min
            while True:
                slot = wheel[slot_index & _WHEEL_MASK]
                while slot:
                    entry = slot[0]
                    if entry[2]._cancelled:
                        heapq.heappop(slot)
                        self._wheel_count -= 1
                        self._ncancelled -= 1
                        continue
                    if best is None or entry < best:
                        best = entry
                        container = slot
                    break
                if slot:
                    break
                if not self._wheel_count:
                    break
                slot_index += 1
            self._wheel_min = slot_index
        return best, container

    def fp_schedule(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule a fast-path batch dispatch at absolute time ``when``.

        ``fn`` runs with ``now == when``, ordered against ordinary
        events by ``(when, seq)`` exactly as if it had been enqueued
        here as an event.  It must only *enqueue* further work (succeed
        events, release resources), never run callbacks synchronously.
        """
        seq = self._seq + 1
        self._seq = seq
        heapq.heappush(self._fpq, (when, seq, fn))

    def fp_horizon(self) -> float:
        """Earliest pending *ordinary* event time (``inf`` if none).

        Fast-path commit asks: "can anything already scheduled observe
        intermediate state before this op would finish?"  Pending batch
        dispatches are invisible — they belong to already-committed fast
        ops whose interleaving is accounted for — so only the now-queue,
        wheel, and heap are consulted.

        The horizon is cluster-global: there is one event loop for every
        simulated host, so a single comparison covers both ends of a
        cross-node chain.  The fused two-sided RPC chain leans on this —
        its window spans client append, fabric transfer, server IMM
        dispatch, handler wakeup, and the reply tail across *two* hosts,
        and a pending event on either host (a fault-plan crash, a lease
        sweep, an unrelated op) bounds the same horizon and vetoes the
        commit.
        """
        if self._nowq:
            return self.now
        entry, _container = self._earliest()
        return entry[0] if entry is not None else float("inf")

    def _compact(self) -> None:
        """Rebuild the queues without their cancelled entries.

        Triggered from :meth:`Event.cancel` once cancelled entries
        outnumber live ones, so chaos/keep-alive workloads that cancel
        long retry deadlines by the thousand do not accrete dead timers
        (the queues are mutated in place: ``run()`` holds references).
        """
        heap = self._heap
        live = [entry for entry in heap if not entry[2]._cancelled]
        heapq.heapify(live)
        heap[:] = live
        count = 0
        for slot in self._wheel:
            if slot:
                live = [entry for entry in slot if not entry[2]._cancelled]
                heapq.heapify(live)
                slot[:] = live
                count += len(live)
        self._wheel_count = count
        nowq = self._nowq
        for _ in range(len(nowq)):
            event = nowq.popleft()
            if not event._cancelled:
                nowq.append(event)
        self._ncancelled = 0

    def event(self) -> Event:
        """A fresh untriggered event."""
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.callbacks = []
            event._value = PENDING
            event._ok = None
            event._defused = False
            event._cancelled = False
            return event
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` us from now."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            event = pool.pop()
            event.callbacks = []
            event._value = value
            event._ok = True
            event._defused = False
            event._cancelled = False
            event.delay = delay
            # _enqueue inlined: timeouts are the hottest enqueue source.
            seq = self._seq + 1
            self._seq = seq
            now = self.now
            when = now + delay
            if when == now:
                self._nowq.append(event)
            elif when - now < 255.0:
                slot = int(when)
                count = self._wheel_count
                if count == 0 or slot < self._wheel_min:
                    self._wheel_min = slot
                self._wheel_count = count + 1
                heapq.heappush(self._wheel[slot & _WHEEL_MASK],
                               (when, seq, event))
            else:
                heapq.heappush(self._heap, (when, seq, event))
            return event
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn ``generator`` as a concurrent process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when every given event has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first given event fires."""
        return AnyOf(self, events)

    # -- execution ------------------------------------------------------
    def step(self) -> None:
        """Pop and execute the next scheduled event."""
        nowq = self._nowq
        while nowq and nowq[0]._cancelled:
            nowq.popleft()
            self._ncancelled -= 1
        fpq = self._fpq
        event = None
        if nowq:
            # Fast path: something is due this very instant.  The only
            # entries that may precede it (same timestamp, smaller seq)
            # live in the current wheel slot, at the heap top, or in the
            # fast-path batch queue.
            now = self.now
            slot = self._wheel[int(now) & _WHEEL_MASK]
            while slot and slot[0][0] == now and slot[0][2]._cancelled:
                heapq.heappop(slot)
                self._wheel_count -= 1
                self._ncancelled -= 1
            heap = self._heap
            while heap and heap[0][0] == now and heap[0][2]._cancelled:
                heapq.heappop(heap)
                self._ncancelled -= 1
            container = None
            if slot and slot[0][0] == now:
                container = slot
            elif heap and heap[0][0] == now:
                container = heap
            if fpq and fpq[0][0] == now and (
                container is None or fpq[0][1] < container[0][1]
            ):
                fn = heapq.heappop(fpq)[2]
                fn()
                return
            if container is not None:
                event = heapq.heappop(container)[2]
                if container is not heap:
                    self._wheel_count -= 1
            else:
                event = nowq.popleft()
        else:
            entry, container = self._earliest()
            if fpq and (entry is None or fpq[0][:2] < entry[:2]):
                when, _s, fn = heapq.heappop(fpq)
                if when < self.now:
                    raise SimulationError("time went backwards")
                self.now = when
                fn()
                return
            if entry is None:
                return
            when = entry[0]
            if when < self.now:
                raise SimulationError("time went backwards")
            heapq.heappop(container)
            if container is not self._heap:
                self._wheel_count -= 1
            self.now = when
            event = entry[2]
            # Drop the tuple so the refcount-2 recycle proof below holds.
            entry = None
        event._run_callbacks()
        # Recycle Timeouts/Events nobody references anymore: the queue
        # entry is gone and the waiter resumed, so a refcount of 2
        # (local + getrefcount argument) proves the object is garbage.
        cls = type(event)
        if cls is Timeout:
            if getrefcount(event) == 2:
                self._timeout_pool.append(event)
        elif cls is Event:
            if getrefcount(event) == 2:
                self._event_pool.append(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        nowq = self._nowq
        while nowq and nowq[0]._cancelled:
            nowq.popleft()
            self._ncancelled -= 1
        if nowq:
            return self.now
        entry, _container = self._earliest()
        when = entry[0] if entry is not None else float("inf")
        fpq = self._fpq
        if fpq and fpq[0][0] < when:
            return fpq[0][0]
        return when

    def run(self, until: Optional[float] = None, stop: Optional[Event] = None):
        """Run until the queues drain, ``until`` passes, or ``stop`` fires.

        Returns the value of ``stop`` if given and it fired.

        The unbounded form (``until is None``) is the wall-clock hot
        loop of every benchmark, so the dispatch is inlined here rather
        than calling :meth:`step` per event.  It cycles three phases:

        1. pop every wheel/heap entry due at the current instant (they
           carry smaller seqs than anything in the now-queue);
        2. drain the now-queue with *no* wheel/heap checks — nothing
           processed in this phase can schedule a new entry elsewhere
           that is due at the current instant;
        3. advance ``now`` to the earliest remaining entry and loop
           (phase 1 pops it).

        Event processing order is identical to repeated :meth:`step`.
        """
        if stop is not None and not isinstance(stop, Event):
            raise SimulationError("stop must be an Event")
        nowq = self._nowq
        heap = self._heap
        if until is not None:
            while nowq or heap or self._wheel_count or self._fpq:
                if stop is not None and stop.callbacks is None:
                    break
                if self.peek() > until:
                    self.now = until
                    break
                self.step()
        else:
            wheel = self._wheel
            heappop = heapq.heappop
            popleft = nowq.popleft
            timeout_pool = self._timeout_pool
            event_pool = self._event_pool
            timeout_cls = Timeout
            event_cls = Event
            refcount = getrefcount
            fpq = self._fpq
            running = not (stop is not None and stop.callbacks is None)
            while running and (nowq or heap or self._wheel_count or fpq):
                # -- phase 1: externals due at the current instant ----
                # (plus fast-path batch dispatches, merged in (when, seq)
                # order; their callables only enqueue further work, so
                # they cannot trigger ``stop`` mid-phase.)
                now = self.now
                slot = wheel[int(now) & _WHEEL_MASK]
                while True:
                    if slot and slot[0][0] == now:
                        if heap and heap[0] < slot[0]:
                            entry = heap[0]
                            source = heap
                        else:
                            entry = slot[0]
                            source = slot
                    elif heap and heap[0][0] == now:
                        entry = heap[0]
                        source = heap
                    else:
                        entry = None
                        source = None
                    if fpq and fpq[0][0] == now and (
                        entry is None or fpq[0][1] < entry[1]
                    ):
                        fn = heappop(fpq)[2]
                        fn()
                        continue
                    if source is None:
                        break
                    event = heappop(source)[2]
                    # Drop the peeked tuple so the refcount-2 recycle
                    # proof below still holds.
                    entry = None
                    if source is not heap:
                        self._wheel_count -= 1
                    if event._cancelled:
                        self._ncancelled -= 1
                        continue
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if event._ok is False and not event._defused:
                        raise event._value
                    cls = type(event)
                    if cls is timeout_cls:
                        if refcount(event) == 2:
                            timeout_pool.append(event)
                    elif cls is event_cls:
                        if refcount(event) == 2:
                            event_pool.append(event)
                    if stop is not None and stop.callbacks is None:
                        running = False
                        break
                if not running:
                    break
                # -- phase 2: the now-queue ---------------------------
                while nowq:
                    event = popleft()
                    if event._cancelled:
                        self._ncancelled -= 1
                        continue
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if event._ok is False and not event._defused:
                        raise event._value
                    cls = type(event)
                    if cls is timeout_cls:
                        if refcount(event) == 2:
                            timeout_pool.append(event)
                    elif cls is event_cls:
                        if refcount(event) == 2:
                            event_pool.append(event)
                    if stop is not None and stop.callbacks is None:
                        running = False
                        break
                if not running:
                    break
                # -- phase 3: advance the clock -----------------------
                # (_earliest() inlined, minus the container bookkeeping:
                # only the time is needed — phase 1 pops everything due
                # at the new instant in (time, seq) order.)
                when = None
                while heap:
                    top = heap[0]
                    if top[2]._cancelled:
                        heappop(heap)
                        self._ncancelled -= 1
                        continue
                    when = top[0]
                    top = None
                    break
                if self._wheel_count:
                    slot_index = self._wheel_min
                    while True:
                        slot = wheel[slot_index & _WHEEL_MASK]
                        while slot:
                            top = slot[0]
                            if top[2]._cancelled:
                                heappop(slot)
                                self._wheel_count -= 1
                                self._ncancelled -= 1
                                continue
                            if when is None or top[0] < when:
                                when = top[0]
                            top = None
                            break
                        if slot or not self._wheel_count:
                            break
                        slot_index += 1
                    self._wheel_min = slot_index
                if fpq:
                    fpq_when = fpq[0][0]
                    if when is None or fpq_when < when:
                        # Pure fast-path stretch: every pending batch
                        # dispatch up to the external front runs in this
                        # tight drain.  The callables only enqueue to the
                        # now-queue (never to the wheel/heap), so ``when``
                        # — the earliest external time — cannot move
                        # while draining, and same-instant (when, seq)
                        # interleaving with externals is phase 1's job
                        # the moment the drain reaches ``when``.
                        self.now = fpq_when
                        while True:
                            fn = heappop(fpq)[2]
                            fn()
                            if nowq or not fpq:
                                break
                            fpq_when = fpq[0][0]
                            if when is not None and fpq_when >= when:
                                break
                            self.now = fpq_when
                        continue
                if when is None:
                    break
                if when < self.now:
                    raise SimulationError("time went backwards")
                self.now = when
        if stop is not None:
            if not stop.triggered:
                raise SimulationError(
                    "simulation ran out of events before stop condition fired"
                )
            if stop._ok:
                return stop._value
            stop._defused = True
            raise stop._value
        return None

    def run_process(self, generator: Generator, until: Optional[float] = None):
        """Convenience: spawn ``generator`` and run until it finishes."""
        proc = self.process(generator)
        return self.run(until=until, stop=proc)
