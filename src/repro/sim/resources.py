"""Shared-resource primitives built on the event engine.

These mirror the small set of coordination constructs the LITE stack and
its applications need: counted resources (NIC processing slots, CPU
cores), FIFO stores (message queues, completion queues), and simple
broadcast signals.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from .engine import Event, Simulator, SimulationError

__all__ = ["Resource", "PriorityResource", "Store", "Signal", "Gauge"]


class Resource:
    """A counted resource with FIFO waiters.

    ``request()`` returns an event that fires once a slot is granted; the
    holder must call ``release()`` exactly once per granted request.
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def request(self) -> Event:
        """Event granting one slot (immediately or when freed)."""
        event = self.sim.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one slot; hands it to the FIFO-next waiter."""
        if self.in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    def acquire(self):
        """Generator helper: ``yield from resource.acquire()``."""
        yield self.request()

    @property
    def queue_length(self) -> int:
        """Waiters currently queued."""
        return len(self._waiters)


class PriorityResource:
    """A counted resource whose waiters are served lowest-priority-first.

    Priority ties are broken FIFO.  Used by the QoS layer to prefer
    high-priority (numerically lower) traffic when a shared QP is
    contended.
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: list = []
        self._seq = 0

    def request(self, priority: int = 0) -> Event:
        """Event granting one slot; lower ``priority`` served first."""
        event = self.sim.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed()
        else:
            self._seq += 1
            self._waiters.append((priority, self._seq, event))
            self._waiters.sort(key=lambda item: (item[0], item[1]))
        return event

    def release(self) -> None:
        """Return one slot to the highest-priority waiter."""
        if self.in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            _prio, _seq, event = self._waiters.pop(0)
            event.succeed()
        else:
            self.in_use -= 1


class FairResource:
    """Capacity-1 resource with round-robin arbitration across *flows*.

    Models how an RNIC/link scheduler serves backlogged QPs: each flow
    (QP) gets an equal share of grant slots, regardless of how many
    requests any single flow has queued.  ``request(flow)`` with the
    same flow key lands in that flow's FIFO; grants rotate round-robin
    over flows with waiters.  This is what makes HW-Sep-style QoS
    (reserving QPs per priority class) actually shape bandwidth.
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._queues: "dict[object, Deque[Event]]" = {}
        self._rr: Deque[object] = deque()  # flows with waiters, RR order

    def request(self, flow: object = None) -> Event:
        event = self.sim.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed()
            return event
        queue = self._queues.get(flow)
        if queue is None:
            queue = self._queues[flow] = deque()
            self._rr.append(flow)
        queue.append(event)
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release() without a matching request()")
        while self._rr:
            flow = self._rr[0]
            queue = self._queues.get(flow)
            if not queue:
                self._rr.popleft()
                del self._queues[flow]
                continue
            event = queue.popleft()
            self._rr.rotate(-1)
            if not queue:
                # Flow drained: drop it from rotation.
                try:
                    self._rr.remove(flow)
                except ValueError:
                    pass
                del self._queues[flow]
            event.succeed()
            return
        self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return sum(len(queue) for queue in self._queues.values())


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks (queues in LITE and Verbs have explicit overflow
    handling at a higher level); ``get`` returns an event that fires with
    the next item.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Enqueue an item (never blocks); wakes one getter."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self.items.append(item)

    def get(self) -> Event:
        """Event yielding the next item (FIFO)."""
        event = self.sim.event()
        if self.items:
            event.succeed(self.items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking pop; returns None when empty."""
        if self.items:
            return self.items.popleft()
        return None

    def __len__(self) -> int:
        return len(self.items)


class Signal:
    """A restartable broadcast event ("condition variable" light).

    ``wait()`` returns an event that fires at the next ``fire()`` call.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._waiters: Deque[Event] = deque()

    def wait(self) -> Event:
        """Event firing at the next ``fire()``."""
        event = self.sim.event()
        self._waiters.append(event)
        return event

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        woken = len(self._waiters)
        while self._waiters:
            self._waiters.popleft().succeed(value)
        return woken


class Gauge:
    """Time-weighted average tracker for utilization-style metrics."""

    def __init__(self, sim: Simulator, value: float = 0.0):
        self.sim = sim
        self._value = value
        self._last_change = sim.now
        self._area = 0.0
        self._start = sim.now

    @property
    def value(self) -> float:
        """Current gauge value."""
        return self._value

    def set(self, value: float) -> None:
        """Set the gauge, accruing time-weighted area."""
        now = self.sim.now
        self._area += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta``."""
        self.set(self._value + delta)

    def time_average(self) -> float:
        """Time-weighted mean since creation."""
        elapsed = self.sim.now - self._start
        if elapsed <= 0:
            return self._value
        area = self._area + self._value * (self.sim.now - self._last_change)
        return area / elapsed


def rate_limiter(sim: Simulator, rate_per_us: Callable[[], float]):
    """Generator helper: wait the inter-token gap of a dynamic rate.

    ``rate_per_us`` is sampled at each call so policies can adjust the
    rate while traffic is in flight (used by the SW-Pri QoS policy).
    """
    rate = rate_per_us()
    if rate <= 0:
        raise SimulationError("rate limiter needs a positive rate")
    yield sim.timeout(1.0 / rate)
