"""Discrete-event simulation kernel used by every substrate."""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import FairResource, Gauge, PriorityResource, Resource, Signal, Store

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "Resource",
    "FairResource",
    "PriorityResource",
    "Store",
    "Signal",
    "Gauge",
]
