"""Power-law graph generation (Twitter-shaped input for Figure 19).

The paper runs PageRank on the Kwak et al. Twitter crawl (41 M vertices,
1.4 B edges).  At simulation scale we generate a directed graph with the
same *shape* — a heavy power-law in-degree distribution produced by
preferential attachment — which is exactly the regime PowerGraph's
vertex-cut design targets.
"""

from __future__ import annotations

import random
from typing import List, Tuple

__all__ = ["powerlaw_graph", "degree_histogram"]


def powerlaw_graph(n_vertices: int, edges_per_vertex: int = 8,
                   seed: int = 7) -> List[Tuple[int, int]]:
    """Directed preferential-attachment graph (Barabási–Albert flavour).

    Returns a deduplicated edge list ``(src, dst)``.  In-degree follows
    a power law; a handful of vertices become celebrity hubs, like the
    Twitter dataset's.
    """
    if n_vertices < 2:
        raise ValueError("need at least 2 vertices")
    if edges_per_vertex < 1:
        raise ValueError("need at least 1 edge per vertex")
    rng = random.Random(seed)
    # Repeated-target list implements degree-proportional sampling.
    targets: List[int] = [0]
    edges = set()
    for vertex in range(1, n_vertices):
        fanout = min(edges_per_vertex, vertex)
        chosen = set()
        while len(chosen) < fanout:
            if rng.random() < 0.15:
                candidate = rng.randrange(vertex)  # uniform escape hatch
            else:
                candidate = targets[rng.randrange(len(targets))]
            if candidate != vertex:
                chosen.add(candidate)
        for dst in chosen:
            edges.add((vertex, dst))
            targets.append(dst)
        targets.append(vertex)
    return sorted(edges)


def degree_histogram(edges: List[Tuple[int, int]], direction: str = "in"):
    """Degree -> count histogram; useful to verify the power-law tail."""
    from collections import Counter

    index = 1 if direction == "in" else 0
    degrees = Counter(edge[index] for edge in edges)
    return Counter(degrees.values())
