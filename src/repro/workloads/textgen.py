"""Synthetic Wikipedia-shaped text corpus for the WordCount benchmark.

The paper's Figure 18 runs WordCount over Wikimedia dumps.  We generate
documents whose word-frequency distribution is Zipfian (as natural
language is), with a deterministic seed so every run counts the same
words.
"""

from __future__ import annotations

import random
from typing import List

from .zipf import ZipfSampler

__all__ = ["generate_corpus", "vocabulary"]


def vocabulary(size: int) -> List[bytes]:
    """Deterministic pseudo-words: w0, w1, ... with plausible lengths."""
    rng = random.Random(42)
    words = []
    letters = "abcdefghijklmnopqrstuvwxyz"
    for index in range(size):
        length = max(2, min(12, int(rng.gauss(6, 2))))
        word = "".join(rng.choice(letters) for _ in range(length))
        words.append(f"{word}{index}".encode())
    return words


def generate_corpus(n_documents: int, words_per_document: int,
                    vocab_size: int = 2000, seed: int = 11) -> List[bytes]:
    """Build ``n_documents`` space-separated documents (bytes each)."""
    if n_documents < 1 or words_per_document < 1:
        raise ValueError("corpus dimensions must be positive")
    vocab = vocabulary(vocab_size)
    sampler = ZipfSampler(vocab_size, s=1.0, rng=random.Random(seed))
    documents = []
    for _ in range(n_documents):
        picks = sampler.sample_many(words_per_document)
        documents.append(b" ".join(vocab[p] for p in picks))
    return documents
