"""Zipfian sampling (key popularity, word frequencies)."""

from __future__ import annotations

import bisect
import random
from typing import List, Optional

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Draws integers in [0, n) with P(k) proportional to 1/(k+1)^s.

    Uses a precomputed CDF + binary search: O(n) setup, O(log n) draws.
    """

    def __init__(self, n: int, s: float = 0.99, rng: Optional[random.Random] = None):
        if n < 1:
            raise ValueError(f"need at least one item, got {n}")
        if s < 0:
            raise ValueError(f"zipf exponent must be >= 0, got {s}")
        self.n = n
        self.s = s
        self.rng = rng if rng is not None else random.Random(0)
        cdf: List[float] = []
        total = 0.0
        for rank in range(n):
            total += 1.0 / ((rank + 1) ** s)
            cdf.append(total)
        self._cdf = [value / total for value in cdf]

    def sample(self) -> int:
        """One Zipf-distributed draw in [0, n)."""
        u = self.rng.random()
        return bisect.bisect_left(self._cdf, u)

    def sample_many(self, count: int) -> List[int]:
        """``count`` independent draws."""
        return [self.sample() for _ in range(count)]
