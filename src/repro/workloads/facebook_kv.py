"""The Facebook key-value store workload (Atikoglu et al., SIGMETRICS '12).

The LITE paper drives Figures 12 and 13 with this trace's statistical
shape: small keys (tens of bytes), bimodal values (most tiny, a heavy
tail of multi-KB objects), and bursty inter-arrival times.  We sample
from parametric fits of the published ETC-pool distributions:

- key sizes: log-normal-ish, clipped to [16, 250] B, median ~31 B;
- value sizes: a discrete mixture — the paper's ETC pool has strong
  modes at a few bytes and a generalized-Pareto tail;
- inter-arrivals: generalized Pareto (heavy-tailed burstiness), with an
  "amplification factor" knob exactly like Figure 13's x-axis.
"""

from __future__ import annotations

import random
from typing import List, Optional

__all__ = ["FacebookKV"]


class FacebookKV:
    """Sampler for the ETC key-value workload."""

    # Value-size mixture: (probability, low, high) byte ranges, ETC-like.
    _VALUE_MIXTURE = [
        (0.40, 2, 10),       # tiny values dominate request counts
        (0.25, 11, 100),
        (0.20, 101, 500),
        (0.10, 501, 2048),
        (0.05, 2049, 4096),  # tail, capped at 4 KB for RPC benches
    ]

    def __init__(self, seed: int = 1, max_value: int = 4096,
                 mean_inter_arrival_us: float = 1000.0):
        self.rng = random.Random(seed)
        self.max_value = max_value
        self.mean_inter_arrival_us = mean_inter_arrival_us

    # -- sizes --------------------------------------------------------------
    def key_size(self) -> int:
        """Key length in bytes: median ~31, clipped to [16, 250]."""
        size = int(self.rng.lognormvariate(3.43, 0.35))
        return max(16, min(250, size))

    def value_size(self) -> int:
        """Value length: bimodal mixture with a heavy tail."""
        u = self.rng.random()
        acc = 0.0
        for prob, low, high in self._VALUE_MIXTURE:
            acc += prob
            if u <= acc:
                return min(self.max_value, self.rng.randint(low, high))
        return min(self.max_value, self._VALUE_MIXTURE[-1][2])

    # -- timing --------------------------------------------------------------
    def inter_arrival(self, amplification: float = 1.0) -> float:
        """Gap to the next request (µs); amplification stretches it.

        Generalized Pareto with xi=0.15: bursty but finite-mean.  The
        Figure 13 experiment multiplies the gaps by 1x..8x to sweep the
        offered load downward.
        """
        xi = 0.15
        u = self.rng.random()
        # Inverse CDF of GPD, scaled so the mean matches the target.
        scale = self.mean_inter_arrival_us * (1 - xi)
        gap = scale / xi * ((1 - u) ** (-xi) - 1)
        return gap * amplification

    # -- trace construction -----------------------------------------------
    def request_sizes(self, count: int) -> List[int]:
        """Value sizes of ``count`` consecutive requests (Fig 12 input)."""
        return [self.value_size() for _ in range(count)]

    def arrival_times(self, count: int, amplification: float = 1.0,
                      start: float = 0.0) -> List[float]:
        """Absolute timestamps of ``count`` consecutive requests."""
        now = start
        times = []
        for _ in range(count):
            now += self.inter_arrival(amplification)
            times.append(now)
        return times
