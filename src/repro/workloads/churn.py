"""Elastic connection-churn workload (INTERNALS §15).

The KRCORE scenario: N short-lived logical clients arrive on a seeded
schedule, each attaches a :class:`~repro.core.api.ClientSession` toward
one peer (pooled-lease hit or cold bring-up miss), issues a few
one-sided ops, and detaches, returning its conn to the
:class:`~repro.cluster.qp_pool.QPPool`.  A fraction of clients may
*abandon* instead of detaching, exercising the lease-expiry sweeper.

:func:`run_churn` is the driver used by the churn test battery
(tests/test_qp_pool.py), the ``churn`` bench mix (tools/bench.py) and
the sec2.4-adjacent figure (benchmarks/test_sec24_churn.py);
:func:`churn_point` is the module-level (picklable) sweep point for
serial==parallel byte-identity sweeps.

Everything is seeded: arrival gaps come from one ``random.Random(seed)``
stream, session ids are sequential, and the stats fingerprint
``(sim.now, sim._seq)`` is bit-identical across repeat runs with the
same seed — with or without the fast path.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..core.api import ClientSession, LiteContext

__all__ = ["ChurnStats", "run_churn", "churn_point"]


class ChurnStats:
    """Outcome of one :func:`run_churn` drive."""

    def __init__(self):
        # Per-lease-source time-to-first-op and attach-latency samples.
        self.ttfo: Dict[str, List[float]] = {"hit": [], "cold": []}
        self.attach_us: Dict[str, List[float]] = {"hit": [], "cold": []}
        self.hits = 0
        self.misses = 0
        self.ops_ok = 0
        self.ops_failed = 0
        self.abandoned = 0
        self.detached = 0
        self.released = 0
        # Pool counters, copied at finish().
        self.expiries = 0
        self.fenced_discards = 0
        self.destroyed = 0
        self.built = 0
        self.parked_end = 0
        self.sim_us = 0.0
        self.fingerprint = (0.0, 0)

    def record(self, session: ClientSession) -> None:
        """Fold one finished session in."""
        source = session.source or "cold"
        if source == "hit":
            self.hits += 1
        else:
            self.misses += 1
        ttfo = session.time_to_first_op
        if ttfo is not None:
            self.ttfo[source].append(ttfo)
        if session.attached_at is not None and session.attach_at is not None:
            self.attach_us[source].append(
                session.attached_at - session.attach_at
            )

    def finish(self, sim, pool) -> None:
        self.expiries = pool.expiries
        self.fenced_discards = pool.fenced_discards
        self.destroyed = pool.destroyed
        self.built = pool.built
        self.parked_end = pool.parked
        self.sim_us = sim.now
        self.fingerprint = (sim.now, sim._seq)

    def median_ttfo(self, source: str) -> Optional[float]:
        """Median time-to-first-op for ``"hit"`` or ``"cold"`` leases."""
        samples = sorted(self.ttfo.get(source, ()))
        if not samples:
            return None
        return samples[len(samples) // 2]

    def ops_per_ms(self) -> float:
        """Steady-state completed-op throughput over the whole drive."""
        if self.sim_us <= 0:
            return 0.0
        return self.ops_ok / (self.sim_us / 1000.0)

    def __repr__(self) -> str:
        return (f"ChurnStats(hits={self.hits}, misses={self.misses}, "
                f"ops_ok={self.ops_ok}, abandoned={self.abandoned}, "
                f"expiries={self.expiries}, fp={self.fingerprint})")


def run_churn(cluster, kernels, n_clients: int = 24, seed: int = 0,
              ops_per_client: int = 4, op_bytes: int = 256,
              mean_gap_us: float = 20.0, pooled: bool = True,
              reserve: int = 2, cap: Optional[int] = None,
              eager_mr: bool = False, abandon_every: int = 0,
              lease_ttl_us: Optional[float] = None,
              client_kernel: int = 0, peer_kernel: int = 1,
              kernel_level: bool = False) -> ChurnStats:
    """Drive ``n_clients`` short-lived sessions on a seeded schedule.

    ``pooled=False`` forces every attach cold (reserve 0, cap 0: no
    conn is ever parked) — the baseline the pooled run is measured
    against.  ``abandon_every=k`` makes every k-th client leave without
    detaching, so its lease expires and the sweeper reclaims the conn.
    Arms the pool's sweeper for the duration of the drive and stops it
    before returning, leaving the simulator drainable.
    """
    sim = cluster.sim
    src = kernels[client_kernel]
    dst = kernels[peer_kernel]
    if pooled:
        pool = src.qp_pool(dst.lite_id, reserve=reserve, cap=cap,
                           lease_ttl_us=lease_ttl_us)
    else:
        pool = src.qp_pool(dst.lite_id, reserve=0, cap=0,
                           lease_ttl_us=lease_ttl_us)
    stats = ChurnStats()
    rng = random.Random(seed)
    gaps = [rng.uniform(0.2, 2.0) * mean_gap_us for _ in range(n_clients)]

    def client(index: int):
        ctx = LiteContext(src, f"churn{index}", kernel_level=kernel_level)
        session = ClientSession(
            ctx, dst.lite_id, session_id=index + 1,
            eager_mr=eager_mr, buffer_bytes=op_bytes,
        )
        yield from session.attach()
        payload = bytes([index & 0xFF]) * op_bytes
        offset = (index % 8) * (op_bytes + 64)
        for _ in range(ops_per_client):
            status = yield from session.write(payload, remote_offset=offset)
            if getattr(status, "name", str(status)) in ("SUCCESS", "0"):
                stats.ops_ok += 1
            else:
                stats.ops_failed += 1
        stats.record(session)
        if abandon_every and (index + 1) % abandon_every == 0:
            # Leave without detaching: the lease expires and the
            # sweeper returns the conn (exactly once).
            stats.abandoned += 1
            return
        released = yield from session.detach()
        stats.detached += 1
        if released:
            stats.released += 1

    def driver():
        pool.arm()
        if pooled and pool.reserve and pool.parked == 0:
            yield from pool.prebuild()
        procs = []
        for index in range(n_clients):
            yield sim.timeout(gaps[index])
            procs.append(
                sim.process(client(index), name=f"churn-client-{index}")
            )
        yield sim.all_of(procs)
        # Let abandoned leases expire and the sweeper reap them.
        if abandon_every:
            yield sim.timeout(pool.lease_ttl_us + 2 * pool.sweep_interval_us)
        pool.stop()
        yield sim.timeout(pool.sweep_interval_us)

    cluster.run_process(driver())
    cluster.sim.run()  # drain the sweeper's final tick
    stats.finish(sim, pool)
    return stats


def churn_point(point):
    """One sweep point: ``(n_clients, pooled, seed)`` -> result row.

    Module-level (picklable) for :func:`repro.sweep.run_sweep`; builds
    its own two-node cluster so points share zero state.
    """
    from ..cluster import Cluster
    from ..core.api import lite_boot

    n_clients, pooled, seed = point
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    stats = run_churn(
        cluster, kernels, n_clients=int(n_clients),
        pooled=bool(pooled), seed=int(seed),
    )
    return {
        "clients": int(n_clients),
        "pooled": 1 if pooled else 0,
        "seed": int(seed),
        "hits": stats.hits,
        "misses": stats.misses,
        "ttfo_hit_med": stats.median_ttfo("hit"),
        "ttfo_cold_med": stats.median_ttfo("cold"),
        "ops_ok": stats.ops_ok,
        "ops_per_ms": stats.ops_per_ms(),
        "expiries": stats.expiries,
        "sim_us": stats.sim_us,
        "fingerprint": list(stats.fingerprint),
    }
