"""Workload generators standing in for the paper's proprietary traces."""

from .churn import ChurnStats, churn_point, run_churn
from .facebook_kv import FacebookKV
from .graphgen import degree_histogram, powerlaw_graph
from .textgen import generate_corpus, vocabulary
from .zipf import ZipfSampler

__all__ = [
    "ChurnStats",
    "FacebookKV",
    "ZipfSampler",
    "churn_point",
    "powerlaw_graph",
    "degree_histogram",
    "generate_corpus",
    "run_churn",
    "vocabulary",
]
