"""Workload generators standing in for the paper's proprietary traces."""

from .facebook_kv import FacebookKV
from .graphgen import degree_histogram, powerlaw_graph
from .textgen import generate_corpus, vocabulary
from .zipf import ZipfSampler

__all__ = [
    "FacebookKV",
    "ZipfSampler",
    "powerlaw_graph",
    "degree_histogram",
    "generate_corpus",
    "vocabulary",
]
