"""``python -m repro`` — a 30-second tour of the library."""

from .cluster import Cluster
from .core import LiteContext, lite_boot, rpc_server_loop


def main() -> None:
    """Boot a 2-node cluster and print three headline latencies."""
    cluster = Cluster(2)
    kernels = lite_boot(cluster)
    sim = cluster.sim
    ctx = LiteContext(kernels[0], "demo")
    server = LiteContext(kernels[1], "server")
    sim.process(rpc_server_loop(server, 1, lambda data: b"pong:" + data))

    def tour():
        yield sim.timeout(1)
        lh = yield from ctx.lt_malloc(4096, name="demo-buffer", nodes=2)
        start = sim.now
        yield from ctx.lt_write(lh, 0, b"hello LITE")
        write_us = sim.now - start
        start = sim.now
        data = yield from ctx.lt_read(lh, 0, 10)
        read_us = sim.now - start
        start = sim.now
        reply = yield from ctx.lt_rpc(2, 1, b"ping", max_reply=64)
        rpc_us = sim.now - start
        print("LITE reproduction (SOSP '17) — simulated 2-node cluster")
        print(f"  LT_write 10 B -> remote node : {write_us:5.2f} us")
        print(f"  LT_read  10 B ({data!r})     : {read_us:5.2f} us")
        print(f"  LT_RPC   ({reply!r})     : {rpc_us:5.2f} us")
        print("run the examples/ scripts and benchmarks/ for the full story")

    cluster.run_process(tour())


if __name__ == "__main__":
    main()
