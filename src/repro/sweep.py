"""Parallel figure-sweep runner: one deterministic simulation per point.

Every figure the repo reproduces is a *sweep* of independent
simulations (one cluster per MR count, per message size, per QP
count...).  Points share zero state — each worker builds its own
cluster — so they parallelize perfectly across worker processes.

Determinism contract (the whole point of this module):

- Each point runs under a fresh :func:`repro.determinism.
  reset_global_counters` call and a per-point ``random`` seed derived
  only from the point's *index*, in the serial and the parallel path
  alike.  A sweep at ``--jobs 4`` therefore produces **byte-identical**
  per-point results to the serial run.
- Results are merged in point order (``Pool.map`` order semantics), so
  tables and result files never depend on worker scheduling.

``fn`` must be picklable (a module-level function) when running with
``jobs > 1``; figure drivers already have this shape.  Exceptions in a
worker propagate to the caller, as they would serially.
"""

from __future__ import annotations

import multiprocessing
import os
import random
from typing import Callable, List, Optional, Sequence

from .determinism import reset_global_counters

__all__ = ["run_sweep", "resolve_jobs", "SWEEP_JOBS_ENV"]

# Environment knob consulted when ``jobs`` is not given explicitly:
# tools/bench.py --jobs and CI export it so pytest-collected figure
# benchmarks pick the parallel path up without plumbing a flag through
# pytest.
SWEEP_JOBS_ENV = "REPRO_BENCH_JOBS"

# Fixed salt for per-point seeding: the seed depends only on the point
# *index*, never on worker identity, pid, or wall clock.
_POINT_SEED_SALT = 0x11E5_0C0F


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count for a sweep: explicit arg > env > serial.

    ``0`` (or ``"auto"``) means one worker per CPU.  Anything that does
    not parse falls back to serial.
    """
    if jobs is None:
        raw = os.environ.get(SWEEP_JOBS_ENV, "").strip()
        if not raw:
            return 1
        if raw.lower() == "auto":
            return multiprocessing.cpu_count()
        try:
            jobs = int(raw)
        except ValueError:
            return 1
    if isinstance(jobs, str):
        if jobs.lower() == "auto":
            return multiprocessing.cpu_count()
        jobs = int(jobs)
    if jobs == 0:
        return multiprocessing.cpu_count()
    return max(1, jobs)


def _run_point(packed):
    """Worker-side body: isolate, seed, evaluate one point.

    Module-level so it pickles under every start method.  The counter
    reset + seeding runs identically in the serial path below — that
    equivalence is what the parallel==serial determinism tests pin.
    """
    fn, point, index = packed
    reset_global_counters()
    random.seed(_POINT_SEED_SALT ^ index)
    return fn(point)


def run_sweep(
    fn: Callable,
    points: Sequence,
    jobs: Optional[int] = None,
) -> List:
    """Evaluate ``fn(point)`` for every point; results in point order.

    ``jobs=None`` consults the ``REPRO_BENCH_JOBS`` environment
    variable (see :func:`resolve_jobs`); ``jobs=1`` forces the serial
    path.  Parallel workers each run in their own process: global
    counters, caches, and module state never leak across points *or*
    back into the parent.
    """
    points = list(points)
    jobs = resolve_jobs(jobs)
    tasks = [(fn, point, index) for index, point in enumerate(points)]
    if jobs <= 1 or len(points) <= 1:
        return [_run_point(task) for task in tasks]
    # fork keeps imported modules warm (no re-import per worker);
    # platforms without fork fall back to their default start method.
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        ctx = multiprocessing.get_context()
    with ctx.Pool(processes=min(jobs, len(points))) as pool:
        # chunksize=1: points are coarse (whole simulations), so plain
        # round-robin beats batching for load balance; map() preserves
        # point order regardless of completion order.
        return pool.map(_run_point, tasks, chunksize=1)
