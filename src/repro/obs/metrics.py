"""Counters and fixed-bucket latency histograms for the tracing layer.

The registry is deliberately simple and allocation-light: plain integer
counters plus log2-bucket histograms with fixed, pre-computed bounds so
two identical runs produce byte-identical snapshots (no adaptive
resizing, no floating accumulation order effects beyond the values
observed).  Percentiles interpolate linearly inside a bucket, which is
exact enough for the p50/p99 figures the paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["Histogram", "HistogramSnapshot", "MetricsRegistry"]

# Log2 bucket upper bounds in microseconds: 0.125 us .. ~16.8 s.  The
# final implicit bucket catches anything beyond the last bound.
_BUCKET_BOUNDS: Tuple[float, ...] = tuple(0.125 * (2 ** k) for k in range(28))


class HistogramSnapshot:
    """Immutable copy of a histogram at one instant (delta-able)."""

    __slots__ = ("counts", "total", "count", "min", "max")

    def __init__(self, counts: Tuple[int, ...], total: float, count: int,
                 min_value: Optional[float], max_value: Optional[float]):
        self.counts = counts
        self.total = total
        self.count = count
        self.min = min_value
        self.max = max_value

    def delta(self, baseline: "HistogramSnapshot") -> "HistogramSnapshot":
        """Observations accumulated since ``baseline``.

        min/max are not subtractable; the delta keeps the current values
        (they bound the delta's observations from outside).
        """
        counts = tuple(a - b for a, b in zip(self.counts, baseline.counts))
        return HistogramSnapshot(
            counts, self.total - baseline.total, self.count - baseline.count,
            self.min, self.max,
        )

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate percentile via in-bucket linear interpolation."""
        if self.count == 0:
            return 0.0
        rank = (p / 100.0) * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lo = _BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                hi = (
                    _BUCKET_BOUNDS[index]
                    if index < len(_BUCKET_BOUNDS)
                    else (self.max if self.max is not None else lo * 2)
                )
                within = (rank - cumulative) / bucket_count
                return lo + (hi - lo) * within
            cumulative += bucket_count
        return self.max if self.max is not None else 0.0

    def __repr__(self) -> str:
        return (
            f"HistogramSnapshot(n={self.count}, mean={self.mean:.3f}, "
            f"p50={self.percentile(50):.3f}, p99={self.percentile(99):.3f})"
        )


class Histogram:
    """Fixed log2-bucket latency histogram (microseconds)."""

    __slots__ = ("counts", "total", "count", "min", "max")

    def __init__(self):
        self.counts: List[int] = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.total = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one latency sample."""
        counts = self.counts
        lo, hi = 0, len(_BUCKET_BOUNDS)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= _BUCKET_BOUNDS[mid]:
                hi = mid
            else:
                lo = mid + 1
        counts[lo] += 1
        self.total += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def snapshot(self) -> HistogramSnapshot:
        """Immutable copy for deltas and reporting."""
        return HistogramSnapshot(
            tuple(self.counts), self.total, self.count, self.min, self.max
        )

    def percentile(self, p: float) -> float:
        """Approximate percentile of everything observed so far."""
        return self.snapshot().percentile(p)


class MetricsRegistry:
    """Named counters + named latency histograms."""

    __slots__ = ("counters", "hists")

    def __init__(self):
        self.counters: Dict[str, int] = {}
        self.hists: Dict[str, Histogram] = {}

    def count(self, name: str, n: int = 1) -> None:
        """Bump counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def histogram(self, name: str) -> Histogram:
        """Get-or-create the histogram called ``name``."""
        hist = self.hists.get(name)
        if hist is None:
            hist = self.hists[name] = Histogram()
        return hist

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        self.histogram(name).observe(value)

    def summary(self) -> Dict[str, object]:
        """Deterministic digest: counters plus per-histogram stats."""
        out: Dict[str, object] = {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
        }
        latency = {}
        for name in sorted(self.hists):
            snap = self.hists[name].snapshot()
            latency[name] = {
                "count": snap.count,
                "mean_us": snap.mean,
                "p50_us": snap.percentile(50),
                "p99_us": snap.percentile(99),
                "min_us": snap.min,
                "max_us": snap.max,
            }
        out["latency"] = latency
        return out
