"""repro.obs — per-op tracing, metrics, exporters, breakdown reports.

Quick start::

    from repro.obs import install_tracer
    tracer = install_tracer(cluster)      # None if the kill switch is off
    ... run workload ...
    from repro.obs import to_jsonl, aggregate_breakdown, format_breakdown
    print(to_jsonl(tracer))
    bd, n = aggregate_breakdown(tracer, "op.lt_write")
    print(format_breakdown(bd, n))

Tracing is recorded in *simulated* time and never schedules events, so
traced and untraced runs have identical simulated timings; with the
tracer uninstalled (the default) every hook is a single ``None`` check.
"""

from .metrics import Histogram, HistogramSnapshot, MetricsRegistry
from .trace import (
    Span,
    Tracer,
    install_tracer,
    is_enabled,
    set_enabled,
    traced_op,
    uninstall_tracer,
)
from .export import (
    ReplayTrace,
    load_jsonl,
    span_record,
    spans_from_records,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .report import (
    CATEGORY_OF,
    aggregate_breakdown,
    categorize,
    format_breakdown,
    op_breakdown,
)

__all__ = [
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "install_tracer",
    "uninstall_tracer",
    "set_enabled",
    "is_enabled",
    "traced_op",
    "span_record",
    "to_jsonl",
    "write_jsonl",
    "load_jsonl",
    "spans_from_records",
    "ReplayTrace",
    "to_chrome_trace",
    "write_chrome_trace",
    "CATEGORY_OF",
    "categorize",
    "op_breakdown",
    "aggregate_breakdown",
    "format_breakdown",
]
