"""Trace exporters: deterministic JSONL and Chrome trace_event format.

JSONL records use a fixed key order and compact separators so that two
identical simulated runs serialize to byte-identical files — the
determinism tests diff the raw bytes.  The Chrome format loads directly
into Perfetto / chrome://tracing (ts/dur in microseconds, pid = node,
tid = op id).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .trace import Span, Tracer

__all__ = [
    "span_record",
    "to_jsonl",
    "write_jsonl",
    "load_jsonl",
    "spans_from_records",
    "ReplayTrace",
    "to_chrome_trace",
    "write_chrome_trace",
]


def span_record(span: Span) -> Dict[str, Any]:
    """One span as a plain dict with a fixed, deterministic key order."""
    rec: Dict[str, Any] = {
        "sid": span.sid,
        "parent": span.parent.sid if span.parent is not None else None,
        "op": span.op,
        "name": span.name,
        "node": span.node,
        "start": span.start,
        "end": span.end,
        "dur": None if span.end is None else span.end - span.start,
        "nbytes": span.nbytes,
        "outcome": span.outcome if span.end is not None else "unfinished",
    }
    if span.late:
        rec["late"] = True
    if span.attrs:
        rec["attrs"] = {k: span.attrs[k] for k in sorted(span.attrs)}
    return rec


def to_jsonl(tracer: Tracer) -> str:
    """All spans as newline-delimited compact JSON (record order =
    span-open order, which is deterministic)."""
    lines = [
        json.dumps(span_record(s), separators=(",", ":"))
        for s in tracer.spans
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(tracer: Tracer, path) -> None:
    """Write the JSONL export to ``path``."""
    with open(path, "w") as fh:
        fh.write(to_jsonl(tracer))


def load_jsonl(path) -> List[Dict[str, Any]]:
    """Read a JSONL export back into a list of record dicts."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def spans_from_records(records: List[Dict[str, Any]]) -> List[Span]:
    """Rebuild :class:`Span` objects (with parent links) from records."""
    by_sid: Dict[int, Span] = {}
    spans: List[Span] = []
    for rec in records:
        parent = by_sid.get(rec["parent"]) if rec["parent"] is not None \
            else None
        span = Span(rec["sid"], parent, rec["name"], rec["node"],
                    rec["op"], rec["start"], rec["nbytes"],
                    dict(rec["attrs"]) if rec.get("attrs") else None)
        span.end = rec["end"]
        span.outcome = None if rec["outcome"] == "unfinished" \
            else rec["outcome"]
        span.late = bool(rec.get("late"))
        by_sid[span.sid] = span
        spans.append(span)
    return spans


class ReplayTrace:
    """A loaded trace that quacks like a Tracer for the report functions
    (``op_roots`` / ``children_index`` over a fixed span list)."""

    def __init__(self, spans: List[Span]):
        self.spans = spans

    op_roots = Tracer.op_roots
    children_index = Tracer.children_index

    @classmethod
    def from_jsonl(cls, path) -> "ReplayTrace":
        return cls(spans_from_records(load_jsonl(path)))


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Chrome ``trace_event`` JSON (Perfetto-loadable).

    Each node becomes a process; each op id becomes a thread, so one
    op's spans stack into a flame graph.  Unfinished spans are skipped
    (the viewer cannot render open intervals).
    """
    events: List[Dict[str, Any]] = []
    nodes = sorted({s.node for s in tracer.spans if s.node is not None})
    for node in nodes:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": node,
            "tid": 0,
            "args": {"name": f"node-{node}"},
        })
    for span in tracer.spans:
        if span.end is None:
            continue
        args: Dict[str, Any] = {"outcome": span.outcome}
        if span.nbytes:
            args["nbytes"] = span.nbytes
        if span.attrs:
            for key in sorted(span.attrs):
                args[key] = span.attrs[key]
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": span.start,
            "dur": span.end - span.start,
            "pid": span.node if span.node is not None else -1,
            "tid": span.op if span.op is not None else 0,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(tracer: Tracer, path) -> None:
    """Write the Chrome trace_event export to ``path``."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(tracer), fh, separators=(",", ":"))
