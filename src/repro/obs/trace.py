"""Per-op span tracing in simulated time.

A :class:`Tracer` hangs off ``Simulator.tracer`` (``None`` when tracing
is off — the engine and every instrumentation site guard on that, so an
untraced run executes no observability code beyond a ``None`` check).
Spans form trees: every simulated process carries a "current span"
context that the engine saves/restores across suspensions, exactly like
task-local state in an async runtime.  Because span bookkeeping never
creates events or timeouts, enabling tracing cannot perturb simulated
timings — traced and untraced runs are timing-identical by construction.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .metrics import MetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "set_enabled",
    "is_enabled",
    "install_tracer",
    "uninstall_tracer",
    "traced_op",
]

# Module-level kill switch.  When off, install_tracer() is a no-op and
# the whole subsystem stays dormant (sim.tracer remains None).
_ENABLED = True


def set_enabled(flag: bool) -> None:
    """Flip the global tracing kill switch."""
    global _ENABLED
    _ENABLED = bool(flag)


def is_enabled() -> bool:
    """Whether install_tracer() will actually install anything."""
    return _ENABLED


class Span:
    """One timed interval in an op's life, in simulated microseconds."""

    __slots__ = (
        "sid", "parent", "name", "node", "op", "start", "end",
        "nbytes", "outcome", "attrs", "late",
    )

    def __init__(self, sid: int, parent: Optional["Span"], name: str,
                 node: Optional[int], op: Optional[int], start: float,
                 nbytes: int, attrs: Optional[Dict[str, Any]]):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.node = node
        self.op = op
        self.start = start
        self.end: Optional[float] = None
        self.nbytes = nbytes
        self.outcome: Optional[str] = None
        self.attrs = attrs
        # True if this span finished after its parent already ended
        # (e.g. a transport retry outliving a LITE-level retried op).
        self.late = False

    @property
    def duration(self) -> Optional[float]:
        """Span length in simulated us, or None if unfinished."""
        return None if self.end is None else self.end - self.start

    def __repr__(self) -> str:
        dur = "?" if self.end is None else f"{self.end - self.start:.3f}"
        return f"Span({self.sid} {self.name} @{self.node} {dur}us {self.outcome})"


class Tracer:
    """Records a forest of spans against the simulator clock."""

    __slots__ = ("sim", "metrics", "spans", "current", "_sid_counter",
                 "_op_counter")

    def __init__(self, sim, metrics: Optional[MetricsRegistry] = None):
        self.sim = sim
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[Span] = []
        # Span the running process is currently inside (task-local; the
        # engine swaps it on every process suspend/resume).
        self.current: Optional[Span] = None
        self._sid_counter = 0
        self._op_counter = 0

    # -- span lifecycle -------------------------------------------------

    def begin(self, name: str, node: Optional[int] = None, nbytes: int = 0,
              **attrs: Any) -> Span:
        """Open a child of the current span and make it current."""
        parent = self.current
        self._sid_counter += 1
        span = Span(
            self._sid_counter, parent, name,
            node if node is not None else (parent.node if parent else None),
            parent.op if parent is not None else None,
            self.sim.now, nbytes, attrs or None,
        )
        self.spans.append(span)
        self.current = span
        return span

    def begin_op(self, name: str, node: Optional[int] = None,
                 nbytes: int = 0, **attrs: Any) -> Span:
        """Open a top-level op span (fresh op id)."""
        span = self.begin(name, node=node, nbytes=nbytes, **attrs)
        self._op_counter += 1
        span.op = self._op_counter
        return span

    def end(self, span: Span, outcome: str = "ok", **attrs: Any) -> Span:
        """Close ``span`` and pop it from the current-context chain."""
        span.end = self.sim.now
        span.outcome = outcome
        if attrs:
            if span.attrs is None:
                span.attrs = attrs
            else:
                span.attrs.update(attrs)
        parent = span.parent
        if parent is not None and parent.end is not None \
                and parent.end < span.end:
            span.late = True
        # Restore context.  Normally span IS current; after an exception
        # unwound inner spans without ending them, walk up from current
        # to find it, leaving the skipped spans unfinished.
        node = self.current
        while node is not None:
            if node is span:
                self.current = span.parent
                break
            node = node.parent
        # Metrics ride along: per-span-name counts, per-op latency hists.
        self.metrics.count("span." + span.name)
        if span.name.startswith("op."):
            self.metrics.observe(span.name, span.end - span.start)
        return span

    def instant(self, name: str, node: Optional[int] = None, nbytes: int = 0,
                **attrs: Any) -> Span:
        """Record a zero-width marker (never becomes current)."""
        parent = self.current
        self._sid_counter += 1
        now = self.sim.now
        span = Span(
            self._sid_counter, parent, name,
            node if node is not None else (parent.node if parent else None),
            parent.op if parent is not None else None,
            now, nbytes, attrs or None,
        )
        span.end = now
        span.outcome = "ok"
        self.spans.append(span)
        self.metrics.count("span." + name)
        return span

    def interval(self, name: str, start: float, end: float,
                 node: Optional[int] = None, nbytes: int = 0,
                 parent: Optional[Span] = None, **attrs: Any) -> Span:
        """Record an already-elapsed interval (e.g. the DMA tail of an
        RNIC pipeline occupancy) without touching the current context."""
        if parent is None:
            parent = self.current
        self._sid_counter += 1
        span = Span(
            self._sid_counter, parent, name,
            node if node is not None else (parent.node if parent else None),
            parent.op if parent is not None else None,
            start, nbytes, attrs or None,
        )
        span.end = end
        span.outcome = "ok"
        if parent is not None and parent.end is not None and parent.end < end:
            span.late = True
        self.spans.append(span)
        self.metrics.count("span." + name)
        return span

    # -- queries --------------------------------------------------------

    def op_roots(self) -> List[Span]:
        """All top-level ``op.*`` spans, in start order."""
        return [s for s in self.spans if s.name.startswith("op.")]

    def children_index(self) -> Dict[Optional[int], List[Span]]:
        """Map parent sid -> children (None key = roots)."""
        index: Dict[Optional[int], List[Span]] = {}
        for span in self.spans:
            key = span.parent.sid if span.parent is not None else None
            index.setdefault(key, []).append(span)
        return index


def install_tracer(cluster, metrics: Optional[MetricsRegistry] = None):
    """Attach a Tracer to ``cluster`` (no-op returning None when the
    kill switch is off).  Also points each node's HostMemory at the
    tracer so allocation markers can be recorded."""
    if not _ENABLED:
        return None
    tracer = Tracer(cluster.sim, metrics)
    cluster.sim.tracer = tracer
    for node in cluster.nodes:
        node.memory.tracer = tracer
    return tracer


def uninstall_tracer(cluster):
    """Detach and return the cluster's tracer (None if none installed)."""
    tracer = cluster.sim.tracer
    cluster.sim.tracer = None
    for node in cluster.nodes:
        node.memory.tracer = None
    return tracer


def traced_op(name: str, nbytes: Optional[Callable[..., int]] = None):
    """Decorate a LiteContext generator-method as a top-level traced op.

    With tracing off the wrapper returns the raw generator — one extra
    function call, no other work.  ``nbytes`` maps the call's positional
    args to a byte count for the span.
    """

    def decorate(fn):
        def _run_traced(tracer, self, args, kwargs):
            count = 0
            if nbytes is not None:
                try:
                    count = nbytes(args)
                except Exception:
                    count = 0
            span = tracer.begin_op(
                name, node=self.kernel.lite_id, nbytes=count
            )
            try:
                result = yield from fn(self, *args, **kwargs)
            except BaseException as exc:
                tracer.end(span, outcome="err:" + type(exc).__name__)
                raise
            tracer.end(span)
            return result

        def wrapper(self, *args, **kwargs):
            tracer = self.kernel.sim.tracer
            if tracer is None:
                return fn(self, *args, **kwargs)
            return _run_traced(tracer, self, args, kwargs)

        wrapper.__name__ = fn.__name__
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate
