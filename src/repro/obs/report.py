"""Latency-breakdown reports computed from span trees.

Reproduces the paper's §5.2-style decomposition (crossings, metadata
lookup, doorbell, RNIC processing, DMA, wire time, completion, ...)
directly from recorded spans instead of hand-derived parameter
arithmetic.  The attribution is an exact partition: for every instant
inside an op, the deepest span active at that instant claims it, so the
per-category times sum to the op's end-to-end latency by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .trace import Span, Tracer

__all__ = [
    "CATEGORY_OF",
    "categorize",
    "op_breakdown",
    "aggregate_breakdown",
    "format_breakdown",
]

# Span name -> breakdown category.  "Residual" categories (qp.wqe,
# rnic.proc, fabric.hop, ...) only claim time not covered by a deeper
# span, because the sweep always prefers the deepest active span.
CATEGORY_OF: Dict[str, str] = {
    "syscall.crossing": "user-kernel crossings",
    "kernel.lookup": "kernel metadata lookup",
    "kernel.post": "post / QP window",
    "qp.doorbell": "doorbell",
    "qp.wqe": "transport (ack/order)",
    "rnic.proc": "RNIC processing",
    "rnic.dma": "DMA",
    "fabric.serialize": "wire serialization",
    "fabric.hop": "propagation + switch",
    "cq.completion": "completion",
    "cpu.execute": "cpu compute",
    "cpu.wait": "reply wait / poll",
    "rpc.wait": "reply wait / poll",
    "rpc.append": "post / QP window",
    "rpc.recv_stack": "RPC kernel stacks",
    "rpc.reply_stack": "RPC kernel stacks",
    "ctrl.request": "control-plane RPC",
}

_UNCOVERED = "uncovered / wait"


def categorize(name: str) -> str:
    """Breakdown category for a span name."""
    if name.startswith("op."):
        return "nested op"
    return CATEGORY_OF.get(name, "other")


def _descendants(root: Span, tracer: Tracer) -> List[Span]:
    """Finished, non-instant descendants of ``root`` (root excluded)."""
    index = tracer.children_index()
    out: List[Span] = []
    stack = list(index.get(root.sid, ()))
    while stack:
        span = stack.pop()
        stack.extend(index.get(span.sid, ()))
        if span.end is None or span.end == span.start:
            continue
        out.append(span)
    return out


def op_breakdown(root: Span, tracer: Tracer) -> Dict[str, float]:
    """Exact partition of one op's latency across categories.

    Boundary sweep over the op's descendant spans clipped to the op's
    own interval; within each elementary interval the deepest active
    span wins (ties broken toward the later-opened span).  Time covered
    by no descendant is attributed to "uncovered / wait".
    """
    if root.end is None:
        raise ValueError(f"op span {root!r} is unfinished")
    spans = _descendants(root, tracer)
    # Clip to the op window and precompute depths.
    clipped: List[Tuple[float, float, int, int, str]] = []
    for span in spans:
        lo = max(span.start, root.start)
        hi = min(span.end, root.end)
        if hi <= lo:
            continue
        depth = 0
        node = span
        while node is not None:
            depth += 1
            node = node.parent
        clipped.append((lo, hi, depth, span.sid, categorize(span.name)))

    bounds = {root.start, root.end}
    for lo, hi, _, _, _ in clipped:
        bounds.add(lo)
        bounds.add(hi)
    edges = sorted(bounds)

    out: Dict[str, float] = {}
    for left, right in zip(edges, edges[1:]):
        width = right - left
        if width <= 0:
            continue
        best: Optional[Tuple[int, int, str]] = None
        for lo, hi, depth, sid, cat in clipped:
            if lo <= left and hi >= right:
                key = (depth, sid, cat)
                if best is None or key > best:
                    best = key
        cat = best[2] if best is not None else _UNCOVERED
        out[cat] = out.get(cat, 0.0) + width
    return out


def aggregate_breakdown(tracer: Tracer, op_name: Optional[str] = None,
                        ) -> Tuple[Dict[str, float], int]:
    """Mean per-category breakdown over all (finished) ops.

    Returns ``(category -> mean us, n_ops)``.  ``op_name`` filters to
    one op type (e.g. ``"op.lt_write"``).
    """
    totals: Dict[str, float] = {}
    n = 0
    for root in tracer.op_roots():
        if root.end is None:
            continue
        if op_name is not None and root.name != op_name:
            continue
        if root.parent is not None:
            continue  # nested ops are attributed inside their parent
        for cat, us in op_breakdown(root, tracer).items():
            totals[cat] = totals.get(cat, 0.0) + us
        n += 1
    if n:
        totals = {k: v / n for k, v in totals.items()}
    return totals, n


def format_breakdown(breakdown: Dict[str, float], n_ops: int,
                     title: str = "latency breakdown") -> str:
    """Render a §5.2-style table, largest component first."""
    total = sum(breakdown.values())
    width = max([len(k) for k in breakdown] + [len("stage")])
    lines = [
        f"{title}  (n={n_ops}, total {total:.3f} us)",
        f"  {'stage'.ljust(width)}  {'us':>9}  {'share':>6}",
        f"  {'-' * width}  {'-' * 9}  {'-' * 6}",
    ]
    for cat, us in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        share = 100.0 * us / total if total else 0.0
        lines.append(f"  {cat.ljust(width)}  {us:9.3f}  {share:5.1f}%")
    lines.append(f"  {'total'.ljust(width)}  {total:9.3f}  100.0%")
    return "\n".join(lines)
