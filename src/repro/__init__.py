"""LITE: Kernel RDMA Support for Datacenter Applications — reproduction.

A calibrated discrete-event reproduction of Tsai & Zhang, SOSP 2017
(DOI 10.1145/3132747.3132762).  Start with :func:`repro.core.lite_boot`
on a :class:`repro.cluster.Cluster`; see README.md and docs/API.md.
"""

from .cluster import Cluster, ClusterManager, Node
from .fault import FaultInjector, FaultPlan
from .core import (
    LiteContext,
    LiteError,
    LiteKernel,
    Permission,
    lite_boot,
    rpc_server_loop,
)
from .hw import DEFAULT_PARAMS, SimParams
from .obs import (
    MetricsRegistry,
    Tracer,
    install_tracer,
    set_enabled,
    uninstall_tracer,
)

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterManager",
    "Node",
    "LiteKernel",
    "LiteContext",
    "LiteError",
    "Permission",
    "lite_boot",
    "rpc_server_loop",
    "SimParams",
    "DEFAULT_PARAMS",
    "FaultPlan",
    "FaultInjector",
    "Tracer",
    "MetricsRegistry",
    "install_tracer",
    "uninstall_tracer",
    "set_enabled",
    "__version__",
]
