"""Process-wide counter resets for byte-identical repeat runs.

Several modules hand out ids from process-global counters (QP numbers,
rkeys, RPC tokens, TCP connection ids...).  Two clusters built in the
same process therefore see different id *digit counts*, which changes
the length of compact-JSON control messages and thus wire timing by a
hair — enough to break byte-identical trace comparison across runs.
``reset_global_counters()`` rewinds every such counter to its import-
time value; call it immediately before building each cluster that must
be comparable.  (It must not be called while a cluster is live: ids
would collide.)
"""

from __future__ import annotations

import itertools

__all__ = ["reset_global_counters"]


def reset_global_counters() -> None:
    """Rewind all process-global id counters to their import-time state."""
    from .verbs import device as _device
    from .verbs.wr import RecvWR, SendWR
    from .verbs.cq import CompletionQueue
    from .core import api as _api
    from .core import lmr as _lmr
    from .core.kernel import LiteKernel
    from .core.rpc import RpcEngine
    from .net import tcpip as _tcpip
    from .baselines import farm as _farm
    from .apps.graph import powergraph as _powergraph
    from .apps.mapreduce import hadoopsim as _hadoopsim

    _device._key_counter = itertools.count(start=1000)
    _device._qpn_counter = itertools.count(start=1)
    _device._pd_counter = itertools.count(start=1)
    SendWR._next_id = 0
    RecvWR._next_id = 0
    CompletionQueue._next_id = 0
    LiteKernel._token_counter = itertools.count(start=1)
    RpcEngine._token_counter = itertools.count(start=1)
    _api._anon_counter = itertools.count(start=1)
    _api._session_counter = itertools.count(start=1)
    _lmr._lmr_counter = itertools.count(start=1)
    _lmr._lh_counter = itertools.count(start=1)
    _tcpip._conn_counter = itertools.count(start=1)
    _farm._ring_counter = itertools.count(start=1)
    _powergraph._port_counter = itertools.count(start=30000)
    _hadoopsim._port_counter = itertools.count(start=20000)
