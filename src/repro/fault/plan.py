"""Declarative fault plans: *what* goes wrong and *when*.

A :class:`FaultPlan` is pure data — a schedule of node crashes, link
outages/flaps and packet-loss windows over absolute simulated time (in
microseconds, like everything else).  The :class:`~repro.fault.injector.
FaultInjector` turns a plan into live simulator processes.

Plans are deterministic by construction: :meth:`FaultPlan.random`
derives every choice from an explicit seed, so a chaos run can be
replayed bit-for-bit from ``(workload seed, fault seed)``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

__all__ = ["NodeCrash", "LinkDown", "LinkFlap", "PacketLoss", "FaultPlan"]


class NodeCrash:
    """Fail-stop a node at ``at_us``; optionally restart it later.

    The crash is modelled as the node's NIC going dark (its fabric link
    drops, peers see retry blowouts / timeouts).  On restart the link
    returns and the node resumes with its memory intact — i.e. the
    distinction between a crash-recover and a long partition is left to
    the layers above, matching the paper's §3.3 observation that LITE's
    cluster state is reconstructible metadata.
    """

    __slots__ = ("node_id", "at_us", "restart_at_us")

    def __init__(self, node_id: int, at_us: float,
                 restart_at_us: Optional[float] = None):
        if at_us < 0:
            raise ValueError(f"crash time must be >= 0, got {at_us}")
        if restart_at_us is not None and restart_at_us <= at_us:
            raise ValueError(
                f"restart ({restart_at_us}) must come after the crash ({at_us})"
            )
        self.node_id = node_id
        self.at_us = float(at_us)
        self.restart_at_us = None if restart_at_us is None else float(restart_at_us)

    def __repr__(self) -> str:
        tail = "" if self.restart_at_us is None else f", restart@{self.restart_at_us}"
        return f"NodeCrash(node {self.node_id} @{self.at_us}{tail})"


class LinkDown:
    """Take one node's link down at ``at_us``; optionally back up later."""

    __slots__ = ("node_id", "at_us", "up_at_us")

    def __init__(self, node_id: int, at_us: float,
                 up_at_us: Optional[float] = None):
        if at_us < 0:
            raise ValueError(f"link-down time must be >= 0, got {at_us}")
        if up_at_us is not None and up_at_us <= at_us:
            raise ValueError(
                f"link-up ({up_at_us}) must come after link-down ({at_us})"
            )
        self.node_id = node_id
        self.at_us = float(at_us)
        self.up_at_us = None if up_at_us is None else float(up_at_us)

    def __repr__(self) -> str:
        tail = "" if self.up_at_us is None else f", up@{self.up_at_us}"
        return f"LinkDown(node {self.node_id} @{self.at_us}{tail})"


class LinkFlap:
    """Periodically bounce a link between ``start_us`` and ``end_us``.

    Each cycle holds the link down for ``down_us`` then up for ``up_us``.
    The link is always restored when the window ends.
    """

    __slots__ = ("node_id", "start_us", "end_us", "down_us", "up_us")

    def __init__(self, node_id: int, start_us: float, end_us: float,
                 down_us: float, up_us: float):
        if start_us < 0 or end_us <= start_us:
            raise ValueError(
                f"flap window must satisfy 0 <= start < end, "
                f"got [{start_us}, {end_us})"
            )
        if down_us <= 0 or up_us <= 0:
            raise ValueError("flap down/up durations must be positive")
        self.node_id = node_id
        self.start_us = float(start_us)
        self.end_us = float(end_us)
        self.down_us = float(down_us)
        self.up_us = float(up_us)

    def __repr__(self) -> str:
        return (f"LinkFlap(node {self.node_id} [{self.start_us}, {self.end_us}) "
                f"down {self.down_us}/up {self.up_us})")


class PacketLoss:
    """Drop each matching transfer with probability ``rate``.

    Matches transfers whose simulated time falls in ``[start_us,
    end_us)`` (``end_us=None`` = forever) and whose endpoints match the
    optional ``src``/``dst`` filters (``None`` = any).  Frame corruption
    is folded in here: on real IB the receiver's ICRC check discards a
    corrupted packet, which the sender observes exactly as loss.
    """

    __slots__ = ("rate", "start_us", "end_us", "src", "dst")

    def __init__(self, rate: float, start_us: float = 0.0,
                 end_us: Optional[float] = None,
                 src: Optional[int] = None, dst: Optional[int] = None):
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"loss rate must be in (0, 1], got {rate}")
        if start_us < 0:
            raise ValueError(f"loss window start must be >= 0, got {start_us}")
        if end_us is not None and end_us <= start_us:
            raise ValueError(
                f"loss window end ({end_us}) must come after start ({start_us})"
            )
        self.rate = float(rate)
        self.start_us = float(start_us)
        self.end_us = None if end_us is None else float(end_us)
        self.src = src
        self.dst = dst

    def matches(self, now: float, src: int, dst: int) -> bool:
        """True when this rule applies to a transfer happening ``now``."""
        if now < self.start_us:
            return False
        if self.end_us is not None and now >= self.end_us:
            return False
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        return True

    def __repr__(self) -> str:
        window = f"[{self.start_us}, {'inf' if self.end_us is None else self.end_us})"
        pair = f"{'any' if self.src is None else self.src}->" \
               f"{'any' if self.dst is None else self.dst}"
        return f"PacketLoss({self.rate:.2%} {pair} {window})"


class FaultPlan:
    """An ordered collection of fault events (builder-style API)."""

    def __init__(self):
        self.crashes: List[NodeCrash] = []
        self.link_downs: List[LinkDown] = []
        self.flaps: List[LinkFlap] = []
        self.losses: List[PacketLoss] = []

    # -- builders (chainable) ------------------------------------------
    def crash(self, node_id: int, at_us: float,
              restart_at_us: Optional[float] = None) -> "FaultPlan":
        """Schedule a fail-stop crash (optionally with a restart)."""
        self.crashes.append(NodeCrash(node_id, at_us, restart_at_us))
        return self

    def link_down(self, node_id: int, at_us: float,
                  up_at_us: Optional[float] = None) -> "FaultPlan":
        """Schedule a link outage (optionally healing later)."""
        self.link_downs.append(LinkDown(node_id, at_us, up_at_us))
        return self

    def link_flap(self, node_id: int, start_us: float, end_us: float,
                  down_us: float, up_us: float) -> "FaultPlan":
        """Schedule a flapping link over ``[start_us, end_us)``."""
        self.flaps.append(LinkFlap(node_id, start_us, end_us, down_us, up_us))
        return self

    def packet_loss(self, rate: float, start_us: float = 0.0,
                    end_us: Optional[float] = None,
                    src: Optional[int] = None,
                    dst: Optional[int] = None) -> "FaultPlan":
        """Add a probabilistic loss window (optionally per-flow)."""
        self.losses.append(PacketLoss(rate, start_us, end_us, src, dst))
        return self

    # -- introspection -------------------------------------------------
    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (self.crashes or self.link_downs or self.flaps or self.losses)

    def node_ids(self) -> set:
        """Every node id the plan references."""
        ids = {c.node_id for c in self.crashes}
        ids.update(d.node_id for d in self.link_downs)
        ids.update(f.node_id for f in self.flaps)
        for rule in self.losses:
            if rule.src is not None:
                ids.add(rule.src)
            if rule.dst is not None:
                ids.add(rule.dst)
        return ids

    def validate(self, known_node_ids: Sequence[int]) -> None:
        """Raise ``ValueError`` if the plan references unknown nodes."""
        known = set(known_node_ids)
        unknown = self.node_ids() - known
        if unknown:
            raise ValueError(
                f"fault plan references unknown node(s) {sorted(unknown)}; "
                f"cluster has {sorted(known)}"
            )

    def describe(self) -> str:
        """Human-readable one-event-per-line summary."""
        if self.empty:
            return "(empty plan)"
        lines = [repr(event) for event in
                 (*self.crashes, *self.link_downs, *self.flaps, *self.losses)]
        return "\n".join(lines)

    # -- randomized plans ----------------------------------------------
    @classmethod
    def random(cls, seed: int, node_ids: Sequence[int], duration_us: float,
               crashes: int = 1, flaps: int = 0, loss_rate: float = 0.0,
               restart: bool = True, spare: Optional[int] = None) -> "FaultPlan":
        """A reproducible randomized plan over ``duration_us``.

        ``crashes`` nodes fail (restarting mid-run when ``restart``),
        ``flaps`` further nodes get a flapping link, and ``loss_rate``
        (when > 0) applies uniform loss to all traffic.  ``spare``
        excludes one node (e.g. a server every client depends on) from
        crash/flap victim selection.  Identical arguments always yield
        an identical plan.
        """
        rng = random.Random(seed)
        plan = cls()
        victims = [n for n in node_ids if n != spare]
        rng.shuffle(victims)
        needed = crashes + flaps
        if needed > len(victims):
            raise ValueError(
                f"plan wants {needed} distinct victims but only "
                f"{len(victims)} nodes are eligible"
            )
        for node_id in victims[:crashes]:
            at = rng.uniform(0.1, 0.5) * duration_us
            restart_at = at + rng.uniform(0.1, 0.3) * duration_us if restart else None
            plan.crash(node_id, at, restart_at)
        for node_id in victims[crashes:needed]:
            start = rng.uniform(0.1, 0.4) * duration_us
            end = start + rng.uniform(0.2, 0.4) * duration_us
            down = rng.uniform(0.005, 0.02) * duration_us
            up = rng.uniform(0.02, 0.08) * duration_us
            plan.link_flap(node_id, start, end, down, up)
        if loss_rate > 0.0:
            plan.packet_loss(loss_rate)
        return plan

    def __repr__(self) -> str:
        return (f"FaultPlan({len(self.crashes)} crashes, "
                f"{len(self.link_downs)} link-downs, {len(self.flaps)} flaps, "
                f"{len(self.losses)} loss rules)")
