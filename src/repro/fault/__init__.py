"""Deterministic fault injection for the simulated cluster.

Build a :class:`FaultPlan` (or derive one from a seed with
:meth:`FaultPlan.random`), then ``FaultInjector(cluster, plan,
seed).install()`` before running the workload.  See
``docs/INTERNALS.md`` ("Failure model") for the end-to-end semantics.
"""

from .injector import FaultInjector
from .plan import FaultPlan, LinkDown, LinkFlap, NodeCrash, PacketLoss

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "NodeCrash",
    "LinkDown",
    "LinkFlap",
    "PacketLoss",
]
