"""The fault injector: turns a :class:`FaultPlan` into live failures.

The injector owns three mechanisms:

* **Scheduled events** — each crash / link-down / flap becomes one
  simulator process that toggles fabric link state at the planned times.
* **Packet loss** — when the plan has loss rules, the injector installs
  itself as the fabric's ``fault`` hook and answers ``should_drop``
  from a private seeded RNG, so a given ``(plan, seed)`` drops exactly
  the same frames on every run.
* **Fault tolerance arming** — :meth:`arm_lite` flips the LITE kernels
  from the infinite-patience default into timeout/retry mode and starts
  their keep-alive loops.

Zero-cost-when-disabled is a hard requirement: installing an **empty**
plan schedules no events and leaves ``fabric.fault`` as ``None``, so
the simulation is byte-identical to one without an injector.
"""

from __future__ import annotations

import random

from .plan import FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Executes a :class:`FaultPlan` against one cluster."""

    def __init__(self, cluster, plan: FaultPlan, seed: int = 0):
        self.cluster = cluster
        self.plan = plan
        self.seed = seed
        self._rng = random.Random(seed)
        self._installed = False
        # Stats.
        self.crashes = 0
        self.restarts = 0
        self.link_transitions = 0
        self.frames_dropped = 0

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self) -> "FaultInjector":
        """Arm the plan: spawn schedulers and hook the fabric.

        Idempotent-hostile by design (installing twice would double the
        faults), so a second call raises.  Installing an empty plan is
        an exact no-op: no processes, no fabric hook, no heap events.
        """
        if self._installed:
            raise RuntimeError("fault plan already installed")
        self._installed = True
        plan = self.plan
        if plan.empty:
            return self
        cluster = self.cluster
        plan.validate([node.node_id for node in cluster.nodes])
        if plan.losses:
            if cluster.fabric.fault is not None:
                raise RuntimeError("fabric already has a fault hook")
            cluster.fabric.fault = self
        sim = cluster.sim
        for crash in plan.crashes:
            sim.process(self._drive_crash(crash), name=f"fault-crash-{crash.node_id}")
        for outage in plan.link_downs:
            sim.process(
                self._drive_link_down(outage), name=f"fault-link-{outage.node_id}"
            )
        for flap in plan.flaps:
            sim.process(self._drive_flap(flap), name=f"fault-flap-{flap.node_id}")
        return self

    def arm_lite(self, kernels, ctrl_timeout_us=None, ctrl_retries=None,
                 keepalive_interval_us=None, miss_limit=None) -> None:
        """Switch LITE kernels to timeout/retry mode + start keep-alive.

        Without this, control-plane requests wait forever (the seed
        default) and a crashed peer turns into a hang instead of a
        ``LiteError(ETIMEDOUT)``.
        """
        for kernel in kernels:
            kernel.enable_fault_tolerance(
                ctrl_timeout_us=ctrl_timeout_us, ctrl_retries=ctrl_retries
            )
            if keepalive_interval_us is not None:
                kernel.start_keepalive(
                    interval_us=keepalive_interval_us, miss_limit=miss_limit
                )

    # ------------------------------------------------------------------
    # Fabric hook
    # ------------------------------------------------------------------
    def should_drop(self, src: int, dst: int, nbytes: int, flow) -> bool:
        """Per-transfer loss decision (called by ``Fabric.transfer``).

        One RNG draw per transfer that matches at least one active rule
        (never more, so rule order cannot change the stream), using the
        highest matching rate.
        """
        now = self.cluster.sim.now
        rate = 0.0
        for rule in self.plan.losses:
            if rule.matches(now, src, dst):
                rate = max(rate, rule.rate)
        if rate <= 0.0:
            return False
        if self._rng.random() < rate:
            self.frames_dropped += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Schedulers
    # ------------------------------------------------------------------
    def _set_link(self, node_id: int, up: bool) -> None:
        self.cluster.fabric.set_link_state(node_id, up)
        self.link_transitions += 1
        # Every link transition fences the node: a chain primed across
        # an up link must not commit over a down one (and vice versa
        # after the link returns).  Crash/restart also pass through
        # here, so the fence covers link-down outages and flap storms
        # with the same mechanism — the fence only touches fast-path
        # bookkeeping (cost_version, primed tables), so slow-path runs
        # are byte-for-byte unaffected and fast runs stay bit-identical.
        self._node(node_id).fastpath_fence()

    def _node(self, node_id: int):
        for node in self.cluster.nodes:
            if node.node_id == node_id:
                return node
        raise ValueError(f"no node {node_id}")  # pre-validated; defensive

    def _drive_crash(self, crash):
        yield self.cluster.sim.timeout(crash.at_us)
        node = self._node(crash.node_id)
        node.crashed = True
        # _set_link fences: a primed cost table must never commit an op
        # against the dead (and after restart: possibly remapped) node.
        self._set_link(crash.node_id, False)
        self.crashes += 1
        if crash.restart_at_us is None:
            return
        yield self.cluster.sim.timeout(crash.restart_at_us - crash.at_us)
        node.crashed = False
        self._set_link(crash.node_id, True)
        self.restarts += 1

    def _drive_link_down(self, outage):
        yield self.cluster.sim.timeout(outage.at_us)
        self._set_link(outage.node_id, False)
        if outage.up_at_us is None:
            return
        yield self.cluster.sim.timeout(outage.up_at_us - outage.at_us)
        self._set_link(outage.node_id, True)

    def _drive_flap(self, flap):
        sim = self.cluster.sim
        yield sim.timeout(flap.start_us)
        while sim.now < flap.end_us:
            self._set_link(flap.node_id, False)
            yield sim.timeout(min(flap.down_us, flap.end_us - sim.now))
            self._set_link(flap.node_id, True)
            if sim.now >= flap.end_us:
                break
            yield sim.timeout(flap.up_us)

    def __repr__(self) -> str:
        return (f"FaultInjector(seed={self.seed}, {self.plan!r}, "
                f"crashes={self.crashes}, restarts={self.restarts}, "
                f"dropped={self.frames_dropped})")
