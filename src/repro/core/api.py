"""The LITE public API: Table 1 of the paper, as a per-process context.

A :class:`LiteContext` is what a user process holds after ``LT_join``.
Every call is a simulation generator: ``yield from ctx.lt_write(...)``.
User-level contexts pay the optimized syscall model of §5.2 (one entry
crossing + a shared-page return, adaptive busy-check-then-sleep waits);
kernel-level contexts (``kernel_level=True``) skip crossings entirely,
which is the "LITE KL" line in Figures 6 and 10.
"""

from __future__ import annotations

import base64
import itertools
from typing import List, Optional, Sequence, Union

from ..obs.trace import traced_op
from ..verbs import Access, Opcode, SendWR, Sge
from .errors import ECONNRESET
from .kernel import LiteError, LiteKernel
from .lmr import ChunkInfo, LmrHandle, MappedLmr, MasterRecord, Permission
from .protocol import MsgType
from .rpc import RpcError, _FusedRecv

__all__ = ["ClientSession", "LiteContext", "LiteLock", "lite_boot",
           "rpc_server_loop"]

_anon_counter = itertools.count(start=1)
_session_counter = itertools.count(start=1)


class LiteLock:
    """A distributed lock: an 8-byte word LMR plus its owner's FIFO queue."""

    def __init__(self, name: str, owner_id: int, handle: LmrHandle):
        self.name = name
        self.owner_id = owner_id
        self.handle = handle

    def __repr__(self) -> str:
        return f"LiteLock({self.name!r}@{self.owner_id})"


class LiteContext:
    """One user (or kernel) process's view of LITE on a node."""

    def __init__(
        self,
        kernel: LiteKernel,
        principal: str = "",
        priority: int = 0,
        kernel_level: bool = False,
    ):
        if not kernel.booted:
            raise LiteError("LITE is not booted on this node (call boot first)")
        self.kernel = kernel
        self.sim = kernel.sim
        self.params = kernel.params
        self.principal = principal or f"proc{next(_anon_counter)}"
        self.priority = priority
        self.kernel_level = kernel_level
        self._tag = f"lite-user:{self.principal}"

    @property
    def lite_id(self) -> int:
        """This context's node id in the LITE cluster."""
        return self.kernel.lite_id

    # ------------------------------------------------------------------
    # Syscall model (§5.2)
    # ------------------------------------------------------------------
    def _enter(self):
        if self.kernel_level:
            return
        cost = self.params.lite_syscall_enter_us
        tracer = self.sim.tracer
        span = (tracer.begin("syscall.crossing", node=self.kernel.lite_id,
                             direction="enter")
                if tracer is not None else None)
        yield self.sim.timeout(cost)
        self.kernel.node.cpu.charge(self._tag, cost)
        if span is not None:
            tracer.end(span)

    def _exit(self):
        if self.kernel_level:
            return
        cost = self.params.lite_sharedpage_return_us
        tracer = self.sim.tracer
        span = (tracer.begin("syscall.crossing", node=self.kernel.lite_id,
                             direction="return")
                if tracer is not None else None)
        yield self.sim.timeout(cost)
        self.kernel.node.cpu.charge(self._tag, cost)
        if span is not None:
            tracer.end(span)

    def _waiter(self):
        """Reply-wait strategy: adaptive for user level, plain in kernel."""
        if self.kernel_level:
            return None
        cpu = self.kernel.node.cpu
        tag = self._tag

        def wait(event):
            value = yield from cpu.adaptive_wait(event, tag=tag)
            return value

        return wait

    def _metadata(self):
        """Kernel-side lh mapping + permission check cost (§5.3)."""
        cost = self.params.lite_metadata_us
        tracer = self.sim.tracer
        span = (tracer.begin("kernel.lookup", node=self.kernel.lite_id)
                if tracer is not None else None)
        yield self.sim.timeout(cost)
        self.kernel.node.cpu.charge("lite-meta", cost)
        if span is not None:
            tracer.end(span)

    # ------------------------------------------------------------------
    # Memory management: LT_malloc / LT_free / LT_map / LT_unmap
    # ------------------------------------------------------------------
    @traced_op("op.lt_malloc", nbytes=lambda a: a[0])
    def lt_malloc(
        self,
        size: int,
        name: Optional[str] = None,
        nodes: Optional[Union[int, Sequence[int]]] = None,
        default_perm: Permission = Permission.NONE,
        replicas: int = 0,
    ):
        """Allocate an LMR (generator; returns a master lh).

        ``nodes`` selects where the memory lives: one LITE id, a list
        (the LMR is spread evenly across them, §4.1), or None for the
        local node.  Only a master may later move/free it.

        ``replicas=k`` keeps ``k`` full backup copies on nodes outside
        the primary placement: every acked ``lt_write`` has reached all
        live backups, so a crash of the primary loses no committed data
        (docs/INTERNALS.md §14).  Reads are served by the primary only.
        """
        if size <= 0:
            raise ValueError(f"LMR size must be positive, got {size}")
        kernel = self.kernel
        if nodes is None:
            node_list: List[int] = [kernel.lite_id]
        elif isinstance(nodes, int):
            node_list = [nodes]
        else:
            node_list = list(nodes)
        if not node_list:
            raise ValueError("lt_malloc needs at least one target node")
        backup_ids: List[int] = []
        if replicas:
            candidates = [lite_id for lite_id in sorted(kernel.manager.members)
                          if lite_id not in node_list]
            if len(candidates) < replicas:
                raise LiteError(
                    f"replicas={replicas} needs {replicas} node(s) outside the "
                    f"primary placement; only {len(candidates)} available"
                )
            backup_ids = candidates[:replicas]
        yield from self._enter()
        yield from self._metadata()
        shares = self._split_evenly(size, len(node_list))
        chunks: List[ChunkInfo] = []
        for target, share in zip(node_list, shares):
            if target == kernel.lite_id:
                yield from kernel.node.cpu.execute(
                    kernel._alloc_cost(share), tag="lite-mgmt"
                )
                local_chunks = yield from kernel.alloc_chunks(share)
                chunks.extend(local_chunks)
            else:
                reply = yield from kernel.ctrl_request(
                    target, {"type": MsgType.ALLOC, "size": share}
                )
                chunks.extend(ChunkInfo.from_wire(w) for w in reply["chunks"])
        replica_chunks = {}
        for backup in backup_ids:
            if backup == kernel.lite_id:
                yield from kernel.node.cpu.execute(
                    kernel._alloc_cost(size), tag="lite-mgmt"
                )
                replica_chunks[backup] = (yield from kernel.alloc_chunks(size))
            else:
                reply = yield from kernel.ctrl_request(
                    backup, {"type": MsgType.ALLOC, "size": size}
                )
                replica_chunks[backup] = [
                    ChunkInfo.from_wire(w) for w in reply["chunks"]
                ]
        lmr_name = name if name is not None else f"__anon:{next(_anon_counter)}"
        record = MasterRecord(lmr_name, size, chunks, creator=self.principal,
                              default_perm=default_perm)
        record.replicas = replica_chunks
        kernel.registry[lmr_name] = record
        kernel._records_by_id[record.lmr_id] = record
        if name is not None:
            kernel.manager.register_name(name, kernel.lite_id)
        if replica_chunks:
            kernel.manager.register_replicated(
                record.lmr_id, lmr_name, size, kernel.lite_id,
                [c.to_wire() for c in chunks],
                {b: [c.to_wire() for c in bchunks]
                 for b, bchunks in replica_chunks.items()},
                self.principal, default_perm=default_perm.value,
            )
        mapping = MappedLmr(record.lmr_id, lmr_name, size, chunks, kernel.lite_id,
                            replica_chunks=dict(replica_chunks))
        kernel.mappings_by_lmr.setdefault(record.lmr_id, []).append(mapping)
        handle = LmrHandle(self, mapping, Permission.full())
        yield from self._exit()
        return handle

    @staticmethod
    def _split_evenly(size: int, parts: int) -> List[int]:
        base, extra = divmod(size, parts)
        return [base + (1 if index < extra else 0) for index in range(parts)]

    @traced_op("op.lt_free")
    def lt_free(self, lh: LmrHandle):
        """Free an LMR (generator).  Requires MASTER; notifies mappers."""
        mapping = lh.require(self, Permission.MASTER)
        kernel = self.kernel
        record = kernel.registry.get(mapping.name)
        if record is None or record.lmr_id != mapping.lmr_id:
            raise LiteError(
                "lt_free must run on the master node holding the LMR record"
            )
        yield from self._enter()
        yield from self._metadata()
        record.freed = True
        kernel.registry.pop(mapping.name, None)
        kernel._records_by_id.pop(record.lmr_id, None)
        kernel.manager.drop_name(mapping.name)
        # Invalidate everyone who mapped it.
        for peer_id in list(record.mapped_by):
            if peer_id != kernel.lite_id:
                kernel.ctrl_send(
                    peer_id,
                    {"type": MsgType.FREE_NOTIFY, "lmr_id": record.lmr_id,
                     "src": kernel.lite_id},
                )
        for local_map in kernel.mappings_by_lmr.pop(record.lmr_id, []):
            local_map.valid = False
        kernel.manager.drop_replicated(record.lmr_id)
        # Release the physical chunks, grouped per owner node (backup
        # copies are freed alongside the primary).
        by_node = {}
        for chunk in record.chunks:
            by_node.setdefault(chunk.node_id, []).append(chunk)
        for backup_chunks in record.replicas.values():
            for chunk in backup_chunks:
                by_node.setdefault(chunk.node_id, []).append(chunk)
        for node_id, node_chunks in by_node.items():
            if node_id == kernel.lite_id:
                for chunk in node_chunks:
                    yield from kernel.free_chunk(chunk)
            else:
                yield from kernel.ctrl_request(
                    node_id,
                    {"type": MsgType.FREE_CHUNKS,
                     "chunks": [c.to_wire() for c in node_chunks]},
                )
        lh.valid = False
        yield from self._exit()

    @traced_op("op.lt_map")
    def lt_map(self, name: str, perm: Permission = Permission.READ | Permission.WRITE):
        """Open an LMR by name (generator; returns a fresh lh, §4.1)."""
        kernel = self.kernel
        yield from self._enter()
        yield from self._metadata()
        try:
            master_id = kernel.manager.lookup_name(name)
        except KeyError as exc:
            raise LiteError(str(exc)) from None
        if master_id == kernel.lite_id:
            record = kernel.registry.get(name)
            if record is None or record.freed:
                raise LiteError(f"no LMR named {name!r}")
            if not record.check(self.principal, perm):
                raise LiteError(f"permission denied for {self.principal!r}")
            record.mapped_by.add(kernel.lite_id)
            mapping = MappedLmr(
                record.lmr_id, name, record.size, record.chunks, master_id,
                replica_chunks={b: list(bchunks)
                                for b, bchunks in record.replicas.items()},
            )
        else:
            reply = yield from kernel.ctrl_request(
                master_id,
                {"type": MsgType.MAP, "name": name,
                 "principal": self.principal, "perm": perm.value},
            )
            mapping = MappedLmr(
                reply["lmr_id"],
                name,
                reply["size"],
                [ChunkInfo.from_wire(w) for w in reply["chunks"]],
                master_id,
                replica_chunks={
                    int(b): [ChunkInfo.from_wire(w) for w in bchunks]
                    for b, bchunks in reply.get("replicas", {}).items()
                },
            )
        kernel.mappings_by_lmr.setdefault(mapping.lmr_id, []).append(mapping)
        handle = LmrHandle(self, mapping, perm)
        yield from self._exit()
        return handle

    @traced_op("op.lt_unmap")
    def lt_unmap(self, lh: LmrHandle):
        """Close an lh: drop local metadata, tell the master (generator)."""
        mapping = lh.require(self, Permission.NONE)
        kernel = self.kernel
        yield from self._enter()
        yield from self._metadata()
        lh.valid = False
        local_maps = kernel.mappings_by_lmr.get(mapping.lmr_id, [])
        if mapping in local_maps:
            local_maps.remove(mapping)
        if mapping.master_id != kernel.lite_id:
            kernel.ctrl_send(
                mapping.master_id,
                {"type": MsgType.UNMAP_NOTIFY, "lmr_id": mapping.lmr_id,
                 "src": kernel.lite_id},
            )
        else:
            record = kernel._records_by_id.get(mapping.lmr_id)
            if record is not None and not local_maps:
                record.mapped_by.discard(kernel.lite_id)
        yield from self._exit()

    @traced_op("op.lt_move")
    def lt_move(self, lh: LmrHandle, new_nodes: Union[int, Sequence[int]]):
        """Master API (§4.1): migrate an LMR's data to other node(s).

        Allocates fresh chunks at the destination, copies the contents
        through one-sided ops, atomically retargets the master record,
        pushes the new chunk map to every node that has the LMR mapped
        (their lhs keep working transparently), then frees the old
        chunks.  Generator.
        """
        mapping = lh.require(self, Permission.MASTER)
        kernel = self.kernel
        record = kernel.registry.get(mapping.name)
        if record is None or record.lmr_id != mapping.lmr_id:
            raise LiteError(
                "lt_move must run on the master node holding the LMR record"
            )
        node_list = [new_nodes] if isinstance(new_nodes, int) else list(new_nodes)
        if not node_list:
            raise ValueError("lt_move needs at least one destination node")
        yield from self._enter()
        yield from self._metadata()
        old_chunks = list(record.chunks)
        # 1. Allocate destination chunks.
        new_chunks: List[ChunkInfo] = []
        for target, share in zip(node_list,
                                 self._split_evenly(record.size, len(node_list))):
            if target == kernel.lite_id:
                yield from kernel.node.cpu.execute(
                    kernel._alloc_cost(share), tag="lite-mgmt"
                )
                local_chunks = yield from kernel.alloc_chunks(share)
                new_chunks.extend(local_chunks)
            else:
                reply = yield from kernel.ctrl_request(
                    target, {"type": MsgType.ALLOC, "size": share}
                )
                new_chunks.extend(ChunkInfo.from_wire(w) for w in reply["chunks"])
        # 2. Copy the data (read old, write new), 4 MB at a time.
        old_map = MappedLmr(0, "", record.size, old_chunks, 0)
        new_map = MappedLmr(0, "", record.size, new_chunks, 0)
        stride = self.params.lite_chunk_bytes
        cursor = 0
        while cursor < record.size:
            span = min(stride, record.size - cursor)
            data = yield from kernel.onesided.read(old_map, cursor, span)
            yield from kernel.onesided.write(new_map, cursor, data)
            cursor += span
        # 3. Retarget the record and every mapping, everywhere.
        record.chunks = new_chunks
        for local_map in kernel.mappings_by_lmr.get(record.lmr_id, []):
            local_map.chunks = new_chunks
        wire_chunks = [c.to_wire() for c in new_chunks]
        procs = []
        for peer_id in list(record.mapped_by):
            if peer_id == kernel.lite_id:
                continue
            procs.append(
                self.sim.process(
                    kernel.ctrl_request(
                        peer_id,
                        {"type": MsgType.CHUNKS_UPDATE,
                         "lmr_id": record.lmr_id, "chunks": wire_chunks},
                    )
                )
            )
        if procs:
            yield self.sim.all_of(procs)
        # 4. Free the old chunks.
        by_node = {}
        for chunk in old_chunks:
            by_node.setdefault(chunk.node_id, []).append(chunk)
        for node_id, node_chunks in by_node.items():
            if node_id == kernel.lite_id:
                for chunk in node_chunks:
                    yield from kernel.free_chunk(chunk)
            else:
                yield from kernel.ctrl_request(
                    node_id,
                    {"type": MsgType.FREE_CHUNKS,
                     "chunks": [c.to_wire() for c in node_chunks]},
                )
        yield from self._exit()

    @traced_op("op.lt_grant")
    def lt_grant(self, name: str, grantee: str, perm: Permission):
        """Master API: grant ``perm`` on LMR ``name`` to another principal."""
        kernel = self.kernel
        yield from self._enter()
        master_id = kernel.manager.lookup_name(name)
        if master_id == kernel.lite_id:
            record = kernel.registry[name]
            if not record.check(self.principal, Permission.MASTER):
                raise LiteError("only a master may grant permissions")
            record.grant(grantee, perm)
        else:
            yield from kernel.ctrl_request(
                master_id,
                {"type": MsgType.GRANT, "name": name,
                 "principal": self.principal, "grantee": grantee,
                 "perm": perm.value},
            )
        yield from self._exit()

    # ------------------------------------------------------------------
    # One-sided memory ops: LT_read / LT_write
    # ------------------------------------------------------------------
    @traced_op("op.lt_write", nbytes=lambda a: len(a[2]))
    def lt_write(self, lh: LmrHandle, offset: int, data: bytes):
        """RDMA write into an LMR (generator; returns when data landed)."""
        mapping = lh.require(self, Permission.WRITE)
        yield from self._enter()
        yield from self._metadata()
        yield from self.kernel.onesided.write(mapping, offset, data, self.priority)
        yield from self._exit()

    @traced_op("op.lt_read", nbytes=lambda a: a[2])
    def lt_read(self, lh: LmrHandle, offset: int, nbytes: int):
        """RDMA read from an LMR (generator; returns the bytes)."""
        mapping = lh.require(self, Permission.READ)
        yield from self._enter()
        yield from self._metadata()
        data = yield from self.kernel.onesided.read(
            mapping, offset, nbytes, self.priority
        )
        yield from self._exit()
        return data

    @traced_op("op.lt_write_vec", nbytes=lambda a: sum(len(d) for _, _, d in a[0]))
    def lt_write_vec(self, ops):
        """Vector LT_write: many ``(lh, offset, data)`` in one call (§5.2).

        One syscall crossing and one metadata charge cover the whole
        vector, and the kernel posts the WRs as doorbell-batched chains
        (``params.doorbell_batch``).  Generator; returns when all writes
        have landed.
        """
        if not ops:
            return
        plan = [
            (lh.require(self, Permission.WRITE), offset, data)
            for lh, offset, data in ops
        ]
        yield from self._enter()
        yield from self._metadata()
        yield from self.kernel.onesided.write_vec(plan, self.priority)
        yield from self._exit()

    @traced_op("op.lt_read_vec", nbytes=lambda a: sum(n for _, _, n in a[0]))
    def lt_read_vec(self, ops):
        """Vector LT_read: many ``(lh, offset, nbytes)`` in one call.

        Generator; returns a list of bytes objects in op order.  Same
        single-crossing, doorbell-batched model as :meth:`lt_write_vec`.
        """
        if not ops:
            return []
        plan = [
            (lh.require(self, Permission.READ), offset, nbytes)
            for lh, offset, nbytes in ops
        ]
        yield from self._enter()
        yield from self._metadata()
        results = yield from self.kernel.onesided.read_vec(plan, self.priority)
        yield from self._exit()
        return results

    # ------------------------------------------------------------------
    # Memory-like extended ops (§7.1)
    # ------------------------------------------------------------------
    @traced_op("op.lt_memset", nbytes=lambda a: a[3])
    def lt_memset(self, lh: LmrHandle, offset: int, value: int, nbytes: int):
        """Set a range of an LMR to ``value`` (executed at the data)."""
        mapping = lh.require(self, Permission.WRITE)
        if offset + nbytes > mapping.size:
            raise ValueError("memset range outside LMR")
        kernel = self.kernel
        yield from self._enter()
        yield from self._metadata()
        executor = mapping.chunks[0].node_id
        msg = {
            "type": MsgType.MEMSET,
            "chunks": [c.to_wire() for c in mapping.chunks],
            "offset": offset,
            "value": value & 0xFF,
            "nbytes": nbytes,
        }
        if executor == kernel.lite_id:
            yield from kernel.node.cpu.execute(
                nbytes / self.params.memset_bytes_per_us, tag="lite-mgmt"
            )
            for chunk, chunk_off, piece, _ in mapping.plan(offset, nbytes):
                kernel._local_chunk_write(chunk, chunk_off, bytes([value & 0xFF]) * piece)
        else:
            yield from kernel.ctrl_request(executor, msg)
        yield from self._exit()

    @traced_op("op.lt_memcpy", nbytes=lambda a: a[4])
    def lt_memcpy(self, src: LmrHandle, src_off: int, dst: LmrHandle,
                  dst_off: int, nbytes: int):
        """Copy between LMRs; routed to the node holding the source (§7.1)."""
        src_map = src.require(self, Permission.READ)
        dst_map = dst.require(self, Permission.WRITE)
        kernel = self.kernel
        yield from self._enter()
        yield from self._metadata()
        src_nodes = {c.node_id for c in src_map.chunks}
        if len(src_nodes) == 1:
            executor = next(iter(src_nodes))
            if executor == kernel.lite_id:
                data = yield from kernel.onesided.read(src_map, src_off, nbytes)
                yield from kernel.onesided.write(dst_map, dst_off, data)
            else:
                yield from kernel.ctrl_request(
                    executor,
                    {
                        "type": MsgType.MEMCPY,
                        "src_chunks": [c.to_wire() for c in src_map.chunks],
                        "dst_chunks": [c.to_wire() for c in dst_map.chunks],
                        "src_off": src_off,
                        "dst_off": dst_off,
                        "nbytes": nbytes,
                    },
                )
        else:
            # Source spread across machines: pull then push.
            data = yield from kernel.onesided.read(src_map, src_off, nbytes)
            yield from kernel.onesided.write(dst_map, dst_off, data)
        yield from self._exit()

    @traced_op("op.lt_memmove", nbytes=lambda a: a[4])
    def lt_memmove(self, src: LmrHandle, src_off: int, dst: LmrHandle,
                   dst_off: int, nbytes: int):
        """Same data motion as lt_memcpy (overlap-safe by gather-then-write)."""
        yield from self.lt_memcpy(src, src_off, dst, dst_off, nbytes)

    # ------------------------------------------------------------------
    # RPC and messaging (§5)
    # ------------------------------------------------------------------
    def lt_reg_rpc(self, func_id: int) -> None:
        """LT_regRPC: make ``func_id`` receivable on this node."""
        self.kernel.rpc.register(func_id)

    @traced_op("op.lt_rpc", nbytes=lambda a: len(a[2]))
    def lt_rpc(self, server_id: int, func_id: int, data: bytes,
               max_reply: int = 4096, timeout: Optional[float] = None,
               retries: int = 0):
        """LT_RPC: call ``func_id`` at ``server_id`` (generator; returns reply).

        With a ``timeout``, up to ``retries`` same-token resends are
        attempted before :class:`RpcTimeoutError`; the server suppresses
        duplicates, so retries are safe for non-idempotent handlers.
        """
        if (timeout is None and not self.kernel_level
                and self.sim.fastpath_enabled and self.sim.tracer is None):
            # Crossing-fused twin: same timeline and CPU ledger, with
            # the deterministic syscall/wait segments committed onto the
            # fp-queue (retries are moot without a timeout).
            reply = yield from self.kernel.rpc.call_fast(
                server_id, func_id, data, max_reply, self.priority, self
            )
            return reply
        yield from self._enter()
        yield from self._metadata()
        reply = yield from self.kernel.rpc.call(
            server_id, func_id, data, max_reply=max_reply,
            priority=self.priority, timeout=timeout, retries=retries,
            waiter=self._waiter(),
        )
        yield from self._exit()
        return reply

    @traced_op("op.lt_multicast_rpc", nbytes=lambda a: len(a[2]))
    def lt_multicast_rpc(self, server_ids: Sequence[int], func_id: int,
                         data: bytes, max_reply: int = 4096):
        """Extension (§8.4): the same RPC to many servers, gather replies."""
        yield from self._enter()
        yield from self._metadata()
        procs = [
            self.sim.process(
                self.kernel.rpc.call(
                    server, func_id, data, max_reply=max_reply,
                    priority=self.priority,
                )
            )
            for server in server_ids
        ]
        results = yield self.sim.all_of(procs)
        yield from self._exit()
        return [results[index] for index in range(len(server_ids))]

    @traced_op("op.lt_recv_rpc")
    def lt_recv_rpc(self, func_id: int):
        """LT_recvRPC: block for the next call to ``func_id`` (generator)."""
        yield from self._enter()
        event = self.kernel.rpc.wait_call(func_id)
        waiter = self._waiter()
        if waiter is None:
            call = yield event
        else:
            call = yield from waiter(event)
        yield from self.kernel.rpc.finish_recv(call)
        yield from self._exit()
        return call

    @traced_op("op.lt_reply_rpc", nbytes=lambda a: len(a[1]))
    def lt_reply_rpc(self, call, data: bytes):
        """LT_replyRPC: send the return value (generator; does not wait)."""
        yield from self._enter()
        yield from self.kernel.rpc.reply(call, data)
        yield from self._exit()

    @traced_op("op.lt_reply_recv", nbytes=lambda a: len(a[1]))
    def lt_reply_recv(self, call, data: bytes, func_id: int):
        """Optimized reply-then-receive (§5.2): one crossing for both."""
        if (not self.kernel_level and self.sim.fastpath_enabled
                and self.sim.tracer is None):
            next_call = yield from self._lt_reply_recv_fast(call, data, func_id)
            return next_call
        yield from self._enter()
        yield from self.kernel.rpc.reply(call, data)
        event = self.kernel.rpc.wait_call(func_id)
        waiter = self._waiter()
        if waiter is None:
            next_call = yield event
        else:
            next_call = yield from waiter(event)
        yield from self.kernel.rpc.finish_recv(next_call)
        yield from self._exit()
        return next_call

    def _lt_reply_recv_fast(self, call, data: bytes, func_id: int):
        """Crossing-fused reply-then-receive (generator).

        Same timeline and CPU ledger as :meth:`lt_reply_recv`, with the
        deterministic segments committed onto the fp-queue: the enter +
        reply-stack crossing fuses to a single wake at ``t_u``, and the
        wait for the next call parks directly on the function store with
        a ``_FusedRecv`` marker so ``_handle_request`` can commit the
        whole arrival crossing arithmetically.  Either segment falls
        back to the exact generator legs when the horizon is blocked.
        """
        kernel = self.kernel
        rpc = kernel.rpc
        sim = self.sim
        params = self.params
        cpu = kernel.node.cpu
        tag = self._tag
        # -- enter + reply-stack crossing (pad 0: 2 enqueues both) --
        enter_cost = params.lite_syscall_enter_us
        stack_cost = params.lite_reply_stack_us
        t_u = sim.now + enter_cost + stack_cost
        if not sim._nowq and not call.replied and sim.fp_horizon() > t_u:
            gate = sim.event()
            sim.fp_schedule(t_u, gate.succeed)
            yield gate
            cpu.charge(tag, enter_cost)
            call.replied = True
            cpu.charge("lite-rpc-reply", stack_cost)
            rpc._reply_finish(call, data)
        else:
            yield from self._enter()
            yield from rpc.reply(call, data)
        # -- fusable park for the next call --
        store = rpc.funcs.get(func_id)
        if store is None:
            raise RpcError(f"RPC function {func_id} is not registered here")
        event = store.get()
        if event.triggered:
            # Backlog already waiting: ordinary legs on a hot event.
            next_call = yield from cpu.adaptive_wait(event, tag=tag)
            next_call = yield from rpc.finish_recv(next_call)
            yield from self._exit()
            return next_call
        rec = _FusedRecv(event, sim.now, params.lite_sharedpage_return_us)
        rpc._fused_recv[func_id] = rec
        try:
            next_call = yield event
        finally:
            if rpc._fused_recv.get(func_id) is rec:
                del rpc._fused_recv[func_id]
        if rec.fused_at is not None:
            # _handle_request committed the arrival crossing; replay the
            # private-tag charges here (t_s).
            waited = rec.fused_at - rec.park_at
            if waited <= params.adaptive_busy_window_us:
                cpu.charge(tag, waited)
                cpu.charge(tag, params.poll_loop_us / 2)
            else:
                cpu.charge(tag, params.adaptive_busy_window_us)
                cpu.charge(tag, params.thread_wakeup_us)
            cpu.charge(tag, rec.exit_cost)
            return next_call
        # Ordinary delivery: replicate the generator legs.
        waited = sim.now - rec.park_at
        if waited <= params.adaptive_busy_window_us:
            cpu.charge(tag, waited)
            discover = params.poll_loop_us / 2
            yield sim.timeout(discover)
            cpu.charge(tag, discover)
        else:
            cpu.charge(tag, params.adaptive_busy_window_us)
            yield sim.timeout(params.thread_wakeup_us)
            cpu.charge(tag, params.thread_wakeup_us)
        next_call = yield from rpc.finish_recv(next_call)
        yield from self._exit()
        return next_call

    @traced_op("op.lt_send", nbytes=lambda a: len(a[1]))
    def lt_send(self, dst_id: int, data: bytes):
        """LT_send: one-way message to a remote node (generator)."""
        yield from self._enter()
        self.kernel.ctrl_send(
            dst_id,
            {"type": MsgType.USER_MSG, "src": self.kernel.lite_id,
             "data": base64.b64encode(data).decode()},
            ordered=True,
        )
        yield from self._exit()

    @traced_op("op.lt_recv_msg")
    def lt_recv_msg(self):
        """Receive the next LT_send message: returns (src_id, bytes)."""
        yield from self._enter()
        item = yield self.kernel.user_inbox.get()
        yield from self._exit()
        return item

    # ------------------------------------------------------------------
    # Synchronization (§7.2)
    # ------------------------------------------------------------------
    def lt_create_lock(self, name: str, owner_id: Optional[int] = None):
        """Create a distributed lock (generator; returns LiteLock)."""
        owner = owner_id if owner_id is not None else self.kernel.lite_id
        handle = yield from self.lt_malloc(
            8, name=f"__lock:{name}", nodes=owner,
            default_perm=Permission.READ | Permission.WRITE,
        )
        yield from self.lt_memset(handle, 0, 0, 8)
        return LiteLock(name, owner, handle)

    def lt_open_lock(self, name: str):
        """Open an existing lock by name (generator; returns LiteLock)."""
        handle = yield from self.lt_map(
            f"__lock:{name}", Permission.READ | Permission.WRITE
        )
        owner = handle.mapping.chunks[0].node_id
        return LiteLock(name, owner, handle)

    @traced_op("op.lt_lock")
    def lt_lock(self, lock: LiteLock):
        """Acquire: one fetch-add fast path, FIFO wait queue otherwise."""
        mapping = lock.handle.require(self, Permission.WRITE)
        yield from self._enter()
        old = yield from self.kernel.onesided.fetch_add(mapping, 0, 1, self.priority)
        if old != 0:
            if lock.owner_id == self.kernel.lite_id:
                granted = self.kernel.sync.lock_wait(lock.name)
                yield granted
            else:
                yield from self.kernel.ctrl_request(
                    lock.owner_id, {"type": MsgType.LOCK_WAIT, "lock": lock.name}
                )
        yield from self._exit()

    @traced_op("op.lt_unlock")
    def lt_unlock(self, lock: LiteLock):
        """Release: decrement; wake the FIFO-next waiter if any."""
        mapping = lock.handle.require(self, Permission.WRITE)
        yield from self._enter()
        old = yield from self.kernel.onesided.fetch_add(
            mapping, 0, (1 << 64) - 1, self.priority
        )
        if old == 0:
            raise LiteError(f"unlock of unheld lock {lock.name!r}")
        if old > 1:
            if lock.owner_id == self.kernel.lite_id:
                yield self.sim.timeout(self.params.lite_metadata_us)
                self.kernel.sync.lock_release(lock.name)
            else:
                yield from self.kernel.ctrl_request(
                    lock.owner_id, {"type": MsgType.LOCK_RELEASE, "lock": lock.name}
                )
        yield from self._exit()

    @traced_op("op.lt_barrier")
    def lt_barrier(self, name: str, n: int, owner_id: Optional[int] = None):
        """LT_barrier: wait until ``n`` participants reached ``name``."""
        owner = owner_id if owner_id is not None else min(
            self.kernel.manager.members
        )
        yield from self._enter()
        if owner == self.kernel.lite_id:
            released = self.kernel.sync.barrier_arrive(name, n)
            yield released
        else:
            yield from self.kernel.ctrl_request(
                owner, {"type": MsgType.BARRIER, "name": name, "n": n}
            )
        yield from self._exit()

    @traced_op("op.lt_fetch_add")
    def lt_fetch_add(self, lh: LmrHandle, offset: int, delta: int):
        """Atomic fetch-and-add on an 8-byte LMR word (generator)."""
        mapping = lh.require(self, Permission.WRITE)
        yield from self._enter()
        old = yield from self.kernel.onesided.fetch_add(
            mapping, offset, delta % (1 << 64), self.priority
        )
        yield from self._exit()
        return old

    @traced_op("op.lt_test_set")
    def lt_test_set(self, lh: LmrHandle, offset: int, expected: int, value: int):
        """Atomic compare-and-swap on an 8-byte LMR word (generator)."""
        mapping = lh.require(self, Permission.WRITE)
        yield from self._enter()
        old = yield from self.kernel.onesided.cmp_swap(
            mapping, offset, expected, value, self.priority
        )
        yield from self._exit()
        return old


class ClientSession:
    """A short-lived logical client on a leased pooled connection.

    The unit of the elastic-churn scenario (INTERNALS §15): serverless
    or autoscaled clients arrive, issue a few ops, and leave, at a rate
    where *control-plane* cost — not data-plane latency — decides the
    time to first op.  ``attach()`` leases a reserved RC connection
    from the kernel's :class:`~repro.cluster.qp_pool.QPPool` toward the
    peer (pool hit: metadata-only grant) or pays the full cold
    bring-up (miss); ``write``/``read`` issue one-sided verbs ops
    against the pool's scratch window on the peer, renewing the lease
    each time; ``detach()`` deregisters the session MR and returns the
    conn to the pool.

    MR registration is **lazy** by default — the first op pays Fig 8's
    pin cost, keeping attach minimal — or **eager** with
    ``eager_mr=True``, moving that cost into attach so the first op is
    pure data plane.  The two knobs trade attach latency against
    time-to-first-op.
    """

    def __init__(self, ctx: LiteContext, peer_lite_id: int,
                 session_id: Optional[int] = None, eager_mr: bool = False,
                 buffer_bytes: int = 4096):
        self.ctx = ctx
        self.kernel = ctx.kernel
        self.sim = ctx.sim
        self.params = ctx.params
        self.peer_lite_id = peer_lite_id
        self.session_id = (next(_session_counter)
                           if session_id is None else session_id)
        self.eager_mr = eager_mr
        self.buffer_bytes = buffer_bytes
        self.pool = None
        self.conn = None
        self.source: Optional[str] = None    # "hit" | "cold"
        self.mr = None
        self.attach_at: Optional[float] = None    # attach start (sim us)
        self.attached_at: Optional[float] = None  # attach completion
        self.first_op_at: Optional[float] = None  # first op completion
        self.ops = 0

    @property
    def time_to_first_op(self) -> Optional[float]:
        """Attach-start to first-op-completion, or None before then."""
        if self.first_op_at is None or self.attach_at is None:
            return None
        return self.first_op_at - self.attach_at

    def attach(self):
        """Join: lease a conn — pool hit or cold bring-up (generator).

        Returns the lease source (``"hit"`` or ``"cold"``).
        """
        if self.conn is not None:
            raise LiteError(f"session {self.session_id} already attached")
        ctx = self.ctx
        self.attach_at = self.sim.now
        yield from ctx._enter()
        self.pool = self.kernel.qp_pool(self.peer_lite_id)
        self.conn, self.source = yield from self.pool.acquire(self.session_id)
        if self.eager_mr and self.mr is None:
            yield from self._register()
        yield from ctx._exit()
        self.attached_at = self.sim.now
        return self.source

    def _register(self):
        """Register the session's payload MR (Fig 8's base + pin cost)."""
        self.mr = yield from self.kernel.device.reg_mr(
            self.kernel.pd, self.buffer_bytes, Access.ALL
        )

    def write(self, data: bytes, remote_offset: int = 0):
        """One-sided WRITE of ``data`` into the peer scratch (generator)."""
        status = yield from self._op(Opcode.WRITE, len(data), data,
                                     remote_offset)
        return status

    def read(self, nbytes: int, remote_offset: int = 0):
        """One-sided READ from the peer scratch (generator)."""
        status = yield from self._op(Opcode.READ, nbytes, None, remote_offset)
        return status

    def _op(self, opcode, nbytes: int, data, remote_offset: int):
        if self.conn is None:
            raise LiteError(f"session {self.session_id} is not attached")
        pool = self.pool
        if remote_offset < 0 or remote_offset + nbytes > pool.scratch.size:
            raise ValueError("session op exceeds the peer scratch window")
        ctx = self.ctx
        yield from ctx._enter()
        if self.mr is None:
            # Lazy mode: the first op pays registration.
            yield from self._register()
        if data is not None:
            self.mr.write(0, data)
        if not pool.renew(self.session_id):
            # The lease expired (sweeper reclaimed the conn — it may
            # already be parked or granted to another session): the
            # session is revoked, never allowed to post on it again.
            yield from ctx._exit()
            raise LiteError(
                f"session {self.session_id} lease expired", errno=ECONNRESET
            )
        wr = SendWR(
            opcode,
            sgl=[Sge(self.mr, 0, nbytes)],
            remote_addr=pool.scratch.addr + remote_offset,
            rkey=pool.peer_rkey,
        )
        status = yield self.conn.qp.post_send(wr)
        yield from ctx._exit()
        self.ops += 1
        if self.first_op_at is None:
            self.first_op_at = self.sim.now
        return status

    def detach(self):
        """Leave: dereg the session MR and return the conn (generator).

        Returns True when the conn went back to the pool, False when
        the lease had already expired (the sweeper reclaimed it).
        """
        if self.conn is None:
            raise LiteError(f"session {self.session_id} is not attached")
        ctx = self.ctx
        yield from ctx._enter()
        if self.mr is not None:
            yield from self.kernel.device.dereg_mr(self.mr)
            self.mr = None
        released = self.pool.release(self.session_id)
        yield from ctx._exit()
        self.conn = None
        self.source = None
        return released

    def __repr__(self) -> str:
        state = "attached" if self.conn is not None else "detached"
        return (f"ClientSession({self.session_id}, peer={self.peer_lite_id}, "
                f"{state}, source={self.source}, ops={self.ops})")


def rpc_server_loop(ctx: LiteContext, func_id: int, handler):
    """Serve ``func_id`` forever with ``handler(input_bytes) -> bytes``.

    ``handler`` may be a plain function or a generator function (for
    handlers that consume simulated compute time).  Uses the optimized
    reply-and-receive path.
    """
    ctx.lt_reg_rpc(func_id)
    call = yield from ctx.lt_recv_rpc(func_id)
    while True:
        result = handler(call.input)
        if hasattr(result, "send"):
            result = yield from result
        call = yield from ctx.lt_reply_recv(call, result, func_id)


def lite_boot(cluster, qos_mode: Optional[str] = None,
              use_global_mr: bool = True) -> List[LiteKernel]:
    """Install and boot LITE on every node of a cluster, fully meshed.

    Runs the simulator through the boot phase; returns the kernels
    (index 0 has LITE id 1, etc.).  ``use_global_mr=False`` selects the
    per-LMR-MR ablation mode (DESIGN.md §6).
    """
    kernels = [
        LiteKernel(node, cluster.manager, qos_mode, use_global_mr=use_global_mr)
        for node in cluster.nodes
    ]

    def setup():
        for kernel in kernels:
            yield from kernel.boot()
        for index, kernel in enumerate(kernels):
            for other in kernels[index + 1:]:
                yield from kernel.connect(other)

    cluster.run_process(setup())
    return kernels
