"""LITE RPC: the write-imm ring mechanism (paper §5).

Per (client-node → server-node) pair, the server owns a ring LMR
(default 16 MB).  The client appends requests at its tail with a single
RDMA write-imm — the 32-bit immediate carries the RPC function id and
the ring offset — and the server's shared polling thread parses the IMM,
lifts the request out of the ring, advances the head pointer, and hands
the call to a user thread blocked in ``LT_recvRPC``.  The reply is a
second write-imm straight into the client-supplied return buffer.

Neither side ever polls send-completion state: a missing reply within
the timeout is the failure signal (§5.1).  No receive *buffers* are
consumed for RPC payloads — only bufferless IMM entries — which is
where the Figure 12 memory-utilization win comes from.
"""

from __future__ import annotations

import itertools
import struct
from typing import Callable, Dict, Optional

from ..hw.caches import LruDict
from ..sim import Store
from .errors import EIO, ENODEV, ETIMEDOUT, LiteError
from .protocol import (
    IMM_KIND_REPLY,
    IMM_KIND_REQUEST,
    MAX_TOKEN,
    REPLY_HEADER_BYTES,
    REQ_HEADER_BYTES,
    pack_reply_imm,
    pack_request_imm,
    unpack_imm,
)

__all__ = ["RpcEngine", "RpcCall", "RpcTimeoutError", "RpcError"]

# Bound on the duplicate-suppression reply cache (entries).
_REPLY_CACHE_MAX = 512


class RpcError(LiteError):
    """Server-side RPC failure (unknown function, reply too large...)."""

    def __init__(self, message: str, errno: int = EIO):
        super().__init__(message, errno=errno)


class RpcTimeoutError(RpcError):
    """No reply within the failure-detection window (§5.1)."""

    def __init__(self, message: str):
        super().__init__(message, errno=ETIMEDOUT)


_STATUS_OK = 0
_STATUS_NO_FUNC = 1
_STATUS_REPLY_TOO_BIG = 2


class _ClientRing:
    """Client-side view of its ring at one server."""

    __slots__ = ("server_id", "ring_addr", "size", "tail_virtual", "head_region")

    def __init__(self, server_id: int, ring_addr: int, size: int, head_region):
        self.server_id = server_id
        self.ring_addr = ring_addr
        self.size = size
        self.tail_virtual = 0
        # The server RDMA-writes its head pointer here (step f).
        self.head_region = head_region

    def head_virtual(self) -> int:
        """Server's progress pointer (read from the shared 8 B slot)."""
        return struct.unpack("<Q", self.head_region.read(0, 8))[0]

    def free_space(self) -> int:
        """Ring bytes available for new requests."""
        return self.size - (self.tail_virtual - self.head_virtual())


class _ServerRing:
    """Server-side state for one client's ring."""

    __slots__ = ("client_id", "region", "size", "head_virtual",
                 "client_head_slot_addr", "bytes_received", "head_dirty")

    def __init__(self, client_id: int, region, client_head_slot_addr: int):
        self.client_id = client_id
        self.region = region
        self.size = region.size
        self.head_virtual = 0
        self.client_head_slot_addr = client_head_slot_addr
        self.bytes_received = 0
        # Head-pointer update owed to the client but not yet written
        # (deferred for reply piggybacking when doorbell_batch > 1).
        self.head_dirty = False

    def read_wrapped(self, pos: int, nbytes: int) -> bytes:
        """Read ring bytes, wrapping past the physical end."""
        pos %= self.size
        if pos + nbytes <= self.size:
            return self.region.read(pos, nbytes)
        first = self.region.read(pos, self.size - pos)
        return first + self.region.read(0, nbytes - len(first))


class RpcCall:
    """One received RPC invocation, as handed to ``LT_recvRPC``."""

    __slots__ = ("func_id", "client_id", "input", "reply_addr", "token",
                 "max_reply", "arrived_at", "replied")

    def __init__(self, func_id, client_id, input_bytes, reply_addr, token,
                 max_reply, arrived_at):
        self.func_id = func_id
        self.client_id = client_id
        self.input = input_bytes
        self.reply_addr = reply_addr
        self.token = token
        self.max_reply = max_reply
        self.arrived_at = arrived_at
        self.replied = False


class _PendingCall:
    """Client-side wait state for one outstanding token.

    ``park_at``/``priority``/``call_start`` are populated by the fused
    client path (:meth:`RpcEngine.call_fast`): a non-``None`` ``park_at``
    marks the parked event as fusable, letting ``_handle_reply`` commit
    the reply crossing (adaptive-wait tail, buffer read/free, syscall
    return) arithmetically.  ``fused_at``/``result`` carry the committed
    dispatch instant and the decoded reply back to the parked generator.
    """

    __slots__ = ("event", "reply_region", "token", "park_at", "priority",
                 "call_start", "fused_at", "result")

    def __init__(self, event, reply_region, token):
        self.event = event
        self.reply_region = reply_region
        self.token = token
        self.park_at = None
        self.priority = 0
        self.call_start = 0.0
        self.fused_at = None
        self.result = None


class _FusedRecv:
    """Server-side marker for a fusable ``wait_call`` park.

    Registered in ``RpcEngine._fused_recv[func_id]`` while a server
    thread is parked directly on the function store; ``_handle_request``
    uses it to commit the arrival crossing (store wake-up, discovery,
    recv-stack copy, syscall return) as one arithmetic pass.
    """

    __slots__ = ("event", "park_at", "exit_cost", "fused_at")

    def __init__(self, event, park_at, exit_cost):
        self.event = event
        self.park_at = park_at
        self.exit_cost = exit_cost
        self.fused_at = None


class RpcEngine:
    """The write-imm ring RPC stack of one LITE instance (§5)."""

    _token_counter = itertools.count(start=1)

    def __init__(self, kernel):
        self.kernel = kernel
        self.sim = kernel.sim
        self.params = kernel.params
        self.funcs: Dict[int, Store] = {}
        self.client_rings: Dict[int, _ClientRing] = {}
        self._binding: Dict[int, object] = {}  # in-flight bind events
        self.server_rings: Dict[int, _ServerRing] = {}
        self.pending: Dict[int, _PendingCall] = {}
        self.calls_sent = 0
        self.calls_served = 0
        self.calls_retried = 0
        self.duplicates_suppressed = 0
        self.replies_dropped = 0
        # Idempotent-retry guards: (client_id, token) -> (reply_addr,
        # reply payload) for answered calls; in-flight tokens for calls
        # still being served.
        self._reply_cache = LruDict(_REPLY_CACHE_MAX, name="rpc-reply")
        self._inflight: set = set()
        # func_id -> _FusedRecv for server threads parked fusably.
        self._fused_recv: Dict[int, _FusedRecv] = {}

    # ------------------------------------------------------------------
    # Registration / binding
    # ------------------------------------------------------------------
    def register(self, func_id: int) -> None:
        """Make ``func_id`` receivable on this node (LT_regRPC)."""
        self.funcs.setdefault(func_id, Store(self.sim))

    def server_bind(self, client_id: int, client_head_slot_addr: int) -> int:
        """Allocate this client's ring (runs at the server; returns addr)."""
        existing = self.server_rings.get(client_id)
        if existing is not None:
            return existing.region.addr
        region = self.kernel.node.memory.alloc(self.params.lite_rpc_ring_bytes)
        self.server_rings[client_id] = _ServerRing(
            client_id, region, client_head_slot_addr
        )
        return region.addr

    def _ensure_ring(self, server_id: int):
        """Bind to the server's ring on first use (generator)."""
        ring = self.client_rings.get(server_id)
        if ring is not None:
            return ring
        in_flight = self._binding.get(server_id)
        if in_flight is not None:
            yield in_flight
            # The binder may have failed; re-resolve (and possibly
            # re-bind) rather than assuming the ring exists.
            ring = yield from self._ensure_ring(server_id)
            return ring
        gate = self.sim.event()
        self._binding[server_id] = gate
        head_region = self.kernel.node.memory.alloc(8)
        from .protocol import MsgType

        try:
            reply = yield from self.kernel.ctrl_request(
                server_id,
                {
                    "type": MsgType.RING_BIND,
                    "head_slot_addr": head_region.addr,
                },
            )
        except BaseException:
            # Unblock anybody who piled up behind this bind attempt
            # before propagating; they will re-try (or fail) themselves.
            del self._binding[server_id]
            self.kernel.node.memory.free(head_region)
            gate.succeed()
            raise
        ring = _ClientRing(
            server_id,
            reply["ring_addr"],
            self.params.lite_rpc_ring_bytes,
            head_region,
        )
        self.client_rings[server_id] = ring
        del self._binding[server_id]
        gate.succeed()
        return ring

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def _append_request(self, ring, server_id: int, func_id: int,
                        payload: bytes, msg_len: int, priority: int,
                        deadline: Optional[float]):
        """Land one request copy in the server's ring (generator).

        Flow control waits for the server's head-pointer updates; with a
        ``deadline`` the wait is bounded (a dead server stops advancing
        its head, and waiting forever would turn a crash into a hang).
        """
        tracer = self.sim.tracer
        if tracer is None:
            yield from self._append_request_impl(
                ring, server_id, func_id, payload, msg_len, priority, deadline
            )
            return
        span = tracer.begin("rpc.append", node=self.kernel.lite_id,
                            nbytes=msg_len, dst=server_id)
        try:
            yield from self._append_request_impl(
                ring, server_id, func_id, payload, msg_len, priority, deadline
            )
        except BaseException as exc:
            tracer.end(span, outcome="err:" + type(exc).__name__)
            raise
        tracer.end(span)

    def _append_request_impl(self, ring, server_id: int, func_id: int,
                             payload: bytes, msg_len: int, priority: int,
                             deadline: Optional[float]):
        while ring.free_space() < msg_len:
            if deadline is not None and self.sim.now >= deadline:
                raise RpcTimeoutError(
                    f"RPC to LITE {server_id}: ring full and server "
                    f"head pointer stalled"
                )
            yield self.sim.timeout(1.0)
        pos = ring.tail_virtual % ring.size
        ring.tail_virtual += msg_len
        imm = pack_request_imm(func_id, pos)
        kernel = self.kernel
        first_len = min(ring.size - pos, msg_len)
        if first_len < msg_len:
            # Wraps the physical end: land the first piece before the
            # imm-carrying remainder (ordering, rare).
            yield from kernel.onesided.raw_write(
                server_id, ring.ring_addr + pos, payload[:first_len],
                signaled=False, priority=priority,
            )
            kernel.onesided.raw_write_async(
                server_id, ring.ring_addr, payload[first_len:], imm=imm,
                priority=priority,
            )
        else:
            kernel.onesided.raw_write_async(
                server_id, ring.ring_addr + pos, payload, imm=imm,
                priority=priority,
            )

    def call(
        self,
        server_id: int,
        func_id: int,
        input_bytes: bytes,
        max_reply: int = 4096,
        priority: int = 0,
        timeout: Optional[float] = None,
        retries: int = 0,
        waiter: Optional[Callable] = None,
    ):
        """LT_RPC kernel path (generator; returns the reply bytes).

        With a ``timeout``, up to ``retries`` same-token resends follow
        the first attempt, each with a doubled wait window (capped at
        8x); the server's reply cache makes retries idempotent.  Without
        a timeout the call waits forever (seed behavior).

        Errno contract (docs/API.md): a server the keep-alive layer has
        already declared dead fails fast with ``ENODEV`` — no point
        burning the whole retry schedule; an unresponsive-but-not-yet-
        declared server exhausts its windows and raises the retryable
        ``ETIMEDOUT`` (the peer may be promoted/resurrected meanwhile).
        """
        kernel = self.kernel
        if timeout is not None:
            info = kernel.peers.get(server_id)
            if info is not None and not info.alive:
                raise LiteError(
                    f"RPC to LITE {server_id}: peer is marked dead",
                    errno=ENODEV,
                )
        yield from kernel.qos.gate(priority)
        call_start = self.sim.now
        ring = yield from self._ensure_ring(server_id)
        msg_len = REQ_HEADER_BYTES + len(input_bytes)
        if msg_len > ring.size:
            raise ValueError(f"RPC input of {len(input_bytes)} B exceeds ring size")
        token = next(self._token_counter) & MAX_TOKEN
        reply_region = kernel.node.memory.alloc(REPLY_HEADER_BYTES + max_reply)
        header = struct.pack(
            "<QIII", reply_region.addr, token, len(input_bytes), max_reply
        )
        payload = header + input_bytes
        pending = _PendingCall(self.sim.event(), reply_region, token)
        self.pending[token] = pending
        attempts = 1 if timeout is None else max(retries, 0) + 1
        try:
            window = timeout
            for attempt in range(attempts):
                deadline = None if timeout is None else self.sim.now + window
                sent = True
                try:
                    yield from self._append_request(
                        ring, server_id, func_id, payload, msg_len, priority,
                        deadline,
                    )
                except LiteError:
                    # Transport refused outright (dead peer, stalled
                    # ring): burn this attempt, back off, try again.
                    sent = False
                if attempt == 0:
                    self.calls_sent += 1
                else:
                    self.calls_retried += 1
                # Wait for the reply write-imm; send state is never
                # polled (§5.1).
                tracer = self.sim.tracer
                wspan = (tracer.begin("rpc.wait", node=kernel.lite_id,
                                      dst=server_id)
                         if tracer is not None else None)
                if timeout is None:
                    if waiter is None:
                        yield pending.event
                    else:
                        yield from waiter(pending.event)
                elif sent:
                    timer = self.sim.timeout(
                        max(deadline - self.sim.now, 0.0)
                    )
                    wait_target = self.sim.any_of([pending.event, timer])
                    if waiter is None:
                        yield wait_target
                    else:
                        yield from waiter(wait_target)
                    if pending.event.triggered:
                        timer.cancel()
                elif self.sim.now < deadline:
                    yield self.sim.timeout(deadline - self.sim.now)
                if wspan is not None:
                    tracer.end(wspan, outcome=(
                        "reply" if pending.event.triggered else "timeout"
                    ))
                if pending.event.triggered:
                    break
                window = min(window * 2, timeout * 8)
            if not pending.event.triggered:
                raise RpcTimeoutError(
                    f"RPC {func_id} to LITE {server_id}: no reply after "
                    f"{attempts} attempt(s) ({timeout} us base window)"
                )
            status, length = struct.unpack(
                "<II", reply_region.read(0, REPLY_HEADER_BYTES)
            )
            data = reply_region.read(REPLY_HEADER_BYTES, length) if length else b""
        finally:
            self.pending.pop(token, None)
            kernel.node.memory.free(reply_region)
        if status == _STATUS_NO_FUNC:
            raise RpcError(f"no RPC function {func_id} at LITE {server_id}")
        if status == _STATUS_REPLY_TOO_BIG:
            raise RpcError("RPC reply exceeded the caller's max_reply")
        kernel.qos.observe(priority, self.sim.now - call_start)
        return data

    def call_fast(self, server_id: int, func_id: int, input_bytes: bytes,
                  max_reply: int, priority: int, ctx):
        """Fused LT_RPC client path (generator; returns the reply bytes).

        The crossing-fused twin of :meth:`call` for the case the caller
        (``LiteContext.lt_rpc``) guarantees: user-level context,
        ``timeout=None``/``retries=0``, tracer off, fast path enabled.
        Each syscall-crossing segment commits its deterministic timeline
        onto the fp-queue when the horizon allows and falls back to the
        exact generator legs otherwise.  Shared-tag costs ("lite-meta",
        "lite-rpc-recv"..., QoS observation, buffer frees) are applied
        on their exact slow-path instants via fp-queue callables; only
        the context's *private* CPU tag is replayed at segment end.
        """
        kernel = self.kernel
        sim = self.sim
        params = self.params
        cpu = kernel.node.cpu
        tag = ctx._tag
        # -- syscall enter + metadata crossing (pad 0: 2 enqueues both) --
        enter_cost = params.lite_syscall_enter_us
        meta_cost = params.lite_metadata_us
        t_meta = sim.now + enter_cost + meta_cost
        if not sim._nowq and sim.fp_horizon() > t_meta:
            gate = sim.event()
            sim.fp_schedule(t_meta, gate.succeed)
            yield gate
            cpu.charge(tag, enter_cost)
            cpu.charge("lite-meta", meta_cost)
        else:
            yield sim.timeout(enter_cost)
            cpu.charge(tag, enter_cost)
            yield sim.timeout(meta_cost)
            cpu.charge("lite-meta", meta_cost)
        yield from kernel.qos.gate(priority)
        call_start = sim.now
        ring = yield from self._ensure_ring(server_id)
        msg_len = REQ_HEADER_BYTES + len(input_bytes)
        if msg_len > ring.size:
            raise ValueError(f"RPC input of {len(input_bytes)} B exceeds ring size")
        token = next(self._token_counter) & MAX_TOKEN
        reply_region = kernel.node.memory.alloc(REPLY_HEADER_BYTES + max_reply)
        header = struct.pack(
            "<QIII", reply_region.addr, token, len(input_bytes), max_reply
        )
        payload = header + input_bytes
        pending = _PendingCall(sim.event(), reply_region, token)
        pending.priority = priority
        pending.call_start = call_start
        self.pending[token] = pending
        cleaned = False
        try:
            try:
                yield from self._append_request(
                    ring, server_id, func_id, payload, msg_len, priority, None
                )
            except LiteError:
                pass  # same as call(): no deadline, wait for the reply
            self.calls_sent += 1
            pending.park_at = sim.now
            yield pending.event
            if pending.fused_at is not None:
                # _handle_reply committed the reply crossing; state
                # changes already ran on their exact instants via the
                # fp-queue.  Replay the private-tag charges here (t_z).
                waited = pending.fused_at - pending.park_at
                if waited <= params.adaptive_busy_window_us:
                    cpu.charge(tag, waited)
                    cpu.charge(tag, params.poll_loop_us / 2)
                else:
                    cpu.charge(tag, params.adaptive_busy_window_us)
                    cpu.charge(tag, params.thread_wakeup_us)
                cleaned = True
                _status, data = pending.result
                cpu.charge(tag, params.lite_sharedpage_return_us)
                return data
            # Ordinary delivery: replicate the generator legs (adaptive
            # tail, buffer read/free, status checks, syscall return)
            # enqueue-for-enqueue.
            waited = sim.now - pending.park_at
            if waited <= params.adaptive_busy_window_us:
                cpu.charge(tag, waited)
                discover = params.poll_loop_us / 2
                yield sim.timeout(discover)
                cpu.charge(tag, discover)
            else:
                cpu.charge(tag, params.adaptive_busy_window_us)
                yield sim.timeout(params.thread_wakeup_us)
                cpu.charge(tag, params.thread_wakeup_us)
            status, length = struct.unpack(
                "<II", reply_region.read(0, REPLY_HEADER_BYTES)
            )
            data = (reply_region.read(REPLY_HEADER_BYTES, length)
                    if length else b"")
            self.pending.pop(token, None)
            kernel.node.memory.free(reply_region)
            cleaned = True
            if status == _STATUS_NO_FUNC:
                raise RpcError(f"no RPC function {func_id} at LITE {server_id}")
            if status == _STATUS_REPLY_TOO_BIG:
                raise RpcError("RPC reply exceeded the caller's max_reply")
            kernel.qos.observe(priority, sim.now - call_start)
            exit_cost = params.lite_sharedpage_return_us
            yield sim.timeout(exit_cost)
            cpu.charge(tag, exit_cost)
            return data
        finally:
            if not cleaned:
                self.pending.pop(token, None)
                kernel.node.memory.free(reply_region)

    # ------------------------------------------------------------------
    # Poller dispatch (both directions)
    # ------------------------------------------------------------------
    def handle_imm(self, wc) -> None:
        """Poller dispatch: route an IMM CQE (request or reply)."""
        kind, func_id, value = unpack_imm(wc.imm)
        if kind == IMM_KIND_REQUEST:
            self._handle_request(wc, func_id, value)
        elif kind == IMM_KIND_REPLY:
            self._handle_reply(value)

    def _handle_request(self, wc, func_id: int, pos: int) -> None:
        client_id = self.kernel.node_to_lite.get(wc.src_node)
        ring = self.server_rings.get(client_id)
        if ring is None:
            return  # stale traffic from an unbound client
        header = ring.read_wrapped(pos, REQ_HEADER_BYTES)
        reply_addr, token, input_len, max_reply = struct.unpack("<QIII", header)
        input_bytes = ring.read_wrapped(pos + REQ_HEADER_BYTES, input_len)
        msg_len = REQ_HEADER_BYTES + input_len
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("rpc.request.arrive", node=self.kernel.lite_id,
                           nbytes=msg_len, func=func_id)
        ring.head_virtual += msg_len
        ring.bytes_received += msg_len
        # Background header-pointer update to the client (step f).  With
        # batched posting it is deferred and piggybacked onto this
        # client's next reply write — one doorbell instead of two (§5.2).
        # Every reply path flushes it; a handler that never replies
        # leaves the client to its RPC timeout, which is already the
        # failure story.
        if self.params.doorbell_batch > 1:
            ring.head_dirty = True
        else:
            try:
                self.kernel.onesided.raw_write_async(
                    client_id,
                    ring.client_head_slot_addr,
                    struct.pack("<Q", ring.head_virtual),
                )
            except LiteError:
                # The requester got dead-marked (e.g. we just restarted
                # and have not re-learned our peers) between its send
                # and our dispatch.  A server must never die for it:
                # drop the update and let the client's retry path — and
                # the reply cache — pick up the pieces.
                self.replies_dropped += 1
                return
        # Same-token duplicate (a client retry that crossed our reply or
        # arrived while the handler still runs) must not invoke the
        # handler twice: answer from the reply cache or drop it.
        key = (client_id, token)
        cached = self._reply_cache.get(key)
        if cached is not None:
            cached_addr, cached_payload = cached
            self.duplicates_suppressed += 1
            self._send_reply(client_id, cached_addr, cached_payload, token)
            return
        if key in self._inflight:
            self.duplicates_suppressed += 1
            return
        call = RpcCall(
            func_id, client_id, input_bytes, reply_addr, token, max_reply,
            self.sim.now,
        )
        store = self.funcs.get(func_id)
        if store is None:
            # Unknown function: error reply straight from the kernel.
            payload = struct.pack("<II", _STATUS_NO_FUNC, 0)
            self._cache_reply(key, reply_addr, payload)
            self._send_reply(client_id, reply_addr, payload, token)
            return
        self._inflight.add(key)
        rec = self._fused_recv.get(func_id)
        if (rec is not None and self.sim.fastpath_enabled
                and not self.sim._nowq and not store.items
                and len(store._getters) == 1
                and store._getters[0] is rec.event):
            # Fused arrival crossing: the parked server thread's wake-up
            # timeline is deterministic — adaptive-wait tail to t_mid,
            # recv-stack copy to t_r, syscall return to t_s.  Commit it
            # when no ordinary event could observe the window.
            sim = self.sim
            params = self.params
            t_p = sim.now
            waited = t_p - rec.park_at
            if waited <= params.adaptive_busy_window_us:
                mid_cost = params.poll_loop_us / 2
            else:
                mid_cost = params.thread_wakeup_us
            recv_cost = params.lite_recv_stack_us
            recv_cost += input_len / params.memcpy_bytes_per_us
            t_r = t_p + mid_cost + recv_cost
            t_s = t_r + rec.exit_cost
            if sim.fp_horizon() > t_s:
                rec.fused_at = t_p
                store._getters.popleft()
                cpu = self.kernel.node.cpu
                # Seq-pad ledger: slow enqueues 4 here (store succeed,
                # adaptive tail timeout, recv-stack timeout, syscall-
                # return timeout); fused enqueues 3 (two fp entries +
                # the deferred succeed).  Pad 1.
                sim._seq += 1

                def at_recv():
                    cpu.charge("lite-rpc-recv", recv_cost)
                    self.calls_served += 1

                sim.fp_schedule(t_r, at_recv)
                sim.fp_schedule(t_s, lambda: rec.event.succeed(call))
                return
        store.put(call)

    def _send_reply(self, client_id: int, reply_addr: int, payload: bytes,
                    token: int) -> None:
        """Write a reply, piggybacking any owed head-pointer update.

        With ``doorbell_batch > 1`` the deferred ring-head write and the
        reply ride one WR chain behind a single doorbell; RC posting
        order guarantees the client observes the head advance no later
        than the reply imm.
        """
        ring = self.server_rings.get(client_id)
        imm = pack_reply_imm(token)
        try:
            if (
                self.params.doorbell_batch > 1
                and ring is not None
                and ring.head_dirty
            ):
                ring.head_dirty = False
                self.kernel.onesided.raw_write_batch_async(
                    client_id,
                    [
                        (
                            ring.client_head_slot_addr,
                            struct.pack("<Q", ring.head_virtual),
                            None,
                        ),
                        (reply_addr, payload, imm),
                    ],
                )
            else:
                self.kernel.onesided.raw_write_async(
                    client_id, reply_addr, payload, imm=imm
                )
        except LiteError:
            # Requester dead-marked between request arrival and reply
            # send (keep-alive verdict, or we restarted mid-exchange).
            # Dropping is the wire truth — the reply cache still holds
            # the payload, so a live client's retry is answered without
            # re-running the handler.
            self.replies_dropped += 1

    def _cache_reply(self, key: tuple, reply_addr: int, payload: bytes) -> None:
        """Remember a reply for duplicate suppression (bounded, FIFO-evict)."""
        self._inflight.discard(key)
        self._reply_cache.put(key, (reply_addr, payload))

    def _handle_reply(self, token: int) -> None:
        pending = self.pending.pop(token, None)
        if pending is None:
            return
        sim = self.sim
        if (pending.park_at is not None and sim.fastpath_enabled
                and not sim._nowq):
            # Fused reply crossing: the client parked via call_fast, so
            # the rest of its timeline is deterministic — adaptive-wait
            # tail to t_mid, buffer read + free + QoS observation at
            # t_mid, syscall return to t_z.  Commit it onto the fp-queue
            # when no ordinary event could observe the window.  Error
            # statuses take the generator legs (they raise at t_mid).
            params = self.params
            region = pending.reply_region
            status, length = struct.unpack(
                "<II", region.read(0, REPLY_HEADER_BYTES)
            )
            if status == _STATUS_OK:
                t_x = sim.now
                waited = t_x - pending.park_at
                if waited <= params.adaptive_busy_window_us:
                    mid_cost = params.poll_loop_us / 2
                else:
                    mid_cost = params.thread_wakeup_us
                t_mid = t_x + mid_cost
                t_z = t_mid + params.lite_sharedpage_return_us
                if sim.fp_horizon() > t_z:
                    # Seq-pad ledger: slow enqueues 3 here (reply
                    # succeed, adaptive tail timeout, syscall-return
                    # timeout); fused enqueues 3 (two fp entries + the
                    # deferred succeed).  Pad 0.
                    pending.fused_at = t_x
                    # Reads are pure and nothing may write the region
                    # inside the guarded window, so decoding here yields
                    # the exact bytes the slow path reads at t_mid.
                    pending.result = (
                        status,
                        region.read(REPLY_HEADER_BYTES, length)
                        if length else b"",
                    )
                    kernel = self.kernel

                    def at_mid():
                        kernel.node.memory.free(region)
                        kernel.qos.observe(
                            pending.priority, t_mid - pending.call_start
                        )

                    sim.fp_schedule(t_mid, at_mid)
                    sim.fp_schedule(t_z, pending.event.succeed)
                    return
        if not pending.event.triggered:
            pending.event.succeed()

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def wait_call(self, func_id: int):
        """Event firing with the next RpcCall for ``func_id``."""
        store = self.funcs.get(func_id)
        if store is None:
            raise RpcError(f"RPC function {func_id} is not registered here")
        return store.get()

    def finish_recv(self, call: RpcCall):
        """Kernel half of LT_recvRPC: stack cost + the single data move."""
        cost = self.params.lite_recv_stack_us
        cost += len(call.input) / self.params.memcpy_bytes_per_us
        tracer = self.sim.tracer
        span = (tracer.begin("rpc.recv_stack", node=self.kernel.lite_id,
                             nbytes=len(call.input))
                if tracer is not None else None)
        yield self.sim.timeout(cost)
        self.kernel.node.cpu.charge("lite-rpc-recv", cost)
        self.calls_served += 1
        if span is not None:
            tracer.end(span)
        return call

    def reply(self, call: RpcCall, data: bytes):
        """LT_replyRPC kernel path (generator; does not wait for wire)."""
        if call.replied:
            raise RpcError("RPC call already replied")
        call.replied = True
        tracer = self.sim.tracer
        span = (tracer.begin("rpc.reply_stack", node=self.kernel.lite_id,
                             nbytes=len(data))
                if tracer is not None else None)
        yield self.sim.timeout(self.params.lite_reply_stack_us)
        self.kernel.node.cpu.charge("lite-rpc-reply", self.params.lite_reply_stack_us)
        self._reply_finish(call, data)
        if span is not None:
            tracer.end(span)

    def _reply_finish(self, call: RpcCall, data: bytes) -> None:
        """Post-stack half of LT_replyRPC: pack, cache, write-imm."""
        key = (call.client_id, call.token)
        if len(data) > call.max_reply:
            payload = struct.pack("<II", _STATUS_REPLY_TOO_BIG, 0)
        else:
            payload = struct.pack("<II", _STATUS_OK, len(data)) + data
        self._cache_reply(key, call.reply_addr, payload)
        self._send_reply(call.client_id, call.reply_addr, payload, call.token)
