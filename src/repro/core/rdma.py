"""LITE's one-sided data plane (paper §4).

The kernel performs address translation (lh + offset → per-chunk
physical addresses) and permission checking locally, then issues native
RDMA through the shared QPs using the peer's **global rkey** and raw
physical addresses — so the remote RNIC needs no per-MR keys and no
PTEs, and the remote CPU/kernel is never involved.

Multi-chunk LMRs fan out into one RDMA op per touched chunk, issued
concurrently (the <2 % overhead claim of §4.1).  Chunks local to the
caller short-circuit into memcpy.
"""

from __future__ import annotations

import struct
from typing import List

from ..verbs import Opcode, SendWR, WcStatus
from ..verbs.fastpath import try_fast_chain, try_fast_post, try_fast_post_vec
from .errors import EIO, ENODEV, ETIMEDOUT, LiteError
from .lmr import MappedLmr

__all__ = ["OneSidedEngine", "RdmaOpError"]


class RdmaOpError(LiteError):
    """A one-sided operation completed with an error status."""

    def __init__(self, message: str, errno: int = EIO):
        super().__init__(message, errno=errno)


# Transport statuses worth a LITE-level retry: the operation never
# executed at the peer (retry/RNR blowout) or was flushed before the
# wire.  Non-idempotent ops (atomics) are excluded by the caller.
_RETRYABLE = (
    WcStatus.RETRY_EXC_ERR,
    WcStatus.RNR_RETRY_EXC_ERR,
    WcStatus.WR_FLUSH_ERR,
)
_ATOMIC_OPS = (Opcode.FETCH_ADD, Opcode.CMP_SWAP)


class OneSidedEngine:
    """Kernel-side one-sided datapath over the shared QPs (§4)."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.sim = kernel.sim
        self.params = kernel.params
        self.reads = 0
        self.writes = 0
        self.atomics = 0
        self.retried_ops = 0
        self.async_write_failures = 0

    # -- helpers -----------------------------------------------------------
    def _try_fast(self, peer, wr: SendWR, priority: int,
                  extra_pad: int, make_handle: bool):
        """Attempt run-to-completion execution of one WR (see fastpath.py).

        Peeks the same (qp, window) pair :meth:`_post` would round-robin
        onto; the RR bump and the doorbell CPU charge are replayed only
        on commit, so a declined attempt leaves LITE state untouched and
        the generator fallback proceeds exactly as if never tried.
        ``extra_pad`` is this layer's avoided-enqueue count: the process
        boot + the instant window grant (+ the process-completion event
        when no handle replaces it).
        """
        pairs = self.kernel.qos.eligible_qps(peer, priority)
        qp, window = pairs[peer._rr % len(pairs)]
        result = try_fast_post(qp, wr, window, extra_pad, make_handle)
        if result is not None:
            peer._rr += 1
            self.kernel.node.cpu.charge(
                "lite-post", self.params.rnic_doorbell_us
            )
        return result

    def _post(self, peer_id: int, wr: SendWR, priority: int):
        """Issue one WR on a shared QP, respecting per-QP windows.

        Generator; returns the completion status.  Transport-level
        failures (retry blowout, flush) are retried at the LITE level
        with exponential backoff — resetting the errored shared QP in
        between — except for atomics, which are not idempotent.  A dead
        peer fails fast with ENODEV; an exhausted retry budget raises
        ``LiteError(errno=ETIMEDOUT)`` and, when keep-alive runs, marks
        the peer dead.
        """
        kernel = self.kernel
        params = self.params
        max_retries = 0 if wr.opcode in _ATOMIC_OPS else params.lite_retry_cnt
        backoff = params.lite_retry_backoff_us
        attempts = 0
        tracer = self.sim.tracer
        span = None
        if tracer is not None:
            # Covers QP-window wait + every transport attempt + backoffs.
            span = tracer.begin("kernel.post", node=kernel.lite_id,
                                nbytes=wr.length, peer=peer_id,
                                opcode=wr.opcode.value)
        while True:
            peer = kernel.peer(peer_id)
            qp, window = kernel.qos.pick_qp(peer, priority)
            yield window.request()
            try:
                kernel.node.cpu.charge("lite-post", params.rnic_doorbell_us)
                status = yield qp.post_send(wr)
            finally:
                window.release()
            if status not in _RETRYABLE:
                if span is not None:
                    tracer.end(span, outcome=status.value)
                return status
            attempts += 1
            if attempts > max_retries:
                if kernel.keepalive_running:
                    peer.alive = False
                if span is not None:
                    tracer.end(span, outcome="timeout")
                raise LiteError(
                    f"one-sided {wr.opcode.value} to LITE {peer_id} failed "
                    f"after {attempts} attempt(s): {status.value}",
                    errno=ETIMEDOUT,
                )
            self.retried_ops += 1
            if qp.state == "ERROR":
                qp.reset()
            yield self.sim.timeout(backoff)
            backoff = min(backoff * 2, params.lite_retry_backoff_cap_us)

    def _post_batch(self, peer_id: int, wrs: List[SendWR], priority: int):
        """Issue many WRs to one peer behind one doorbell + window slot.

        Generator; returns the list of completion statuses in posting
        order.  The whole chain is posted with a single
        ``post_send_batch`` call: one ``lite-post`` CPU charge and (for
        ``doorbell_batch > 1``) one MMIO doorbell per chunk of WRs,
        modeling §5.2's batched WQE posting.  The batch occupies a
        single QoS-window slot — acquiring one slot per WR could
        deadlock two concurrent batches sharing a window.  Individual
        transport failures fall back to the one-at-a-time :meth:`_post`
        retry path (atomics excluded, as they are not idempotent).
        """
        kernel = self.kernel
        params = self.params
        if params.doorbell_batch <= 1 or len(wrs) == 1:
            # Unbatched: identical to the seed's per-WR posting, issued
            # concurrently.
            procs = [
                self.sim.process(self._post(peer_id, wr, priority))
                for wr in wrs
            ]
            results = yield self.sim.all_of(procs)
            return [results[index] for index in range(len(procs))]
        peer = kernel.peer(peer_id)
        # Stripe doorbell chunks across the class's eligible shared QPs:
        # batching must not collapse the K-way QP parallelism onto one
        # RC ordering chain.  The floor of 2 keeps small chains (e.g.
        # the RPC reply+head piggyback) on one QP — splitting a pair
        # across QPs would pay two doorbells and lose their ordering.
        fanout = max(len(kernel.qos.eligible_qps(peer, priority)), 1)
        chunk_len = min(
            params.doorbell_batch, max(2, -(-len(wrs) // fanout))
        )
        out: List[WcStatus] = [None] * len(wrs)

        def chunk_runner(chunk, base_index):
            qp, window = kernel.qos.pick_qp(peer, priority)
            yield window.request()
            try:
                kernel.node.cpu.charge("lite-post", params.rnic_doorbell_us)
                results = yield self.sim.all_of(qp.post_send_batch(chunk))
                statuses = [results[index] for index in range(len(chunk))]
            finally:
                window.release()
            for offset, (wr, status) in enumerate(zip(chunk, statuses)):
                if status in _RETRYABLE and wr.opcode not in _ATOMIC_OPS:
                    if qp.state == "ERROR":
                        qp.reset()
                    self.retried_ops += 1
                    status = yield from self._post(peer_id, wr, priority)
                out[base_index + offset] = status

        runners = [
            self.sim.process(chunk_runner(wrs[start : start + chunk_len], start))
            for start in range(0, len(wrs), chunk_len)
        ]
        yield self.sim.all_of(runners)
        return out

    def _check(self, statuses: List[WcStatus], what: str) -> None:
        for status in statuses:
            if status is not WcStatus.SUCCESS:
                raise RdmaOpError(f"LITE {what} failed: {status.value}")

    @staticmethod
    def _check_not_failed(mapping: MappedLmr) -> None:
        """Fail fast once the last replica of an LMR is gone (§14)."""
        if mapping.failed:
            raise RdmaOpError(
                f"LMR {mapping.lmr_id} lost its last replica", errno=ENODEV
            )

    def _backup_write(self, mapping: MappedLmr, backup_id: int,
                      offset: int, data: bytes, priority: int):
        """Fan one write out to a single backup copy (generator).

        Backup failures never fail the caller's write: the backup is
        marked stale in the manager's replica directory (it drops out
        of the promotable set until a resync) and the op completes on
        the surviving copies.  Always returns ``WcStatus.SUCCESS`` so
        it can ride in the same ``all_of`` as the primary pieces.
        """
        kernel = self.kernel
        bchunks = mapping.replica_chunks.get(backup_id)
        if not bchunks:
            return WcStatus.SUCCESS
        bmap = MappedLmr(0, "", mapping.size, bchunks, 0)
        try:
            view = memoryview(data)
            procs = []
            for chunk, chunk_off, piece_len, buf_off in bmap.plan(
                offset, len(data)
            ):
                piece = view[buf_off : buf_off + piece_len]
                if chunk.node_id == kernel.lite_id:
                    yield from kernel.node.cpu.execute(
                        piece_len / self.params.memcpy_bytes_per_us,
                        tag="lite-local",
                    )
                    kernel._local_chunk_write(chunk, chunk_off, piece)
                    continue
                peer = kernel.peer(chunk.node_id)
                if chunk.rkey is not None:
                    remote_addr, rkey = chunk.va + chunk_off, chunk.rkey
                else:
                    remote_addr, rkey = chunk.addr + chunk_off, peer.global_rkey
                wr = SendWR(
                    Opcode.WRITE,
                    inline_data=piece,
                    remote_addr=remote_addr,
                    rkey=rkey,
                )
                handle = self._try_fast(peer, wr, priority, 2, True)
                if handle is not None:
                    procs.append(handle)
                else:
                    procs.append(
                        self.sim.process(self._post(chunk.node_id, wr, priority))
                    )
            if procs:
                results = yield self.sim.all_of(procs)
                self._check(list(results.values()), "replica write")
        except LiteError:
            kernel.manager.mark_replica_stale(mapping.lmr_id, backup_id)
        return WcStatus.SUCCESS

    def _ack_replicated_write(self, mapping: MappedLmr) -> None:
        """Bump the per-LMR write-ordering version after a full ack."""
        kernel = self.kernel
        kernel.manager.bump_version(mapping.lmr_id)
        record = kernel._records_by_id.get(mapping.lmr_id)
        if record is not None:
            record.version += 1

    # -- data ops -------------------------------------------------------------
    def write(self, mapping: MappedLmr, offset: int, data: bytes, priority: int = 0):
        """LT_write kernel path (generator)."""
        kernel = self.kernel
        self._check_not_failed(mapping)
        yield from kernel.qos.gate(priority)
        start = self.sim.now
        # Vectorized commit: the whole fan-out (all pieces remote, each
        # on its own QP, nothing contended) collapses into one
        # arithmetic pass with a memoised plan; any decline falls
        # through to the bit-exact per-piece loop below.
        handle = try_fast_post_vec(
            self, mapping, offset, len(data), data, Opcode.WRITE, priority
        )
        if handle is not None:
            yield handle
            self.writes += 1
            kernel.qos.observe(priority, self.sim.now - start)
            return
        procs = []
        # Zero-copy: pieces are memoryview slices of the caller's buffer;
        # the single copy happens at the destination region write.
        view = memoryview(data)
        for chunk, chunk_off, piece_len, buf_off in mapping.plan(offset, len(data)):
            piece = view[buf_off : buf_off + piece_len]
            if chunk.node_id == kernel.lite_id:
                yield from kernel.node.cpu.execute(
                    piece_len / self.params.memcpy_bytes_per_us, tag="lite-local"
                )
                kernel._local_chunk_write(chunk, chunk_off, piece)
                continue
            peer = kernel.peer(chunk.node_id)
            if chunk.rkey is not None:
                remote_addr, rkey = chunk.va + chunk_off, chunk.rkey
            else:
                remote_addr, rkey = chunk.addr + chunk_off, peer.global_rkey
            wr = SendWR(
                Opcode.WRITE,
                inline_data=piece,
                remote_addr=remote_addr,
                rkey=rkey,
            )
            handle = self._try_fast(peer, wr, priority, 2, True)
            if handle is not None:
                procs.append(handle)
            else:
                procs.append(
                    self.sim.process(self._post(chunk.node_id, wr, priority))
                )
        # Replicated LMR: the same bytes fan out to every backup copy
        # inside the same completion barrier — an acked write is on all
        # live replicas before the caller resumes.
        for backup_id in sorted(mapping.replica_chunks):
            procs.append(
                self.sim.process(
                    self._backup_write(mapping, backup_id, offset, data, priority)
                )
            )
        if procs:
            results = yield self.sim.all_of(procs)
            self._check(list(results.values()), "write")
        if mapping.replica_chunks:
            self._ack_replicated_write(mapping)
        self.writes += 1
        kernel.qos.observe(priority, self.sim.now - start)

    def read(self, mapping: MappedLmr, offset: int, nbytes: int, priority: int = 0):
        """LT_read kernel path (generator; returns bytes)."""
        kernel = self.kernel
        self._check_not_failed(mapping)
        yield from kernel.qos.gate(priority)
        start = self.sim.now
        handle = try_fast_post_vec(
            self, mapping, offset, nbytes, None, Opcode.READ, priority
        )
        if handle is not None:
            data = yield handle
            self.reads += 1
            kernel.qos.observe(priority, self.sim.now - start)
            return data
        pieces = mapping.plan(offset, nbytes)
        parts: List[bytes] = [b""] * len(pieces)
        procs = []
        proc_meta = []
        for index, (chunk, chunk_off, piece_len, _buf_off) in enumerate(pieces):
            if chunk.node_id == kernel.lite_id:
                yield from kernel.node.cpu.execute(
                    piece_len / self.params.memcpy_bytes_per_us, tag="lite-local"
                )
                parts[index] = kernel._local_chunk_read(chunk, chunk_off, piece_len)
                continue
            peer = kernel.peer(chunk.node_id)
            if chunk.rkey is not None:
                remote_addr, rkey = chunk.va + chunk_off, chunk.rkey
            else:
                remote_addr, rkey = chunk.addr + chunk_off, peer.global_rkey
            wr = SendWR(
                Opcode.READ,
                remote_addr=remote_addr,
                rkey=rkey,
                read_length=piece_len,
            )
            handle = self._try_fast(peer, wr, priority, 2, True)
            if handle is not None:
                procs.append(handle)
            else:
                procs.append(
                    self.sim.process(self._post(chunk.node_id, wr, priority))
                )
            proc_meta.append((index, wr))
        if procs:
            results = yield self.sim.all_of(procs)
            self._check(list(results.values()), "read")
            for index, wr in proc_meta:
                parts[index] = wr.return_data or b""
        self.reads += 1
        kernel.qos.observe(priority, self.sim.now - start)
        if len(parts) == 1:
            return parts[0]
        return b"".join(parts)

    # -- vector ops (batched data plane, §5.2) --------------------------------
    def write_vec(self, ops, priority: int = 0):
        """Vector LT_write: many writes, one doorbell per WR chunk.

        ``ops`` is a sequence of ``(mapping, offset, data)`` triples.
        All remote pieces destined for the same peer are posted as one
        WR chain through :meth:`_post_batch`; local pieces short-circuit
        into memcpy as usual.  Generator; raises on any failure.
        """
        kernel = self.kernel
        yield from kernel.qos.gate(priority)
        start = self.sim.now
        by_peer: dict = {}
        backup_procs = []
        for mapping, offset, data in ops:
            self._check_not_failed(mapping)
            for backup_id in sorted(mapping.replica_chunks):
                backup_procs.append(
                    self.sim.process(
                        self._backup_write(
                            mapping, backup_id, offset, data, priority
                        )
                    )
                )
            view = memoryview(data)
            for chunk, chunk_off, piece_len, buf_off in mapping.plan(
                offset, len(data)
            ):
                piece = view[buf_off : buf_off + piece_len]
                if chunk.node_id == kernel.lite_id:
                    yield from kernel.node.cpu.execute(
                        piece_len / self.params.memcpy_bytes_per_us,
                        tag="lite-local",
                    )
                    kernel._local_chunk_write(chunk, chunk_off, piece)
                    continue
                peer = kernel.peer(chunk.node_id)
                if chunk.rkey is not None:
                    remote_addr, rkey = chunk.va + chunk_off, chunk.rkey
                else:
                    remote_addr, rkey = chunk.addr + chunk_off, peer.global_rkey
                wr = SendWR(
                    Opcode.WRITE,
                    inline_data=piece,
                    remote_addr=remote_addr,
                    rkey=rkey,
                )
                by_peer.setdefault(chunk.node_id, []).append(wr)
        if by_peer or backup_procs:
            batch_procs = [
                self.sim.process(self._post_batch(peer_id, wrs, priority))
                for peer_id, wrs in by_peer.items()
            ]
            results = yield self.sim.all_of(batch_procs + backup_procs)
            for index in range(len(batch_procs)):
                self._check(results[index], "write_vec")
        for mapping, _offset, _data in ops:
            if mapping.replica_chunks:
                self._ack_replicated_write(mapping)
        self.writes += len(ops)
        kernel.qos.observe(priority, self.sim.now - start)

    def read_vec(self, ops, priority: int = 0):
        """Vector LT_read: many reads, one doorbell per WR chunk.

        ``ops`` is a sequence of ``(mapping, offset, nbytes)`` triples.
        Generator; returns a list of bytes objects, one per op, in op
        order.
        """
        kernel = self.kernel
        yield from kernel.qos.gate(priority)
        start = self.sim.now
        op_parts: List[List[bytes]] = []
        by_peer: dict = {}
        slots = []  # (op_index, part_index, wr)
        for op_index, (mapping, offset, nbytes) in enumerate(ops):
            self._check_not_failed(mapping)
            pieces = mapping.plan(offset, nbytes)
            parts: List[bytes] = [b""] * len(pieces)
            op_parts.append(parts)
            for part_index, (chunk, chunk_off, piece_len, _buf_off) in enumerate(
                pieces
            ):
                if chunk.node_id == kernel.lite_id:
                    yield from kernel.node.cpu.execute(
                        piece_len / self.params.memcpy_bytes_per_us,
                        tag="lite-local",
                    )
                    parts[part_index] = kernel._local_chunk_read(
                        chunk, chunk_off, piece_len
                    )
                    continue
                peer = kernel.peer(chunk.node_id)
                if chunk.rkey is not None:
                    remote_addr, rkey = chunk.va + chunk_off, chunk.rkey
                else:
                    remote_addr, rkey = chunk.addr + chunk_off, peer.global_rkey
                wr = SendWR(
                    Opcode.READ,
                    remote_addr=remote_addr,
                    rkey=rkey,
                    read_length=piece_len,
                )
                by_peer.setdefault(chunk.node_id, []).append(wr)
                slots.append((op_index, part_index, wr))
        if by_peer:
            procs = [
                self.sim.process(self._post_batch(peer_id, wrs, priority))
                for peer_id, wrs in by_peer.items()
            ]
            results = yield self.sim.all_of(procs)
            for statuses in results.values():
                self._check(statuses, "read_vec")
            for op_index, part_index, wr in slots:
                op_parts[op_index][part_index] = wr.return_data or b""
        self.reads += len(ops)
        kernel.qos.observe(priority, self.sim.now - start)
        return [
            parts[0] if len(parts) == 1 else b"".join(parts)
            for parts in op_parts
        ]

    # -- atomics ---------------------------------------------------------------
    def _atomic(self, mapping: MappedLmr, offset: int, opcode: Opcode,
                compare_add: int, swap: int, priority: int):
        kernel = self.kernel
        pieces = mapping.plan(offset, 8)
        if len(pieces) != 1:
            raise ValueError("atomic target must not straddle chunks")
        chunk, chunk_off, _len, _ = pieces[0]
        if chunk.node_id == kernel.lite_id:
            # Local word: the RNIC still arbitrates atomics, loop back.
            yield self.sim.timeout(self.params.rnic_dma_setup_us)
            region, base = kernel.node.memory.resolve(chunk.addr + chunk_off, 8)
            old = struct.unpack("<Q", region.read(base, 8))[0]
            if opcode is Opcode.FETCH_ADD:
                new = (old + compare_add) % (1 << 64)
            else:
                new = swap if old == compare_add else old
            region.write(base, struct.pack("<Q", new))
            self.atomics += 1
            return old
        peer = kernel.peer(chunk.node_id)
        if chunk.rkey is not None:
            remote_addr, rkey = chunk.va + chunk_off, chunk.rkey
        else:
            remote_addr, rkey = chunk.addr + chunk_off, peer.global_rkey
        wr = SendWR(
            opcode,
            remote_addr=remote_addr,
            rkey=rkey,
            compare_add=compare_add,
            swap=swap,
        )
        status = yield from self._post(chunk.node_id, wr, priority)
        self._check([status], opcode.value)
        self.atomics += 1
        return struct.unpack("<Q", wr.return_data)[0]

    def fetch_add(self, mapping: MappedLmr, offset: int, delta: int, priority: int = 0):
        """Atomic fetch-and-add on an LMR word (generator; returns old)."""
        old = yield from self._atomic(
            mapping, offset, Opcode.FETCH_ADD, delta, 0, priority
        )
        return old

    def cmp_swap(self, mapping: MappedLmr, offset: int, expected: int, value: int,
                 priority: int = 0):
        """Atomic compare-and-swap (generator; returns the old value)."""
        old = yield from self._atomic(
            mapping, offset, Opcode.CMP_SWAP, expected, value, priority
        )
        return old

    # -- raw physical-address ops (internal plumbing: RPC rings, etc.) -------
    def raw_write(self, peer_id: int, phys_addr: int, data: bytes,
                  imm: int = None, signaled: bool = True, priority: int = 0):
        """Write to a raw physical address at a peer (generator)."""
        peer = self.kernel.peer(peer_id)
        opcode = Opcode.WRITE if imm is None else Opcode.WRITE_IMM
        wr = SendWR(
            opcode,
            inline_data=data,
            remote_addr=phys_addr,
            rkey=peer.global_rkey,
            imm=imm,
            signaled=signaled,
        )
        status = yield from self._post(peer_id, wr, priority)
        return status

    def raw_write_async(self, peer_id: int, phys_addr: int, data: bytes,
                        imm: int = None, priority: int = 0) -> None:
        """Fire-and-forget raw write (LITE does not poll send state, §5.1).

        Nothing awaits the spawned process, so failure semantics are
        absorbed here: a write that cannot be delivered is counted and
        dropped (the higher-level timeout/retry machinery is the
        recovery path), never allowed to crash the simulation.
        """
        peer = self.kernel.peer(peer_id)
        # Tri-post chain entry: commits the leg with no WR allocated at
        # all (extra_pad 3: runner boot + window grant + runner
        # completion; the chain bumps the wr_id counter itself).
        if try_fast_chain(self, peer, phys_addr, data, imm, priority) is not None:
            return
        opcode = Opcode.WRITE if imm is None else Opcode.WRITE_IMM
        wr = SendWR(
            opcode,
            inline_data=data,
            remote_addr=phys_addr,
            rkey=peer.global_rkey,
            imm=imm,
            signaled=False,
        )

        def runner():
            try:
                yield from self._post(peer_id, wr, priority)
            except LiteError:
                self.async_write_failures += 1

        self.sim.process(runner(), name="lite-raw-write")

    def raw_write_batch_async(self, peer_id: int, writes, priority: int = 0) -> None:
        """Fire-and-forget chain of raw writes behind one doorbell.

        ``writes`` is a sequence of ``(phys_addr, data, imm)`` triples
        (``imm=None`` for a plain write).  The chain is posted in order
        on one shared QP, so RC ordering holds across the whole batch —
        the piggybacked RPC reply+ring-head update relies on this.
        Failure semantics match :meth:`raw_write_async`.
        """

        def runner():
            try:
                peer = self.kernel.peer(peer_id)
                wrs = []
                for phys_addr, data, imm in writes:
                    opcode = Opcode.WRITE if imm is None else Opcode.WRITE_IMM
                    wrs.append(
                        SendWR(
                            opcode,
                            inline_data=data,
                            remote_addr=phys_addr,
                            rkey=peer.global_rkey,
                            imm=imm,
                            signaled=False,
                        )
                    )
                statuses = yield from self._post_batch(peer_id, wrs, priority)
                for status in statuses:
                    if status is not WcStatus.SUCCESS:
                        self.async_write_failures += 1
            except LiteError:
                self.async_write_failures += 1

        self.sim.process(runner(), name="lite-raw-write")
