"""Resource isolation and QoS (paper §6.2).

Two mechanisms, selectable per LITE instance:

- **HW-Sep**: hardware partitioning.  The K shared QPs per peer are
  split by priority class (3/4 high, 1/4 low with K=4).  Each QP has a
  bounded in-flight window, so a class's share of NIC/link bandwidth is
  proportional to the QP slots it owns — and reserved slots sit idle
  when their class is idle (the paper's critique of HW-Sep).

- **SW-Pri**: sender-side software flow control for low-priority work,
  combining the paper's three policies: (1) rate-limit low when high
  load is high, (2) leave low unlimited when high is (nearly) idle,
  (3) rate-limit low when high-priority RTTs inflate.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

__all__ = ["QosManager", "PRIORITY_HIGH", "PRIORITY_LOW"]

PRIORITY_HIGH = 0
PRIORITY_LOW = 1

# SW-Pri tunables.
_WINDOW_US = 500.0           # sliding window for high-priority load
_HIGH_LOAD_OPS = 100         # ops in window that count as *heavy* load
_RTT_INFLATION = 1.5         # policy 3 trigger
_MIN_LOW_RATE = 0.02         # ops/us when clamped hard (policy 1 or 3)
_MID_LOW_RATE = 0.15         # ops/us under moderate high load


class QosManager:
    """Per-node QoS state and policy."""

    def __init__(self, kernel, mode: Optional[str] = None):
        if mode not in (None, "hw-sep", "sw-pri"):
            raise ValueError(f"unknown QoS mode {mode!r}")
        self.kernel = kernel
        self.sim = kernel.sim
        self.mode = mode
        self._high_ops: Deque[float] = deque()
        self._high_rtt_ewma: Optional[float] = None
        self._high_rtt_floor: Optional[float] = None
        self._next_low_slot = 0.0
        self.low_delayed_ops = 0
        # (qp, window) pair lists per (peer lite_id, priority class),
        # invalidated when the peer's QP count changes (QPs are only
        # added during peer setup).  eligible_qps() sits on the per-op
        # posting path, so rebuilding the zip per post adds up.
        self._pairs_cache: dict = {}

    # -- telemetry ---------------------------------------------------------
    def observe(self, priority: int, rtt: float) -> None:
        """Feed one completed op's (priority, RTT) into the policy."""
        if priority != PRIORITY_HIGH:
            return
        now = self.sim.now
        self._high_ops.append(now)
        self._trim(now)
        if self._high_rtt_ewma is None:
            self._high_rtt_ewma = rtt
        else:
            self._high_rtt_ewma = 0.9 * self._high_rtt_ewma + 0.1 * rtt
        if self._high_rtt_floor is None or rtt < self._high_rtt_floor:
            self._high_rtt_floor = rtt

    def _trim(self, now: float) -> None:
        while self._high_ops and self._high_ops[0] < now - _WINDOW_US:
            self._high_ops.popleft()

    def high_load(self) -> int:
        """High-priority ops seen in the sliding window."""
        self._trim(self.sim.now)
        return len(self._high_ops)

    # -- QP selection (HW-Sep partitioning) ---------------------------------
    def eligible_qps(self, peer, priority: int) -> List[Tuple]:
        """(qp, window) pairs this priority class may use toward a peer."""
        n_qps = len(peer.qps)
        key = (peer.lite_id, priority)
        cached = self._pairs_cache.get(key)
        if cached is not None and cached[0] == n_qps:
            return cached[1]
        pairs = list(zip(peer.qps, peer.windows))
        if self.mode == "hw-sep" and len(pairs) >= 2:
            split = max(1, (len(pairs) * 3) // 4)
            pairs = pairs[:split] if priority == PRIORITY_HIGH else pairs[split:]
        self._pairs_cache[key] = (n_qps, pairs)
        return pairs

    def pick_qp(self, peer, priority: int) -> Tuple:
        """Round-robin a (qp, window) from the class's eligible set."""
        pairs = self.eligible_qps(peer, priority)
        pair = pairs[peer._rr % len(pairs)]
        peer._rr += 1
        return pair

    # -- SW-Pri gate ----------------------------------------------------------
    def _low_rate_limit(self) -> Optional[float]:
        """Allowed aggregate low-priority op rate (ops/us), None=unlimited."""
        load = self.high_load()
        if load == 0:
            return None  # policy 2: no high traffic, no limit
        rtt_inflated = (
            self._high_rtt_ewma is not None
            and self._high_rtt_floor is not None
            and self._high_rtt_ewma > _RTT_INFLATION * self._high_rtt_floor
        )
        if load >= _HIGH_LOAD_OPS or rtt_inflated:
            return _MIN_LOW_RATE  # policies 1 and 3
        return _MID_LOW_RATE

    def gate(self, priority: int):
        """Admission for one op; ``yield from`` the result.

        Plain function: the common no-delay case returns an empty tuple
        (nothing to iterate) instead of spinning up a generator frame
        per op.
        """
        if self.mode != "sw-pri" or priority == PRIORITY_HIGH:
            return ()
        rate = self._low_rate_limit()
        if rate is None:
            return ()
        now = self.sim.now
        start = max(now, self._next_low_slot)
        self._next_low_slot = start + 1.0 / rate
        if start > now:
            self.low_delayed_ops += 1
            return self._gate_delay(start - now)
        return ()

    def _gate_delay(self, delay: float):
        yield self.sim.timeout(delay)
