"""LMR metadata: permissions, chunk descriptors, handles, master records.

An LMR (LITE Memory Region, §4.1) is a virtualized region of arbitrary
size that LITE maps to one or more physically-contiguous chunks, which
may live on one node or be spread across machines.  Users only ever see
an *lh* — a capability handle, valid for exactly one process on one
node, encapsulating the address mapping and this user's permission.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["Permission", "ChunkInfo", "MasterRecord", "MappedLmr", "LmrHandle"]

_lmr_counter = itertools.count(start=1)
_lh_counter = itertools.count(start=1)


class Permission(enum.Flag):
    """Per-principal LMR rights: READ, WRITE, and the MASTER role."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    MASTER = enum.auto()

    @classmethod
    def full(cls) -> "Permission":
        """READ | WRITE | MASTER."""
        return cls.READ | cls.WRITE | cls.MASTER


class ChunkInfo:
    """One physically-contiguous piece of an LMR (wire-serializable).

    In LITE's normal mode chunks are addressed by raw physical address
    under the owner's *global* rkey.  In the per-MR ablation mode
    (``LiteKernel(use_global_mr=False)``) each chunk is registered as a
    classic virtual-address MR and carries its own ``rkey``/``va`` —
    reintroducing exactly the RNIC SRAM pressure of §2.4.
    """

    __slots__ = ("node_id", "addr", "size", "rkey", "va")

    def __init__(self, node_id: int, addr: int, size: int,
                 rkey: Optional[int] = None, va: Optional[int] = None):
        self.node_id = node_id
        self.addr = addr
        self.size = size
        self.rkey = rkey
        self.va = va

    def to_wire(self) -> list:
        """JSON-serializable form for control messages."""
        return [self.node_id, self.addr, self.size, self.rkey, self.va]

    @classmethod
    def from_wire(cls, wire: list) -> "ChunkInfo":
        """Inverse of :meth:`to_wire`."""
        return cls(*wire)

    def __repr__(self) -> str:
        return f"Chunk(node={self.node_id}, addr={self.addr:#x}, size={self.size})"


class MasterRecord:
    """Master-side record of an LMR, kept by its creator's LITE (§4.1).

    Masters know where the LMR lives, hold the ACL, and track every node
    that has mapped it (so moves/frees can be broadcast).
    """

    def __init__(self, name: str, size: int, chunks: List[ChunkInfo], creator: str,
                 default_perm: Permission = Permission.NONE):
        self.lmr_id = next(_lmr_counter)
        self.name = name
        self.size = size
        self.chunks = chunks
        self.acl: Dict[str, Permission] = {creator: Permission.full()}
        # Baseline permission any principal holds without an explicit
        # grant (used for world-accessible LMRs like lock words).
        self.default_perm = default_perm
        self.mapped_by: Set[int] = set()
        self.freed = False
        # Replica set for ``lt_malloc(..., replicas=k)``: backup LITE id
        # -> full-size chunk list mirroring ``chunks``.  Writes fan out
        # to every backup; on primary failure the recovery layer promotes
        # one of them and retargets ``chunks`` in place.
        self.replicas: Dict[int, List[ChunkInfo]] = {}
        # Monotonic write-ordering counter, bumped once per acked
        # replicated write (resync uses it to detect copies made stale
        # by writes that raced the copy-back).
        self.version = 0

    def check(self, principal: str, wanted: Permission) -> bool:
        """True when ``principal`` holds every bit of ``wanted``."""
        held = self.acl.get(principal, Permission.NONE) | self.default_perm
        return (held & wanted) == wanted

    def grant(self, principal: str, perm: Permission) -> None:
        """Add ``perm`` to a principal's held rights."""
        self.acl[principal] = self.acl.get(principal, Permission.NONE) | perm


class MappedLmr:
    """Requesting-node-side mapping of an LMR (all metadata local, §4.1)."""

    def __init__(
        self,
        lmr_id: int,
        name: str,
        size: int,
        chunks: List[ChunkInfo],
        master_id: int,
        replica_chunks: Optional[Dict[int, List[ChunkInfo]]] = None,
    ):
        self.lmr_id = lmr_id
        self.name = name
        self.size = size
        self.chunks = chunks
        self.master_id = master_id
        # Cleared when the master frees or moves the LMR (FREE_NOTIFY).
        self.valid = True
        # Remap epoch: bumped every time ``chunks`` is retargeted (LMR
        # move, failover promotion).  The vectorized fast path's plan
        # memo (verbs/fastpath.py) folds this into its key, so any
        # remap — including one racing an in-flight multi-chunk op —
        # orphans every memoised plan for the old layout.
        self.plan_version = 0
        # Plan-memo handles: key -> (CostTable, VecPlan).  Entries are
        # only ever *used* after revalidating the table stamp and
        # ``plan_version``; ``retarget()`` clears eagerly anyway.
        self._fp_plans: Dict = {}
        # Backup LITE id -> chunk list; writes through this mapping fan
        # out to every live backup (empty for unreplicated LMRs, in
        # which case the write path is byte-for-byte unchanged).
        self.replica_chunks: Dict[int, List[ChunkInfo]] = replica_chunks or {}
        # Set when the last replica died: reads/writes fail fast with
        # ENODEV instead of timing out against a dead primary.
        self.failed = False

    def retarget(self, chunks: List[ChunkInfo]) -> None:
        """Point the mapping at a new chunk layout (move / promotion).

        Bumps ``plan_version`` and drops the plan memo, so a vectorized
        fast-path commit primed against the old layout can never fire
        again — the next op re-plans against the new chunks.
        """
        self.chunks = chunks
        self.plan_version += 1
        self._fp_plans.clear()

    def plan(self, offset: int, nbytes: int) -> List[Tuple[ChunkInfo, int, int, int]]:
        """Split [offset, offset+nbytes) into per-chunk pieces.

        Returns tuples (chunk, chunk_offset, piece_len, buffer_offset).
        """
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise ValueError(
                f"range [{offset}, {offset + nbytes}) outside LMR of size {self.size}"
            )
        pieces = []
        cursor = 0
        remaining_off = offset
        remaining = nbytes
        buffer_off = 0
        for chunk in self.chunks:
            if remaining <= 0:
                break
            chunk_lo = cursor
            chunk_hi = cursor + chunk.size
            cursor = chunk_hi
            if remaining_off >= chunk_hi:
                continue
            inner = max(remaining_off - chunk_lo, 0)
            take = min(chunk.size - inner, remaining)
            pieces.append((chunk, inner, take, buffer_off))
            remaining -= take
            remaining_off += take
            buffer_off += take
        if remaining > 0:
            raise ValueError("LMR chunks do not cover its declared size")
        return pieces


class LmrHandle:
    """An *lh*: per-process capability to one LMR.

    Meaningless outside the owning context — every LITE API validates
    that the handle was minted for the calling context, which is what
    makes lh-passing between processes useless (paper §4.1: "an lh of an
    LMR is local to a process on a node").
    """

    def __init__(self, context, mapping: MappedLmr, perm: Permission):
        self.lh_id = next(_lh_counter)
        self.context = context
        self.mapping = mapping
        self.perm = perm
        self.valid = True

    @property
    def size(self) -> int:
        """The LMR's byte size."""
        return self.mapping.size

    @property
    def name(self) -> str:
        """The LMR's global name."""
        return self.mapping.name

    def require(self, context, wanted: Permission) -> MappedLmr:
        """Validate the capability; returns the mapping or raises."""
        if not self.valid:
            raise PermissionError(f"lh {self.lh_id} has been unmapped")
        if not self.mapping.valid:
            raise PermissionError(
                f"lh {self.lh_id}: the underlying LMR was freed by its master"
            )
        if context is not self.context:
            raise PermissionError(
                "lh used by a different process than it was minted for"
            )
        if (self.perm & wanted) != wanted:
            raise PermissionError(
                f"lh {self.lh_id} lacks {wanted} (has {self.perm})"
            )
        return self.mapping

    def __repr__(self) -> str:
        return (
            f"lh(id={self.lh_id}, lmr={self.mapping.lmr_id}, name={self.name!r}, "
            f"perm={self.perm}, size={self.size})"
        )
