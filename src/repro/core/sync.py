"""Owner-side synchronization services: lock wait queues and barriers.

The fast path of an LT_lock is a single RDMA fetch-and-add on the lock
word (§7.2); only contended acquisitions reach this service, where the
lock's owner node keeps a FIFO wait queue so a release wakes exactly one
waiter (minimizing network traffic versus spin-retry designs).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from ..sim import Event

__all__ = ["SyncService"]


class _LockState:
    __slots__ = ("queue", "credits")

    def __init__(self):
        self.queue: Deque[Event] = deque()
        # Releases that arrived before their matching waiter enqueued
        # (the fetch-add and the wait message race over the network).
        self.credits = 0


class _BarrierState:
    __slots__ = ("events",)

    def __init__(self):
        self.events: List[Event] = []


class SyncService:
    """Owner-node lock queues and barrier state (§7.2)."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.sim = kernel.sim
        self._locks: Dict[str, _LockState] = {}
        self._barriers: Dict[str, _BarrierState] = {}
        self.grants = 0

    # -- locks -----------------------------------------------------------
    def lock_wait(self, lock_name: str) -> Event:
        """Enqueue a contended waiter; returns its grant event."""
        state = self._locks.setdefault(lock_name, _LockState())
        event = self.sim.event()
        if state.credits > 0:
            state.credits -= 1
            self.grants += 1
            event.succeed()
        else:
            state.queue.append(event)
        return event

    def lock_release(self, lock_name: str) -> None:
        """Grant the lock to the FIFO-next waiter (or bank a credit)."""
        state = self._locks.setdefault(lock_name, _LockState())
        if state.queue:
            self.grants += 1
            state.queue.popleft().succeed()
        else:
            state.credits += 1

    def lock_queue_length(self, lock_name: str) -> int:
        """Waiters currently queued on a lock."""
        state = self._locks.get(lock_name)
        return len(state.queue) if state else 0

    # -- barriers ----------------------------------------------------------
    def barrier_arrive(self, name: str, n: int) -> Event:
        """Register an arrival; the event fires when ``n`` have arrived."""
        if n < 1:
            raise ValueError(f"barrier needs n >= 1, got {n}")
        state = self._barriers.setdefault(name, _BarrierState())
        event = self.sim.event()
        state.events.append(event)
        if len(state.events) >= n:
            waiters = state.events
            del self._barriers[name]
            for waiter in waiters:
                waiter.succeed()
        return event
