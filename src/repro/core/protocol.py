"""LITE internal wire protocol: control messages and IMM encoding.

Control-plane messages (LMR management, locks, barriers, ring binding)
travel as two-sided SENDs carrying JSON payloads.  The RPC data plane
uses write-imm; the 32-bit immediate is packed as::

    [kind:2][field:6][offset/token:24or30]

    kind=REQUEST : field = RPC function id (6 bits),
                   low 24 bits = ring offset (rings are <= 16 MB)
    kind=REPLY   : low 30 bits = reply token
"""

from __future__ import annotations

import json
from typing import Tuple

__all__ = [
    "MsgType",
    "encode_ctrl",
    "decode_ctrl",
    "pack_request_imm",
    "unpack_imm",
    "IMM_KIND_REQUEST",
    "IMM_KIND_REPLY",
    "MAX_FUNC_ID",
    "MAX_RING_OFFSET",
    "REQ_HEADER_BYTES",
    "REPLY_HEADER_BYTES",
]


class MsgType:
    """Control-plane message type tags (strings for JSON friendliness)."""

    ALLOC = "alloc"
    ALLOC_REPLY = "alloc_reply"
    FREE_CHUNKS = "free_chunks"
    MAP = "map"
    MAP_REPLY = "map_reply"
    UNMAP_NOTIFY = "unmap_notify"
    FREE_NOTIFY = "free_notify"
    GRANT = "grant"
    MEMSET = "memset"
    MEMCPY = "memcpy"
    RING_BIND = "ring_bind"
    LOCK_WAIT = "lock_wait"
    LOCK_RELEASE = "lock_release"
    BARRIER = "barrier"
    CHUNKS_UPDATE = "chunks_update"
    USER_MSG = "user_msg"
    PING = "ping"
    REPLY = "reply"


def encode_ctrl(msg: dict) -> bytes:
    """Serialize a control message for the wire (compact JSON)."""
    return json.dumps(msg, separators=(",", ":")).encode()


def decode_ctrl(payload: bytes) -> dict:
    """Inverse of :func:`encode_ctrl`."""
    return json.loads(payload.decode())


IMM_KIND_REQUEST = 0
IMM_KIND_REPLY = 1

MAX_FUNC_ID = (1 << 6) - 1
MAX_RING_OFFSET = (1 << 24) - 1
MAX_TOKEN = (1 << 30) - 1

# Per-request ring header:
#   reply_addr(8) reply_token(4) input_len(4) max_reply(4).
REQ_HEADER_BYTES = 20
# Reply slot header: status(4) length(4).
REPLY_HEADER_BYTES = 8


def pack_request_imm(func_id: int, ring_offset: int) -> int:
    """IMM for an RPC request: kind | func_id | ring offset."""
    if not 0 <= func_id <= MAX_FUNC_ID:
        raise ValueError(f"RPC function id must fit in 6 bits, got {func_id}")
    if not 0 <= ring_offset <= MAX_RING_OFFSET:
        raise ValueError(f"ring offset {ring_offset} exceeds 16 MB IMM budget")
    return (IMM_KIND_REQUEST << 30) | (func_id << 24) | ring_offset


def pack_reply_imm(token: int) -> int:
    """IMM for an RPC reply carrying its matching token."""
    if not 0 <= token <= MAX_TOKEN:
        raise ValueError(f"reply token must fit in 30 bits, got {token}")
    return (IMM_KIND_REPLY << 30) | token


def unpack_imm(imm: int) -> Tuple[int, int, int]:
    """Returns (kind, func_id, offset_or_token)."""
    kind = (imm >> 30) & 0x3
    if kind == IMM_KIND_REQUEST:
        return kind, (imm >> 24) & 0x3F, imm & MAX_RING_OFFSET
    return kind, 0, imm & MAX_TOKEN
