"""The LITE kernel module: one instance per node (paper §3.3).

Owns everything the paper's loadable module owns:

- the **global physical MR** (one lkey/rkey covering all of DRAM, §4.1),
- **K×N shared RC QPs** (K per peer, shared by every application, §6.1),
- one **shared receive CQ + SRQ** drained by a single busy-polling
  kernel thread that dispatches control messages, RPC requests and RPC
  replies,
- the **control plane** (two-sided sends carrying management messages:
  LMR alloc/map/free, memset/memcpy execution, lock/barrier services,
  RPC ring binding, user messaging),
- the master-side **LMR registry**.

The one-sided data plane lives in :mod:`repro.core.rdma`, the RPC data
plane in :mod:`repro.core.rpc`; both are composed here.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..hw.caches import LruDict
from ..sim import Event, Store
from ..verbs import Access, Opcode, RecvWR, SendWR
from .errors import ENODEV, ETIMEDOUT, LiteError
from .lmr import ChunkInfo, MasterRecord, MappedLmr, Permission
from .protocol import (
    IMM_KIND_REPLY,
    IMM_KIND_REQUEST,
    MsgType,
    decode_ctrl,
    encode_ctrl,
    unpack_imm,
)
from .qos import QosManager
from .rdma import OneSidedEngine
from .rpc import RpcEngine
from .sync import SyncService

__all__ = ["LiteKernel", "LiteError"]

# Bound on the duplicate-suppression reply cache (entries, not bytes).
_CTRL_REPLY_CACHE_MAX = 512


class PeerInfo:
    """Everything needed to talk to one remote LITE instance."""

    __slots__ = ("lite_id", "node_id", "global_rkey", "qps", "windows", "_rr",
                 "alive")

    def __init__(self, lite_id: int, node_id: int, global_rkey: int):
        self.lite_id = lite_id
        self.node_id = node_id
        self.global_rkey = global_rkey
        self.qps: List = []
        self.windows: List = []  # per-QP outstanding-op windows
        self._rr = 0
        # Liveness verdict: flipped by keep-alive (or by the data path
        # when keep-alive runs); a dead peer fails fast with ENODEV.
        self.alive = True


class LiteKernel:
    """One node's LITE instance."""

    _token_counter = itertools.count(start=1)

    def __init__(self, node, manager, qos_mode: Optional[str] = None,
                 use_global_mr: bool = True):
        self.node = node
        # Ablation knob (DESIGN.md §6): False registers every LMR chunk
        # as a classic virtual MR instead of using the global physical
        # MR, reintroducing native RDMA's SRAM-scalability problems.
        self.use_global_mr = use_global_mr
        self.sim = node.sim
        self.params = node.params
        self.manager = manager
        self.lite_id = manager.join(node)
        node.install_lite(self)
        self.device = node.device
        self.pd = self.device.alloc_pd()
        self.global_mr = None
        self.recv_cq = self.device.create_cq(
            depth=1 << 16, name=f"lite{self.lite_id}-recv"
        )
        self.srq = self.device.create_srq()
        self.peers: Dict[int, PeerInfo] = {}
        self.node_to_lite: Dict[int, int] = {node.node_id: self.lite_id}
        # Control plane.
        self._ctrl_pending: Dict[int, Event] = {}
        self._ctrl_slots_region = None
        self.user_inbox: Store = Store(self.sim)
        # Master-side LMR registry: name -> MasterRecord.
        self.registry: Dict[str, MasterRecord] = {}
        self._records_by_id: Dict[int, MasterRecord] = {}
        # Local mappings of remote/local LMRs (for FREE_NOTIFY fan-in).
        self.mappings_by_lmr: Dict[int, List[MappedLmr]] = {}
        # Engines.
        self.qos = QosManager(self, mode=qos_mode)
        self.onesided = OneSidedEngine(self)
        self.rpc = RpcEngine(self)
        self.sync = SyncService(self)
        self._poller = None
        # Instant the poll thread last parked on the recv CQ; maintained
        # by cpu.busy_wait_tracked and consumed/re-armed by _fp_deliver
        # when the fast path replays a poll iteration arithmetically.
        self._poll_park_at = 0.0
        self.booted = False
        # Fault tolerance (off by default: zero-cost, seed-identical
        # behavior).  enable_fault_tolerance() or a FaultInjector flips
        # these on.
        self.ctrl_timeout_us = 0.0  # 0 = wait forever (seed behavior)
        self.ctrl_retries = 0
        self._ctrl_reply_cache = LruDict(
            _CTRL_REPLY_CACHE_MAX, name="ctrl-reply")
        self._ctrl_inflight: set = set()
        self._keepalive = None
        # Control plane: per-peer QP lease pools (cluster/qp_pool.py),
        # created lazily by qp_pool() or eagerly by connect() when
        # lite_qp_pool_reserve > 0.  Keyed by peer LITE id.
        self.qp_pools: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # Boot & connection management
    # ------------------------------------------------------------------
    def boot(self):
        """Bring the kernel up: global MR, control slots, poll thread."""
        if self.booted:
            raise LiteError("LITE already booted on this node")
        self.global_mr = yield from self.device.reg_phys_mr(self.pd, Access.ALL)
        params = self.params
        slots = params.lite_ctrl_slots
        slot_bytes = params.lite_ctrl_slot_bytes
        self._ctrl_slots_region = self.node.memory.alloc(slots * slot_bytes)
        for index in range(slots):
            self._post_ctrl_slot(index)
        self._poller = self.sim.process(
            self._poll_loop(), name=f"lite{self.lite_id}-poller"
        )
        self._build_loopback()
        self.booted = True

    def _build_loopback(self) -> None:
        """Loopback QPs so self-targeted control/RPC ops work uniformly."""
        from ..sim import Resource

        loop = PeerInfo(self.lite_id, self.node.node_id, self.global_mr.rkey)
        for _ in range(self.params.lite_qp_factor_k):
            qp_a = self.device.create_qp(
                self.pd, "RC", send_cq=None, recv_cq=self.recv_cq, srq=self.srq
            )
            qp_b = self.device.create_qp(
                self.pd, "RC", send_cq=None, recv_cq=self.recv_cq, srq=self.srq
            )
            self.device.connect(qp_a, qp_b)
            loop.qps.append(qp_a)
            loop.windows.append(
                Resource(self.sim, capacity=self.params.lite_qp_window)
            )
        self.peers[self.lite_id] = loop

    def _post_ctrl_slot(self, index: int) -> None:
        slot_bytes = self.params.lite_ctrl_slot_bytes
        addr = self._ctrl_slots_region.addr + index * slot_bytes
        self.srq.post_recv(
            RecvWR(mr=self.global_mr, offset=addr, length=slot_bytes, wr_id=index)
        )

    def connect(self, other: "LiteKernel"):
        """Build the K shared QPs to a peer (symmetric; generator).

        Connection setup goes through the cluster manager out-of-band;
        we charge one control round-trip per QP pair.
        """
        if other.lite_id in self.peers:
            return
        params = self.params
        mine = PeerInfo(other.lite_id, other.node.node_id, other.global_mr.rkey)
        theirs = PeerInfo(self.lite_id, self.node.node_id, self.global_mr.rkey)
        for _ in range(params.lite_qp_factor_k):
            qp_a = self.device.create_qp(
                self.pd, "RC", send_cq=None, recv_cq=self.recv_cq, srq=self.srq
            )
            qp_b = other.device.create_qp(
                other.pd, "RC", send_cq=None, recv_cq=other.recv_cq, srq=other.srq
            )
            self.device.connect(qp_a, qp_b)
            mine.qps.append(qp_a)
            theirs.qps.append(qp_b)
            from ..sim import Resource

            mine.windows.append(Resource(self.sim, capacity=params.lite_qp_window))
            theirs.windows.append(
                Resource(self.sim, capacity=other.params.lite_qp_window)
            )
            yield from self.node.fabric.transfer(
                self.node.node_id, other.node.node_id, 256
            )
            yield from self.node.fabric.transfer(
                other.node.node_id, self.node.node_id, 256
            )
        self.peers[other.lite_id] = mine
        other.peers[self.lite_id] = theirs
        self.node_to_lite[other.node.node_id] = other.lite_id
        other.node_to_lite[self.node.node_id] = self.lite_id
        # Build the fast-path cost tables eagerly so the very first op
        # on each shared QP can commit without a table-build stall.
        from ..verbs.fastpath import prime_qp

        for qp in mine.qps:
            prime_qp(qp)
        for qp in theirs.qps:
            prime_qp(qp)
        # Control plane: pre-build reserved leasable conns (KRCORE-style
        # pooling).  The default reserve of 0 skips pool creation
        # entirely, keeping the seed's connect() timing byte-identical.
        if params.lite_qp_pool_reserve > 0:
            yield from self.qp_pool(other.lite_id).prebuild()
            yield from other.qp_pool(self.lite_id).prebuild()

    def qp_pool(self, peer_lite_id: int, **overrides):
        """The QP lease pool toward ``peer_lite_id`` (created lazily).

        ``overrides`` (reserve/cap/lease_ttl_us/sweep_interval_us) only
        apply on first creation; later calls return the cached pool.
        """
        pool = self.qp_pools.get(peer_lite_id)
        if pool is None:
            from ..cluster.qp_pool import QPPool

            peer_node = self.manager.lookup(peer_lite_id)
            if peer_node.lite is None:
                raise LiteError(
                    f"LITE {peer_lite_id} is not booted", errno=ENODEV
                )
            pool = QPPool(self, peer_node.lite, **overrides)
            self.qp_pools[peer_lite_id] = pool
        return pool

    def peer(self, lite_id: int, check_alive: bool = True) -> PeerInfo:
        """Connection state toward a LITE instance (incl. loopback).

        ``check_alive=False`` bypasses the keep-alive verdict — probes
        must still reach a peer marked dead, or it could never recover.
        """
        info = self.peers.get(lite_id)
        if info is None:
            raise LiteError(
                f"LITE {self.lite_id} is not connected to {lite_id}",
                errno=ENODEV,
            )
        if check_alive and not info.alive:
            raise LiteError(f"LITE {lite_id} is marked dead", errno=ENODEV)
        return info

    def total_qps(self) -> int:
        """QPs toward remote peers (K×(N-1)); loopback pairs excluded."""
        return sum(
            len(peer.qps)
            for lite_id, peer in self.peers.items()
            if lite_id != self.lite_id
        )

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def ctrl_send(self, dst_lite_id: int, msg: dict,
                  ordered: bool = False, check_alive: bool = True) -> None:
        """Fire-and-forget control SEND (non-blocking post).

        Messages larger than one receive slot are fragmented and
        reassembled at the peer (chunk lists of very large LMRs).
        ``ordered`` pins the message to one QP so it delivers in FIFO
        order relative to other ordered messages (LT_send semantics);
        request/reply traffic is token-matched and rides round-robin.
        """
        payload = encode_ctrl(msg)
        budget = self.params.lite_ctrl_slot_bytes - 128
        if len(payload) <= budget:
            self._ctrl_send_raw(dst_lite_id, payload, ordered=ordered,
                                check_alive=check_alive)
            return
        import base64

        raw_budget = (budget // 4) * 3 - 64  # room for base64 + envelope
        pieces = [
            payload[index : index + raw_budget]
            for index in range(0, len(payload), raw_budget)
        ]
        frag_id = next(self._token_counter)
        for index, piece in enumerate(pieces):
            envelope = {
                "type": "__frag",
                "fid": f"{self.lite_id}:{frag_id}",
                "i": index,
                "n": len(pieces),
                "data": base64.b64encode(piece).decode(),
            }
            self._ctrl_send_raw(dst_lite_id, encode_ctrl(envelope),
                                ordered=True, check_alive=check_alive)

    def _ctrl_send_raw(self, dst_lite_id: int, payload: bytes,
                       ordered: bool = False, check_alive: bool = True) -> None:
        peer = self.peer(dst_lite_id, check_alive=check_alive)
        if ordered:
            qp = peer.qps[0]
        else:
            qp = peer.qps[peer._rr % len(peer.qps)]
            peer._rr += 1
        if qp.state == "ERROR":
            # A past outage flushed this shared QP; LITE recycles it
            # transparently instead of flushing new traffic forever.
            qp.reset()
        self.node.cpu.charge("lite-ctrl", self.params.rnic_doorbell_us)
        qp.post_send(SendWR(Opcode.SEND, inline_data=payload, signaled=False))

    def ctrl_request(self, dst_lite_id: int, msg: dict,
                     timeout: Optional[float] = None,
                     retries: Optional[int] = None,
                     check_alive: bool = True):
        """Send a control request, wait for the peer's reply (generator).

        With no ``timeout`` (and fault tolerance off) this waits forever,
        the seed behavior.  With a timeout, the same-token request is
        resent up to ``retries`` times with doubling per-attempt windows
        (capped at 8x); the peer suppresses duplicates via its reply
        cache.  Raises ``LiteError(errno=ETIMEDOUT)`` on exhaustion.
        """
        tracer = self.sim.tracer
        if tracer is None:
            return (yield from self._ctrl_request_impl(
                dst_lite_id, msg, timeout, retries, check_alive
            ))
        span = tracer.begin("ctrl.request", node=self.lite_id,
                            dst=dst_lite_id, msg=str(msg.get("type", "?")))
        try:
            reply = yield from self._ctrl_request_impl(
                dst_lite_id, msg, timeout, retries, check_alive
            )
        except BaseException as exc:
            tracer.end(span, outcome="err:" + type(exc).__name__)
            raise
        tracer.end(span)
        return reply

    def _ctrl_request_impl(self, dst_lite_id: int, msg: dict,
                           timeout: Optional[float],
                           retries: Optional[int],
                           check_alive: bool):
        if timeout is None and self.ctrl_timeout_us > 0:
            timeout = self.ctrl_timeout_us
        if retries is None:
            retries = self.ctrl_retries
        token = next(self._token_counter)
        msg = dict(msg)
        msg["tok"] = token
        msg["src"] = self.lite_id
        event = self.sim.event()
        self._ctrl_pending[token] = event
        if timeout is None:
            try:
                self.ctrl_send(dst_lite_id, msg, check_alive=check_alive)
            except LiteError:
                self._ctrl_pending.pop(token, None)
                raise
            reply = yield event
        else:
            window = timeout
            for _attempt in range(max(retries, 0) + 1):
                try:
                    self.ctrl_send(dst_lite_id, msg, check_alive=check_alive)
                except LiteError:
                    self._ctrl_pending.pop(token, None)
                    raise
                timer = self.sim.timeout(window)
                yield self.sim.any_of([event, timer])
                if event.triggered:
                    timer.cancel()
                    break
                window = min(window * 2, timeout * 8)
            if not event.triggered:
                self._ctrl_pending.pop(token, None)
                raise LiteError(
                    f"control request {msg.get('type')!r} to LITE "
                    f"{dst_lite_id} timed out",
                    errno=ETIMEDOUT,
                )
            reply = event.value
        if reply.get("err"):
            raise LiteError(reply["err"])
        return reply

    def _ctrl_reply(self, request: dict, reply: dict) -> None:
        reply = dict(reply)
        reply["type"] = MsgType.REPLY
        reply["tok"] = request["tok"]
        src, tok = request.get("src"), request.get("tok")
        if src is not None and tok is not None:
            # Remember the reply so a retried (duplicate) request gets
            # the same answer without re-running the handler.
            self._ctrl_reply_cache.put((src, tok), reply)
            self._ctrl_inflight.discard((src, tok))
        try:
            self.ctrl_send(request["src"], reply, check_alive=False)
        except LiteError:
            # Requester unreachable: it will retry or time out on its own.
            pass

    # ------------------------------------------------------------------
    # The shared polling thread (one per node, §5.1/§6.1)
    # ------------------------------------------------------------------
    def _poll_loop(self):
        cpu = self.node.cpu
        batch = max(1, self.params.cq_poll_batch)
        if batch == 1:
            # Seed-identical path: one discovery wait and one dispatch
            # charge per CQE.  The park instant is tracked on the kernel
            # (not a frame local) so the two-sided fast path can replay
            # one iteration of this loop without resuming the generator.
            while True:
                wc = yield from cpu.busy_wait_tracked(
                    self, self.recv_cq.wait_wc(), tag="lite-poll"
                )
                cpu.charge("lite-poll", 0.10)  # dispatch bookkeeping
                self._dispatch_wc(wc)
        else:
            # Coalesced path (§5.2): each wakeup drains the CQ backlog
            # with a single poll call — one discovery latency and one
            # dispatch charge amortized over the whole batch.
            while True:
                wcs = yield from cpu.adaptive_poll(
                    self.recv_cq, tag="lite-poll", max_entries=batch
                )
                cpu.charge("lite-poll", 0.10)  # dispatch bookkeeping
                for wc in wcs:
                    self._dispatch_wc(wc)

    def _dispatch_wc(self, wc) -> None:
        """Demultiplex one receive-side CQE (control msg or RPC imm)."""
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("kernel.dispatch", node=self.lite_id,
                           opcode=wc.opcode.value)
        if wc.opcode is Opcode.RECV:
            slot = wc.wr_id
            if not wc.ok:
                # Defensive: a message overran its slot.
                self._post_ctrl_slot(slot)
                return
            payload = self._ctrl_slots_region.read(
                slot * self.params.lite_ctrl_slot_bytes, wc.byte_len
            )
            self._post_ctrl_slot(slot)
            msg = decode_ctrl(payload)
            if msg.get("type") == "__frag":
                msg = self._reassemble(msg)
                if msg is None:
                    return
            if msg.get("type") == MsgType.REPLY:
                pending = self._ctrl_pending.pop(msg["tok"], None)
                if pending is not None:
                    pending.succeed(msg)
            elif self._ctrl_duplicate(msg):
                pass  # answered from the reply cache (or still running)
            else:
                self.sim.process(
                    self._handle_ctrl(msg), name=f"lite{self.lite_id}-ctrl"
                )
        elif wc.opcode is Opcode.RECV_IMM:
            self._post_ctrl_slot(wc.wr_id)
            self.rpc.handle_imm(wc)

    # ------------------------------------------------------------------
    # Two-sided fast-path hooks (repro.verbs.fastpath, INTERNALS §13)
    # ------------------------------------------------------------------
    def fp_rpc_gate(self, imm: int, src_node: int, remote_addr: int) -> bool:
        """May the fused fast path deliver this write-imm to this kernel?

        Called at commit time with a candidate chain's immediate and
        destination address.  True only when the synchronous dispatch at
        the deferred delivery instant cannot suspend or raise: a reply
        imm always qualifies (it at most succeeds a pending event); a
        request imm must resolve to a bound, non-wrapping ring position
        and a live peer — the head-pointer update and any duplicate
        resend both call ``kernel.peer()``, which raises for dead or
        unknown peers.
        """
        kind, _func, off = unpack_imm(imm)
        if kind == IMM_KIND_REPLY:
            return True
        if kind != IMM_KIND_REQUEST:
            return False
        client_id = self.node_to_lite.get(src_node)
        if client_id is None:
            return False
        ring = self.rpc.server_rings.get(client_id)
        if ring is None:
            return False
        region = ring.region
        if not region.addr <= remote_addr < region.addr + ring.size:
            return False
        # A wrapped append lands its imm-carrying remainder at the ring
        # start while the imm offset still names the pre-wrap tail; the
        # mismatch is the wrap detector.  Wraps stay on the generator
        # path (the candidate chain carries only the remainder bytes).
        if remote_addr - region.addr != off:
            return False
        peer = self.peers.get(client_id)
        return peer is not None and peer.alive

    def _fp_deliver(self, wc, t_rc: float) -> None:
        """Replay one batch==1 poll iteration without resuming the poller.

        Runs on the fp-queue at the exact instant the generator poller
        would have finished its discovery delay (``t_rc`` +
        ``poll_loop_us/2``).  Charges what ``busy_wait_tracked`` plus
        the loop body would have charged — wait since the last park,
        the discovery delay, the 0.10 dispatch bookkeeping, in that
        order — re-arms the park instant, and hands the CQE to the real
        dispatch code.  The parked poller generator (and its Store
        getter) stays parked, serving whatever arrives next; its wake
        charge reads ``_poll_park_at``, so ``busy_time`` stays
        bit-identical to the generator path.
        """
        cpu = self.node.cpu
        busy = cpu.busy_time
        busy["lite-poll"] += t_rc - self._poll_park_at
        discover = self.params.poll_loop_us / 2
        busy["lite-poll"] += discover
        cpu.charge("lite-poll", 0.10)  # dispatch bookkeeping
        self._poll_park_at = self.sim.now
        fcq = self.recv_cq
        fcq.fp_pending -= 1
        fcq.fp_bypass = False
        self._dispatch_wc(wc)
        # Any CQE buffered during the bypass window is handed to the
        # parked getter now — the slow-path poller would see it as an
        # immediately-triggered wait right after this dispatch.
        fcq.fp_flush()

    def _ctrl_duplicate(self, msg: dict) -> bool:
        """Idempotent-retry guard for tokenized control requests.

        A duplicate of an already-answered request is re-answered from
        the reply cache (the first reply was lost); a duplicate of a
        request whose handler is still running is dropped (the eventual
        reply serves both copies).  Returns True when the message must
        not be dispatched again.
        """
        src, tok = msg.get("src"), msg.get("tok")
        if src is None or tok is None:
            return False
        key = (src, tok)
        cached = self._ctrl_reply_cache.get(key)
        if cached is not None:
            try:
                self.ctrl_send(src, cached, check_alive=False)
            except LiteError:
                pass
            return True
        if key in self._ctrl_inflight:
            return True
        self._ctrl_inflight.add(key)
        return False

    def _reassemble(self, envelope: dict):
        """Collect fragments; returns the full message when complete."""
        if not hasattr(self, "_frag_buffers"):
            self._frag_buffers = {}
        import base64

        key = envelope["fid"]
        parts = self._frag_buffers.setdefault(key, {})
        parts[envelope["i"]] = base64.b64decode(envelope["data"])
        if len(parts) < envelope["n"]:
            return None
        del self._frag_buffers[key]
        payload = b"".join(parts[index] for index in range(envelope["n"]))
        return decode_ctrl(payload)

    # ------------------------------------------------------------------
    # Control-plane services
    # ------------------------------------------------------------------
    def _handle_ctrl(self, msg: dict):
        handler = {
            MsgType.ALLOC: self._serve_alloc,
            MsgType.FREE_CHUNKS: self._serve_free_chunks,
            MsgType.MAP: self._serve_map,
            MsgType.UNMAP_NOTIFY: self._serve_unmap_notify,
            MsgType.FREE_NOTIFY: self._serve_free_notify,
            MsgType.CHUNKS_UPDATE: self._serve_chunks_update,
            MsgType.GRANT: self._serve_grant,
            MsgType.MEMSET: self._serve_memset,
            MsgType.MEMCPY: self._serve_memcpy,
            MsgType.RING_BIND: self._serve_ring_bind,
            MsgType.LOCK_WAIT: self._serve_lock_wait,
            MsgType.LOCK_RELEASE: self._serve_lock_release,
            MsgType.BARRIER: self._serve_barrier,
            MsgType.USER_MSG: self._serve_user_msg,
            MsgType.PING: self._serve_ping,
        }.get(msg["type"])
        if handler is None:
            self._ctrl_reply(msg, {"err": f"unknown control type {msg['type']!r}"})
            return
        try:
            yield from handler(msg)
        except LiteError as exc:
            # A handler tripping over failure semantics (dead peer,
            # errored transport) must not crash the poll-spawned process;
            # answer the requester with the error if it expects a reply.
            if msg.get("tok") is not None and msg.get("src") is not None:
                self._ctrl_reply(msg, {"err": str(exc)})

    # -- memory management services --------------------------------------
    def alloc_chunks(self, size: int):
        """Carve ``size`` bytes into local physically-contiguous chunks.

        Large LMRs are split into <= lite_chunk_bytes pieces to dodge
        external fragmentation (§4.1); small LMRs stay contiguous.
        Generator: in per-MR ablation mode each chunk pays a real
        ibv_reg_mr (pinning included).
        """
        chunk_max = self.params.lite_chunk_bytes
        chunks: List[ChunkInfo] = []
        remaining = size
        while remaining > 0:
            piece = min(remaining, chunk_max)
            region = self.node.memory.alloc(piece)
            if self.use_global_mr:
                chunks.append(ChunkInfo(self.lite_id, region.addr, piece))
            else:
                mr = yield from self.device.reg_mr(
                    self.pd, piece, Access.ALL, region=region
                )
                chunks.append(
                    ChunkInfo(self.lite_id, region.addr, piece,
                              rkey=mr.rkey, va=mr.base_addr)
                )
            remaining -= piece
        return chunks

    def _alloc_cost(self, size: int) -> float:
        return (
            self.params.malloc_base_us
            + (size / (1024 * 1024)) * self.params.malloc_per_mb_us
        )

    def _serve_alloc(self, msg: dict):
        size = msg["size"]
        yield from self.node.cpu.execute(self._alloc_cost(size), tag="lite-mgmt")
        try:
            chunks = yield from self.alloc_chunks(size)
        except Exception as exc:  # OutOfMemoryError and friends
            self._ctrl_reply(msg, {"err": str(exc)})
            return
        self._ctrl_reply(msg, {"chunks": [c.to_wire() for c in chunks]})

    def _serve_free_chunks(self, msg: dict):
        for wire in msg["chunks"]:
            chunk = ChunkInfo.from_wire(wire)
            if chunk.node_id != self.lite_id:
                continue
            yield from self.free_chunk(chunk)
        yield self.sim.timeout(self.params.malloc_base_us)
        self._ctrl_reply(msg, {"ok": True})

    def free_chunk(self, chunk: ChunkInfo):
        """Release one local chunk (deregistering its MR if ablated)."""
        if chunk.rkey is not None:
            mr = self.device.mrs_by_rkey.get(chunk.rkey)
            if mr is not None:
                yield from self.device.dereg_mr(mr, free_backing=True)
                return
        region, offset = self.node.memory.resolve(chunk.addr, chunk.size)
        if offset == 0 and region.size == chunk.size:
            self.node.memory.free(region)

    def _serve_map(self, msg: dict):
        yield self.sim.timeout(self.params.lite_metadata_us)
        record = self.registry.get(msg["name"])
        if record is None or record.freed:
            self._ctrl_reply(msg, {"err": f"no LMR named {msg['name']!r}"})
            return
        wanted = Permission(msg["perm"])
        if not record.check(msg["principal"], wanted):
            self._ctrl_reply(
                msg, {"err": f"permission denied for {msg['principal']!r}"}
            )
            return
        record.mapped_by.add(msg["src"])
        reply = {
            "lmr_id": record.lmr_id,
            "size": record.size,
            "chunks": [c.to_wire() for c in record.chunks],
            "perm": wanted.value,
        }
        # Only replicated LMRs carry the extra field: the wire bytes of
        # every pre-existing (unreplicated) MAP reply are unchanged.
        if record.replicas:
            reply["replicas"] = {
                backup: [c.to_wire() for c in bchunks]
                for backup, bchunks in record.replicas.items()
            }
        self._ctrl_reply(msg, reply)

    def _serve_unmap_notify(self, msg: dict):
        record = self._records_by_id.get(msg["lmr_id"])
        if record is not None:
            record.mapped_by.discard(msg["src"])
        return
        yield  # pragma: no cover - generator marker

    def _serve_free_notify(self, msg: dict):
        for mapping in self.mappings_by_lmr.pop(msg["lmr_id"], []):
            mapping.valid = False
        return
        yield  # pragma: no cover - generator marker

    def _serve_chunks_update(self, msg: dict):
        """The master moved an LMR: retarget every local mapping (§4.1).

        Existing lhs keep working transparently — their next operation
        simply lands at the new location.  The recovery layer reuses
        this message with optional extras: ``master`` (post-promotion
        re-homing), ``replicas`` (the surviving/resynced backup set)
        and ``failed`` (last replica died — degrade to ENODEV).
        """
        yield self.sim.timeout(self.params.lite_metadata_us)
        new_chunks = [ChunkInfo.from_wire(w) for w in msg["chunks"]]
        new_master = msg.get("master")
        new_replicas = None
        if "replicas" in msg:
            new_replicas = {
                int(backup): [ChunkInfo.from_wire(w) for w in bchunks]
                for backup, bchunks in msg["replicas"].items()
            }
        for mapping in self.mappings_by_lmr.get(msg["lmr_id"], []):
            mapping.retarget(new_chunks)
            if new_master is not None:
                mapping.master_id = new_master
            if new_replicas is not None:
                mapping.replica_chunks = {b: list(c)
                                          for b, c in new_replicas.items()}
            if "failed" in msg:
                mapping.failed = bool(msg["failed"])
        self._ctrl_reply(msg, {"ok": True})

    def _serve_grant(self, msg: dict):
        yield self.sim.timeout(self.params.lite_metadata_us)
        record = self.registry.get(msg["name"])
        if record is None:
            self._ctrl_reply(msg, {"err": f"no LMR named {msg['name']!r}"})
            return
        if not record.check(msg["principal"], Permission.MASTER):
            self._ctrl_reply(msg, {"err": "only a master may grant permissions"})
            return
        record.grant(msg["grantee"], Permission(msg["perm"]))
        self._ctrl_reply(msg, {"ok": True})

    # -- memory-op execution services (§7.1) ------------------------------
    def _local_chunk_write(self, chunk: ChunkInfo, offset: int, data: bytes) -> None:
        region, base = self.node.memory.resolve(chunk.addr + offset, len(data))
        region.write(base, data)

    def _local_chunk_read(self, chunk: ChunkInfo, offset: int, nbytes: int) -> bytes:
        region, base = self.node.memory.resolve(chunk.addr + offset, nbytes)
        return region.read(base, nbytes)

    def _serve_memset(self, msg: dict):
        chunks = [ChunkInfo.from_wire(w) for w in msg["chunks"]]
        mapping = MappedLmr(0, "", sum(c.size for c in chunks), chunks, 0)
        value = bytes([msg["value"]])
        nbytes = msg["nbytes"]
        yield from self.node.cpu.execute(
            nbytes / self.params.memset_bytes_per_us, tag="lite-mgmt"
        )
        for chunk, chunk_off, piece, _buf_off in mapping.plan(msg["offset"], nbytes):
            self._local_chunk_write(chunk, chunk_off, value * piece)
        self._ctrl_reply(msg, {"ok": True})

    def _serve_memcpy(self, msg: dict):
        src_chunks = [ChunkInfo.from_wire(w) for w in msg["src_chunks"]]
        dst_chunks = [ChunkInfo.from_wire(w) for w in msg["dst_chunks"]]
        nbytes = msg["nbytes"]
        src_map = MappedLmr(0, "", sum(c.size for c in src_chunks), src_chunks, 0)
        dst_map = MappedLmr(0, "", sum(c.size for c in dst_chunks), dst_chunks, 0)
        # Gather source bytes (they are local to this node by routing).
        parts = []
        for chunk, chunk_off, piece, _ in src_map.plan(msg["src_off"], nbytes):
            if chunk.node_id != self.lite_id:
                self._ctrl_reply(msg, {"err": "memcpy routed to wrong node"})
                return
            parts.append(self._local_chunk_read(chunk, chunk_off, piece))
        data = b"".join(parts)
        dst_local = all(c.node_id == self.lite_id for c in dst_chunks)
        if dst_local:
            yield from self.node.cpu.execute(
                nbytes / self.params.memcpy_bytes_per_us, tag="lite-mgmt"
            )
            cursor = 0
            for chunk, chunk_off, piece, _ in dst_map.plan(msg["dst_off"], nbytes):
                self._local_chunk_write(chunk, chunk_off, data[cursor : cursor + piece])
                cursor += piece
        else:
            yield from self.onesided.write(dst_map, msg["dst_off"], data)
        self._ctrl_reply(msg, {"ok": True})

    # -- RPC ring binding ---------------------------------------------------
    def _serve_ring_bind(self, msg: dict):
        yield self.sim.timeout(self.params.lite_metadata_us)
        ring_addr = self.rpc.server_bind(msg["src"], msg["head_slot_addr"])
        self._ctrl_reply(msg, {"ring_addr": ring_addr})

    # -- synchronization services --------------------------------------------
    def _serve_lock_wait(self, msg: dict):
        granted = self.sync.lock_wait(msg["lock"])
        yield granted
        self._ctrl_reply(msg, {"ok": True})

    def _serve_lock_release(self, msg: dict):
        yield self.sim.timeout(self.params.lite_metadata_us)
        self.sync.lock_release(msg["lock"])
        self._ctrl_reply(msg, {"ok": True})

    def _serve_barrier(self, msg: dict):
        released = self.sync.barrier_arrive(msg["name"], msg["n"])
        yield released
        self._ctrl_reply(msg, {"ok": True})

    # -- user messaging (LT_send) ---------------------------------------------
    def _serve_user_msg(self, msg: dict):
        import base64

        self.user_inbox.put((msg["src"], base64.b64decode(msg["data"])))
        return
        yield  # pragma: no cover - generator marker

    # ------------------------------------------------------------------
    # Fault tolerance: keep-alive and retry policy
    # ------------------------------------------------------------------
    def _serve_ping(self, msg: dict):
        self._ctrl_reply(msg, {"ok": True})
        return
        yield  # pragma: no cover - generator marker

    def enable_fault_tolerance(self, ctrl_timeout_us: Optional[float] = None,
                               ctrl_retries: Optional[int] = None) -> None:
        """Arm the control-plane timeout/retry policy (off in the seed)."""
        params = self.params
        self.ctrl_timeout_us = (
            params.lite_ctrl_timeout_us if ctrl_timeout_us is None
            else ctrl_timeout_us
        )
        self.ctrl_retries = (
            params.lite_ctrl_retries if ctrl_retries is None else ctrl_retries
        )

    @property
    def keepalive_running(self) -> bool:
        """True while the keep-alive prober is active."""
        return self._keepalive is not None

    def start_keepalive(self, interval_us: Optional[float] = None,
                        miss_limit: Optional[int] = None):
        """Start the per-node keep-alive prober (idempotent).

        Every ``interval_us`` the kernel pings each remote peer with a
        one-shot control request; ``miss_limit`` consecutive misses mark
        the peer dead (``alive=False``, operations fail fast with
        ENODEV), and the next successful probe resurrects it.
        """
        if self._keepalive is not None:
            return self._keepalive
        params = self.params
        interval = (
            params.lite_keepalive_interval_us if interval_us is None
            else interval_us
        )
        if interval <= 0:
            return None
        limit = (
            params.lite_keepalive_miss_limit if miss_limit is None
            else miss_limit
        )
        self._keepalive = self.sim.process(
            self._keepalive_loop(interval, max(limit, 1)),
            name=f"lite{self.lite_id}-keepalive",
        )
        return self._keepalive

    def _keepalive_loop(self, interval_us: float, miss_limit: int):
        misses: Dict[int, int] = {}
        while True:
            yield self.sim.timeout(interval_us)
            for lite_id in list(self.peers):
                if lite_id == self.lite_id:
                    continue
                peer = self.peers.get(lite_id)
                if peer is None:
                    continue
                try:
                    yield from self.ctrl_request(
                        lite_id, {"type": MsgType.PING},
                        timeout=interval_us, retries=0, check_alive=False,
                    )
                except LiteError:
                    misses[lite_id] = misses.get(lite_id, 0) + 1
                    if misses[lite_id] >= miss_limit:
                        peer.alive = False
                    continue
                misses[lite_id] = 0
                peer.alive = True
